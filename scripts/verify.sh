#!/usr/bin/env bash
# Tier-1 verification for the ARO-PUF reproduction workspace.
#
# Runs the release build, the full test suite, and clippy with warnings
# denied. The workspace has no network dependencies (rand / proptest /
# criterion resolve to vendored path crates), so everything is forced
# offline to fail fast if a registry dependency ever sneaks back in.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: run each microbenchmark once (the vendored criterion runs a
# single iteration when invoked without `--bench`), proving the bench
# harness still compiles and executes. Full timing comparisons live in
# scripts/bench_check.sh, which warns rather than fails.
echo "==> bench smoke (one iteration per microbenchmark)"
cargo test -q -p aro-bench --benches

echo "==> verify OK"
