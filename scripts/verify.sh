#!/usr/bin/env bash
# Tier-1 verification for the ARO-PUF reproduction workspace.
#
# Runs the release build, the full test suite, and clippy with warnings
# denied. The workspace has no network dependencies (rand / proptest /
# criterion resolve to vendored path crates), so everything is forced
# offline to fail fast if a registry dependency ever sneaks back in.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: run each microbenchmark once (the vendored criterion runs a
# single iteration when invoked without `--bench`), proving the bench
# harness still compiles and executes. Full timing comparisons live in
# scripts/bench_check.sh, which warns rather than fails.
echo "==> bench smoke (one iteration per microbenchmark)"
cargo test -q -p aro-bench --benches

# Chaos smoke: the quick reproduction must survive an injected-fault run.
# Exit 0 (all experiments completed under faults) and exit 3 (degraded
# mode: survivors reported plus a failure table) are both acceptable;
# anything else — a panic escaping the harness, a total failure — fails
# verification. See docs/ROBUSTNESS.md.
echo "==> chaos smoke (repro --quick --faults smoke)"
set +e
./target/release/repro --quick --quiet --faults smoke
chaos=$?
set -e
if [[ "$chaos" -ne 0 && "$chaos" -ne 3 ]]; then
    echo "verify: chaos smoke exited $chaos (expected 0 or 3)" >&2
    exit 1
fi
echo "chaos smoke exit: $chaos"

echo "==> verify OK"
