#!/usr/bin/env bash
# Tier-1 verification for the ARO-PUF reproduction workspace.
#
# Runs the release build, the full test suite, and clippy with warnings
# denied. The workspace has no network dependencies (rand / proptest /
# criterion resolve to vendored path crates), so everything is forced
# offline to fail fast if a registry dependency ever sneaks back in.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Bench smoke: run each microbenchmark once (the vendored criterion runs a
# single iteration when invoked without `--bench`), proving the bench
# harness still compiles and executes. Full timing comparisons live in
# scripts/bench_check.sh, which warns rather than fails.
echo "==> bench smoke (one iteration per microbenchmark)"
cargo test -q -p aro-bench --benches

# Chaos smoke: the quick reproduction must survive an injected-fault run.
# Exit 0 (all experiments completed under faults) and exit 3 (degraded
# mode: survivors reported plus a failure table) are both acceptable;
# anything else — a panic escaping the harness, a total failure — fails
# verification. See docs/ROBUSTNESS.md.
echo "==> chaos smoke (repro --quick --faults smoke)"
set +e
./target/release/repro --quick --quiet --faults smoke
chaos=$?
set -e
if [[ "$chaos" -ne 0 && "$chaos" -ne 3 ]]; then
    echo "verify: chaos smoke exited $chaos (expected 0 or 3)" >&2
    exit 1
fi
echo "chaos smoke exit: $chaos"

# Lifecycle smoke: the self-healing refresh experiment must complete (or
# degrade honestly) under a quarter-rate storm — the configuration its
# headline claim is quoted at. See docs/ROBUSTNESS.md ("Self-healing key
# lifecycle").
echo "==> lifecycle smoke (repro --quick --faults storm@0.25 exp16)"
set +e
./target/release/repro --quick --quiet --faults storm@0.25 exp16
lifecycle=$?
set -e
if [[ "$lifecycle" -ne 0 && "$lifecycle" -ne 3 ]]; then
    echo "verify: lifecycle smoke exited $lifecycle (expected 0 or 3)" >&2
    exit 1
fi
echo "lifecycle smoke exit: $lifecycle"

# Snapshot-determinism smoke: the aged-state snapshot store must be
# invisible in the output bytes. Run the snapshot-heavy lifecycle sweep
# once through the store and once with it killed (ARO_SNAPSHOTS=off
# routes every step through plain cold aging) and require identical
# stdout. See docs/PERFORMANCE.md ("Aged-state snapshots").
echo "==> snapshot smoke (ARO_SNAPSHOTS=off vs on, byte-compare)"
snap_dir="$(mktemp -d /tmp/aro-verify-snap.XXXXXX)"
./target/release/repro --quick exp16 > "$snap_dir/snapshotted.md"
ARO_SNAPSHOTS=off ./target/release/repro --quick exp16 > "$snap_dir/cold.md"
if ! cmp -s "$snap_dir/snapshotted.md" "$snap_dir/cold.md"; then
    echo "verify: snapshotted exp16 differs from cold-aged exp16" >&2
    diff "$snap_dir/snapshotted.md" "$snap_dir/cold.md" | head -20 >&2
    rm -rf "$snap_dir"
    exit 1
fi
rm -rf "$snap_dir"
echo "snapshot smoke: snapshotted run byte-identical to cold run"

# Ledger smoke: the checkpoint/resume contract, end to end on the real
# binary. Run two experiments with a fresh ledger but "interrupt" after
# the first (by only asking for it), resume the same ledger for both, and
# require the concatenated stdout to be byte-identical to one
# uninterrupted run. See docs/OBSERVABILITY.md ("Run ledger & resume").
echo "==> ledger smoke (interrupt, resume, byte-compare)"
ledger_dir="$(mktemp -d /tmp/aro-verify-ledger.XXXXXX)"
trap 'rm -rf "$ledger_dir"' EXIT
./target/release/repro --quick exp1 exp3 > "$ledger_dir/fresh.md"
./target/release/repro --quick exp1 --ledger "$ledger_dir/run.ledger" > /dev/null
./target/release/repro --quick exp1 exp3 --resume "$ledger_dir/run.ledger" \
    > "$ledger_dir/resumed.md"
if ! cmp -s "$ledger_dir/fresh.md" "$ledger_dir/resumed.md"; then
    echo "verify: resumed stdout differs from an uninterrupted run" >&2
    diff "$ledger_dir/fresh.md" "$ledger_dir/resumed.md" | head -20 >&2
    exit 1
fi
grep -c '"event":"experiment"' "$ledger_dir/run.ledger" | {
    read -r n
    if [[ "$n" -ne 2 ]]; then
        echo "verify: expected 2 experiment records (exp1 + fresh exp3), got $n" >&2
        exit 1
    fi
}
echo "ledger smoke: resumed run byte-identical to fresh run"

# Health smoke: the fleet-health observatory, end to end. A quick capture
# must render the deterministic health tables identically at 1 and 4
# worker threads, and the trace export must be JSON a Chrome-trace viewer
# would accept. See docs/OBSERVABILITY.md ("Fleet health & streaming
# statistics" and "Trace export").
echo "==> health smoke (report health determinism + report trace)"
health_dir_a="$ledger_dir/health_a"
health_dir_b="$ledger_dir/health_b"
mkdir -p "$health_dir_a" "$health_dir_b"
./target/release/repro --quick exp2 --threads 1 --quiet \
    --telemetry "$health_dir_a/t.jsonl" --ledger "$health_dir_a/l.jsonl"
./target/release/repro --quick exp2 --threads 4 --quiet \
    --telemetry "$health_dir_b/t.jsonl" --ledger "$health_dir_b/l.jsonl"
./target/release/repro report health "$health_dir_a/t.jsonl" "$health_dir_a/l.jsonl" \
    > "$ledger_dir/health_1.md"
./target/release/repro report health "$health_dir_b/t.jsonl" "$health_dir_b/l.jsonl" \
    > "$ledger_dir/health_4.md"
if ! cmp -s "$ledger_dir/health_1.md" "$ledger_dir/health_4.md"; then
    echo "verify: report health differs between --threads 1 and 4" >&2
    diff "$ledger_dir/health_1.md" "$ledger_dir/health_4.md" | head -20 >&2
    exit 1
fi
if ! grep -q "Fleet health" "$ledger_dir/health_1.md"; then
    echo "verify: report health produced no fleet-health table" >&2
    exit 1
fi
./target/release/repro report trace "$health_dir_a/t.jsonl" > "$ledger_dir/trace.json"
python3 - "$ledger_dir/trace.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "trace export carried no events"
assert any(e.get("ph") == "X" for e in events), "no complete span events"
PY
echo "health smoke: deterministic tables + valid Chrome trace"

# Serve smoke: the fleet authentication service must survive a
# quarter-rate storm (exit 0, or 3 if it honestly ends degraded), and
# the serve-bench report — simulated latencies included — must be
# byte-identical at 1 and 4 worker threads under a half storm. See
# docs/ROBUSTNESS.md ("Fleet authentication service").
echo "==> serve smoke (exp18 under storm@0.25 + serve-bench thread determinism)"
set +e
./target/release/repro --quick --quiet --faults storm@0.25 exp18
serve=$?
set -e
if [[ "$serve" -ne 0 && "$serve" -ne 3 ]]; then
    echo "verify: serve smoke exited $serve (expected 0 or 3)" >&2
    exit 1
fi
echo "serve smoke exit: $serve"
serve_dir="$ledger_dir/serve"
mkdir -p "$serve_dir"
set +e
./target/release/repro --quick --faults storm@0.5 --threads 1 serve-bench \
    > "$serve_dir/bench_1.md"
serve_t1=$?
./target/release/repro --quick --faults storm@0.5 --threads 4 serve-bench \
    > "$serve_dir/bench_4.md"
serve_t4=$?
set -e
for code in "$serve_t1" "$serve_t4"; do
    if [[ "$code" -ne 0 && "$code" -ne 3 ]]; then
        echo "verify: serve-bench exited $code (expected 0 or 3)" >&2
        exit 1
    fi
done
if [[ "$serve_t1" -ne "$serve_t4" ]]; then
    echo "verify: serve-bench exit codes differ between --threads 1 and 4" >&2
    exit 1
fi
if ! cmp -s "$serve_dir/bench_1.md" "$serve_dir/bench_4.md"; then
    echo "verify: serve-bench differs between --threads 1 and 4" >&2
    diff "$serve_dir/bench_1.md" "$serve_dir/bench_4.md" | head -20 >&2
    exit 1
fi
echo "serve smoke: serve-bench byte-identical at 1 and 4 threads"

# Replica smoke: the N-way replicated enrollment store, end to end on
# the real binary. The --replicas flag must reject nonsense with a
# usage error (exit 2), a full storm with replication on must end
# honestly (exit 0, or 3 when the fleet degrades) with zero false
# accepts, and the replicated serve-bench report — quorum reads,
# scrub repairs, replica-hop latencies included — must stay
# byte-identical at 1 and 4 worker threads. See docs/ROBUSTNESS.md
# ("Replicated enrollment store").
echo "==> replica smoke (--replicas validation + replicated storm determinism)"
set +e
./target/release/repro --quick --quiet --replicas 0 serve-bench > /dev/null 2>&1
bad_zero=$?
./target/release/repro --quick --quiet --replicas 9 serve-bench > /dev/null 2>&1
bad_many=$?
set -e
if [[ "$bad_zero" -ne 2 || "$bad_many" -ne 2 ]]; then
    echo "verify: --replicas 0 / 9 exited $bad_zero / $bad_many (expected 2 / 2)" >&2
    exit 1
fi
replica_dir="$ledger_dir/replicas"
mkdir -p "$replica_dir"
set +e
./target/release/repro --quick --faults storm --replicas 3 --threads 1 serve-bench \
    > "$replica_dir/bench_1.md"
rep_t1=$?
./target/release/repro --quick --faults storm --replicas 3 --threads 4 serve-bench \
    > "$replica_dir/bench_4.md"
rep_t4=$?
set -e
for code in "$rep_t1" "$rep_t4"; do
    if [[ "$code" -ne 0 && "$code" -ne 3 ]]; then
        echo "verify: replicated serve-bench exited $code (expected 0 or 3)" >&2
        exit 1
    fi
done
if [[ "$rep_t1" -ne "$rep_t4" ]]; then
    echo "verify: replicated serve-bench exit codes differ between threads" >&2
    exit 1
fi
if ! cmp -s "$replica_dir/bench_1.md" "$replica_dir/bench_4.md"; then
    echo "verify: replicated serve-bench differs between --threads 1 and 4" >&2
    diff "$replica_dir/bench_1.md" "$replica_dir/bench_4.md" | head -20 >&2
    exit 1
fi
if ! grep -q "3-way replicated store" "$replica_dir/bench_1.md"; then
    echo "verify: replicated serve-bench report does not name its replication factor" >&2
    exit 1
fi
if ! grep -q "0 false accepts" "$replica_dir/bench_1.md"; then
    echo "verify: replicated storm run must keep zero false accepts" >&2
    exit 1
fi
echo "replica smoke: usage errors rejected, replicated storm deterministic"

# Incident smoke: the request-scoped audit trail, end to end. Capture
# exp18 under a quarter storm with --audit at 1 and 4 worker threads,
# require `report incidents` to reconstruct byte-identical causal
# timelines from both captures, and validate the audit JSONL's schema
# invariants (monotonic seq, causally linked request chains). See
# docs/OBSERVABILITY.md ("Serve audit trail & incident forensics").
echo "==> incident smoke (exp18 audit capture + report incidents determinism)"
audit_dir="$ledger_dir/audit"
mkdir -p "$audit_dir"
set +e
./target/release/repro --quick --quiet --faults storm@0.25 --audit \
    --telemetry "$audit_dir/t1.jsonl" --threads 1 exp18
audit_t1=$?
./target/release/repro --quick --quiet --faults storm@0.25 --audit \
    --telemetry "$audit_dir/t4.jsonl" --threads 4 exp18
audit_t4=$?
set -e
for code in "$audit_t1" "$audit_t4"; do
    if [[ "$code" -ne 0 && "$code" -ne 3 ]]; then
        echo "verify: audited exp18 exited $code (expected 0 or 3)" >&2
        exit 1
    fi
done
./target/release/repro report incidents "$audit_dir/t1.jsonl" > "$audit_dir/inc_1.md"
./target/release/repro report incidents "$audit_dir/t4.jsonl" > "$audit_dir/inc_4.md"
if ! cmp -s "$audit_dir/inc_1.md" "$audit_dir/inc_4.md"; then
    echo "verify: report incidents differs between --threads 1 and 4" >&2
    diff "$audit_dir/inc_1.md" "$audit_dir/inc_4.md" | head -20 >&2
    exit 1
fi
if ! grep -q "Incident report" "$audit_dir/inc_1.md"; then
    echo "verify: report incidents produced no incident report" >&2
    exit 1
fi
./target/release/repro report slo "$audit_dir/t1.jsonl" > "$audit_dir/slo.md"
if ! grep -q "SLO report" "$audit_dir/slo.md"; then
    echo "verify: report slo produced no SLO report" >&2
    exit 1
fi
python3 - "$audit_dir/t1.jsonl" <<'PY'
import json, sys

seq = -1
requests = {}
verdicts = 0
scrubs = 0
for line in open(sys.argv[1]):
    line = line.strip()
    if not line or '"event":"audit"' not in line:
        continue
    ev = json.loads(line)
    if ev.get("event") != "audit":
        continue
    assert ev["seq"] > seq, f"audit seq not monotonic: {ev['seq']} after {seq}"
    seq = ev["seq"]
    stage = ev["stage"]
    if stage in ("request", "store_read", "attempt", "verdict"):
        req = ev["req"]
        assert len(req) == 16 and int(req, 16) >= 0, f"bad request id {req!r}"
        order = requests.setdefault(req, [])
        order.append(stage)
        if stage == "store_read" and ev.get("outcome") == "intact":
            assert ev.get("replica", 0) >= 0, f"intact read without a replica: {ev}"
        if stage == "verdict":
            verdicts += 1
            assert order[0] == "request", f"chain for {req} missing its request head: {order}"
            assert ev["verdict"] in (
                "accepted", "rejected", "timed_out",
                "corrupt_record", "missing", "malformed",
            ), ev["verdict"]
    elif stage == "scrub":
        scrubs += 1
        assert ev["outcome"] in ("read_repair", "unrecoverable"), ev["outcome"]
        assert ev["replica"] >= 0 and ev["generation"] >= 0, ev
    elif stage == "store_health":
        assert ev["from"] in ("intact", "replica-degraded", "quorum-critical"), ev
        assert ev["to"] in ("intact", "replica-degraded", "quorum-critical"), ev
assert verdicts > 0, "audit capture carried no verdicts"
for req, order in requests.items():
    assert order.count("request") == 1, f"{req}: {order}"
    assert order.count("verdict") <= 1, f"{req}: {order}"
print(f"audit JSONL valid: {len(requests)} request chains, {verdicts} verdicts, {scrubs} scrub findings")
PY
echo "incident smoke: forensics byte-identical at 1 and 4 threads"

echo "==> verify OK"
