#!/usr/bin/env bash
# Perf-trajectory check for the ARO-PUF reproduction.
#
# Re-runs the full quick-scale reproduction with --bench-json and compares
# the total wall time against the committed pre-optimization capture
# (BENCH_baseline.json, recorded at the seed commit before the frequency
# kernel / parallel fabrication / population cache work).
#
# This is a trend monitor, not a gate: wall-clock on shared or throttled
# machines drifts by double-digit percentages between runs (see
# docs/PERFORMANCE.md), so regressions print a loud WARNING but the script
# still exits 0. Tune the alarm threshold with BENCH_MIN_SPEEDUP
# (default 1.2 — i.e. warn only when the optimized tree has lost most of
# its measured ~2x headroom over the baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_baseline.json"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-1.2}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: no $BASELINE at the workspace root; nothing to compare" >&2
    exit 0
fi

echo "==> building repro (release)"
CARGO_NET_OFFLINE=true cargo build --release -q -p aro-bench

fresh="$(mktemp /tmp/BENCH_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

echo "==> timing repro --quick (three runs, keeping the fastest)"
best=""
for _ in 1 2 3; do
    ./target/release/repro --quick --quiet --bench-json "$fresh"
    total="$(sed -n 's/.*"total_wall_ns": \([0-9]*\).*/\1/p' "$fresh")"
    if [[ -z "$best" || "$total" -lt "$best" ]]; then
        best="$total"
    fi
done

baseline_total="$(sed -n 's/.*"total_wall_ns": \([0-9]*\).*/\1/p' "$BASELINE")"
if [[ -z "$baseline_total" || -z "$best" ]]; then
    echo "bench_check: could not parse total_wall_ns; skipping comparison" >&2
    exit 0
fi

# Fault-run timing: one smoke-plan run, recorded for the trend log. The
# fault layer must stay cheap — injection is coordinate-addressed RNG
# draws, so a smoke run should cost within a few percent of a clean run.
echo "==> timing repro --quick --faults smoke (one run)"
fault_json="$(mktemp /tmp/BENCH_faults.XXXXXX.json)"
trap 'rm -f "$fresh" "$fault_json"' EXIT
set +e
./target/release/repro --quick --quiet --faults smoke --bench-json "$fault_json"
fault_status=$?
set -e
fault_total="$(sed -n 's/.*"total_wall_ns": \([0-9]*\).*/\1/p' "$fault_json")"
if [[ ("$fault_status" -eq 0 || "$fault_status" -eq 3) && -n "$fault_total" ]]; then
    awk -v clean="$best" -v fault="$fault_total" 'BEGIN {
        printf "fault-run total: %10.1f ms  (%.2fx the clean run)\n",
            fault / 1e6, fault / clean
    }'
else
    echo "bench_check: fault run exited $fault_status; no timing recorded" >&2
fi

awk -v base="$baseline_total" -v now="$best" -v min="$MIN_SPEEDUP" 'BEGIN {
    speedup = base / now
    printf "baseline total : %10.1f ms  (%s ns)\n", base / 1e6, base
    printf "current  total : %10.1f ms  (%s ns)\n", now / 1e6, now
    printf "speedup        : %10.2fx  (alarm below %.2fx)\n", speedup, min
    if (speedup < min) {
        printf "WARNING: speedup %.2fx is below the %.2fx floor — the hot-path\n", speedup, min
        printf "WARNING: optimizations may have regressed (or this machine is\n"
        printf "WARNING: slow right now; see docs/PERFORMANCE.md on timing noise).\n"
    } else {
        printf "bench_check OK\n"
    }
}'
