#!/usr/bin/env bash
# Perf-regression check for the ARO-PUF reproduction, powered by
# `repro report diff`.
#
# Re-runs the full quick-scale reproduction with --bench-json (three
# times, keeping the fastest run) and diffs it per-experiment against the
# committed pre-optimization capture (BENCH_baseline.json) with
# `repro report diff --threshold`. The diff prints a machine-readable
# delta table and exits 5 on any per-experiment wall-time regression past
# the threshold.
#
# In CI this stays a trend monitor, not a gate: wall-clock on shared or
# throttled machines drifts by double-digit percentages between runs (see
# docs/PERFORMANCE.md), so a regression verdict prints a loud WARNING but
# the script still exits 0. To use it as a hard gate (e.g. on a quiet
# machine), set BENCH_HARD_FAIL=1. Tune the per-experiment threshold with
# BENCH_DIFF_THRESHOLD (a fraction; default 0.5 = +50 %).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="BENCH_baseline.json"
THRESHOLD="${BENCH_DIFF_THRESHOLD:-0.5}"
HARD_FAIL="${BENCH_HARD_FAIL:-0}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: no $BASELINE at the workspace root; nothing to compare" >&2
    exit 0
fi

echo "==> building repro (release)"
CARGO_NET_OFFLINE=true cargo build --release -q -p aro-bench

run_json="$(mktemp /tmp/BENCH_run.XXXXXX.json)"
best_json="$(mktemp /tmp/BENCH_best.XXXXXX.json)"
fault_json="$(mktemp /tmp/BENCH_faults.XXXXXX.json)"
health_ledger="/tmp/BENCH_health_$$.jsonl"
trap 'rm -f "$run_json" "$best_json" "$fault_json" "$health_ledger"' EXIT

echo "==> timing repro --quick (three runs, keeping the fastest)"
best=""
for _ in 1 2 3; do
    ./target/release/repro --quick --quiet --bench-json "$run_json"
    total="$(sed -n 's/.*"total_wall_ns": \([0-9]*\).*/\1/p' "$run_json")"
    if [[ -z "$best" || "$total" -lt "$best" ]]; then
        best="$total"
        cp "$run_json" "$best_json"
    fi
done

echo "==> repro report diff $BASELINE <fresh run> --threshold $THRESHOLD"
set +e
./target/release/repro report diff "$BASELINE" "$best_json" --threshold "$THRESHOLD"
diff_status=$?
set -e
if [[ "$diff_status" -eq 5 ]]; then
    echo "WARNING: per-experiment wall time regressed past +$(awk -v t="$THRESHOLD" 'BEGIN { printf "%.0f", t * 100 }') % of the baseline."
    echo "WARNING: this machine may simply be slow right now (see docs/PERFORMANCE.md"
    echo "WARNING: on timing noise); investigate before trusting or dismissing it."
    if [[ "$HARD_FAIL" == "1" ]]; then
        exit 5
    fi
elif [[ "$diff_status" -ne 0 ]]; then
    echo "bench_check: repro report diff exited $diff_status" >&2
    exit 1
fi

# Fault-run timing: one smoke-plan run, recorded for the trend log. The
# fault layer must stay cheap — injection is coordinate-addressed RNG
# draws, so a smoke run should cost within a few percent of a clean run.
echo "==> timing repro --quick --faults smoke (one run)"
set +e
./target/release/repro --quick --quiet --faults smoke --bench-json "$fault_json"
fault_status=$?
set -e
fault_total="$(sed -n 's/.*"total_wall_ns": \([0-9]*\).*/\1/p' "$fault_json")"
if [[ ("$fault_status" -eq 0 || "$fault_status" -eq 3) && -n "$fault_total" ]]; then
    awk -v clean="$best" -v fault="$fault_total" 'BEGIN {
        printf "fault-run total: %10.1f ms  (%.2fx the clean run)\n",
            fault / 1e6, fault / clean
    }'
else
    echo "bench_check: fault run exited $fault_status; no timing recorded" >&2
fi

# Serve-bench timing: the fleet-authentication benchmark under a half
# storm, recorded for the trend log (exit 3 = the service honestly ended
# degraded, still a valid timing). Latency numbers inside the report are
# simulated µs; this records the real wall time of producing them.
echo "==> timing repro --quick --faults storm@0.5 serve-bench (one run)"
serve_json="$(mktemp /tmp/BENCH_serve.XXXXXX.json)"
trap 'rm -f "$run_json" "$best_json" "$fault_json" "$serve_json" "$health_ledger"' EXIT
set +e
./target/release/repro --quick --quiet --faults storm@0.5 serve-bench \
    --bench-json "$serve_json"
serve_status=$?
set -e
serve_total="$(sed -n 's/.*"total_wall_ns": \([0-9]*\).*/\1/p' "$serve_json")"
if [[ ("$serve_status" -eq 0 || "$serve_status" -eq 3) && -n "$serve_total" ]]; then
    awk -v serve="$serve_total" 'BEGIN {
        printf "serve-bench total: %10.1f ms  (exit %s)\n", serve / 1e6, "'"$serve_status"'"
    }'
else
    echo "bench_check: serve-bench exited $serve_status; no timing recorded" >&2
fi

# Serve-bench advisory: compare a fresh *fault-free* serve-bench's serve
# section (auths/sec throughput and exact p99 simulated latency per sweep
# point) against the newest committed BENCH_pr*.json that carries one
# (the section first appears in BENCH_pr9.json; older captures predate
# it). The committed captures are fault-free, so the storm run above
# cannot be the comparison point — its timeouts and quarantines would
# trip the gate every time. Simulated latencies are deterministic, so a
# p99 move is a real behavioural change — but auths/sec divides by wall
# time, so like everything here this warns and never fails. Tune with
# SERVE_BENCH_THRESHOLD (default 0.3).
SERVE_THRESHOLD="${SERVE_BENCH_THRESHOLD:-0.3}"
SCRUB_THRESHOLD="${SCRUB_OVERHEAD_THRESHOLD:-0.4}"
serve_baseline=""
for candidate in $(ls -1 BENCH_pr*.json 2>/dev/null | sort -rV); do
    if grep -q '"serve"' "$candidate"; then
        serve_baseline="$candidate"
        break
    fi
done
if [[ -n "$serve_baseline" ]]; then
    echo "==> serve advisory: fresh fault-free serve-bench vs $serve_baseline (threshold ${SERVE_THRESHOLD})"
    serve_clean_json="$(mktemp /tmp/BENCH_serve_clean.XXXXXX.json)"
    trap 'rm -f "$run_json" "$best_json" "$fault_json" "$serve_json" "$serve_clean_json" "$health_ledger"' EXIT
    set +e
    ./target/release/repro --quick --quiet serve-bench --bench-json "$serve_clean_json"
    serve_clean_status=$?
    set -e
    if [[ "$serve_clean_status" -ne 0 && "$serve_clean_status" -ne 3 ]]; then
        echo "bench_check: fault-free serve-bench exited $serve_clean_status; skipping serve advisory" >&2
    else
    python3 - "$serve_baseline" "$serve_clean_json" "$SERVE_THRESHOLD" "$SCRUB_THRESHOLD" <<'PY'
import json, sys

old_doc = json.load(open(sys.argv[1]))
new_doc = json.load(open(sys.argv[2]))
old = old_doc.get("serve", {})
new = new_doc.get("serve", {})
threshold = float(sys.argv[3])
scrub_threshold = float(sys.argv[4])
warned = False
for name in sorted(old):
    if name not in new:
        continue
    o, n = old[name], new[name]
    if name.endswith(".auths_per_sec") and n < o * (1 - threshold):
        print(f"WARNING: {name} dropped {o:.0f} -> {n:.0f} auths/sec "
              f"(past -{threshold:.0%})")
        warned = True
    elif name.endswith(".p99_us") and n > o * (1 + threshold):
        print(f"WARNING: {name} crept {o:.0f} -> {n:.0f} us simulated "
              f"(past +{threshold:.0%}) — deterministic, so a real change")
        warned = True
    elif name.endswith((".scrub_repairs", ".replica_fallbacks")) and n != o:
        print(f"WARNING: {name} moved {o:.0f} -> {n:.0f} on a fault-free run "
              f"— deterministic, so a real behavioural change")
        warned = True
# Scrub-overhead advisory: the anti-entropy pass rides inside every
# serve-bench maintenance round, so its wall cost shows up in the
# whole run's total. Warn when the fresh fault-free serve-bench run
# is slower than the committed capture past the scrub threshold
# (advisory: shared machines drift, see docs/PERFORMANCE.md).
o_wall = old_doc.get("total_wall_ns")
n_wall = new_doc.get("total_wall_ns")
if o_wall and n_wall:
    ratio = n_wall / o_wall
    if ratio > 1 + scrub_threshold:
        print(f"WARNING: serve-bench wall {o_wall/1e6:.1f} -> {n_wall/1e6:.1f} ms "
              f"({ratio:.2f}x, past +{scrub_threshold:.0%}) — check the "
              f"replication/scrub overhead before trusting or dismissing it")
        warned = True
    else:
        print(f"scrub overhead advisory: serve-bench wall {ratio:.2f}x the "
              f"committed capture (threshold +{scrub_threshold:.0%})")
if not warned:
    print(f"serve advisory: throughput and p99 within {threshold:.0%} of baseline")
PY
    fi
else
    echo "bench_check: no committed BENCH_pr*.json with a serve section; skipping serve advisory"
fi

# Health-regression advisory: diff a fresh quick-scale ledger against the
# committed baseline ledger. The quick run is deterministic, so any
# decode-margin p1 collapse or BER p99 creep flagged here is a real
# behavioural change, not timing noise — but it stays a WARNING (the wall
# threshold of 10 = +1000 % keeps cross-machine timing out of the exit
# code, and health degradations never drive it; see `repro report --help`).
HEALTH_BASELINE="LEDGER_baseline.jsonl"
if [[ -f "$HEALTH_BASELINE" ]]; then
    echo "==> health advisory: fresh quick ledger vs $HEALTH_BASELINE"
    ./target/release/repro --quick --quiet --ledger "$health_ledger"
    set +e
    health_err="$(./target/release/repro report diff "$HEALTH_BASELINE" "$health_ledger" \
        --threshold 10 2>&1 >/dev/null)"
    set -e
    if grep -q "health DEGRADED" <<<"$health_err"; then
        echo "WARNING: fleet-health summaries degraded vs the committed baseline:"
        grep "health DEGRADED" <<<"$health_err"
        echo "WARNING: the quick run is deterministic — this is a behavioural"
        echo "WARNING: change, not noise. If intentional, regenerate the baseline:"
        echo "WARNING:   ./target/release/repro --quick --quiet --ledger $HEALTH_BASELINE"
    else
        echo "health advisory: no degradations vs $HEALTH_BASELINE"
    fi
else
    echo "bench_check: no $HEALTH_BASELINE at the workspace root; skipping health advisory"
fi

# The committed perf trajectory: every BENCH_*.json at the workspace root,
# oldest (baseline) first.
echo "==> repro report trajectory ."
./target/release/repro report trajectory .

echo "bench_check done"
