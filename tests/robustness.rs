//! Robustness-layer integration tests: the determinism contract of the
//! fault injector, panic isolation in the experiment harness, and the
//! zero-intensity anchor against the committed golden fixture.
//!
//! See `docs/ROBUSTNESS.md` for the contract these tests enforce.

use std::fmt::Write;
use std::sync::Arc;

use aro_puf_repro::circuit::ring::RoStyle;
use aro_puf_repro::faults::{FaultInjector, FaultPlan};
use aro_puf_repro::puf::MissionProfile;
use aro_puf_repro::sim::experiments::{run_by_id, ALL_IDS};
use aro_puf_repro::sim::harness::{run_experiments, HarnessOptions};
use aro_puf_repro::sim::parallel::set_thread_override;
use aro_puf_repro::sim::runner::{build_population, measure_flip_timeline, FlipTimeline};
use aro_puf_repro::sim::{faultctx, popcache, SimConfig};
use proptest::prelude::*;

const FIXTURE: &str = include_str!("fixtures/golden_quick.md");
const YEAR: f64 = aro_puf_repro::device::units::YEAR;

/// One faulted flip-timeline measurement at a forced worker-thread count.
fn timeline_at(plan: FaultPlan, seed: u64, style: RoStyle, threads: usize) -> FlipTimeline {
    let mut cfg = SimConfig::quick();
    cfg.n_chips = 4;
    cfg.n_ros = 16;
    cfg.seed = seed;
    set_thread_override(threads);
    let injector = Some(Arc::new(FaultInjector::new(plan, cfg.seed)));
    let timeline = faultctx::scoped(injector, || {
        let mut population = build_population(&cfg, style);
        let profile = MissionProfile::typical(population.design().tech());
        measure_flip_timeline(&mut population, &profile, &[YEAR, 5.0 * YEAR, 10.0 * YEAR])
    });
    set_thread_override(0);
    timeline
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// The tentpole determinism contract: any fault plan — any preset, any
    /// intensity, any seed — produces a byte-identical fault schedule at
    /// any `--threads N`. Faults are addressed by (chip, event)
    /// coordinates, never by worker identity or execution order.
    #[test]
    fn any_fault_plan_is_byte_identical_across_thread_counts(
        preset in prop::sample::select(vec!["off", "smoke", "storm"]),
        intensity in 0.0f64..1.5,
        seed in 0u64..1_000,
        conventional in any::<bool>(),
    ) {
        let plan = FaultPlan::parse(preset).unwrap().scaled(intensity);
        let style = if conventional { RoStyle::Conventional } else { RoStyle::AgingResistant };
        let t1 = timeline_at(plan, seed, style, 1);
        let t2 = timeline_at(plan, seed, style, 2);
        let t8 = timeline_at(plan, seed, style, 8);
        prop_assert_eq!(&t1, &t2, "1 vs 2 threads");
        prop_assert_eq!(&t1, &t8, "1 vs 8 threads");
    }
}

/// Renders a report exactly as `repro` prints it (one trailing newline
/// per `emit`), for substring checks against the fixture. Generic over
/// `Display` so it accepts both live `Report`s and the harness's
/// fresh-or-replayed `ExperimentOutput`.
fn rendered(report: &impl std::fmt::Display) -> String {
    let mut out = String::new();
    writeln!(out, "{report}").expect("writing to a String cannot fail");
    out
}

#[test]
fn a_zero_intensity_plan_reproduces_the_golden_fixture_exactly() {
    // `smoke@0` parses to a plan with non-trivial magnitudes but all-zero
    // rates; the injector must be indistinguishable from no fault layer.
    let plan = FaultPlan::parse("smoke@0").unwrap();
    assert!(plan.is_off());
    let cfg = SimConfig::quick();
    let injector = Some(Arc::new(FaultInjector::new(plan, cfg.seed)));
    let mut out = String::new();
    writeln!(
        out,
        "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
        cfg.n_chips, cfg.n_ros, cfg.seed
    )
    .expect("writing to a String cannot fail");
    faultctx::scoped(injector, || {
        popcache::scoped(|| {
            for id in ALL_IDS {
                let report = run_by_id(id, &cfg).expect("every ALL_IDS entry runs");
                out.push_str(&rendered(&report));
            }
        });
    });
    assert_eq!(
        out, FIXTURE,
        "a zero-intensity fault run must be byte-identical to the fault-free fixture"
    );
}

#[test]
fn a_panicking_experiment_leaves_the_other_experiments_and_the_cache_intact() {
    // Expected panics would spam the test log; silence the hook.
    let _ = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let cfg = SimConfig::quick();
    let opts = HarnessOptions {
        forced_panics: vec!["exp1".to_string()],
        ..HarnessOptions::default()
    };
    let all: Vec<&str> = ALL_IDS.to_vec();
    let outcome = run_experiments(&cfg, &all, &opts);
    let _ = std::panic::take_hook();

    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].id, "exp1");
    assert!(outcome.failures[0].error.contains("forced panic"));
    assert_eq!(outcome.successes.len(), ALL_IDS.len() - 1);
    assert!(outcome.is_degraded());

    // Every surviving report is byte-identical to its section of the
    // golden fixture: the caught panic (and the popcache reset behind it)
    // leaked nothing into the other experiments.
    for success in &outcome.successes {
        assert!(
            FIXTURE.contains(&rendered(&success.report)),
            "{} diverged from the golden fixture after exp1 panicked",
            success.id
        );
    }

    // And the popcache is still usable afterwards: the victim runs clean.
    let report = popcache::scoped(|| run_by_id("exp1", &cfg)).expect("exp1 exists");
    assert!(FIXTURE.contains(&rendered(&report)));
}
