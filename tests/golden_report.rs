//! Golden-output regression test: the full quick-config reproduction run
//! must stay byte-identical to the committed fixture.
//!
//! This is the contract every performance change in this repo is held to:
//! kernels, caches and parallel fan-out may reorder *work*, never *bits*.
//! The fixture `tests/fixtures/golden_quick.md` is the exact stdout of
//! `repro --quick`; regenerate it (and justify the diff in the PR) with
//!
//! ```text
//! cargo run --release -p aro-bench --bin repro -- --quick \
//!     > tests/fixtures/golden_quick.md
//! ```

use aro_puf_repro::sim::experiments::{run_by_id, ALL_IDS};
use aro_puf_repro::sim::{popcache, SimConfig};
use std::fmt::Write;

const FIXTURE: &str = include_str!("fixtures/golden_quick.md");

/// Renders the quick run exactly as the `repro` binary prints it: the
/// header line, then every report's `Display` output, each followed by a
/// newline (one `writeln!` per `emit` call in `repro`).
fn render_quick_run() -> String {
    let cfg = SimConfig::quick();
    let mut out = String::new();
    writeln!(
        out,
        "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
        cfg.n_chips, cfg.n_ros, cfg.seed
    )
    .expect("writing to a String cannot fail");
    popcache::scoped(|| {
        for id in ALL_IDS {
            let report = run_by_id(id, &cfg).expect("every ALL_IDS entry runs");
            writeln!(out, "{report}").expect("writing to a String cannot fail");
        }
    });
    out
}

#[test]
fn quick_run_is_byte_identical_to_the_committed_fixture() {
    let rendered = render_quick_run();
    if rendered != FIXTURE {
        // Byte-level assert_eq on 17 kB of markdown is unreadable; point
        // at the first diverging line instead.
        for (i, (got, want)) in rendered.lines().zip(FIXTURE.lines()).enumerate() {
            assert_eq!(got, want, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            rendered.len(),
            FIXTURE.len(),
            "outputs agree line-by-line but differ in length (trailing content)"
        );
        unreachable!("outputs differ but no line-level divergence was found");
    }
}

#[test]
fn golden_rendering_is_deterministic_across_repeated_runs() {
    // The popcache scope is per-run; two runs must not leak state into
    // each other's bytes.
    assert_eq!(render_quick_run(), render_quick_run());
}
