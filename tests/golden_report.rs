//! Golden-output regression test: the full quick-config reproduction run
//! must stay byte-identical to the committed fixture.
//!
//! This is the contract every performance change in this repo is held to:
//! kernels, caches and parallel fan-out may reorder *work*, never *bits*.
//! The fixture `tests/fixtures/golden_quick.md` is the exact stdout of
//! `repro --quick`; regenerate it (and justify the diff in the PR) with
//!
//! ```text
//! cargo run --release -p aro-bench --bin repro -- --quick \
//!     > tests/fixtures/golden_quick.md
//! ```

use aro_puf_repro::ledger::Ledger;
use aro_puf_repro::sim::experiments::{run_by_id, ALL_IDS};
use aro_puf_repro::sim::harness::{run_experiments_ledgered, HarnessOptions};
use aro_puf_repro::sim::{popcache, SimConfig};
use std::fmt::Write;

const FIXTURE: &str = include_str!("fixtures/golden_quick.md");

/// Renders the quick run exactly as the `repro` binary prints it: the
/// header line, then every report's `Display` output, each followed by a
/// newline (one `writeln!` per `emit` call in `repro`).
fn render_quick_run() -> String {
    let cfg = SimConfig::quick();
    let mut out = String::new();
    writeln!(
        out,
        "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
        cfg.n_chips, cfg.n_ros, cfg.seed
    )
    .expect("writing to a String cannot fail");
    popcache::scoped(|| {
        for id in ALL_IDS {
            let report = run_by_id(id, &cfg).expect("every ALL_IDS entry runs");
            writeln!(out, "{report}").expect("writing to a String cannot fail");
        }
    });
    out
}

#[test]
fn quick_run_is_byte_identical_to_the_committed_fixture() {
    let rendered = render_quick_run();
    if rendered != FIXTURE {
        // Byte-level assert_eq on 17 kB of markdown is unreadable; point
        // at the first diverging line instead.
        for (i, (got, want)) in rendered.lines().zip(FIXTURE.lines()).enumerate() {
            assert_eq!(got, want, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            rendered.len(),
            FIXTURE.len(),
            "outputs agree line-by-line but differ in length (trailing content)"
        );
        unreachable!("outputs differ but no line-level divergence was found");
    }
}

#[test]
fn golden_rendering_is_deterministic_across_repeated_runs() {
    // The popcache scope is per-run; two runs must not leak state into
    // each other's bytes.
    assert_eq!(render_quick_run(), render_quick_run());
}

/// Renders a hardened (harness) run exactly as `repro` prints it, with an
/// optional ledger attached.
fn render_harness_run(ids: &[&str], ledger: Option<&mut Ledger>) -> String {
    let cfg = SimConfig::quick();
    let mut out = String::new();
    writeln!(
        out,
        "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
        cfg.n_chips, cfg.n_ros, cfg.seed
    )
    .expect("writing to a String cannot fail");
    let outcome = run_experiments_ledgered(&cfg, ids, &HarnessOptions::default(), ledger);
    assert!(outcome.failures.is_empty(), "quick run never fails");
    assert!(outcome.ledger_errors.is_empty(), "ledger appends succeed");
    for success in &outcome.successes {
        writeln!(out, "{}", success.report).expect("writing to a String cannot fail");
    }
    out
}

/// The tentpole guarantee of the run ledger: a run killed after k
/// experiments and then resumed produces byte-identical stdout to an
/// uninterrupted run — replayed reports are the *exact* bytes the first
/// process rendered, fresh ones recompute deterministically.
#[test]
fn interrupted_then_resumed_run_matches_the_fixture_byte_for_byte() {
    let path = std::env::temp_dir().join(format!(
        "aro-golden-resume-{}.ledger",
        std::process::id()
    ));
    // First process: completes only the first 5 experiments, then dies.
    // Dropping the ledger is an honest kill simulation — every append
    // was already flushed when the experiment finished.
    {
        let mut ledger = Ledger::create(&path).expect("create ledger");
        let _ = render_harness_run(&ALL_IDS[..5], Some(&mut ledger));
    }
    // Second process: asked for everything, resumes from the journal.
    let mut resumed_ledger = Ledger::open(&path).expect("reopen ledger");
    assert_eq!(resumed_ledger.records().len(), 5);
    let resumed = render_harness_run(&ALL_IDS, Some(&mut resumed_ledger));
    // 5 replayed + the rest fresh = one record per experiment: had
    // replay silently failed, the re-runs would have appended ALL_IDS
    // more records on top (total ALL_IDS + 5).
    assert_eq!(resumed_ledger.records().len(), ALL_IDS.len());
    drop(resumed_ledger);
    std::fs::remove_file(&path).expect("cleanup");
    assert_eq!(
        resumed, FIXTURE,
        "resumed run must be byte-identical to the uninterrupted fixture"
    );
}
