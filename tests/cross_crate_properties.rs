//! Property-based integration tests: invariants that only hold when the
//! crates compose correctly.

use aro_puf_repro::circuit::ring::RoStyle;
use aro_puf_repro::device::environment::Environment;
use aro_puf_repro::ecc::bch::BchCode;
use aro_puf_repro::ecc::fuzzy::FuzzyExtractor;
use aro_puf_repro::metrics::quality;
use aro_puf_repro::puf::{Chip, PairingStrategy, PufDesign};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any chip's golden response, fed through the fuzzy extractor, can be
    /// re-derived from a noiseless re-reading — regardless of seed or
    /// style.
    #[test]
    fn fuzzy_extractor_accepts_real_puf_responses(seed in any::<u64>(),
                                                  aro in any::<bool>()) {
        let style = if aro { RoStyle::AgingResistant } else { RoStyle::Conventional };
        let code = BchCode::new(5, 3);
        let fe = FuzzyExtractor::new(code, 1);
        let n_ros = 2 * fe.response_bits().next_multiple_of(2);
        let design = PufDesign::builder(style).n_ros(n_ros).seed(seed).build();
        let chip = Chip::fabricate(&design, 0);
        let env = Environment::nominal(design.tech());
        let pairs = PairingStrategy::Neighbor.pairs(n_ros);
        let w = chip.golden_response(&design, &env, &pairs).slice(0, fe.response_bits());

        let mut rng = design.seed_domain().child("prop").rng(0);
        let (key, helper) = fe.generate(&w, &mut rng);
        prop_assert_eq!(fe.reproduce(&w, &helper), Some(key));
    }

    /// Golden responses of distinct chips of one design are distinct and
    /// their HD sits in a sane band (no systematic collapse anywhere in
    /// the seed space).
    #[test]
    fn uniqueness_holds_across_the_seed_space(seed in any::<u64>()) {
        let design = PufDesign::builder(RoStyle::AgingResistant).n_ros(64).seed(seed).build();
        let env = Environment::nominal(design.tech());
        let pairs = PairingStrategy::Neighbor.pairs(64);
        let a = Chip::fabricate(&design, 0).golden_response(&design, &env, &pairs);
        let b = Chip::fabricate(&design, 1).golden_response(&design, &env, &pairs);
        let hd = quality::fractional_hd(&a, &b);
        prop_assert!(hd > 0.15 && hd < 0.85, "inter-chip HD {hd} collapsed at seed {seed}");
    }

    /// The response bit of a pair equals the sign of the true frequency
    /// difference when read noiselessly — the circuit, chip, and metrics
    /// layers agree on bit semantics.
    #[test]
    fn bit_semantics_agree_across_layers(seed in any::<u64>()) {
        let design = PufDesign::builder(RoStyle::Conventional).n_ros(16).seed(seed).build();
        let env = Environment::nominal(design.tech());
        let chip = Chip::fabricate(&design, 0);
        let freqs = chip.frequencies(&design, &env);
        let pairs = PairingStrategy::Neighbor.pairs(16);
        let response = chip.golden_response(&design, &env, &pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            prop_assert_eq!(response.get(i), freqs[a] > freqs[b]);
        }
    }
}
