//! Integration tests for the run ledger and `--resume` semantics beyond
//! the byte-identity proof in `golden_report.rs`: fingerprint mismatches
//! must force re-runs, crash debris must be tolerated, and failure
//! records must reconstruct a degraded run post-mortem.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use aro_puf_repro::ledger::journal::parse_records;
use aro_puf_repro::ledger::{Ledger, RecordStatus};
use aro_puf_repro::sim::harness::{run_experiments_ledgered, HarnessOptions};
use aro_puf_repro::sim::SimConfig;

fn temp_ledger(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "aro-resume-test-{}-{tag}-{n}.ledger",
        std::process::id()
    ))
}

#[test]
fn replayed_and_fresh_runs_render_identical_bytes() {
    let path = temp_ledger("replay");
    let cfg = SimConfig::quick();
    let opts = HarnessOptions::default();
    let fresh = {
        let mut ledger = Ledger::create(&path).unwrap();
        run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut ledger))
    };
    let mut reopened = Ledger::open(&path).unwrap();
    let replayed = run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut reopened));
    drop(reopened);
    std::fs::remove_file(&path).unwrap();

    assert!(!fresh.successes[0].report.is_replayed());
    assert!(replayed.successes[0].report.is_replayed());
    assert_eq!(
        fresh.successes[0].report.to_string(),
        replayed.successes[0].report.to_string(),
        "replayed bytes must equal the original render"
    );
    assert_eq!(
        fresh.successes[0].report.csv_tables(),
        replayed.successes[0].report.csv_tables(),
        "replayed CSV dumps must equal the original tables"
    );
    // The replayed run's wall time is the original's, straight from the
    // record (replay itself costs microseconds).
    assert_eq!(fresh.successes[0].wall, replayed.successes[0].wall);
}

#[test]
fn a_different_seed_changes_the_fingerprint_and_forces_a_rerun() {
    let path = temp_ledger("mismatch");
    let opts = HarnessOptions::default();
    let cfg = SimConfig::quick();
    {
        let mut ledger = Ledger::create(&path).unwrap();
        let _ = run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut ledger));
    }
    let reseeded = cfg.clone().with_seed(cfg.seed + 1);
    let mut reopened = Ledger::open(&path).unwrap();
    let outcome = run_experiments_ledgered(&reseeded, &["exp1"], &opts, Some(&mut reopened));
    assert!(
        !outcome.successes[0].report.is_replayed(),
        "a seed change must invalidate the cached record"
    );
    assert_eq!(
        reopened.records().len(),
        2,
        "the re-run appends its own record alongside the stale one"
    );
    assert_ne!(
        reopened.records()[0].fingerprint,
        reopened.records()[1].fingerprint
    );
    drop(reopened);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn an_erasure_only_plan_fingerprints_apart_from_off_and_forces_a_rerun() {
    use std::sync::Arc;

    use aro_puf_repro::faults::{FaultInjector, FaultPlan};
    use aro_puf_repro::sim::faultctx;

    let path = temp_ledger("erasure");
    let cfg = SimConfig::quick();
    let opts = HarnessOptions::default();
    let plan_at = |rate: f64| FaultPlan {
        helper_erasure_rate: rate,
        ..FaultPlan::off()
    };

    // Seed the ledger with a fault-free record, then run the same
    // experiment under a helper-erasure-only plan: NVM erosion alone is a
    // live fault model, so the cached record must NOT be replayed.
    {
        let mut ledger = Ledger::create(&path).unwrap();
        let _ = run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut ledger));
    }
    let eroded = {
        let inj = Arc::new(FaultInjector::new(plan_at(0.002), cfg.seed));
        let mut reopened = Ledger::open(&path).unwrap();
        let outcome = faultctx::scoped(Some(inj), || {
            run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut reopened))
        });
        assert!(
            !outcome.successes[0].report.is_replayed(),
            "helper erosion alone must invalidate the fault-free record"
        );
        let records = reopened.records().to_vec();
        drop(reopened);
        records
    };
    assert_eq!(eroded.len(), 2);
    assert_ne!(eroded[0].fingerprint, eroded[1].fingerprint);

    // Same plan again: replay. Different erasure rate: re-run.
    {
        let inj = Arc::new(FaultInjector::new(plan_at(0.002), cfg.seed));
        let mut reopened = Ledger::open(&path).unwrap();
        let outcome = faultctx::scoped(Some(inj), || {
            run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut reopened))
        });
        assert!(outcome.successes[0].report.is_replayed());
        drop(reopened);
    }
    {
        let inj = Arc::new(FaultInjector::new(plan_at(0.004), cfg.seed));
        let mut reopened = Ledger::open(&path).unwrap();
        let outcome = faultctx::scoped(Some(inj), || {
            run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut reopened))
        });
        assert!(
            !outcome.successes[0].report.is_replayed(),
            "an erasure-rate change must force a re-run, not a replay"
        );
        drop(reopened);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn a_crash_truncated_trailing_line_does_not_poison_resume() {
    let path = temp_ledger("truncated");
    let cfg = SimConfig::quick();
    let opts = HarnessOptions::default();
    {
        let mut ledger = Ledger::create(&path).unwrap();
        let _ = run_experiments_ledgered(&cfg, &["exp1"], &opts, Some(&mut ledger));
    }
    // Simulate a kill mid-append: an unterminated half-record.
    {
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(br#"{"event":"experiment","fingerprint":"dead"#)
            .unwrap();
    }
    let mut reopened = Ledger::open(&path).unwrap();
    assert_eq!(reopened.skipped_lines(), 1, "debris is counted, not fatal");
    let outcome =
        run_experiments_ledgered(&cfg, &["exp1", "exp3"], &opts, Some(&mut reopened));
    assert!(outcome.successes[0].report.is_replayed(), "exp1 survives");
    assert!(!outcome.successes[1].report.is_replayed(), "exp3 is fresh");
    drop(reopened);
    // The sealed journal parses cleanly end to end: 2 records, 1 skip.
    let (records, skipped) = parse_records(&std::fs::read_to_string(&path).unwrap());
    assert_eq!(records.len(), 2);
    assert_eq!(skipped, 1);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn failure_records_reconstruct_a_degraded_run() {
    // Expected panics would spam the test log; silence the hook.
    let _ = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let path = temp_ledger("failure");
    let cfg = SimConfig::quick();
    let opts = HarnessOptions {
        max_retries: 2,
        forced_panics: vec!["exp3".to_string()],
        ..HarnessOptions::default()
    };
    let outcome = {
        let mut ledger = Ledger::create(&path).unwrap();
        run_experiments_ledgered(&cfg, &["exp1", "exp3"], &opts, Some(&mut ledger))
    };
    let _ = std::panic::take_hook();
    assert!(outcome.is_degraded());

    let reopened = Ledger::open(&path).unwrap();
    let records = reopened.records();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].status, RecordStatus::Success);
    assert_eq!(records[0].attempts, 1);
    let failure = &records[1];
    assert_eq!(failure.id, "exp3");
    assert_eq!(failure.status, RecordStatus::Failure);
    assert_eq!(failure.attempts, 3, "1 try + 2 retries, journalled");
    assert!(failure.error.as_deref().unwrap().contains("forced panic"));
    // Failures are never replay candidates: a resumed run re-attempts.
    assert!(reopened.cached_success(failure.fingerprint).is_none());
    drop(reopened);
    std::fs::remove_file(&path).unwrap();
}
