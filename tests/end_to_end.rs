//! Integration tests spanning every crate: device physics → circuit →
//! PUF architecture → metrics → ECC/key generation.

use aro_puf_repro::circuit::ring::RoStyle;
use aro_puf_repro::device::environment::Environment;
use aro_puf_repro::device::units::YEAR;
use aro_puf_repro::ecc::keygen::KeyGenerator;
use aro_puf_repro::metrics::quality;
use aro_puf_repro::puf::{
    Chip, Enrollment, MissionProfile, PairingStrategy, Population, PufDesign,
};
use aro_puf_repro::sim::runner::puf_area_params;

#[test]
fn the_full_product_flow_works_on_simulated_silicon() {
    // Provision a 64-bit key for a 10 % worst-case BER.
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let generator = KeyGenerator::for_bit_error_rate(0.10, 64, 1e-6, &params).expect("feasible");

    // Fabricate a chip big enough for the code.
    let n_ros = 2 * generator.response_bits();
    let design = PufDesign::builder(RoStyle::AgingResistant)
        .n_ros(n_ros)
        .seed(31337)
        .build();
    let mut chip = Chip::fabricate(&design, 0);
    let env = Environment::nominal(design.tech());
    let pairs = PairingStrategy::Neighbor.pairs(n_ros);

    // Enroll, deploy ten years, reconstruct.
    let mut rng = design.seed_domain().child("test").rng(0);
    let enrollment_response = chip.golden_response(&design, &env, &pairs);
    let (key, helper) = generator.enroll(&enrollment_response, &mut rng);
    assert_eq!(key.len(), 64);

    MissionProfile::typical(design.tech()).age_chip(&mut chip, &design, 10.0 * YEAR);
    let noisy = chip.response(&design, &env, &pairs);
    assert!(
        quality::fractional_hd(&enrollment_response, &noisy) > 0.0,
        "ten years must drift some bits"
    );
    assert_eq!(generator.reconstruct(&noisy, &helper), Some(key));
}

#[test]
fn aro_outperforms_conventional_on_every_headline_axis() {
    let run = |style: RoStyle| {
        let design = PufDesign::builder(style).n_ros(64).seed(555).build();
        let mut population = Population::fabricate(&design, 12);
        let env = Environment::nominal(design.tech());
        let strategy = PairingStrategy::Neighbor;
        let responses = population.golden_responses(&env, &strategy);
        let inter_hd = quality::inter_chip_hd(&responses).mean();
        let enrollments = population.enroll_all(&env, &strategy);
        population.age_all(&MissionProfile::typical(design.tech()), 10.0 * YEAR);
        let design = population.design().clone();
        let flips = enrollments
            .iter()
            .zip(population.chips_mut())
            .map(|(e, chip)| e.flip_rate_now(chip, &design, &env))
            .sum::<f64>()
            / 12.0;
        (flips, inter_hd)
    };
    let (conv_flips, conv_hd) = run(RoStyle::Conventional);
    let (aro_flips, aro_hd) = run(RoStyle::AgingResistant);

    // Claim C1 shape: conventional flips several times more.
    assert!(
        conv_flips > 2.0 * aro_flips,
        "flips: conv {conv_flips} vs aro {aro_flips}"
    );
    // Claim C2 shape: ARO closer to ideal 50 %.
    assert!(
        (aro_hd - 0.5).abs() < (conv_hd - 0.5).abs(),
        "HD: conv {conv_hd} vs aro {aro_hd}"
    );
}

#[test]
fn enrollment_masking_trades_bits_for_reliability_across_crates() {
    let design = PufDesign::builder(RoStyle::Conventional)
        .n_ros(64)
        .seed(777)
        .build();
    let env = Environment::nominal(design.tech());
    let mut chip = Chip::fabricate(&design, 0);
    let full = Enrollment::perform(&mut chip, &design, &env, &PairingStrategy::Neighbor);
    let masked = full.masked(0.01);
    assert!(
        masked.bits() < full.bits(),
        "a 1 % margin threshold must drop some pairs"
    );
    assert!(masked.bits() > 0);

    // Age and compare flip rates: the masked set must be at least as
    // reliable.
    MissionProfile::typical(design.tech()).age_chip(&mut chip, &design, 10.0 * YEAR);
    let full_flips = full.flip_rate_now(&mut chip, &design, &env);
    let masked_flips = masked.flip_rate_now(&mut chip, &design, &env);
    assert!(
        masked_flips <= full_flips + 0.05,
        "masked {masked_flips} vs full {full_flips}"
    );
}

#[test]
fn two_different_designs_produce_unrelated_chips() {
    let design_a = PufDesign::builder(RoStyle::Conventional)
        .n_ros(64)
        .seed(1)
        .build();
    let design_b = PufDesign::builder(RoStyle::Conventional)
        .n_ros(64)
        .seed(2)
        .build();
    let env = Environment::nominal(design_a.tech());
    let pairs = PairingStrategy::Neighbor.pairs(64);
    let a = Chip::fabricate(&design_a, 0).golden_response(&design_a, &env, &pairs);
    let b = Chip::fabricate(&design_b, 0).golden_response(&design_b, &env, &pairs);
    let hd = quality::fractional_hd(&a, &b);
    assert!(
        hd > 0.2 && hd < 0.8,
        "cross-design HD {hd} should look random"
    );
}

#[test]
fn umbrella_re_exports_are_wired() {
    // Compile-time check that every sub-crate is reachable through the
    // umbrella, plus a tiny smoke of each.
    let tech = aro_puf_repro::device::params::TechParams::default();
    assert!(tech.vdd_nominal > 0.0);
    let cell = aro_puf_repro::circuit::netlist::RoCell::conventional(5);
    assert!(cell.transistor_count() > 0);
    let digest = aro_puf_repro::ecc::hash::sha256(b"aro");
    assert_ne!(digest, [0u8; 32]);
    let bits = aro_puf_repro::metrics::bits::BitString::zeros(8);
    assert_eq!(bits.len(), 8);
    let cfg = aro_puf_repro::sim::SimConfig::quick();
    assert!(cfg.n_chips > 0);
}
