//! Aged-state snapshot layer: resume-from-snapshot must be byte-for-bit
//! indistinguishable from aging from scratch — in experiment reports, in
//! ledger fingerprints, and in every health sketch — at any thread
//! count, under any fault plan, and for any snapshot-epoch granularity.
//!
//! See docs/PERFORMANCE.md ("Aged-state snapshots") for the design and
//! the invalidation rules these tests pin down.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use aro_puf_repro::circuit::ring::{RoHealth, RoStyle};
use aro_puf_repro::device::environment::Environment;
use aro_puf_repro::device::units::YEAR;
use aro_puf_repro::faults::{FaultInjector, FaultPlan};
use aro_puf_repro::ledger::record::LedgerRecord;
use aro_puf_repro::puf::{Chip, MissionProfile, PairingStrategy, PufDesign};
use aro_puf_repro::sim::experiments::run_by_id;
use aro_puf_repro::sim::fingerprint::experiment_fingerprint;
use aro_puf_repro::sim::parallel::set_thread_override;
use aro_puf_repro::sim::popcache::{self, age_chip_snapshotted, AgeCursor};
use aro_puf_repro::sim::{faultctx, SimConfig};
use proptest::prelude::*;

/// Obs enablement, the thread override, and the popcache/snapshot
/// thread-local switches are process-global; run these tests one at a
/// time.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores global state even when an assertion fails mid-test.
struct Cleanup;
impl Drop for Cleanup {
    fn drop(&mut self) {
        set_thread_override(0);
        popcache::set_snapshots_enabled(None);
        aro_obs::set_enabled(false);
        aro_obs::reset();
    }
}

/// A registry dump with the snapshot-store instrumentation stripped.
/// `sim.snapshot_hits`/`sim.snapshot_misses` are the *only* lines allowed
/// to differ between snapshot modes — they observe the cache itself, not
/// the simulation.
fn dump_sans_snapshot_counters() -> String {
    aro_obs::take_scratch()
        .dump()
        .lines()
        .filter(|line| !line.contains("sim.snapshot_"))
        .map(|line| format!("{line}\n"))
        .collect()
}

/// A small lifecycle config: EXP-16 at 4 chips over a 32-bit key keeps
/// the sweep representative (hard faults, refresh gates, soft decoding)
/// while staying test-sized.
fn small_cfg() -> SimConfig {
    let mut cfg = SimConfig::quick();
    cfg.n_chips = 4;
    cfg.key_bits = 32;
    cfg
}

/// Runs one experiment with the snapshot layer forced on or off and
/// returns the rendered report plus the registry dump (snapshot counters
/// stripped).
fn experiment_run(
    id: &str,
    cfg: &SimConfig,
    plan: FaultPlan,
    threads: usize,
    snapshots: bool,
) -> (String, String) {
    set_thread_override(threads);
    popcache::set_snapshots_enabled(Some(snapshots));
    aro_obs::reset();
    aro_obs::set_enabled(true);
    let injector = (!plan.is_off()).then(|| Arc::new(FaultInjector::new(plan, cfg.seed)));
    let report = faultctx::scoped(injector, || {
        popcache::scoped(|| run_by_id(id, cfg).expect("experiment exists"))
    });
    aro_obs::set_enabled(false);
    let dump = dump_sans_snapshot_counters();
    set_thread_override(0);
    popcache::set_snapshots_enabled(None);
    (format!("{report}"), dump)
}

/// The tentpole contract on the real lifecycle sweep: EXP-16 through the
/// snapshot store is byte-identical to EXP-16 aging every trial from
/// scratch — report and health sketches both — at 1, 2, and 8 worker
/// threads, under a fault-free plan and under a half-intensity storm.
#[test]
fn exp16_snapshotted_matches_cold_at_every_thread_count_and_plan() {
    let _guard = lock();
    let _cleanup = Cleanup;
    let cfg = small_cfg();

    for plan_text in ["off", "storm@0.5"] {
        let plan = FaultPlan::parse(plan_text).unwrap();
        let mut reference: Option<(String, String)> = None;
        for threads in [1usize, 2, 8] {
            let cold = experiment_run("exp16", &cfg, plan, threads, false);
            let warm = experiment_run("exp16", &cfg, plan, threads, true);
            assert_eq!(
                warm.0, cold.0,
                "report differs between snapshot modes ({plan_text}, {threads} threads)"
            );
            assert_eq!(
                warm.1, cold.1,
                "health sketches differ between snapshot modes ({plan_text}, {threads} threads)"
            );
            // And across thread counts, in both modes.
            let reference = reference.get_or_insert(cold.clone());
            assert_eq!(
                &warm, reference,
                "outputs differ across thread counts ({plan_text}, {threads} threads)"
            );
        }
    }
}

/// EXP-8 and EXP-15 share the snapshot store (and the chip/golden
/// caches) with EXP-16; the same on-vs-off contract holds for them.
#[test]
fn exp8_and_exp15_snapshotted_match_cold() {
    let _guard = lock();
    let _cleanup = Cleanup;
    let cfg = small_cfg();
    let plan = FaultPlan::parse("storm@0.5").unwrap();

    for id in ["exp8", "exp15"] {
        let cold = experiment_run(id, &cfg, plan, 1, false);
        let warm = experiment_run(id, &cfg, plan, 1, true);
        assert_eq!(warm.0, cold.0, "{id} report differs between snapshot modes");
        assert_eq!(warm.1, cold.1, "{id} sketches differ between snapshot modes");
    }
}

/// Ledger identity: the run fingerprint hashes configuration, fault
/// plan, seed, and experiment id — never cache state — so a ledger
/// written by a snapshotted run resumes a cold run and vice versa.
#[test]
fn ledger_fingerprints_are_snapshot_mode_invariant() {
    let _guard = lock();
    let _cleanup = Cleanup;
    let cfg = small_cfg();

    let fingerprint_with = |snapshots: bool| {
        popcache::set_snapshots_enabled(Some(snapshots));
        let fp = experiment_fingerprint(&cfg, 0, "exp16");
        let record = LedgerRecord::success(
            fp,
            "exp16",
            1,
            1,
            String::new(),
            Vec::new(),
            std::collections::BTreeMap::new(),
        );
        popcache::set_snapshots_enabled(None);
        (fp, record.fingerprint)
    };
    assert_eq!(fingerprint_with(true), fingerprint_with(false));
}

/// One recorded walk plus one replayed walk of the same step sequence,
/// with a response read at every epoch — the unit the experiment-level
/// tests above compose.
fn walk(
    design: &PufDesign,
    profile: &MissionProfile,
    env: &Environment,
    pairs: &[(usize, usize)],
    steps: &[f64],
    chip_id: u64,
    faults: &[(usize, RoHealth)],
) -> (Chip, Vec<Vec<(bool, f64)>>) {
    let mut chip = popcache::fabricated_chip(design, chip_id);
    for &(slot, health) in faults {
        chip.set_ro_health(slot, health);
    }
    let mut cursor = AgeCursor::new();
    let mut reads = Vec::new();
    for &duration in steps {
        age_chip_snapshotted(&mut chip, design, profile, duration, &mut cursor);
        reads.push(chip.response_soft(design, env, pairs));
    }
    popcache::harvest_kernel_hints(&chip, design, &cursor);
    (chip, reads)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Any snapshot-epoch granularity — ten years cut into 1..=8 equal
    /// steps — replays byte-identically to cold aging: same silicon,
    /// same soft responses at every epoch, same health sketches.
    #[test]
    fn any_granularity_replays_byte_identically(
        granularity in 1usize..=8,
        seed in 0u64..1_000,
        conventional in any::<bool>(),
    ) {
        let _guard = lock();
        let _cleanup = Cleanup;
        let style = if conventional { RoStyle::Conventional } else { RoStyle::AgingResistant };
        let design = PufDesign::builder(style).n_ros(16).seed(seed).build();
        let profile = MissionProfile::typical(design.tech());
        let env = Environment::nominal(design.tech());
        let pairs = PairingStrategy::Neighbor.pairs(16);
        let steps = vec![10.0 * YEAR / granularity as f64; granularity];

        let run = |snapshots: bool| {
            popcache::set_snapshots_enabled(Some(snapshots));
            aro_obs::reset();
            aro_obs::set_enabled(true);
            let out = popcache::scoped(|| {
                // Record walk (chip 0), replay walk (chip 0 again), and a
                // second chip so prefixes can never alias across silicon.
                let a = walk(&design, &profile, &env, &pairs, &steps, 0, &[]);
                let b = walk(&design, &profile, &env, &pairs, &steps, 0, &[]);
                let c = walk(&design, &profile, &env, &pairs, &steps, 1, &[]);
                (a, b, c)
            });
            aro_obs::set_enabled(false);
            let dump = dump_sans_snapshot_counters();
            popcache::set_snapshots_enabled(None);
            (out, dump)
        };
        let cold = run(false);
        let warm = run(true);
        prop_assert_eq!(&warm.0, &cold.0, "chips/responses differ at granularity {}", granularity);
        prop_assert_eq!(&warm.1, &cold.1, "sketches differ at granularity {}", granularity);
    }

    /// Changing the fault plan between sweeps must never serve stale
    /// aged state: a snapshot recorded from a chip with hard-faulted
    /// rings only covers the rings both trials agree on — everything
    /// else ages live. A heavily-faulted record walk followed by a
    /// fault-free replay walk equals a fault-free cold run exactly.
    #[test]
    fn a_fault_plan_change_invalidates_what_it_must(
        granularity in 1usize..=4,
        seed in 0u64..1_000,
        dead_ring in 0usize..16,
        stuck_ring in 0usize..16,
    ) {
        let _guard = lock();
        let _cleanup = Cleanup;
        let design = PufDesign::builder(RoStyle::AgingResistant).n_ros(16).seed(seed).build();
        let profile = MissionProfile::typical(design.tech());
        let env = Environment::nominal(design.tech());
        let pairs = PairingStrategy::Neighbor.pairs(16);
        let steps = vec![10.0 * YEAR / granularity as f64; granularity];
        let faults = [
            (dead_ring, RoHealth::Dead),
            (stuck_ring, RoHealth::Stuck(9.9e8)),
        ];

        // Cold truth: a fault-free walk with the store disabled.
        popcache::set_snapshots_enabled(Some(false));
        let cold = popcache::scoped(|| walk(&design, &profile, &env, &pairs, &steps, 0, &[]));

        // Snapshotted: record under the faulted "plan", replay fault-free.
        popcache::set_snapshots_enabled(Some(true));
        let replayed = popcache::scoped(|| {
            let _ = walk(&design, &profile, &env, &pairs, &steps, 0, &faults);
            walk(&design, &profile, &env, &pairs, &steps, 0, &[])
        });
        popcache::set_snapshots_enabled(None);
        prop_assert_eq!(&replayed, &cold, "stale faulted wear leaked into a fault-free replay");
    }
}
