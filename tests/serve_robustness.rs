//! Fleet-authentication-service robustness tests: thread-count
//! byte-identity of the `serve-bench` report, deterministic
//! store-corruption recovery, and the quarantine → helper-refresh →
//! re-admission round trip.
//!
//! See `docs/ROBUSTNESS.md` ("Fleet authentication service") for the
//! contract these tests enforce.

use std::sync::Arc;

use aro_puf_repro::circuit::ring::RoStyle;
use aro_puf_repro::ecc::area::PufAreaParams;
use aro_puf_repro::ecc::keygen::KeyGenerator;
use aro_puf_repro::faults::{FaultInjector, FaultPlan};
use aro_puf_repro::puf::{Challenge, Chip, PairingStrategy, PufDesign};
use aro_puf_repro::serve::{
    AuthService, BenchPlan, ReadOutcome, ServicePolicy, StoredRecord, Verdict,
};
use aro_puf_repro::sim::experiments::run_by_id;
use aro_puf_repro::sim::parallel::set_thread_override;
use aro_puf_repro::sim::servefleet::FleetWorkspace;
use aro_puf_repro::sim::{faultctx, popcache, SimConfig};
use proptest::prelude::*;

/// A small configuration that keeps each serve-bench run around a
/// second while still exercising the full enrollment/traffic path.
fn tiny_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick();
    cfg.n_chips = 4;
    cfg.key_bits = 32;
    cfg.seed = seed;
    cfg
}

/// Renders the `serve-bench` report at a forced worker-thread count
/// under `plan`, exactly as `repro --faults PLAN serve-bench` would.
fn serve_bench_at(plan: &str, seed: u64, threads: usize) -> String {
    let cfg = tiny_cfg(seed);
    let plan = FaultPlan::parse(plan).expect("valid plan");
    // `repro` installs no ambient injector when faults are off.
    let injector = (!plan.is_off()).then(|| Arc::new(FaultInjector::new(plan, cfg.seed)));
    set_thread_override(threads);
    let out = faultctx::scoped(injector, || {
        popcache::scoped(|| {
            run_by_id("serve-bench", &cfg)
                .expect("serve-bench is a known id")
                .to_string()
        })
    });
    set_thread_override(0);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3 })]

    /// The tentpole contract: the whole serve-bench report — auths/sec,
    /// p50/p99, FAR/FRR, shed/quarantine tallies, health states — is
    /// byte-identical at any `--threads N`, with faults off and under a
    /// half-intensity storm alike.
    #[test]
    fn serve_bench_report_is_byte_identical_across_thread_counts(
        plan in prop::sample::select(vec!["off", "storm@0.5"]),
        seed in 0u64..100,
    ) {
        let t1 = serve_bench_at(plan, seed, 1);
        let t2 = serve_bench_at(plan, seed, 2);
        let t8 = serve_bench_at(plan, seed, 8);
        prop_assert_eq!(&t1, &t2, "1 vs 2 threads under {}", plan);
        prop_assert_eq!(&t1, &t8, "1 vs 8 threads under {}", plan);
    }
}

/// Store corruption is recovered deterministically: an aged fleet under
/// a half storm — eroded verifier NVM included — produces the exact
/// same accepted/rejected/corrupt/quarantine tallies on every rerun.
#[test]
fn store_corruption_recovery_tallies_are_deterministic() {
    let cfg = tiny_cfg(7);
    let params = PufAreaParams {
        ro_cell_ge: 3.0,
        readout_fixed_ge: 120.0,
        readout_per_ro_ge: 3.0,
        ros_per_bit: 2.0,
    };
    let generator = KeyGenerator::for_bit_error_rate(0.05, cfg.key_bits, cfg.key_fail_target, &params)
        .expect("feasible");
    let inj = FaultInjector::new(FaultPlan::storm().scaled(0.5), cfg.seed);
    let plan = BenchPlan {
        genuine_rounds: 4,
        impostor_rounds: 2,
    };
    let run = || {
        let mut ws = FleetWorkspace::new(&cfg, &generator, RoStyle::AgingResistant, 4);
        ws.run_trial(&cfg, &generator, Some(&inj), 10.0, &plan)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "recovery must not depend on run order or timing");
    assert!(
        first.tallies.corrupt_reads + first.tallies.quarantines > 0,
        "a ten-year half-storm fleet must exercise the recovery path: {:?}",
        first.tallies
    );
    assert_eq!(first.impostor_accepted, 0, "recovery never opens a false accept");
}

/// The full quarantine → refresh → re-admit round trip: a device whose
/// stored record is corrupted under storm@0.5 fails verification, lands
/// in quarantine, is re-enrolled through the continuity-gated helper
/// refresh, and then authenticates again.
#[test]
fn quarantined_device_is_reenrolled_and_readmitted() {
    let params = PufAreaParams {
        ro_cell_ge: 3.0,
        readout_fixed_ge: 120.0,
        readout_per_ro_ge: 3.0,
        ros_per_bit: 2.0,
    };
    let generator =
        KeyGenerator::for_bit_error_rate(0.05, 32, 1e-6, &params).expect("feasible");
    let n_ros = 2 * generator.response_bits();
    let design = PufDesign::builder(RoStyle::AgingResistant)
        .n_ros(n_ros)
        .seed(0x5e7e)
        .build();
    let env = aro_puf_repro::device::environment::Environment::nominal(design.tech());
    let key_pairs = PairingStrategy::Neighbor.pairs(n_ros);
    let crp_pairs = Challenge(0xfee1).pairs(n_ros, 64.min(n_ros / 2));
    let mut chip = Chip::fabricate(&design, 0);

    let mut service = AuthService::new(ServicePolicy::default(), 1, 1, 42);
    let mut rng = design.seed_domain().child("test-enroll").rng(0);
    let (key, helper) = generator.enroll(&chip.golden_response(&design, &env, &key_pairs), &mut rng);
    let reference = chip.golden_response(&design, &env, &crp_pairs);
    service.enroll(StoredRecord::new(0, crp_pairs, reference, helper, key));

    // Erode the verifier's store under a half storm until this record's
    // checksum fails (bounded: a full-fraction storm window flips bits
    // at a healthy rate).
    let inj = FaultInjector::new(FaultPlan::storm().scaled(0.5), 42);
    let mut window = 0;
    while matches!(service.store().read(0), ReadOutcome::Intact(_)) {
        assert!(window < 1_000, "storm@0.5 must corrupt the record eventually");
        service.store_mut().erode(&inj, window, 1.0);
        window += 1;
    }

    // Verification now fails closed and routes the device to quarantine.
    let outcome = service.probe(&mut chip, 0, 0, 0, &design, &env, Some(&inj));
    assert_eq!(outcome.verdict, Verdict::CorruptRecord);
    service.admit(&outcome, true);
    assert!(service.is_quarantined(0), "corrupt record must quarantine");

    // Maintenance: the continuity-gated helper refresh re-anchors the
    // enrollment and reseals the record.
    let readmitted = service.reenroll(
        &mut chip,
        0,
        0,
        &key_pairs,
        &generator,
        &design,
        &env,
        Some(&inj),
        1 << 20,
    );
    assert!(readmitted, "refresh must recover an undamaged device");
    assert!(!service.is_quarantined(0));
    assert!(matches!(service.store().read(0), ReadOutcome::Intact(_)));

    // And the device authenticates again.
    let outcome = service.probe(&mut chip, 0, 0, 1 << 21, &design, &env, None);
    assert!(
        matches!(outcome.verdict, Verdict::Accepted { .. }),
        "re-admitted device must verify: {:?}",
        outcome.verdict
    );
    assert!(service.tallies().reenrolled >= 1);
}
