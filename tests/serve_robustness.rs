//! Fleet-authentication-service robustness tests: thread-count
//! byte-identity of the `serve-bench` report, deterministic
//! store-corruption recovery, and the quarantine → helper-refresh →
//! re-admission round trip.
//!
//! See `docs/ROBUSTNESS.md` ("Fleet authentication service") for the
//! contract these tests enforce.

use std::sync::Arc;

use aro_puf_repro::circuit::ring::RoStyle;
use aro_puf_repro::ecc::area::PufAreaParams;
use aro_puf_repro::ecc::keygen::KeyGenerator;
use aro_puf_repro::faults::{FaultInjector, FaultPlan};
use aro_puf_repro::puf::{Challenge, Chip, PairingStrategy, PufDesign};
use aro_puf_repro::serve::{
    audit, AuthService, BenchPlan, HealthState, ReadOutcome, RequestOutcome, ServicePolicy,
    ShardedStore, StoredRecord, Verdict,
};
use aro_puf_repro::sim::experiments::run_by_id;
use aro_puf_repro::sim::parallel::set_thread_override;
use aro_puf_repro::sim::servefleet::FleetWorkspace;
use aro_puf_repro::sim::{faultctx, popcache, SimConfig};
use proptest::prelude::*;

/// A small configuration that keeps each serve-bench run around a
/// second while still exercising the full enrollment/traffic path.
fn tiny_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick();
    cfg.n_chips = 4;
    cfg.key_bits = 32;
    cfg.seed = seed;
    cfg
}

/// Renders the `serve-bench` report at a forced worker-thread count
/// under `plan`, exactly as `repro --faults PLAN serve-bench` would.
fn serve_bench_at(plan: &str, seed: u64, threads: usize) -> String {
    let cfg = tiny_cfg(seed);
    let plan = FaultPlan::parse(plan).expect("valid plan");
    // `repro` installs no ambient injector when faults are off.
    let injector = (!plan.is_off()).then(|| Arc::new(FaultInjector::new(plan, cfg.seed)));
    set_thread_override(threads);
    let out = faultctx::scoped(injector, || {
        popcache::scoped(|| {
            run_by_id("serve-bench", &cfg)
                .expect("serve-bench is a known id")
                .to_string()
        })
    });
    set_thread_override(0);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3 })]

    /// The tentpole contract: the whole serve-bench report — auths/sec,
    /// p50/p99, FAR/FRR, shed/quarantine tallies, health states — is
    /// byte-identical at any `--threads N`, with faults off and under a
    /// half-intensity storm alike.
    #[test]
    fn serve_bench_report_is_byte_identical_across_thread_counts(
        plan in prop::sample::select(vec!["off", "storm@0.5"]),
        seed in 0u64..100,
    ) {
        let t1 = serve_bench_at(plan, seed, 1);
        let t2 = serve_bench_at(plan, seed, 2);
        let t8 = serve_bench_at(plan, seed, 8);
        prop_assert_eq!(&t1, &t2, "1 vs 2 threads under {}", plan);
        prop_assert_eq!(&t1, &t8, "1 vs 8 threads under {}", plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2 })]

    /// The audit trail is observability, not behaviour: with capture
    /// enabled the serve-bench report — every tally, latency percentile,
    /// and health state — stays byte-identical to an uninstrumented run,
    /// at 1, 2, and 8 worker threads, with faults off and under a storm.
    #[test]
    fn audit_capture_never_changes_the_serve_report(
        plan in prop::sample::select(vec!["off", "storm@0.5"]),
        seed in 0u64..100,
    ) {
        for threads in [1usize, 2, 8] {
            audit::set_enabled(false);
            let off = serve_bench_at(plan, seed, threads);
            audit::set_enabled(true);
            let on = serve_bench_at(plan, seed, threads);
            audit::set_enabled(false);
            prop_assert_eq!(
                &off, &on,
                "audit on/off at {} threads under {}", threads, plan
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Anti-entropy convergence (satellite of the replicated store):
    /// after one scrub pass, every record group that kept at least one
    /// intact replica is fully healed — reads serve `Intact`, and all
    /// sibling replicas are byte-identical (a second scrub finds nothing
    /// left to repair). Groups that lost every replica are reported
    /// unrecoverable, never silently served. Holds at 1, 2, and 8
    /// forced worker threads, with faults off and under a full storm.
    #[test]
    fn scrub_converges_every_group_with_an_intact_replica(
        plan in prop::sample::select(vec!["off", "storm"]),
        seed in 0u64..50,
        threads in prop::sample::select(vec![1usize, 2, 8]),
    ) {
        set_thread_override(threads);
        let params = PufAreaParams {
            ro_cell_ge: 3.0,
            readout_fixed_ge: 120.0,
            readout_per_ro_ge: 3.0,
            ros_per_bit: 2.0,
        };
        let generator = KeyGenerator::for_bit_error_rate(0.05, 32, 1e-6, &params)
            .expect("feasible");
        let n = 8usize;
        let mut store = ShardedStore::for_fleet_replicated(n, 4, 3);
        let design = PufDesign::builder(RoStyle::AgingResistant)
            .n_ros(2 * generator.response_bits())
            .seed(seed ^ 0x5c7b)
            .build();
        let env = aro_puf_repro::device::environment::Environment::nominal(design.tech());
        let key_pairs = PairingStrategy::Neighbor.pairs(design.n_ros());
        for id in 0..n as u64 {
            let chip = Chip::fabricate(&design, id);
            let golden = chip.golden_response(&design, &env, &key_pairs);
            let mut rng = design.seed_domain().child("scrub-test").rng(id);
            let (key, helper) = generator.enroll(&golden, &mut rng);
            store.insert(StoredRecord::new(id, key_pairs.clone(), golden, helper, key));
        }

        // Field damage: several full-fraction maintenance windows of the
        // selected plan (helper erosion + replica wipes + shard losses).
        let plan = FaultPlan::parse(plan).expect("valid plan");
        if !plan.is_off() {
            let inj = FaultInjector::new(plan, seed);
            for window in 0..4 {
                store.erode(&inj, window, 1.0);
            }
        }

        let recoverable: Vec<u64> = (0..n as u64)
            .filter(|&id| store.replica_summary(id).intact > 0)
            .collect();
        let report = store.scrub();

        for &id in &recoverable {
            let summary = store.replica_summary(id);
            prop_assert_eq!(summary.intact, 3, "device {} fully healed", id);
            prop_assert_eq!(summary.corrupt + summary.wiped, 0);
            prop_assert!(
                matches!(store.read(id), ReadOutcome::Intact(_)),
                "device {} must read Intact after scrub", id
            );
            prop_assert!(!report.unrecoverable.contains(&id));
        }
        for id in 0..n as u64 {
            if !recoverable.contains(&id) {
                prop_assert!(
                    report.unrecoverable.contains(&id),
                    "group {} with no intact replica must be reported, not served", id
                );
            }
        }
        // Convergence: one pass suffices — the siblings are now
        // byte-identical, so a second pass repairs nothing.
        let again = store.scrub();
        prop_assert!(again.repairs.is_empty(), "second scrub must be a no-op");
        set_thread_override(0);
    }
}

/// A synthetic probe outcome for driving `admit()` directly.
fn synthetic(verdict: Verdict, attempt_timeouts: u32) -> RequestOutcome {
    RequestOutcome {
        target_id: 0,
        verdict,
        attempts: 1 + attempt_timeouts,
        attempt_timeouts,
        latency_us: 100,
        served_replica: Some(0),
        replicas_lost: 0,
        audit: None,
    }
}

/// Exhaustive transition table of the health-machine hysteresis,
/// exercised through `admit()` with an 8-event window (evaluation
/// starts at 4 events). With `degraded_watermark` 0.25 and
/// `read_only_watermark` 0.50, the reachable single-step transitions
/// per (state, windowed error rate) band are:
///
/// | state     | rate < 1/8 | 1/8 ≤ rate < 1/4 | 1/4 ≤ rate < 1/2 | rate ≥ 1/2 |
/// |-----------|------------|------------------|------------------|------------|
/// | Healthy   | Healthy    | Healthy          | Degraded         | ReadOnly   |
/// | Degraded  | Healthy    | Degraded (hyst.) | Degraded         | ReadOnly   |
/// | ReadOnly  | —          | Degraded         | ReadOnly (hyst.) | ReadOnly   |
///
/// (`ReadOnly` at rate < 1/8 is unreachable in one step: a sliding
/// window moves the error count by at most one per event, so recovery
/// always passes through `Degraded` at 1/8.)
#[test]
fn health_machine_hysteresis_transition_table() {
    let policy = ServicePolicy {
        health_window: 8,
        ..ServicePolicy::default()
    };
    let ok = || synthetic(Verdict::Accepted { distance: 0.0 }, 0);
    let err = || synthetic(Verdict::TimedOut, 0);

    // One trajectory walking every reachable row. Each step is
    // (error?, expected state after admitting it); the comment gives
    // the window contents' error rate at that point.
    use HealthState::{Degraded, Healthy, ReadOnly};
    let trajectory = [
        (false, Healthy),  //  1: warmup (3 events < window/2: no verdicts yet)
        (false, Healthy),  //  2
        (false, Healthy),  //  3
        (false, Healthy),  //  4: 0/4 — evaluation starts
        (false, Healthy),  //  5: 0/5
        (false, Healthy),  //  6: 0/6
        (true, Healthy),   //  7: 1/7 ≈ 0.14 — Healthy ignores sub-watermark noise
        (true, Degraded),  //  8: 2/8 = 0.25 — enters Degraded exactly at the watermark
        (true, Degraded),  //  9: 3/8
        (true, ReadOnly),  // 10: 4/8 = 0.50 — enters ReadOnly exactly at the watermark
        (false, ReadOnly), // 11: 4/8 (window slid over leading oks)
        (false, ReadOnly), // 12: 4/8
        (false, ReadOnly), // 13: 4/8
        (false, ReadOnly), // 14: 4/8
        (false, ReadOnly), // 15: 3/8 — hysteresis: ≥ 1/4 holds ReadOnly
        (false, ReadOnly), // 16: 2/8 = 0.25 — boundary: still holds
        (false, Degraded), // 17: 1/8 — falls back one level, not two
        (false, Healthy),  // 18: 0/8 — full recovery
        (true, Healthy),   // 19: 1/8 — Healthy is unmoved by the recovery floor
        (true, Degraded),  // 20: 2/8 = 0.25
        (false, Degraded), // 21: 2/8
        (false, Degraded), // 22: 2/8
        (false, Degraded), // 23: 2/8
        (false, Degraded), // 24: 2/8
        (false, Degraded), // 25: 2/8
        (false, Degraded), // 26: 2/8
        (false, Degraded), // 27: 1/8 — hysteresis: holds at the recovery floor
        (false, Healthy),  // 28: 0/8 — recovers only below it
    ];
    let mut service = AuthService::new(policy, 1, 1, 42);
    for (i, (error, expect)) in trajectory.into_iter().enumerate() {
        service.admit(&if error { err() } else { ok() }, false);
        assert_eq!(
            service.state(),
            expect,
            "after event {} (error = {error})",
            i + 1
        );
    }

    // Healthy jumps straight to ReadOnly when the window activates at
    // half errors — no mandatory stop in Degraded.
    let mut service = AuthService::new(policy, 1, 1, 42);
    for outcome in [ok(), ok(), err(), err()] {
        service.admit(&outcome, false);
    }
    assert_eq!(service.state(), HealthState::ReadOnly, "2/4 at activation");

    // Every timed-out attempt counts against health, not just the final
    // verdict: one request with two attempt timeouts plus a timeout
    // verdict pushes three errors.
    let mut service = AuthService::new(policy, 1, 1, 42);
    service.admit(&synthetic(Verdict::TimedOut, 2), false);
    service.admit(&ok(), false);
    assert_eq!(service.state(), HealthState::ReadOnly, "3/4 from one request");
}

/// Store corruption is recovered deterministically: an aged fleet under
/// a half storm — eroded verifier NVM included — produces the exact
/// same accepted/rejected/corrupt/quarantine tallies on every rerun.
#[test]
fn store_corruption_recovery_tallies_are_deterministic() {
    let cfg = tiny_cfg(7);
    let params = PufAreaParams {
        ro_cell_ge: 3.0,
        readout_fixed_ge: 120.0,
        readout_per_ro_ge: 3.0,
        ros_per_bit: 2.0,
    };
    let generator = KeyGenerator::for_bit_error_rate(0.05, cfg.key_bits, cfg.key_fail_target, &params)
        .expect("feasible");
    let inj = FaultInjector::new(FaultPlan::storm().scaled(0.5), cfg.seed);
    let plan = BenchPlan {
        genuine_rounds: 4,
        impostor_rounds: 2,
    };
    let run = || {
        let mut ws = FleetWorkspace::new(&cfg, &generator, RoStyle::AgingResistant, 4);
        ws.run_trial(&cfg, &generator, Some(&inj), 10.0, &plan, "test recovery")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "recovery must not depend on run order or timing");
    assert!(
        first.tallies.corrupt_reads + first.tallies.quarantines > 0,
        "a ten-year half-storm fleet must exercise the recovery path: {:?}",
        first.tallies
    );
    assert_eq!(first.impostor_accepted, 0, "recovery never opens a false accept");
}

/// The full quarantine → refresh → re-admit round trip: a device whose
/// stored record is corrupted under storm@0.5 fails verification, lands
/// in quarantine, is re-enrolled through the continuity-gated helper
/// refresh, and then authenticates again.
#[test]
fn quarantined_device_is_reenrolled_and_readmitted() {
    let params = PufAreaParams {
        ro_cell_ge: 3.0,
        readout_fixed_ge: 120.0,
        readout_per_ro_ge: 3.0,
        ros_per_bit: 2.0,
    };
    let generator =
        KeyGenerator::for_bit_error_rate(0.05, 32, 1e-6, &params).expect("feasible");
    let n_ros = 2 * generator.response_bits();
    let design = PufDesign::builder(RoStyle::AgingResistant)
        .n_ros(n_ros)
        .seed(0x5e7e)
        .build();
    let env = aro_puf_repro::device::environment::Environment::nominal(design.tech());
    let key_pairs = PairingStrategy::Neighbor.pairs(n_ros);
    let crp_pairs = Challenge(0xfee1).pairs(n_ros, 64.min(n_ros / 2));
    let mut chip = Chip::fabricate(&design, 0);

    let mut service = AuthService::new(ServicePolicy::default(), 1, 1, 42);
    let mut rng = design.seed_domain().child("test-enroll").rng(0);
    let (key, helper) = generator.enroll(&chip.golden_response(&design, &env, &key_pairs), &mut rng);
    let reference = chip.golden_response(&design, &env, &crp_pairs);
    service.enroll(StoredRecord::new(0, crp_pairs, reference, helper, key));

    // Erode the verifier's store under a half storm until this record's
    // checksum fails (bounded: a full-fraction storm window flips bits
    // at a healthy rate).
    let inj = FaultInjector::new(FaultPlan::storm().scaled(0.5), 42);
    let mut window = 0;
    while matches!(service.store().read(0), ReadOutcome::Intact(_)) {
        assert!(window < 1_000, "storm@0.5 must corrupt the record eventually");
        service.store_mut().erode(&inj, window, 1.0);
        window += 1;
    }

    // Verification now fails closed and routes the device to quarantine.
    let outcome = service.probe(&mut chip, 0, 0, 0, &design, &env, Some(&inj));
    assert_eq!(outcome.verdict, Verdict::CorruptRecord);
    service.admit(&outcome, true);
    assert!(service.is_quarantined(0), "corrupt record must quarantine");

    // Maintenance: the continuity-gated helper refresh re-anchors the
    // enrollment and reseals the record.
    let readmitted = service.reenroll(
        &mut chip,
        0,
        0,
        &key_pairs,
        &generator,
        &design,
        &env,
        Some(&inj),
        1 << 20,
    );
    assert!(readmitted, "refresh must recover an undamaged device");
    assert!(!service.is_quarantined(0));
    assert!(matches!(service.store().read(0), ReadOutcome::Intact(_)));

    // And the device authenticates again.
    let outcome = service.probe(&mut chip, 0, 0, 1 << 21, &design, &env, None);
    assert!(
        matches!(outcome.verdict, Verdict::Accepted { .. }),
        "re-admitted device must verify: {:?}",
        outcome.verdict
    );
    assert!(service.tallies().reenrolled >= 1);
}
