//! Reproducibility guarantees: identical seeds give identical experiment
//! outputs, different seeds move the noise but not the conclusions.

use aro_puf_repro::circuit::ring::RoStyle;
use aro_puf_repro::sim::experiments::{exp2, exp3};
use aro_puf_repro::sim::SimConfig;

#[test]
fn experiments_are_bit_for_bit_reproducible() {
    let cfg = SimConfig::quick();
    let a = exp2::flip_timeline(&cfg, RoStyle::Conventional);
    let b = exp2::flip_timeline(&cfg, RoStyle::Conventional);
    assert_eq!(a, b, "same config, same result");

    let ha = exp3::interchip_sample(&cfg, RoStyle::AgingResistant);
    let hb = exp3::interchip_sample(&cfg, RoStyle::AgingResistant);
    assert_eq!(ha, hb);
}

#[test]
fn different_seeds_change_the_noise_not_the_conclusion() {
    let base = SimConfig::quick();
    let mut conv_rates = Vec::new();
    let mut aro_rates = Vec::new();
    for seed in [1u64, 2, 3] {
        let cfg = base.clone().with_seed(seed);
        conv_rates.push(exp2::flip_timeline(&cfg, RoStyle::Conventional).final_mean().unwrap());
        aro_rates.push(exp2::flip_timeline(&cfg, RoStyle::AgingResistant).final_mean().unwrap());
    }
    // Noise: seeds differ.
    assert!(conv_rates.windows(2).any(|w| w[0] != w[1]));
    // Conclusion: ARO wins under every seed.
    for (c, a) in conv_rates.iter().zip(&aro_rates) {
        assert!(a < c, "seed flipped the conclusion: aro {a} vs conv {c}");
    }
    // And the magnitudes stay in the paper's band.
    for c in &conv_rates {
        assert!(
            *c > 0.15 && *c < 0.45,
            "conventional flip rate {c} out of band"
        );
    }
    for a in &aro_rates {
        assert!(*a < 0.15, "aro flip rate {a} out of band");
    }
}

#[test]
fn quick_and_paper_configs_agree_on_direction() {
    // The quick config is 10x smaller but must preserve orderings; this
    // is what makes the unit-test assertions trustworthy proxies for the
    // paper-scale run.
    let quick = SimConfig::quick();
    let conv = exp2::flip_timeline(&quick, RoStyle::Conventional);
    let aro = exp2::flip_timeline(&quick, RoStyle::AgingResistant);
    assert!(conv.final_mean().unwrap() > aro.final_mean().unwrap());
    assert!(
        conv.mean.windows(2).all(|w| w[1] >= w[0] - 0.02),
        "roughly monotone in time"
    );
}
