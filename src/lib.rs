//! Umbrella crate for the ARO-PUF (DATE 2014) reproduction.
//!
//! Re-exports every sub-crate under one roof so examples and integration
//! tests can depend on a single crate:
//!
//! * [`device`] — transistor models, process variation, aging.
//! * [`circuit`] — ring oscillators and readout.
//! * [`puf`] — the RO-PUF / ARO-PUF architectures (the paper's
//!   contribution).
//! * [`ecc`] — BCH / repetition codes, fuzzy extractor, area
//!   models.
//! * [`metrics`] — PUF quality metrics and randomness tests.
//! * [`faults`] — deterministic fault injection (see
//!   `docs/ROBUSTNESS.md`).
//! * [`serve`] — the fault-tolerant fleet authentication service
//!   (`repro serve-bench`, see `docs/ROBUSTNESS.md`).
//! * [`sim`] — the EXP-1..EXP-18 paper experiments.
//! * [`ledger`] — the crash-safe run journal behind `repro --ledger` /
//!   `--resume` and the `repro report` analyses (see
//!   `docs/OBSERVABILITY.md`).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture.

pub use aro_circuit as circuit;
pub use aro_device as device;
pub use aro_ecc as ecc;
pub use aro_faults as faults;
pub use aro_ledger as ledger;
pub use aro_metrics as metrics;
pub use aro_puf as puf;
pub use aro_serve as serve;
pub use aro_sim as sim;
