//! Integration tests for the observability layer as wired through the
//! experiment engine: deterministic metric aggregation across thread
//! counts, telemetry stream well-formedness, and the disabled fast path.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

use aro_obs::json::{self, Value};
use aro_sim::experiments::run_by_id;
use aro_sim::parallel::set_thread_override;
use aro_sim::SimConfig;

/// Enablement, the sink, the span timing table and the thread override are
/// process-global; run these tests one at a time.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Restores global state even when an assertion fails mid-test.
struct Cleanup;
impl Drop for Cleanup {
    fn drop(&mut self) {
        set_thread_override(0);
        aro_obs::set_enabled(false);
        aro_obs::sink::close();
        aro_obs::reset();
    }
}

#[test]
fn aggregates_and_results_identical_across_thread_counts() {
    let _guard = lock();
    let _cleanup = Cleanup;
    let cfg = SimConfig::quick();

    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        set_thread_override(threads);
        aro_obs::reset();
        aro_obs::set_enabled(true);
        let report = run_by_id("exp2", &cfg).expect("exp2 exists");
        aro_obs::set_enabled(false);
        let metrics = aro_obs::take_scratch();
        runs.push((threads, metrics.dump(), report));
    }
    set_thread_override(0);

    let (_, reference_dump, reference_report) = &runs[0];
    assert!(
        reference_dump.contains("sim.chips_simulated"),
        "instrumentation recorded nothing:\n{reference_dump}"
    );
    for (threads, dump, report) in &runs[1..] {
        assert_eq!(
            dump, reference_dump,
            "metric aggregates differ at {threads} threads"
        );
        assert_eq!(
            report, reference_report,
            "experiment results differ at {threads} threads"
        );
    }
}

#[test]
fn telemetry_stream_is_valid_jsonl_with_wellformed_nesting() {
    let _guard = lock();
    let _cleanup = Cleanup;

    aro_obs::reset();
    aro_obs::set_enabled(true);
    let buf = aro_obs::sink::install_memory();
    let _ = run_by_id("exp2", &SimConfig::quick()).expect("exp2 exists");
    let registry = aro_obs::snapshot();
    aro_obs::flush_metrics_to_sink(&registry);
    aro_obs::sink::close();
    aro_obs::set_enabled(false);

    let text = String::from_utf8(buf.lock().unwrap().clone()).expect("utf-8 telemetry");
    assert!(!text.is_empty(), "telemetry stream is empty");

    // Every line parses as one JSON object with an event tag.
    let events: Vec<Value> = text
        .lines()
        .map(|line| json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}")))
        .collect();

    // Per-thread span brackets: every close matches the innermost open.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut span_events = 0;
    for event in &events {
        let kind = event
            .get("event")
            .and_then(Value::as_str)
            .expect("event tag");
        if kind != "span_open" && kind != "span_close" {
            continue;
        }
        span_events += 1;
        let name = event.get("name").and_then(Value::as_str).expect("name");
        let thread = event.get("thread").and_then(Value::as_u64).expect("thread");
        let depth = event.get("depth").and_then(Value::as_u64).expect("depth") as usize;
        let stack = stacks.entry(thread).or_default();
        if kind == "span_open" {
            stack.push(name.to_string());
            assert_eq!(stack.len(), depth, "open depth mismatch for {name}");
        } else {
            assert_eq!(
                stack.pop().as_deref(),
                Some(name),
                "close without matching open"
            );
            assert_eq!(stack.len() + 1, depth, "close depth mismatch for {name}");
            assert!(
                event.get("dur_ns").and_then(Value::as_u64).is_some(),
                "span_close must carry dur_ns"
            );
        }
    }
    assert!(span_events >= 4, "expected spans, saw {span_events} events");
    for (thread, stack) in stacks {
        assert!(stack.is_empty(), "unclosed spans on thread {thread}: {stack:?}");
    }

    // The final metrics flush made it into the stream.
    assert!(
        events.iter().any(|e| {
            e.get("event").and_then(Value::as_str) == Some("counter")
                && e.get("name").and_then(Value::as_str) == Some("sim.chips_simulated")
        }),
        "metrics flush missing from telemetry"
    );
}

#[test]
fn disabled_instrumentation_emits_and_records_nothing() {
    let _guard = lock();
    let _cleanup = Cleanup;

    aro_obs::reset();
    aro_obs::set_enabled(false);
    let buf = aro_obs::sink::install_memory();
    let _ = run_by_id("exp1", &SimConfig::quick()).expect("exp1 exists");
    aro_obs::sink::close();

    assert!(
        buf.lock().unwrap().is_empty(),
        "disabled run must write no telemetry"
    );
    assert!(
        aro_obs::snapshot().is_empty(),
        "disabled run must record no metrics"
    );
    assert!(
        aro_obs::timing_snapshot().is_empty(),
        "disabled run must record no span timings"
    );
}
