//! Tables, series, and figures — the renderable units every experiment
//! emits.

use aro_metrics::stats::Histogram;

/// A titled table with a header row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The header row.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// A cell by (row, column).
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders as a GitHub-style markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = (0..self.headers.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.headers[c].len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let render_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", dashes.join("-|-")));
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// A named data series (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A named series.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// The final y value.
    ///
    /// # Panics
    /// Panics if the series is empty.
    #[must_use]
    pub fn last_y(&self) -> f64 {
        self.points.last().expect("empty series").1
    }
}

/// A figure: axis labels plus one or more series, optionally backed by a
/// histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl Figure {
    /// An empty figure.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Builds a figure from a histogram (one series of bin fractions).
    #[must_use]
    pub fn from_histogram(
        title: impl Into<String>,
        x_label: impl Into<String>,
        name: impl Into<String>,
        histogram: &Histogram,
    ) -> Self {
        let mut fig = Self::new(title, x_label, "fraction");
        fig.push_series(Series::new(name, histogram.normalized()));
        fig
    }

    /// The figure title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The series.
    #[must_use]
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Renders the figure as a data listing (x column + one y column per
    /// series) — what the paper's plotting tool would consume.
    #[must_use]
    pub fn to_data_listing(&self) -> String {
        let mut out = format!(
            "### {} ({} vs {})\n\n",
            self.title, self.y_label, self.x_label
        );
        let names: Vec<&str> = self.series.iter().map(|s| s.name.as_str()).collect();
        out.push_str(&format!("{:>12}  {}\n", self.x_label, names.join("  ")));
        let longest = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..longest {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{x:>12.4}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => out.push_str(&format!("  {:>12.5}", p.1)),
                    None => out.push_str(&format!("  {:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_markdown_round_trip() {
        let mut t = Table::new("Demo", &["a", "bee"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a "));
        assert!(md.contains("| 333 | 4"));
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 0), "333");
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new("Demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("Demo", &["x", "y"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn series_last_y() {
        let s = Series::new("curve", vec![(0.0, 1.0), (1.0, 3.0)]);
        assert_eq!(s.last_y(), 3.0);
    }

    #[test]
    fn figure_data_listing_includes_every_series() {
        let mut f = Figure::new("Fig", "t", "v");
        f.push_series(Series::new("conv", vec![(0.0, 1.0), (1.0, 2.0)]));
        f.push_series(Series::new("aro", vec![(0.0, 1.0)]));
        let listing = f.to_data_listing();
        assert!(listing.contains("conv"));
        assert!(listing.contains("aro"));
        assert!(listing.lines().count() >= 4);
    }

    #[test]
    fn figure_from_histogram() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add_all(&[0.1, 0.6, 0.6]);
        let f = Figure::from_histogram("H", "hd", "chips", &h);
        assert_eq!(f.series().len(), 1);
        assert_eq!(f.series()[0].points.len(), 4);
    }
}
