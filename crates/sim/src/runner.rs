//! Shared experiment plumbing: population construction, aging timelines,
//! flip-rate measurement, and the PUF-side area parameters.

use aro_circuit::netlist::{readout_area, RoCell};
use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::rng::SeedDomain;
use aro_ecc::area::PufAreaParams;
use aro_metrics::stats::quantile;
use aro_puf::{Enrollment, MissionProfile, PairingStrategy, Population, PufDesign};

use crate::config::SimConfig;

/// The evaluation design of a style under a config (seed derived from the
/// config seed and the style label, so the two styles use independent but
/// reproducible randomness).
#[must_use]
pub fn design_for(cfg: &SimConfig, style: RoStyle) -> PufDesign {
    let seed = SeedDomain::new(cfg.seed).child(style.label()).seed(0);
    PufDesign::builder(style)
        .n_ros(cfg.n_ros)
        .seed(seed)
        .build()
}

/// Fabricates the population of a style under a config. Inside a
/// [`crate::popcache::scoped`] region (every `run_all`/`run_by_id` call)
/// repeated requests past the second clone one cached baseline instead of
/// refabricating.
#[must_use]
pub fn build_population(cfg: &SimConfig, style: RoStyle) -> Population {
    crate::popcache::fabricate(&design_for(cfg, style), cfg.n_chips)
}

/// Flip-rate statistics along an aging timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipTimeline {
    /// Checkpoint ages in seconds.
    pub checkpoints: Vec<f64>,
    /// Mean flip rate across chips at each checkpoint.
    pub mean: Vec<f64>,
    /// Std-dev of the flip rate across chips at each checkpoint.
    pub std: Vec<f64>,
    /// Per-chip flip rates at the final checkpoint.
    pub final_rates: Vec<f64>,
}

/// Error of [`FlipTimeline::final_mean`]: the timeline was measured over
/// zero checkpoints, so there is no final flip rate to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTimeline;

impl std::fmt::Display for EmptyTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("flip timeline has no checkpoints")
    }
}

impl std::error::Error for EmptyTimeline {}

impl FlipTimeline {
    /// Mean flip rate at the final checkpoint.
    ///
    /// # Errors
    /// Returns [`EmptyTimeline`] if the timeline holds no checkpoints
    /// (e.g. it was measured over an empty checkpoint list).
    pub fn final_mean(&self) -> Result<f64, EmptyTimeline> {
        self.mean.last().copied().ok_or(EmptyTimeline)
    }

    /// The `q`-quantile of the per-chip final flip rates — the worst-case
    /// BER an ECC must be provisioned for.
    #[must_use]
    pub fn final_quantile(&self, q: f64) -> f64 {
        quantile(&self.final_rates, q)
    }
}

/// Enrolls a population at nominal conditions, plays the mission through
/// each checkpoint, and measures the flip rate against enrollment at every
/// stop.
///
/// When a fault context is installed ([`crate::faultctx`]), the re-reads
/// run under injected physics: hard RO faults strike each chip after
/// factory enrollment (a fielded chip loses rings the factory never saw
/// fail), and every per-checkpoint measurement may see a transient
/// environment excursion and/or an RTN noise burst. The injector is read
/// **once** on this thread and shared by reference into the parallel
/// workers; every fault event is addressed by `(chip id, checkpoint)`, so
/// the schedule is byte-identical at any `--threads N`.
#[must_use]
pub fn measure_flip_timeline(
    population: &mut Population,
    profile: &MissionProfile,
    checkpoints: &[f64],
) -> FlipTimeline {
    let design = population.design().clone();
    let env = Environment::nominal(design.tech());
    let strategy = PairingStrategy::Neighbor;
    let enrollments: Vec<Enrollment> = {
        let _span = aro_obs::span("sim.enroll");
        let enrollments = population.enroll_all(&env, &strategy);
        aro_obs::counter("sim.enrollments", enrollments.len() as u64);
        enrollments
    };

    // Fault context: captured here, on the spawning thread (the context is
    // thread-local and invisible to `par_map_mut` workers).
    let injector = crate::faultctx::current();
    let inj = injector.as_deref();
    if let Some(inj) = inj {
        // Hard faults land after enrollment: the factory enrolled healthy
        // silicon, the field kills rings behind its back.
        let n_ros = design.n_ros();
        for chip in population.chips_mut() {
            for (slot, health) in inj.hard_faults(chip.id(), n_ros) {
                chip.set_ro_health(slot, health);
            }
        }
    }

    let mut mean = Vec::with_capacity(checkpoints.len());
    let mut std = Vec::with_capacity(checkpoints.len());
    let mut final_rates = Vec::new();
    let mut age = 0.0;
    for (ck_event, &checkpoint) in checkpoints.iter().enumerate() {
        assert!(checkpoint >= age, "checkpoints must be non-decreasing");
        let step = checkpoint - age;
        age = checkpoint;
        let _step_span = aro_obs::span("sim.timeline_step");
        // Aging and re-reading are per-chip independent (each chip owns
        // its RNG streams), so fan both out across cores; results land by
        // index, keeping the run bit-identical to sequential.
        let rates: Vec<f64> = crate::parallel::par_map_mut(population.chips_mut(), |i, chip| {
            profile.age_chip(chip, &design, step);
            // Transient faults for THIS chip's re-read at THIS checkpoint.
            let (burst_design, meas_env) = match inj {
                None => (None, env),
                Some(inj) => (
                    inj.noise_burst(chip.id(), ck_event as u64).map(|factor| {
                        design.with_readout(design.readout().with_noise_burst(factor))
                    }),
                    inj.measurement_env(chip.id(), ck_event as u64, &env),
                ),
            };
            let meas_design = burst_design.as_ref().unwrap_or(&design);
            let rate = enrollments[i].flip_rate_now(chip, meas_design, &meas_env);
            let bits = enrollments[i].bits() as u64;
            aro_obs::counter("sim.chips_simulated", 1);
            aro_obs::counter("sim.bits_evaluated", bits);
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            aro_obs::counter("sim.flips_observed", (rate * bits as f64).round() as u64);
            aro_obs::observe("sim.flip_rate", rate);
            rate
        });
        aro_obs::gauge("sim.age_seconds", age);
        if aro_obs::enabled() {
            // Drift-vs-age: a per-checkpoint BER sketch keyed by the age
            // in years (zero-padded so name order is age order). Streamed
            // on the spawning thread, after the deterministic by-index
            // collection, so the bytes match at any thread count.
            let name = format!("puf.ber.y{:07.2}", age / aro_device::units::YEAR);
            for &rate in &rates {
                aro_obs::sketch_dyn(&name, rate);
            }
        }
        let m = rates.iter().sum::<f64>() / rates.len() as f64;
        let s = if rates.len() > 1 {
            (rates.iter().map(|r| (r - m).powi(2)).sum::<f64>() / (rates.len() - 1) as f64).sqrt()
        } else {
            0.0
        };
        mean.push(m);
        std.push(s);
        final_rates = rates;
    }
    FlipTimeline {
        checkpoints: checkpoints.to_vec(),
        mean,
        std,
        final_rates,
    }
}

/// PUF-side area parameters of a style, derived from the circuit-level
/// cell and readout models (16-bit counters, disjoint pairing).
#[must_use]
pub fn puf_area_params(style: RoStyle, n_stages: usize) -> PufAreaParams {
    let cell = match style {
        RoStyle::Conventional => RoCell::conventional(n_stages),
        RoStyle::AgingResistant => RoCell::aging_resistant(n_stages),
    };
    // Fixed part: counters + comparator (mux legs are per-RO below).
    let fixed = readout_area(1, 16);
    let with_muxes = readout_area(2, 16);
    let per_ro_ge = (with_muxes.area_um2 - fixed.area_um2) / aro_circuit::netlist::GE_AREA_UM2;
    PufAreaParams {
        ro_cell_ge: cell.area().gate_equivalents(),
        readout_fixed_ge: fixed.area_um2 / aro_circuit::netlist::GE_AREA_UM2,
        readout_per_ro_ge: per_ro_ge,
        ros_per_bit: 2.0,
    }
}

/// Formats a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2} %", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_device::units::YEAR;

    #[test]
    fn designs_differ_per_style_but_are_deterministic() {
        let cfg = SimConfig::quick();
        let a = design_for(&cfg, RoStyle::Conventional);
        let b = design_for(&cfg, RoStyle::Conventional);
        let c = design_for(&cfg, RoStyle::AgingResistant);
        assert_eq!(a, b);
        assert_ne!(a.style(), c.style());
        assert_eq!(a.n_ros(), cfg.n_ros);
    }

    #[test]
    fn flip_timeline_is_monotone_and_conventional_flips_more() {
        let cfg = SimConfig::quick();
        let checkpoints = [YEAR, 5.0 * YEAR, 10.0 * YEAR];
        let run = |style| {
            let mut population = build_population(&cfg, style);
            let profile = MissionProfile::typical(population.design().tech());
            measure_flip_timeline(&mut population, &profile, &checkpoints)
        };
        let conv = run(RoStyle::Conventional);
        let aro = run(RoStyle::AgingResistant);
        // Flip rates grow with age (up to measurement-noise wiggle).
        assert!(conv.mean[2] > conv.mean[0]);
        assert!(
            conv.final_mean().unwrap() > 2.0 * aro.final_mean().unwrap(),
            "ARO must flip far less"
        );
        assert_eq!(conv.final_rates.len(), cfg.n_chips);
        assert!(conv.final_quantile(0.99) >= conv.final_quantile(0.5));
    }

    #[test]
    fn final_mean_errors_on_an_empty_timeline() {
        let empty = FlipTimeline {
            checkpoints: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
            final_rates: Vec::new(),
        };
        assert_eq!(empty.final_mean(), Err(EmptyTimeline));
        assert_eq!(
            EmptyTimeline.to_string(),
            "flip timeline has no checkpoints"
        );
        let mut population = build_population(&SimConfig::quick(), RoStyle::Conventional);
        let profile = MissionProfile::typical(population.design().tech());
        let measured = measure_flip_timeline(&mut population, &profile, &[]);
        assert_eq!(measured.final_mean(), Err(EmptyTimeline));
    }

    #[test]
    fn fault_context_degrades_the_timeline_deterministically() {
        use aro_faults::{FaultInjector, FaultPlan};
        use std::sync::Arc;
        let cfg = SimConfig::quick();
        let checkpoints = [YEAR, 10.0 * YEAR];
        let run = |injector: Option<Arc<FaultInjector>>| {
            crate::faultctx::scoped(injector, || {
                let mut population = build_population(&cfg, RoStyle::Conventional);
                let profile = MissionProfile::typical(population.design().tech());
                measure_flip_timeline(&mut population, &profile, &checkpoints)
            })
        };
        let clean = run(None);
        let off = run(Some(Arc::new(FaultInjector::new(FaultPlan::off(), cfg.seed))));
        assert_eq!(clean, off, "zero-intensity must be byte-identical");
        let storm = Arc::new(FaultInjector::new(FaultPlan::storm(), cfg.seed));
        let faulted = run(Some(Arc::clone(&storm)));
        let faulted_again = run(Some(storm));
        assert_eq!(faulted, faulted_again, "chaos must be replayable");
        assert!(
            faulted.final_mean().unwrap() > clean.final_mean().unwrap(),
            "storm faults must raise the flip rate: {} vs {}",
            faulted.final_mean().unwrap(),
            clean.final_mean().unwrap()
        );
    }

    #[test]
    fn area_params_reflect_cell_sizes() {
        let conv = puf_area_params(RoStyle::Conventional, 5);
        let aro = puf_area_params(RoStyle::AgingResistant, 5);
        assert!(aro.ro_cell_ge > conv.ro_cell_ge);
        assert_eq!(conv.readout_fixed_ge, aro.readout_fixed_ge);
        assert!(conv.readout_per_ro_ge > 0.0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3213), "32.13 %");
    }
}
