//! The renderable outcome of one experiment.

use crate::table::{Figure, Table};

/// Everything an experiment produced: tables, figures, and prose notes.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    id: &'static str,
    title: String,
    tables: Vec<Table>,
    figures: Vec<Figure>,
    notes: Vec<String>,
}

impl Report {
    /// An empty report for experiment `id` (e.g. `"EXP-2"`).
    #[must_use]
    pub fn new(id: &'static str, title: impl Into<String>) -> Self {
        Self {
            id,
            title: title.into(),
            tables: Vec::new(),
            figures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// The experiment id.
    #[must_use]
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// The experiment title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Appends a figure.
    pub fn push_figure(&mut self, figure: Figure) {
        self.figures.push(figure);
    }

    /// Appends a prose note (assumptions, measured headline numbers).
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The tables.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The figures.
    #[must_use]
    pub fn figures(&self) -> &[Figure] {
        &self.figures
    }

    /// The notes.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

impl std::fmt::Display for Report {
    /// Renders the whole report as markdown.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {} — {}\n", self.id, self.title)?;
        for note in &self.notes {
            writeln!(f, "> {note}\n")?;
        }
        for table in &self.tables {
            writeln!(f, "{}", table.to_markdown())?;
        }
        for figure in &self.figures {
            writeln!(f, "{}", figure.to_data_listing())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Series;

    #[test]
    fn report_renders_all_sections() {
        let mut r = Report::new("EXP-0", "Smoke");
        r.push_note("a note");
        let mut t = Table::new("T", &["x"]);
        t.push_row(vec!["1".into()]);
        r.push_table(t);
        let mut fig = Figure::new("F", "t", "y");
        fig.push_series(Series::new("s", vec![(0.0, 0.0)]));
        r.push_figure(fig);
        let text = r.to_string();
        assert!(text.contains("## EXP-0 — Smoke"));
        assert!(text.contains("> a note"));
        assert!(text.contains("### T"));
        assert!(text.contains("### F"));
        assert_eq!(r.tables().len(), 1);
        assert_eq!(r.figures().len(), 1);
        assert_eq!(r.notes().len(), 1);
    }
}
