//! Run-scoped fault-injection context.
//!
//! The experiment engine threads an optional [`FaultInjector`] through a
//! run the same way `popcache` threads its cache: a thread-local scope
//! installed at the run entry point (`repro --faults`, the harness, or a
//! test). Experiments and the shared runner read it with [`current`] —
//! code that never asks sees no difference, which is how the zero-
//! intensity contract stays byte-exact.
//!
//! The context is thread-local on purpose: `aro-par` worker threads never
//! see it. Code that fans work out (e.g.
//! [`crate::runner::measure_flip_timeline`]) must read the injector **once
//! on the spawning thread** and capture it by reference into the parallel
//! closure — the injector itself is coordinate-addressed and side-effect
//! free, so sharing one reference across workers is deterministic at any
//! thread count.

use std::cell::RefCell;
use std::sync::Arc;

use aro_faults::FaultInjector;

thread_local! {
    static CTX: RefCell<Option<Arc<FaultInjector>>> = const { RefCell::new(None) };
}

/// Runs `f` with `injector` installed as the active fault context,
/// restoring the previous context afterwards (panic-safe). Passing `None`
/// runs `f` with faults explicitly disabled, shadowing any outer scope.
pub fn scoped<R>(injector: Option<Arc<FaultInjector>>, f: impl FnOnce() -> R) -> R {
    let previous = CTX.with(|ctx| ctx.replace(injector));
    struct Restore(Option<Arc<FaultInjector>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CTX.with(|ctx| *ctx.borrow_mut() = previous);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The active fault injector, if one is installed *and can ever fire*.
/// An off-plan injector is reported as `None` so downstream code takes the
/// exact fault-free path (the determinism contract's anchor case).
#[must_use]
pub fn current() -> Option<Arc<FaultInjector>> {
    CTX.with(|ctx| {
        ctx.borrow()
            .as_ref()
            .filter(|inj| !inj.is_off())
            .map(Arc::clone)
    })
}

/// Whether a live (non-off) fault context is installed on this thread.
#[must_use]
pub fn is_active() -> bool {
    current().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_faults::FaultPlan;

    #[test]
    fn scoped_installs_and_restores() {
        assert!(!is_active());
        let inj = Arc::new(FaultInjector::new(FaultPlan::smoke(), 1));
        scoped(Some(Arc::clone(&inj)), || {
            assert!(is_active());
            let seen = current().unwrap();
            assert_eq!(seen.fingerprint(), inj.fingerprint());
            // An inner None scope shadows the outer injector.
            scoped(None, || assert!(!is_active()));
            assert!(is_active());
        });
        assert!(!is_active());
    }

    #[test]
    fn off_injector_reads_as_no_context() {
        let off = Arc::new(FaultInjector::new(FaultPlan::off(), 1));
        scoped(Some(off), || {
            assert!(current().is_none(), "off plan must take the fault-free path");
        });
    }

    #[test]
    fn context_survives_a_panic_inside_the_scope() {
        let inj = Arc::new(FaultInjector::new(FaultPlan::smoke(), 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scoped(Some(inj), || panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(!is_active(), "the restore guard must run during unwind");
    }
}
