//! Cross-experiment population cache.
//!
//! `run_all` used to refabricate identical chip populations over and over:
//! every experiment that calls [`crate::runner::build_population`] (or
//! `Population::fabricate` directly) re-sampled the same deterministic
//! RNG streams into the same silicon. Fabrication is a pure function of
//! *(design, n_chips)*, so one baseline build per distinct key suffices —
//! callers get a clone of an [`Rc`]'d pristine population and mutate that.
//!
//! The cache is **scoped, not global**: it exists only inside a
//! [`scoped`] region (installed by `experiments::run_all`, `run_by_id`,
//! and the `repro` binary's experiment loop) and is dropped when the
//! outermost scope exits. Every run therefore starts cold, which keeps
//! repeated runs — and the observability suite's thread-count determinism
//! comparison — byte-identical. The cache is also thread-local; worker
//! threads inside `par_map_mut` never touch it.
//!
//! Keying compares the **full design** (style, seed domain, technology,
//! readout, pairing bias — everything `PufDesign::eq` sees) plus the chip
//! count. exp6's duty sweep shares a seed and style across designs that
//! differ only in one `TechParams` field, so a narrower key would alias
//! them; a linear scan over at most [`CAPACITY`] entries is cheaper than
//! hashing the design anyway.
//!
//! Caching is **lazy**: the first request for a key passes straight
//! through to `Population::fabricate` and only records the key; a baseline
//! is built and retained when the *second* request for the same key
//! arrives. Single-use designs — exp13's per-seed populations, exp6's six
//! duty-sweep designs — therefore pay nothing (no retained copy, no extra
//! clone), while every key that is actually reused costs one extra
//! fabrication amortized over all subsequent hits.

use std::cell::RefCell;
use std::rc::Rc;

use aro_circuit::ring::RoStyle;
use aro_ecc::area::{search_design, KeyGenSpec, PufAreaParams};
use aro_ecc::keygen::KeyGenerator;
use aro_puf::{MissionProfile, Population, PufDesign};

use crate::config::SimConfig;
use crate::runner::{build_population, measure_flip_timeline, FlipTimeline};

/// Maximum retained baselines per scope (LRU beyond this). Only keys
/// requested at least twice are ever retained; at paper scale the working
/// set is the two main-config populations plus exp6's two half-size
/// temperature-sweep populations.
pub const CAPACITY: usize = 8;

/// Maximum remembered seen-once keys (FIFO beyond this). A key holds a
/// `PufDesign` clone, not a population, so this bound is about lookup
/// cost, not memory.
const SEEN_CAPACITY: usize = 32;

type Entry = (PufDesign, usize, Rc<Population>);

/// Identity of one ECC provisioning problem. Exact float bit patterns:
/// provisioning is deterministic in its inputs, and two BERs that differ
/// in the last ulp are legitimately different problems.
type ProvisionKey = (u64, usize, u64, PufAreaParams);

fn provision_key(p_bit: f64, key_bits: usize, p_fail_target: f64, puf: &PufAreaParams) -> ProvisionKey {
    (p_bit.to_bits(), key_bits, p_fail_target.to_bits(), *puf)
}

#[derive(Default)]
struct Scope {
    /// Baselines for keys requested at least twice, LRU-ordered (oldest
    /// first).
    entries: Vec<Entry>,
    /// Keys requested exactly once, FIFO-ordered, awaiting promotion.
    seen_once: Vec<(PufDesign, usize)>,
    /// Memoized standard flip timelines, keyed by (config, style, fault
    /// fingerprint) — the fingerprint is 0 when no live fault context is
    /// installed, so zero-intensity runs share the fault-free entries. A
    /// timeline is a few hundred bytes, so these are kept unconditionally
    /// (no lazy promotion, no eviction) for the scope's lifetime.
    timelines: Vec<((SimConfig, RoStyle, u64), FlipTimeline)>,
    /// Memoized ECC design-space searches (exp5 sweeps four points; exp8
    /// and exp14 re-derive exp5's worst-case ARO point).
    specs: Vec<(ProvisionKey, Option<KeyGenSpec>)>,
    /// Memoized key generators built from those searches (shared by exp8
    /// and exp14, which provision for the same measured BER).
    generators: Vec<(ProvisionKey, Option<KeyGenerator>)>,
}

thread_local! {
    /// `None` = no scope active (plain fabrication, no caching).
    static CACHE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Runs `f` with a population cache installed. Re-entrant: nested scopes
/// join the outermost one instead of shadowing it, so `run_all` keeps its
/// cross-experiment cache even though each `run_by_id` opens its own scope.
pub fn scoped<R>(f: impl FnOnce() -> R) -> R {
    let installed = CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        if slot.is_none() {
            *slot = Some(Scope::default());
            true
        } else {
            false
        }
    });
    // Drop guard so a panicking experiment still clears the scope.
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            if self.0 {
                CACHE.with(|cache| *cache.borrow_mut() = None);
            }
        }
    }
    let _guard = Guard(installed);
    f()
}

/// Whether a cache scope is currently active on this thread.
#[must_use]
pub fn is_active() -> bool {
    CACHE.with(|cache| cache.borrow().is_some())
}

/// Fabricates (or re-uses) the population of `design` with `n_chips`
/// chips. Inside a [`scoped`] region the second request per key builds a
/// pristine baseline and every later request returns a clone of it;
/// outside any scope — and on any key's first request — this is exactly
/// `Population::fabricate`.
#[must_use]
pub fn fabricate(design: &PufDesign, n_chips: usize) -> Population {
    CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        let Some(scope) = slot.as_mut() else {
            return Population::fabricate(design, n_chips);
        };
        if let Some(index) = scope
            .entries
            .iter()
            .position(|(d, n, _)| *n == n_chips && d == design)
        {
            aro_obs::counter("sim.popcache_hits", 1);
            // LRU: refresh the entry's position before handing out a clone.
            let entry = scope.entries.remove(index);
            let population = (*entry.2).clone();
            scope.entries.push(entry);
            return population;
        }
        aro_obs::counter("sim.popcache_misses", 1);
        if let Some(index) = scope
            .seen_once
            .iter()
            .position(|(d, n)| *n == n_chips && d == design)
        {
            // Second request: the key earns a retained baseline.
            scope.seen_once.remove(index);
            let baseline = Rc::new(Population::fabricate(design, n_chips));
            let population = (*baseline).clone();
            if scope.entries.len() >= CAPACITY {
                scope.entries.remove(0);
            }
            scope.entries.push((design.clone(), n_chips, baseline));
            return population;
        }
        // First sighting: remember the key, don't pay for a copy.
        if scope.seen_once.len() >= SEEN_CAPACITY {
            scope.seen_once.remove(0);
        }
        scope.seen_once.push((design.clone(), n_chips));
        Population::fabricate(design, n_chips)
    })
}

/// Empties the active scope without tearing it down: retained baselines,
/// seen-once keys, memoized timelines, and provisioning results are all
/// dropped; later requests rebuild from scratch. The experiment harness
/// calls this after catching a panic — an experiment that died mid-build
/// may have left the cache holding entries whose construction it never
/// finished observing, and a cold cache is always correct (every entry is
/// a pure function of its key). No-op outside a scope.
pub fn reset() {
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            *scope = Scope::default();
            aro_obs::counter("sim.popcache_resets", 1);
        }
    });
}

/// Number of retained baselines in the active scope (0 without a scope).
/// Exposed for cache-behavior tests.
#[must_use]
pub fn retained_baselines() -> usize {
    CACHE.with(|cache| cache.borrow().as_ref().map_or(0, |s| s.entries.len()))
}

/// The ten-year flip timeline of a style under a config — the
/// paper-standard measurement (typical mission, standard checkpoints) that
/// exp2, exp5, exp8, exp13 and exp14 all start from. Deterministic in
/// *(config, style)*: the population comes from [`fabricate`] (a pristine
/// clone or a fresh build, bit-identical either way) and every noise
/// stream is seeded from the design, so inside a [`scoped`] region the
/// measurement runs once per key and later callers get a memoized copy.
#[must_use]
pub fn standard_flip_timeline(cfg: &SimConfig, style: RoStyle) -> FlipTimeline {
    // Fault schedules change the measurement, so a live fault context gets
    // its own cache entries (fingerprint 0 = fault-free, shared with
    // zero-intensity plans, which `faultctx::current` reports as `None`).
    let fault_fp = crate::faultctx::current().map_or(0, |inj| inj.fingerprint());
    let cached = CACHE.with(|cache| {
        cache.borrow().as_ref().and_then(|scope| {
            scope
                .timelines
                .iter()
                .find(|(key, _)| key.1 == style && key.2 == fault_fp && key.0 == *cfg)
                .map(|(_, timeline)| timeline.clone())
        })
    });
    if let Some(timeline) = cached {
        aro_obs::counter("sim.popcache_timeline_hits", 1);
        return timeline;
    }
    let mut population = build_population(cfg, style);
    let profile = MissionProfile::typical(population.design().tech());
    let timeline = measure_flip_timeline(
        &mut population,
        &profile,
        &aro_puf::lifetime::standard_checkpoints(),
    );
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            aro_obs::counter("sim.popcache_timeline_misses", 1);
            scope
                .timelines
                .push(((cfg.clone(), style, fault_fp), timeline.clone()));
        }
    });
    timeline
}

/// [`search_design`] memoized per scope. The search sweeps hundreds of
/// (repetition ⊗ BCH) points per call and is pure in its inputs, so one
/// run never needs to solve the same provisioning problem twice.
#[must_use]
pub fn provisioned_spec(
    p_bit: f64,
    key_bits: usize,
    p_fail_target: f64,
    puf: &PufAreaParams,
) -> Option<KeyGenSpec> {
    let key = provision_key(p_bit, key_bits, p_fail_target, puf);
    let cached = CACHE.with(|cache| {
        cache.borrow().as_ref().and_then(|scope| {
            scope
                .specs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, spec)| spec.clone())
        })
    });
    if let Some(spec) = cached {
        aro_obs::counter("sim.provision_hits", 1);
        return spec;
    }
    let spec = search_design(p_bit, key_bits, p_fail_target, puf);
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            aro_obs::counter("sim.provision_misses", 1);
            scope.specs.push((key, spec.clone()));
        }
    });
    spec
}

/// [`KeyGenerator::for_bit_error_rate`] memoized per scope, with its
/// internal searches also routed through [`provisioned_spec`]. exp8 and
/// exp14 both provision for the ARO design's worst-case ten-year BER;
/// inside one run the second caller gets a clone.
#[must_use]
pub fn provisioned_generator(
    p_bit: f64,
    key_bits: usize,
    p_fail_target: f64,
    puf: &PufAreaParams,
) -> Option<KeyGenerator> {
    let key = provision_key(p_bit, key_bits, p_fail_target, puf);
    let cached = CACHE.with(|cache| {
        cache.borrow().as_ref().and_then(|scope| {
            scope
                .generators
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, generator)| generator.clone())
        })
    });
    if let Some(generator) = cached {
        aro_obs::counter("sim.provision_hits", 1);
        return generator;
    }
    let generator =
        KeyGenerator::for_bit_error_rate_via(provisioned_spec, p_bit, key_bits, p_fail_target, puf);
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            scope.generators.push((key, generator.clone()));
        }
    });
    generator
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_circuit::ring::RoStyle;

    fn design(style: RoStyle, seed: u64) -> PufDesign {
        PufDesign::builder(style).n_ros(8).seed(seed).build()
    }

    #[test]
    fn scoped_reuse_is_bit_identical_to_fresh_fabrication() {
        let d = design(RoStyle::Conventional, 7);
        let fresh = Population::fabricate(&d, 3);
        let (first, second, third) = scoped(|| {
            let first = fabricate(&d, 3); // passthrough (first sighting)
            let second = fabricate(&d, 3); // promotion (baseline retained)
            let third = fabricate(&d, 3); // hit (clone of the baseline)
            (first, second, third)
        });
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(third, fresh);
    }

    #[test]
    fn baselines_are_retained_only_on_the_second_request() {
        let d = design(RoStyle::Conventional, 8);
        scoped(|| {
            let _ = fabricate(&d, 3);
            assert_eq!(retained_baselines(), 0, "first sighting must not retain");
            let _ = fabricate(&d, 3);
            assert_eq!(retained_baselines(), 1, "second request must promote");
            let _ = fabricate(&d, 3);
            assert_eq!(retained_baselines(), 1);
        });
        assert_eq!(retained_baselines(), 0);
    }

    #[test]
    fn different_seeds_and_styles_never_share() {
        scoped(|| {
            let a = fabricate(&design(RoStyle::Conventional, 1), 3);
            let b = fabricate(&design(RoStyle::Conventional, 2), 3);
            let c = fabricate(&design(RoStyle::AgingResistant, 1), 3);
            assert_ne!(a, b, "different seeds must fabricate differently");
            assert_ne!(a, c, "different styles must fabricate differently");
            assert_ne!(b, c);
        });
    }

    #[test]
    fn different_chip_counts_never_share() {
        let d = design(RoStyle::Conventional, 3);
        scoped(|| {
            let small = fabricate(&d, 2);
            let large = fabricate(&d, 4);
            assert_eq!(small.len(), 2);
            assert_eq!(large.len(), 4);
            // The shared prefix is still identical chips (same id streams).
            assert_eq!(small.chips(), &large.chips()[..2]);
        });
    }

    #[test]
    fn tech_difference_is_part_of_the_key() {
        // exp6's duty sweep: same seed/style/chip count, one tech field off.
        let base = design(RoStyle::AgingResistant, 4);
        let tweaked_tech = aro_device::params::TechParams {
            aro_idle_stress_fraction: 0.5,
            ..aro_device::params::TechParams::default()
        };
        let tweaked = PufDesign::builder(RoStyle::AgingResistant)
            .n_ros(8)
            .tech(tweaked_tech)
            .seed(4)
            .build();
        scoped(|| {
            let a = fabricate(&base, 2);
            let b = fabricate(&tweaked, 2);
            assert_eq!(a.design(), &base);
            assert_eq!(b.design(), &tweaked);
            assert_ne!(a.design(), b.design(), "tech params must split the key");
        });
    }

    #[test]
    fn no_scope_means_no_cache() {
        assert!(!is_active());
        let d = design(RoStyle::Conventional, 5);
        // Plain passthrough; nothing to assert beyond it working.
        let population = fabricate(&d, 2);
        assert_eq!(population.len(), 2);
        scoped(|| assert!(is_active()));
        assert!(!is_active());
    }

    #[test]
    fn nested_scopes_share_the_outer_cache() {
        let d = design(RoStyle::Conventional, 6);
        scoped(|| {
            let outer = fabricate(&d, 2);
            let inner = scoped(|| fabricate(&d, 2));
            assert_eq!(outer, inner);
            // The outer scope survives the nested region.
            assert!(is_active());
        });
        assert!(!is_active());
    }

    #[test]
    fn reset_empties_the_scope_but_keeps_it_usable() {
        let d = design(RoStyle::Conventional, 9);
        scoped(|| {
            let before = fabricate(&d, 2);
            let _ = fabricate(&d, 2);
            assert_eq!(retained_baselines(), 1);
            reset();
            assert_eq!(retained_baselines(), 0);
            assert!(is_active(), "reset must not tear the scope down");
            // The cache refills and still produces identical silicon.
            let _ = fabricate(&d, 2);
            let after = fabricate(&d, 2);
            assert_eq!(retained_baselines(), 1);
            assert_eq!(before, after);
        });
        reset(); // no-op outside a scope
        assert!(!is_active());
    }

    #[test]
    fn capacity_is_bounded_lru() {
        scoped(|| {
            // Request every key twice so each one gets promoted; the LRU
            // must still never hold more than CAPACITY baselines.
            for seed in 0..(CAPACITY as u64 + 3) {
                let d = design(RoStyle::Conventional, seed);
                let _ = fabricate(&d, 2);
                let _ = fabricate(&d, 2);
            }
            assert_eq!(retained_baselines(), CAPACITY);
            // The oldest entry was evicted; requesting it again must still
            // produce the deterministic result.
            let again = fabricate(&design(RoStyle::Conventional, 0), 2);
            assert_eq!(
                again,
                Population::fabricate(&design(RoStyle::Conventional, 0), 2)
            );
        });
    }
}
