//! Cross-experiment population cache.
//!
//! `run_all` used to refabricate identical chip populations over and over:
//! every experiment that calls [`crate::runner::build_population`] (or
//! `Population::fabricate` directly) re-sampled the same deterministic
//! RNG streams into the same silicon. Fabrication is a pure function of
//! *(design, n_chips)*, so one baseline build per distinct key suffices —
//! callers get a clone of an [`Rc`]'d pristine population and mutate that.
//!
//! The cache is **scoped, not global**: it exists only inside a
//! [`scoped`] region (installed by `experiments::run_all`, `run_by_id`,
//! and the `repro` binary's experiment loop) and is dropped when the
//! outermost scope exits. Every run therefore starts cold, which keeps
//! repeated runs — and the observability suite's thread-count determinism
//! comparison — byte-identical. The cache is also thread-local; worker
//! threads inside `par_map_mut` never touch it.
//!
//! Keying compares the **full design** (style, seed domain, technology,
//! readout, pairing bias — everything `PufDesign::eq` sees) plus the chip
//! count. exp6's duty sweep shares a seed and style across designs that
//! differ only in one `TechParams` field, so a narrower key would alias
//! them; a linear scan over at most [`CAPACITY`] entries is cheaper than
//! hashing the design anyway.
//!
//! Caching is **lazy**: the first request for a key passes straight
//! through to `Population::fabricate` and only records the key; a baseline
//! is built and retained when the *second* request for the same key
//! arrives. Single-use designs — exp13's per-seed populations, exp6's six
//! duty-sweep designs — therefore pay nothing (no retained copy, no extra
//! clone), while every key that is actually reused costs one extra
//! fabrication amortized over all subsequent hits.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::OnceLock;

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_ecc::area::{search_design, KeyGenSpec, PufAreaParams};
use aro_ecc::keygen::KeyGenerator;
use aro_metrics::bits::BitString;
use aro_puf::snapshot::{age_step_recorded, age_step_replayed, AgedStepSnapshot};
use aro_puf::{Chip, MissionProfile, MissionStepKey, Population, PufDesign};

use crate::config::SimConfig;
use crate::runner::{build_population, measure_flip_timeline, FlipTimeline};

/// Maximum retained baselines per scope (LRU beyond this). Only keys
/// requested at least twice are ever retained; at paper scale the working
/// set is the two main-config populations plus exp6's two half-size
/// temperature-sweep populations.
pub const CAPACITY: usize = 8;

/// Maximum remembered seen-once keys (FIFO beyond this). A key holds a
/// `PufDesign` clone, not a population, so this bound is about lookup
/// cost, not memory.
const SEEN_CAPACITY: usize = 32;

/// Maximum retained aged-step snapshots per scope (LRU beyond this). The
/// lifecycle sweeps' shared ten-year timeline needs ~160 live entries
/// (15 distinct aging prefixes × 8 chips for EXP-16, plus the single
/// ten-year step of the EXP-8/15 population); an entry is ~20 KB of wear
/// plus its telemetry tape (empty on un-instrumented runs).
pub const SNAPSHOT_CAPACITY: usize = 256;

/// Maximum retained single-chip baselines per scope (LRU beyond this).
/// The lifecycle sweeps share one ~20-chip population across EXP-8 and
/// EXP-15; a chip is a few MB of ring state, so the bound keeps the
/// cache within one population's footprint.
pub const CHIP_CAPACITY: usize = 24;

/// Maximum retained golden responses per scope (LRU beyond this).
const GOLDEN_CAPACITY: usize = 64;

type Entry = (PufDesign, usize, Rc<Population>);

/// Identity of one ECC provisioning problem. Exact float bit patterns:
/// provisioning is deterministic in its inputs, and two BERs that differ
/// in the last ulp are legitimately different problems.
type ProvisionKey = (u64, usize, u64, PufAreaParams);

fn provision_key(p_bit: f64, key_bits: usize, p_fail_target: f64, puf: &PufAreaParams) -> ProvisionKey {
    (p_bit.to_bits(), key_bits, p_fail_target.to_bits(), *puf)
}

#[derive(Default)]
struct Scope {
    /// Baselines for keys requested at least twice, LRU-ordered (oldest
    /// first).
    entries: Vec<Entry>,
    /// Keys requested exactly once, FIFO-ordered, awaiting promotion.
    seen_once: Vec<(PufDesign, usize)>,
    /// Memoized standard flip timelines, keyed by (config, style, fault
    /// fingerprint) — the fingerprint is 0 when no live fault context is
    /// installed, so zero-intensity runs share the fault-free entries. A
    /// timeline is a few hundred bytes, so these are kept unconditionally
    /// (no lazy promotion, no eviction) for the scope's lifetime.
    timelines: Vec<((SimConfig, RoStyle, u64), FlipTimeline)>,
    /// Memoized ECC design-space searches (exp5 sweeps four points; exp8
    /// and exp14 re-derive exp5's worst-case ARO point).
    specs: Vec<(ProvisionKey, Option<KeyGenSpec>)>,
    /// Memoized key generators built from those searches (shared by exp8
    /// and exp14, which provision for the same measured BER).
    generators: Vec<(ProvisionKey, Option<KeyGenerator>)>,
    /// Recorded aging steps, LRU-ordered (oldest first). Keyed by the
    /// silicon identity *(design, chip id)* plus the **full step-prefix
    /// sequence** — BTI equivalent-time accumulation is not additive, so
    /// two different partitions of the same calendar time are different
    /// wear histories. Fault plans are deliberately *not* part of the
    /// key: a snapshot records per-ring coverage, and replay ages any
    /// ring the recording and replaying trials disagree on live (see
    /// `aro_puf::snapshot`).
    snapshots: Vec<SnapshotEntry>,
    /// Pristine single-chip baselines, LRU-ordered. Fabrication is a
    /// pure function of *(design, id)*; EXP-8 and EXP-15 walk the same
    /// chips of the same design, so the second sweep clones instead of
    /// re-sampling the whole array.
    chips: Vec<(PufDesign, u64, Rc<Chip>)>,
    /// Memoized golden (noiseless) responses of pristine chips, keyed by
    /// *(design, chip id, environment, pairing)*, LRU-ordered.
    goldens: Vec<GoldenEntry>,
}

struct GoldenEntry {
    design: PufDesign,
    chip_id: u64,
    env: Environment,
    pairs: Vec<(usize, usize)>,
    golden: BitString,
}

struct SnapshotEntry {
    design: PufDesign,
    chip_id: u64,
    steps: Vec<MissionStepKey>,
    snapshot: Rc<AgedStepSnapshot>,
}

thread_local! {
    /// `None` = no scope active (plain fabrication, no caching).
    static CACHE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// Runs `f` with a population cache installed. Re-entrant: nested scopes
/// join the outermost one instead of shadowing it, so `run_all` keeps its
/// cross-experiment cache even though each `run_by_id` opens its own scope.
pub fn scoped<R>(f: impl FnOnce() -> R) -> R {
    let installed = CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        if slot.is_none() {
            *slot = Some(Scope::default());
            true
        } else {
            false
        }
    });
    // Drop guard so a panicking experiment still clears the scope.
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            if self.0 {
                CACHE.with(|cache| *cache.borrow_mut() = None);
            }
        }
    }
    let _guard = Guard(installed);
    f()
}

/// Whether a cache scope is currently active on this thread.
#[must_use]
pub fn is_active() -> bool {
    CACHE.with(|cache| cache.borrow().is_some())
}

/// Fabricates (or re-uses) the population of `design` with `n_chips`
/// chips. Inside a [`scoped`] region the second request per key builds a
/// pristine baseline and every later request returns a clone of it;
/// outside any scope — and on any key's first request — this is exactly
/// `Population::fabricate`.
#[must_use]
pub fn fabricate(design: &PufDesign, n_chips: usize) -> Population {
    CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        let Some(scope) = slot.as_mut() else {
            return Population::fabricate(design, n_chips);
        };
        if let Some(index) = scope
            .entries
            .iter()
            .position(|(d, n, _)| *n == n_chips && d == design)
        {
            aro_obs::counter("sim.popcache_hits", 1);
            // LRU: refresh the entry's position before handing out a clone.
            let entry = scope.entries.remove(index);
            let population = (*entry.2).clone();
            scope.entries.push(entry);
            return population;
        }
        aro_obs::counter("sim.popcache_misses", 1);
        if let Some(index) = scope
            .seen_once
            .iter()
            .position(|(d, n)| *n == n_chips && d == design)
        {
            // Second request: the key earns a retained baseline.
            scope.seen_once.remove(index);
            let baseline = Rc::new(Population::fabricate(design, n_chips));
            let population = (*baseline).clone();
            if scope.entries.len() >= CAPACITY {
                scope.entries.remove(0);
            }
            scope.entries.push((design.clone(), n_chips, baseline));
            return population;
        }
        // First sighting: remember the key, don't pay for a copy.
        if scope.seen_once.len() >= SEEN_CAPACITY {
            scope.seen_once.remove(0);
        }
        scope.seen_once.push((design.clone(), n_chips));
        Population::fabricate(design, n_chips)
    })
}

/// Empties the active scope without tearing it down: retained baselines,
/// seen-once keys, memoized timelines, and provisioning results are all
/// dropped; later requests rebuild from scratch. The experiment harness
/// calls this after catching a panic — an experiment that died mid-build
/// may have left the cache holding entries whose construction it never
/// finished observing, and a cold cache is always correct (every entry is
/// a pure function of its key). No-op outside a scope.
pub fn reset() {
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            *scope = Scope::default();
            aro_obs::counter("sim.popcache_resets", 1);
        }
    });
}

/// Number of retained baselines in the active scope (0 without a scope).
/// Exposed for cache-behavior tests.
#[must_use]
pub fn retained_baselines() -> usize {
    CACHE.with(|cache| cache.borrow().as_ref().map_or(0, |s| s.entries.len()))
}

/// Number of retained aged-step snapshots in the active scope (0 without
/// a scope). Exposed for cache-behavior tests.
#[must_use]
pub fn retained_snapshots() -> usize {
    CACHE.with(|cache| cache.borrow().as_ref().map_or(0, |s| s.snapshots.len()))
}

/// The aging history a chip has walked since fabrication (or its last
/// [`Chip::reset_to_fabricated`]) — the snapshot store's step-prefix key.
///
/// The caller owns the bookkeeping: start a fresh cursor whenever the
/// chip starts from fresh silicon, and route **every** aging step of the
/// trial through [`age_chip_snapshotted`] with the same cursor. A cursor
/// that skips a step would key snapshots against the wrong wear state.
#[derive(Debug, Clone, Default)]
pub struct AgeCursor {
    steps: Vec<MissionStepKey>,
}

impl AgeCursor {
    /// A cursor for a chip at fresh (just-fabricated) silicon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewinds the cursor to fresh silicon (pair with
    /// [`Chip::reset_to_fabricated`] when reusing a workspace chip).
    pub fn clear(&mut self) {
        self.steps.clear();
    }
}

thread_local! {
    /// Per-thread override of the snapshot kill switch (tests toggle it
    /// mid-process; the env default is read once).
    static SNAPSHOTS_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

fn snapshots_env_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("ARO_SNAPSHOTS").as_deref(),
            Ok("off" | "0" | "false")
        )
    })
}

/// Whether the aged-state snapshot store is live. Defaults to on; the
/// `ARO_SNAPSHOTS=off` environment variable (or a thread-local
/// [`set_snapshots_enabled`] override) disables it, turning
/// [`age_chip_snapshotted`] into a plain cold [`MissionProfile::age_chip`]
/// — the determinism smokes byte-compare the two modes.
#[must_use]
pub fn snapshots_enabled() -> bool {
    SNAPSHOTS_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(snapshots_env_default)
}

/// Overrides the snapshot kill switch on this thread: `Some(false)`
/// forces cold aging, `Some(true)` forces the store on, `None` restores
/// the `ARO_SNAPSHOTS` environment default. Test-only control surface —
/// production callers use the environment variable.
pub fn set_snapshots_enabled(on: Option<bool>) {
    SNAPSHOTS_OVERRIDE.with(|cell| cell.set(on));
}

/// [`MissionProfile::age_chip`] routed through the aged-state snapshot
/// store: the first trial to walk a given *(design, chip, step-prefix)*
/// records the step, every later trial replays it. Outside a [`scoped`]
/// region — or with snapshots disabled, see [`snapshots_enabled`] — this
/// is exactly `age_chip` (and the cursor still advances, so code paths
/// shared with un-scoped tests behave identically).
///
/// Byte-identity contract: responses, wear state, and telemetry match a
/// cold `age_chip` walk bit for bit, under any fault plan — see
/// [`aro_puf::snapshot`] for why replay is fault-safe.
pub fn age_chip_snapshotted(
    chip: &mut Chip,
    design: &PufDesign,
    profile: &MissionProfile,
    duration_s: f64,
    cursor: &mut AgeCursor,
) {
    let live = is_active() && snapshots_enabled();
    if live && !cursor.steps.is_empty() {
        // The reads since the previous step warmed this chip's kernels;
        // offer them to that step's snapshot so replays can preload.
        offer_kernel_hints(chip, design, &cursor.steps);
    }
    cursor.steps.push(profile.step_key(duration_s));
    if !live {
        profile.age_chip(chip, design, duration_s);
        return;
    }
    let chip_id = chip.id();
    let hit = CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        let scope = slot.as_mut()?;
        let index = scope.snapshots.iter().position(|entry| {
            entry.chip_id == chip_id && entry.steps == cursor.steps && entry.design == *design
        })?;
        // LRU: refresh the entry's position before handing out the Rc.
        let entry = scope.snapshots.remove(index);
        let snapshot = Rc::clone(&entry.snapshot);
        scope.snapshots.push(entry);
        Some(snapshot)
    });
    // Counters stay outside the recorded tape: the tap only runs inside
    // `age_step_recorded`, after the miss has been counted.
    if let Some(snapshot) = hit {
        aro_obs::counter("sim.snapshot_hits", 1);
        age_step_replayed(chip, design, profile, duration_s, &snapshot);
        return;
    }
    aro_obs::counter("sim.snapshot_misses", 1);
    let snapshot = age_step_recorded(chip, design, profile, duration_s);
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            if scope.snapshots.len() >= SNAPSHOT_CAPACITY {
                scope.snapshots.remove(0);
            }
            scope.snapshots.push(SnapshotEntry {
                design: design.clone(),
                chip_id,
                steps: cursor.steps.clone(),
                snapshot: Rc::new(snapshot),
            });
        }
    });
}

/// Offers a chip's warm kernels to the snapshot stored for `steps`
/// (no-op when no such snapshot exists or its hints are already filled).
fn offer_kernel_hints(chip: &Chip, design: &PufDesign, steps: &[MissionStepKey]) {
    let chip_id = chip.id();
    let snapshot = CACHE.with(|cache| {
        let slot = cache.borrow();
        let scope = slot.as_ref()?;
        scope
            .snapshots
            .iter()
            .find(|entry| {
                entry.chip_id == chip_id && entry.steps == steps && entry.design == *design
            })
            .map(|entry| Rc::clone(&entry.snapshot))
    });
    if let Some(snapshot) = snapshot {
        snapshot.harvest_kernel_hints(chip);
    }
}

/// Offers the chip's warm kernels to the snapshot its cursor currently
/// stands on. The lifecycle sweeps call this after a trial's *final*
/// reads — mid-trial steps are harvested automatically by the next
/// [`age_chip_snapshotted`] call, but the last step of a trial sees no
/// further aging, so without this call its replays would rebuild kernels
/// cold. No-op outside a scope or with snapshots disabled.
pub fn harvest_kernel_hints(chip: &Chip, design: &PufDesign, cursor: &AgeCursor) {
    if is_active() && snapshots_enabled() && !cursor.steps.is_empty() {
        offer_kernel_hints(chip, design, &cursor.steps);
    }
}

/// Fabricates (or clones) one chip of `design`. Inside a [`scoped`]
/// region the first request per *(design, id)* retains a pristine
/// baseline and every request returns a clone of it; outside a scope
/// this is exactly [`Chip::fabricate`]. EXP-8 and EXP-15 walk the same
/// chips of the same design, so the second sweep skips re-sampling the
/// whole array. Active in both snapshot modes — the clone is bitwise the
/// fabricated chip, so outputs are unchanged either way.
#[must_use]
pub fn fabricated_chip(design: &PufDesign, id: u64) -> Chip {
    CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        let Some(scope) = slot.as_mut() else {
            return Chip::fabricate(design, id);
        };
        if let Some(index) = scope
            .chips
            .iter()
            .position(|(d, i, _)| *i == id && d == design)
        {
            aro_obs::counter("sim.popcache_hits", 1);
            let entry = scope.chips.remove(index);
            let chip = (*entry.2).clone();
            scope.chips.push(entry);
            return chip;
        }
        aro_obs::counter("sim.popcache_misses", 1);
        let baseline = Rc::new(Chip::fabricate(design, id));
        let chip = (*baseline).clone();
        if scope.chips.len() >= CHIP_CAPACITY {
            scope.chips.remove(0);
        }
        scope.chips.push((design.clone(), id, baseline));
        chip
    })
}

/// [`Chip::golden_response`] memoized per scope for *pristine* chips
/// (fresh silicon, no faults). The golden response is a pure function of
/// *(design, chip id, environment, pairing)*; EXP-8 computes it for the
/// chips EXP-15 re-enrolls, so the second sweep reads it back instead of
/// re-deriving 2 500 ring frequencies. Aged or faulted chips bypass the
/// cache (their "golden" would not be the enrollment-time one).
#[must_use]
pub fn golden_response(
    chip: &Chip,
    design: &PufDesign,
    env: &Environment,
    pairs: &[(usize, usize)],
) -> BitString {
    if chip.age_s() != 0.0 || chip.faulted_ro_count() != 0 {
        return chip.golden_response(design, env, pairs);
    }
    let chip_id = chip.id();
    let cached = CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        let scope = slot.as_mut()?;
        let index = scope.goldens.iter().position(|entry| {
            entry.chip_id == chip_id
                && entry.env == *env
                && entry.pairs == pairs
                && entry.design == *design
        })?;
        aro_obs::counter("sim.popcache_hits", 1);
        let entry = scope.goldens.remove(index);
        let golden = entry.golden.clone();
        scope.goldens.push(entry);
        Some(golden)
    });
    if let Some(golden) = cached {
        return golden;
    }
    let golden = chip.golden_response(design, env, pairs);
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            aro_obs::counter("sim.popcache_misses", 1);
            if scope.goldens.len() >= GOLDEN_CAPACITY {
                scope.goldens.remove(0);
            }
            scope.goldens.push(GoldenEntry {
                design: design.clone(),
                chip_id,
                env: *env,
                pairs: pairs.to_vec(),
                golden: golden.clone(),
            });
        }
    });
    golden
}

/// The ten-year flip timeline of a style under a config — the
/// paper-standard measurement (typical mission, standard checkpoints) that
/// exp2, exp5, exp8, exp13 and exp14 all start from. Deterministic in
/// *(config, style)*: the population comes from [`fabricate`] (a pristine
/// clone or a fresh build, bit-identical either way) and every noise
/// stream is seeded from the design, so inside a [`scoped`] region the
/// measurement runs once per key and later callers get a memoized copy.
#[must_use]
pub fn standard_flip_timeline(cfg: &SimConfig, style: RoStyle) -> FlipTimeline {
    // Fault schedules change the measurement, so a live fault context gets
    // its own cache entries (fingerprint 0 = fault-free, shared with
    // zero-intensity plans, which `faultctx::current` reports as `None`).
    let fault_fp = crate::faultctx::current().map_or(0, |inj| inj.fingerprint());
    let cached = CACHE.with(|cache| {
        cache.borrow().as_ref().and_then(|scope| {
            scope
                .timelines
                .iter()
                .find(|(key, _)| key.1 == style && key.2 == fault_fp && key.0 == *cfg)
                .map(|(_, timeline)| timeline.clone())
        })
    });
    if let Some(timeline) = cached {
        aro_obs::counter("sim.popcache_timeline_hits", 1);
        return timeline;
    }
    let mut population = build_population(cfg, style);
    let profile = MissionProfile::typical(population.design().tech());
    let timeline = measure_flip_timeline(
        &mut population,
        &profile,
        &aro_puf::lifetime::standard_checkpoints(),
    );
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            aro_obs::counter("sim.popcache_timeline_misses", 1);
            scope
                .timelines
                .push(((cfg.clone(), style, fault_fp), timeline.clone()));
        }
    });
    timeline
}

/// [`search_design`] memoized per scope. The search sweeps hundreds of
/// (repetition ⊗ BCH) points per call and is pure in its inputs, so one
/// run never needs to solve the same provisioning problem twice.
#[must_use]
pub fn provisioned_spec(
    p_bit: f64,
    key_bits: usize,
    p_fail_target: f64,
    puf: &PufAreaParams,
) -> Option<KeyGenSpec> {
    let key = provision_key(p_bit, key_bits, p_fail_target, puf);
    let cached = CACHE.with(|cache| {
        cache.borrow().as_ref().and_then(|scope| {
            scope
                .specs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, spec)| spec.clone())
        })
    });
    if let Some(spec) = cached {
        aro_obs::counter("sim.provision_hits", 1);
        return spec;
    }
    let spec = search_design(p_bit, key_bits, p_fail_target, puf);
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            aro_obs::counter("sim.provision_misses", 1);
            scope.specs.push((key, spec.clone()));
        }
    });
    spec
}

/// [`KeyGenerator::for_bit_error_rate`] memoized per scope, with its
/// internal searches also routed through [`provisioned_spec`]. exp8 and
/// exp14 both provision for the ARO design's worst-case ten-year BER;
/// inside one run the second caller gets a clone.
#[must_use]
pub fn provisioned_generator(
    p_bit: f64,
    key_bits: usize,
    p_fail_target: f64,
    puf: &PufAreaParams,
) -> Option<KeyGenerator> {
    let key = provision_key(p_bit, key_bits, p_fail_target, puf);
    let cached = CACHE.with(|cache| {
        cache.borrow().as_ref().and_then(|scope| {
            scope
                .generators
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, generator)| generator.clone())
        })
    });
    if let Some(generator) = cached {
        aro_obs::counter("sim.provision_hits", 1);
        return generator;
    }
    let generator =
        KeyGenerator::for_bit_error_rate_via(provisioned_spec, p_bit, key_bits, p_fail_target, puf);
    CACHE.with(|cache| {
        if let Some(scope) = cache.borrow_mut().as_mut() {
            scope.generators.push((key, generator.clone()));
        }
    });
    generator
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_circuit::ring::RoStyle;

    fn design(style: RoStyle, seed: u64) -> PufDesign {
        PufDesign::builder(style).n_ros(8).seed(seed).build()
    }

    #[test]
    fn scoped_reuse_is_bit_identical_to_fresh_fabrication() {
        let d = design(RoStyle::Conventional, 7);
        let fresh = Population::fabricate(&d, 3);
        let (first, second, third) = scoped(|| {
            let first = fabricate(&d, 3); // passthrough (first sighting)
            let second = fabricate(&d, 3); // promotion (baseline retained)
            let third = fabricate(&d, 3); // hit (clone of the baseline)
            (first, second, third)
        });
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        assert_eq!(third, fresh);
    }

    #[test]
    fn baselines_are_retained_only_on_the_second_request() {
        let d = design(RoStyle::Conventional, 8);
        scoped(|| {
            let _ = fabricate(&d, 3);
            assert_eq!(retained_baselines(), 0, "first sighting must not retain");
            let _ = fabricate(&d, 3);
            assert_eq!(retained_baselines(), 1, "second request must promote");
            let _ = fabricate(&d, 3);
            assert_eq!(retained_baselines(), 1);
        });
        assert_eq!(retained_baselines(), 0);
    }

    #[test]
    fn different_seeds_and_styles_never_share() {
        scoped(|| {
            let a = fabricate(&design(RoStyle::Conventional, 1), 3);
            let b = fabricate(&design(RoStyle::Conventional, 2), 3);
            let c = fabricate(&design(RoStyle::AgingResistant, 1), 3);
            assert_ne!(a, b, "different seeds must fabricate differently");
            assert_ne!(a, c, "different styles must fabricate differently");
            assert_ne!(b, c);
        });
    }

    #[test]
    fn different_chip_counts_never_share() {
        let d = design(RoStyle::Conventional, 3);
        scoped(|| {
            let small = fabricate(&d, 2);
            let large = fabricate(&d, 4);
            assert_eq!(small.len(), 2);
            assert_eq!(large.len(), 4);
            // The shared prefix is still identical chips (same id streams).
            assert_eq!(small.chips(), &large.chips()[..2]);
        });
    }

    #[test]
    fn tech_difference_is_part_of_the_key() {
        // exp6's duty sweep: same seed/style/chip count, one tech field off.
        let base = design(RoStyle::AgingResistant, 4);
        let tweaked_tech = aro_device::params::TechParams {
            aro_idle_stress_fraction: 0.5,
            ..aro_device::params::TechParams::default()
        };
        let tweaked = PufDesign::builder(RoStyle::AgingResistant)
            .n_ros(8)
            .tech(tweaked_tech)
            .seed(4)
            .build();
        scoped(|| {
            let a = fabricate(&base, 2);
            let b = fabricate(&tweaked, 2);
            assert_eq!(a.design(), &base);
            assert_eq!(b.design(), &tweaked);
            assert_ne!(a.design(), b.design(), "tech params must split the key");
        });
    }

    #[test]
    fn no_scope_means_no_cache() {
        assert!(!is_active());
        let d = design(RoStyle::Conventional, 5);
        // Plain passthrough; nothing to assert beyond it working.
        let population = fabricate(&d, 2);
        assert_eq!(population.len(), 2);
        scoped(|| assert!(is_active()));
        assert!(!is_active());
    }

    #[test]
    fn nested_scopes_share_the_outer_cache() {
        let d = design(RoStyle::Conventional, 6);
        scoped(|| {
            let outer = fabricate(&d, 2);
            let inner = scoped(|| fabricate(&d, 2));
            assert_eq!(outer, inner);
            // The outer scope survives the nested region.
            assert!(is_active());
        });
        assert!(!is_active());
    }

    #[test]
    fn reset_empties_the_scope_but_keeps_it_usable() {
        let d = design(RoStyle::Conventional, 9);
        scoped(|| {
            let before = fabricate(&d, 2);
            let _ = fabricate(&d, 2);
            assert_eq!(retained_baselines(), 1);
            reset();
            assert_eq!(retained_baselines(), 0);
            assert!(is_active(), "reset must not tear the scope down");
            // The cache refills and still produces identical silicon.
            let _ = fabricate(&d, 2);
            let after = fabricate(&d, 2);
            assert_eq!(retained_baselines(), 1);
            assert_eq!(before, after);
        });
        reset(); // no-op outside a scope
        assert!(!is_active());
    }

    #[test]
    fn snapshotted_aging_is_bit_identical_to_cold_aging() {
        use aro_device::units::YEAR;
        let d = design(RoStyle::AgingResistant, 11);
        let profile = MissionProfile::typical(d.tech());
        let mut cold = Chip::fabricate(&d, 0);
        for _ in 0..3 {
            profile.age_chip(&mut cold, &d, 2.5 * YEAR);
        }
        scoped(|| {
            // First walk records one snapshot per step.
            let mut recorder = Chip::fabricate(&d, 0);
            let mut cursor = AgeCursor::new();
            for _ in 0..3 {
                age_chip_snapshotted(&mut recorder, &d, &profile, 2.5 * YEAR, &mut cursor);
            }
            assert_eq!(retained_snapshots(), 3);
            assert_eq!(recorder, cold);
            // Second walk replays; no new entries, same bits.
            let mut replayer = Chip::fabricate(&d, 0);
            cursor.clear();
            for _ in 0..3 {
                age_chip_snapshotted(&mut replayer, &d, &profile, 2.5 * YEAR, &mut cursor);
            }
            assert_eq!(retained_snapshots(), 3, "replays must not re-record");
            assert_eq!(replayer, cold);
        });
        assert_eq!(retained_snapshots(), 0, "store must die with the scope");
    }

    #[test]
    fn snapshot_keys_distinguish_step_partitions_and_silicon() {
        use aro_device::units::YEAR;
        let d = design(RoStyle::Conventional, 12);
        let profile = MissionProfile::typical(d.tech());
        scoped(|| {
            let mut one_step = Chip::fabricate(&d, 0);
            let mut cursor = AgeCursor::new();
            age_chip_snapshotted(&mut one_step, &d, &profile, 2.5 * YEAR, &mut cursor);
            // Same calendar time as two 1.25-year steps, but BTI
            // equivalent-time accumulation is not additive: the prefix
            // key must not alias the partitions.
            let mut two_steps = Chip::fabricate(&d, 0);
            cursor.clear();
            for _ in 0..2 {
                age_chip_snapshotted(&mut two_steps, &d, &profile, 1.25 * YEAR, &mut cursor);
            }
            assert_eq!(retained_snapshots(), 3);
            // Different chip of the same design: own entries.
            let mut other = Chip::fabricate(&d, 1);
            cursor.clear();
            age_chip_snapshotted(&mut other, &d, &profile, 2.5 * YEAR, &mut cursor);
            assert_eq!(retained_snapshots(), 4);
        });
    }

    #[test]
    fn capacity_is_bounded_lru() {
        scoped(|| {
            // Request every key twice so each one gets promoted; the LRU
            // must still never hold more than CAPACITY baselines.
            for seed in 0..(CAPACITY as u64 + 3) {
                let d = design(RoStyle::Conventional, seed);
                let _ = fabricate(&d, 2);
                let _ = fabricate(&d, 2);
            }
            assert_eq!(retained_baselines(), CAPACITY);
            // The oldest entry was evicted; requesting it again must still
            // produce the deterministic result.
            let again = fabricate(&design(RoStyle::Conventional, 0), 2);
            assert_eq!(
                again,
                Population::fabricate(&design(RoStyle::Conventional, 0), 2)
            );
        });
    }
}
