//! Experiment engine for the ARO-PUF (DATE 2014) reproduction.
//!
//! One module per paper experiment (see `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured):
//!
//! | Experiment | Reproduces |
//! |---|---|
//! | [`experiments::exp1`] | frequency degradation vs. time |
//! | [`experiments::exp2`] | % flipped bits vs. time (claim: 32 % vs 7.7 % at 10 y) |
//! | [`experiments::exp3`] | inter-chip HD distribution (claim: ~45 % vs 49.67 %) |
//! | [`experiments::exp4`] | randomness & environmental reliability |
//! | [`experiments::exp5`] | ECC + PUF area for a 128-bit key (claim: ~24×) |
//! | [`experiments::exp6`] | ablation: stress duty & temperature sweep |
//! | [`experiments::exp7`] | ablation: pairing / masking strategies |
//! | [`experiments::exp8`] | end-to-end key failure over 10 years |
//! | [`experiments::exp9`] | ablation: temporal majority voting vs. the aging floor |
//! | [`experiments::exp10`] | ablation: margin-threshold masking trade-off |
//! | [`experiments::exp11`] | ablation: correlated variation vs. pairing distance |
//! | [`experiments::exp12`] | authentication FAR/FRR after ten years |
//! | [`experiments::exp13`] | seed robustness of the headline claims |
//! | [`experiments::exp14`] | soft-decision decoding gain |
//! | [`experiments::exp15`] | key recovery under injected faults (chaos sweep) |
//! | [`experiments::exp16`] | self-healing helper-data refresh (interval sweep) |
//! | [`experiments::exp17`] | fault-aware provisioning envelope |
//! | [`experiments::exp18`] | fleet authentication service under fault storms |
//! | [`experiments::serve_bench`] | `repro serve-bench` — fleet auth throughput/accuracy |
//!
//! Every experiment consumes a [`config::SimConfig`] (use
//! [`config::SimConfig::paper`] for paper-scale populations,
//! [`config::SimConfig::quick`] in tests) and returns a
//! [`report::Report`] of tables and figures that the `repro` binary
//! prints.

pub mod config;
pub mod experiments;
pub mod faultctx;
pub mod fingerprint;
pub mod harness;
pub mod parallel;
pub mod popcache;
pub mod report;
pub mod runner;
pub mod servefleet;
pub mod summary;
pub mod table;

pub use config::SimConfig;
pub use report::Report;
pub use table::{Figure, Series, Table};
