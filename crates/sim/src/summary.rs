//! Human-readable run summaries for instrumented runs: renders the
//! `aro-obs` metrics registry and span timing table through the same
//! [`crate::table::Table`] machinery the experiments use, so `repro`
//! output stays visually uniform.

use std::collections::BTreeMap;

use aro_obs::{Registry, SpanStats};

use crate::table::Table;

fn ms(ns: u128) -> String {
    #[allow(clippy::cast_precision_loss)]
    let v = ns as f64 / 1e6;
    format!("{v:.3}")
}

/// The span timing table (name order): count, total, mean and max wall
/// time per span name.
#[must_use]
pub fn span_table(timings: &BTreeMap<String, SpanStats>) -> Table {
    let mut t = Table::new(
        "Run summary — spans",
        &["span", "count", "total ms", "mean ms", "max ms"],
    );
    for (name, stats) in timings {
        t.push_row(vec![
            name.clone(),
            stats.count.to_string(),
            ms(stats.total_ns),
            ms(stats.mean_ns()),
            ms(stats.max_ns),
        ]);
    }
    t
}

/// The metrics table (counters, then gauges, then histogram summaries,
/// then sketch summaries, each block in name order).
#[must_use]
pub fn metrics_table(registry: &Registry) -> Table {
    let mut t = Table::new("Run summary — metrics", &["metric", "kind", "value"]);
    for (name, value) in registry.counters() {
        t.push_row(vec![name.to_string(), "counter".into(), value.to_string()]);
    }
    for (name, value) in registry.gauges() {
        t.push_row(vec![name.to_string(), "gauge".into(), format!("{value:.6}")]);
    }
    for (name, h) in registry.histograms() {
        t.push_row(vec![
            name.to_string(),
            "histogram".into(),
            format!(
                "count={} mean={:.6} min={:.6} max={:.6}",
                h.count(),
                h.mean(),
                if h.count() == 0 { 0.0 } else { h.min() },
                if h.count() == 0 { 0.0 } else { h.max() },
            ),
        ]);
    }
    for (name, s) in registry.sketches() {
        t.push_row(vec![
            name.to_string(),
            "sketch".into(),
            format!(
                "count={} mean={:.6} p1={:.6} p50={:.6} p99={:.6}",
                s.count(),
                s.mean(),
                s.quantile(0.01),
                s.quantile(0.5),
                s.quantile(0.99),
            ),
        ]);
    }
    t
}

/// Renders the full run summary (spans + metrics) as markdown; empty
/// string when nothing was recorded, so un-instrumented runs print
/// nothing extra.
#[must_use]
pub fn render_run_summary(registry: &Registry, timings: &BTreeMap<String, SpanStats>) -> String {
    if registry.is_empty() && timings.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    if !timings.is_empty() {
        out.push_str(&span_table(timings).to_markdown());
        out.push('\n');
    }
    if !registry.is_empty() {
        out.push_str(&metrics_table(registry).to_markdown());
    }
    out
}

/// Summary of whatever the current thread has accumulated so far.
#[must_use]
pub fn current_run_summary() -> String {
    render_run_summary(&aro_obs::snapshot(), &aro_obs::timing_snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_renders_nothing() {
        assert_eq!(render_run_summary(&Registry::new(), &BTreeMap::new()), "");
    }

    #[test]
    fn summary_lists_each_metric_kind_and_span() {
        let mut registry = Registry::new();
        registry.add_counter("sim.chips_simulated", 42);
        registry.set_gauge("sim.age_seconds", 3.5);
        registry.observe("sim.flip_rate", 0.125);
        registry.sketch_observe("puf.ber", 0.01);
        let mut timings = BTreeMap::new();
        timings.insert(
            "exp.exp2".to_string(),
            SpanStats {
                count: 1,
                total_ns: 2_500_000,
                max_ns: 2_500_000,
            },
        );
        let md = render_run_summary(&registry, &timings);
        assert!(md.contains("Run summary — spans"));
        assert!(md.contains("exp.exp2"));
        assert!(md.contains("2.500"));
        assert!(md.contains("sim.chips_simulated"));
        assert!(md.contains("counter"));
        assert!(md.contains("gauge"));
        assert!(md.contains("histogram"));
        assert!(md.contains("count=1 mean=0.125"));
        assert!(md.contains("sketch"));
        assert!(md.contains("puf.ber"));
    }
}
