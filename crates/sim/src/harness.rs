//! Hardened experiment driver: panic isolation, bounded retries, and an
//! optional per-experiment watchdog.
//!
//! [`crate::experiments::run_all`] is the happy-path driver: one panic
//! anywhere aborts the whole sweep. This module is the production driver
//! behind `repro` — it runs each experiment inside
//! [`std::panic::catch_unwind`], resets the population cache after any
//! caught panic (a half-built run must not poison later experiments),
//! optionally retries, and collects whatever survived into a
//! [`RunOutcome`] so a run with one broken experiment still reports the
//! other fourteen plus an explicit failure table (degraded mode).
//!
//! **Determinism.** On the success path the harness is byte-transparent:
//! the default (inline, no watchdog) mode runs experiments on the calling
//! thread inside the caller's population-cache and fault scopes, exactly
//! like `run_all` would. Retries of *flaky-tolerant* experiments
//! (ablations and distribution studies, [`FLAKY_TOLERANT`]) re-run under
//! a seed derived as `SeedDomain::new(cfg.seed).child("retry").seed(n)` —
//! reproducible, but distinct per attempt; headline experiments always
//! retry under their original seed so a retried success is the same bytes
//! a clean run would have produced. The watchdog (opt-in) runs each
//! experiment on a worker thread so the caller can enforce a wall-clock
//! bound; the worker re-installs the caller's fault context and opens its
//! own population-cache scope, and since both caches are semantically
//! transparent the reports stay byte-identical — the price is cache reuse
//! *across* experiments, not correctness.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use aro_device::rng::SeedDomain;
use aro_ledger::{HealthStat, Ledger, LedgerRecord};
use aro_obs::Registry;

use crate::config::SimConfig;
use crate::fingerprint;
use crate::report::Report;
use crate::table::Table;

/// Experiments whose *claims* are statistical rather than seed-anchored
/// (ablation sweeps, distribution studies, seed-robustness itself): a
/// retry after a panic may legitimately re-run them under a derived seed.
/// The headline experiments (exp1, exp2, exp5, exp8, exp14–exp17) are
/// excluded — their numbers are quoted against the paper (or, for the
/// robustness capstones, against each other), so a retry must reproduce
/// the original seed's bytes or fail honestly.
pub const FLAKY_TOLERANT: [&str; 9] = [
    "exp3", "exp4", "exp6", "exp7", "exp9", "exp10", "exp11", "exp12", "exp13",
];

/// Knobs of the hardened driver. The default is maximally conservative:
/// no retries, no watchdog, no forced panics — panic isolation alone.
#[derive(Debug, Clone, Default)]
pub struct HarnessOptions {
    /// Extra attempts after a first failure (0 = fail fast).
    pub max_retries: usize,
    /// Wall-clock bound per attempt. `None` (default) runs inline on the
    /// calling thread; `Some` moves each attempt to a worker thread and
    /// abandons it if the bound passes.
    pub watchdog: Option<Duration>,
    /// Experiment ids forced to panic on every attempt — the chaos lever
    /// behind `repro --fail`, used to exercise degraded mode end to end.
    pub forced_panics: Vec<String>,
}

impl HarnessOptions {
    fn is_forced(&self, id: &str) -> bool {
        self.forced_panics.iter().any(|f| f == id)
    }
}

/// What a completed experiment hands the caller: a freshly computed
/// [`Report`], or the exact bytes a previous run recorded in the ledger.
///
/// Both render identically through [`std::fmt::Display`] — a replayed
/// record stores the `to_string()` of the original report verbatim, so
/// `repro --resume` output is byte-identical to an uninterrupted run.
#[derive(Debug, Clone)]
pub enum ExperimentOutput {
    /// Computed in this process.
    Fresh(Report),
    /// Replayed from a matching ledger record.
    Replayed {
        /// The original report's exact rendered markdown.
        report_md: String,
        /// The original report's CSV table dumps, in table order.
        csv: Vec<String>,
    },
}

impl ExperimentOutput {
    /// The live report, when this run actually computed one.
    #[must_use]
    pub fn as_report(&self) -> Option<&Report> {
        match self {
            ExperimentOutput::Fresh(report) => Some(report),
            ExperimentOutput::Replayed { .. } => None,
        }
    }

    /// Whether this output was replayed from a ledger.
    #[must_use]
    pub fn is_replayed(&self) -> bool {
        matches!(self, ExperimentOutput::Replayed { .. })
    }

    /// CSV dumps of the report tables, in table order.
    #[must_use]
    pub fn csv_tables(&self) -> Vec<String> {
        match self {
            ExperimentOutput::Fresh(report) => {
                report.tables().iter().map(Table::to_csv).collect()
            }
            ExperimentOutput::Replayed { csv, .. } => csv.clone(),
        }
    }
}

impl std::fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentOutput::Fresh(report) => report.fmt(f),
            ExperimentOutput::Replayed { report_md, .. } => f.write_str(report_md),
        }
    }
}

/// One experiment that completed, with its wall-clock time.
#[derive(Debug, Clone)]
pub struct ExperimentSuccess {
    /// Experiment id (`"exp1"`…).
    pub id: String,
    /// The report it produced (fresh or replayed).
    pub report: ExperimentOutput,
    /// Wall-clock time of the successful attempt, including any failed
    /// attempts before it. For a replayed experiment this is the
    /// *original* run's wall time, as recorded in the ledger.
    pub wall: Duration,
    /// Attempts consumed (1 + retries that preceded the success).
    pub attempts: usize,
}

/// One experiment that did not complete within its attempt budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentFailure {
    /// Experiment id.
    pub id: String,
    /// Attempts consumed (1 + retries).
    pub attempts: usize,
    /// The last attempt's panic message or watchdog verdict.
    pub error: String,
}

/// Everything a hardened run produced: the reports that completed and an
/// explicit record of the ones that did not.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Completed experiments, in request order.
    pub successes: Vec<ExperimentSuccess>,
    /// Failed experiments, in request order.
    pub failures: Vec<ExperimentFailure>,
    /// Ledger appends that failed (I/O). Ledger trouble never fails the
    /// run — the science completed; only the checkpoint is degraded.
    pub ledger_errors: Vec<String>,
}

impl RunOutcome {
    /// Some experiments failed, but at least one completed: the run is
    /// worth reporting in degraded mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failures.is_empty() && !self.successes.is_empty()
    }

    /// Every requested experiment failed.
    #[must_use]
    pub fn is_total_failure(&self) -> bool {
        self.successes.is_empty() && !self.failures.is_empty()
    }

    /// The degraded-mode failure table (`None` when nothing failed):
    /// one row per failed experiment with its attempt count and last
    /// error, rendered after the surviving reports.
    #[must_use]
    pub fn failure_table(&self) -> Option<Table> {
        if self.failures.is_empty() {
            return None;
        }
        let mut table = Table::new(
            "Experiments that did not complete",
            &["experiment", "attempts", "last error"],
        );
        for failure in &self.failures {
            table.push_row(vec![
                failure.id.clone(),
                failure.attempts.to_string(),
                failure.error.clone(),
            ]);
        }
        Some(table)
    }
}

/// Runs `ids` under panic isolation, returning every report that
/// completed plus an explicit failure record for every one that did not.
/// Opens a population-cache scope (a no-op inside an existing one), so a
/// bare call behaves like `run_all` with a safety net.
#[must_use]
pub fn run_experiments(cfg: &SimConfig, ids: &[&str], opts: &HarnessOptions) -> RunOutcome {
    run_experiments_ledgered(cfg, ids, opts, None)
}

/// [`run_experiments`] with an optional run ledger attached.
///
/// With a ledger, each experiment is fingerprinted
/// ([`fingerprint::experiment_fingerprint`]) before it runs:
///
/// * a matching success record in the ledger is **replayed** — the stored
///   report bytes are returned without recomputation and nothing new is
///   journalled;
/// * otherwise the experiment runs normally and its outcome (success
///   *or* failure, with wall time, attempt count, and the experiment's
///   obs-counter deltas — including the `faults.*` injection tallies) is
///   appended and flushed before the next experiment starts, so a killed
///   run loses at most the experiment in flight.
///
/// Ledger I/O failures are collected into [`RunOutcome::ledger_errors`]
/// and never abort the run.
#[must_use]
pub fn run_experiments_ledgered(
    cfg: &SimConfig,
    ids: &[&str],
    opts: &HarnessOptions,
    mut ledger: Option<&mut Ledger>,
) -> RunOutcome {
    crate::popcache::scoped(|| {
        let fault_fp = fingerprint::current_fault_fingerprint();
        let mut outcome = RunOutcome::default();
        for &id in ids {
            let fp = fingerprint::experiment_fingerprint(cfg, fault_fp, id);
            if let Some(record) = ledger.as_deref().and_then(|l| l.cached_success(fp)) {
                aro_obs::counter("sim.experiments_replayed", 1);
                outcome.successes.push(ExperimentSuccess {
                    id: id.to_string(),
                    report: ExperimentOutput::Replayed {
                        report_md: record
                            .report_md
                            .clone()
                            .expect("success records always carry their report"),
                        csv: record.csv.clone(),
                    },
                    wall: Duration::from_nanos(record.wall_ns),
                    attempts: record.attempts,
                });
                continue;
            }
            // Full registry snapshot (counters *and* sketches): the
            // record's metrics and health summaries are deltas over this
            // experiment alone.
            let before = if ledger.is_some() {
                aro_obs::snapshot()
            } else {
                Registry::new()
            };
            let started = Instant::now();
            match run_with_retries(cfg, id, opts) {
                Ok((report, attempts)) => {
                    let wall = started.elapsed();
                    if let Some(ledger) = ledger.as_deref_mut() {
                        let record = LedgerRecord::success(
                            fp,
                            id,
                            duration_ns(wall),
                            attempts,
                            report.to_string(),
                            report.tables().iter().map(Table::to_csv).collect(),
                            counter_delta(&before),
                        )
                        .with_health(health_delta(&before));
                        if let Err(e) = ledger.append(&record) {
                            outcome.ledger_errors.push(format!("{id}: {e}"));
                        }
                    }
                    outcome.successes.push(ExperimentSuccess {
                        id: id.to_string(),
                        report: ExperimentOutput::Fresh(report),
                        wall,
                        attempts,
                    });
                }
                Err(failure) => {
                    aro_obs::counter("sim.experiments_failed", 1);
                    if let Some(ledger) = ledger.as_deref_mut() {
                        let record = LedgerRecord::failure(
                            fp,
                            id,
                            duration_ns(started.elapsed()),
                            failure.attempts,
                            failure.error.clone(),
                            counter_delta(&before),
                        )
                        .with_health(health_delta(&before));
                        if let Err(e) = ledger.append(&record) {
                            outcome.ledger_errors.push(format!("{id}: {e}"));
                        }
                    }
                    outcome.failures.push(failure);
                }
            }
        }
        outcome
    })
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Counters accumulated since the `before` snapshot on this thread: the
/// experiment's own contribution, including its `faults.*` injection
/// tallies. Empty while obs is disabled (both snapshots are empty).
fn counter_delta(before: &Registry) -> BTreeMap<String, u64> {
    aro_obs::snapshot()
        .counters()
        .filter_map(|(name, v)| {
            let delta = v - before.counter(name);
            (delta > 0).then(|| (name.to_string(), delta))
        })
        .collect()
}

/// Sketch windows opened by this experiment, summarized for the ledger:
/// each sketch's exact delta over the `before` snapshot, collapsed to
/// the five [`HealthStat`] numbers. Sketches the experiment never
/// touched produce an empty delta and are dropped, so a record carries
/// only the health streams its own experiment fed.
fn health_delta(before: &Registry) -> BTreeMap<String, HealthStat> {
    let now = aro_obs::snapshot();
    let mut health = BTreeMap::new();
    for (name, sketch) in now.sketches() {
        let delta = match before.sketch(name) {
            Some(prev) if prev.config() == sketch.config() => sketch.delta_since(prev),
            _ => sketch.clone(),
        };
        if delta.count() > 0 {
            health.insert(name.to_string(), HealthStat::of(&delta));
        }
    }
    health
}

/// The config an attempt runs under: attempt 0 (and every attempt of a
/// headline experiment) uses the caller's config verbatim; retries of
/// flaky-tolerant experiments derive a fresh, reproducible seed.
#[must_use]
pub fn attempt_config(cfg: &SimConfig, id: &str, attempt: usize) -> SimConfig {
    if attempt == 0 || !FLAKY_TOLERANT.contains(&id) {
        cfg.clone()
    } else {
        let reseed = SeedDomain::new(cfg.seed).child("retry").seed(attempt as u64);
        cfg.clone().with_seed(reseed)
    }
}

/// Runs `id` through its attempt budget; a success reports the attempts
/// it took (1 + preceding failures) so the ledger can reconstruct how
/// hard-won a degraded-mode run was.
fn run_with_retries(
    cfg: &SimConfig,
    id: &str,
    opts: &HarnessOptions,
) -> Result<(Report, usize), ExperimentFailure> {
    let attempts = 1 + opts.max_retries;
    let mut last_error = String::new();
    for attempt in 0..attempts {
        let run_cfg = attempt_config(cfg, id, attempt);
        if attempt > 0 {
            aro_obs::counter("sim.experiment_retries", 1);
        }
        match run_once(&run_cfg, id, opts) {
            Ok(Some(report)) => return Ok((report, attempt + 1)),
            Ok(None) => {
                return Err(ExperimentFailure {
                    id: id.to_string(),
                    attempts: attempt + 1,
                    error: format!("unknown experiment id '{id}'"),
                })
            }
            Err(error) => {
                aro_obs::counter("sim.experiment_panics_caught", 1);
                // A panic mid-experiment may have left half-built cache
                // entries behind; a cold cache is always correct.
                crate::popcache::reset();
                last_error = error;
            }
        }
    }
    Err(ExperimentFailure {
        id: id.to_string(),
        attempts,
        error: last_error,
    })
}

/// One attempt. `Ok(None)` = unknown id; `Err` = panic or watchdog kill.
fn run_once(cfg: &SimConfig, id: &str, opts: &HarnessOptions) -> Result<Option<Report>, String> {
    let forced = opts.is_forced(id);
    let Some(timeout) = opts.watchdog else {
        // Inline (default): same thread, same scopes, same bytes as
        // `run_all` — catch_unwind is the only addition.
        return catch_unwind(AssertUnwindSafe(|| {
            if forced {
                panic!("forced panic requested for {id}");
            }
            crate::experiments::run_by_id(id, cfg)
        }))
        .map_err(panic_message);
    };

    // Watchdog: run the attempt on a worker we can abandon. The worker
    // re-installs the caller's fault context (thread-locals don't cross)
    // and opens its own cache scope inside run_by_id.
    let injector = crate::faultctx::current();
    let (tx, rx) = mpsc::channel();
    let worker_cfg = cfg.clone();
    let worker_id = id.to_string();
    let handle = std::thread::Builder::new()
        .name(format!("harness-{id}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                crate::faultctx::scoped(injector, || {
                    if forced {
                        panic!("forced panic requested for {worker_id}");
                    }
                    crate::experiments::run_by_id(&worker_id, &worker_cfg)
                })
            }))
            .map_err(panic_message);
            // The receiver is gone if the watchdog already gave up on us.
            let _ = tx.send(result);
        })
        .expect("spawning a harness worker thread");
    match rx.recv_timeout(timeout) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        Err(_) => {
            // Abandon the worker: it finishes (or panics) in the
            // background and its send lands in a closed channel.
            aro_obs::counter("sim.experiment_watchdog_kills", 1);
            Err(format!(
                "watchdog: still running after {:.1} s",
                timeout.as_secs_f64()
            ))
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        // Keep expected panics out of the test log without races: take no
        // global lock, just silence the hook for this test binary.
        let _ = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        let _ = std::panic::take_hook();
        result
    }

    #[test]
    fn clean_run_matches_the_plain_driver_byte_for_byte() {
        let cfg = SimConfig::quick();
        let plain = crate::popcache::scoped(|| {
            experiments::run_by_id("exp1", &cfg).unwrap()
        });
        let outcome = run_experiments(&cfg, &["exp1"], &HarnessOptions::default());
        assert!(outcome.failures.is_empty());
        assert!(!outcome.is_degraded() && !outcome.is_total_failure());
        assert_eq!(outcome.successes.len(), 1);
        assert_eq!(
            outcome.successes[0].report.to_string(),
            plain.to_string(),
            "panic isolation must not change a healthy run"
        );
        assert!(outcome.failure_table().is_none());
    }

    #[test]
    fn forced_panic_degrades_without_poisoning_the_rest() {
        let cfg = SimConfig::quick();
        let clean = run_experiments(&cfg, &["exp1", "exp3"], &HarnessOptions::default());
        let opts = HarnessOptions {
            forced_panics: vec!["exp1".to_string()],
            ..HarnessOptions::default()
        };
        let outcome = quiet_panics(|| run_experiments(&cfg, &["exp1", "exp3"], &opts));
        assert!(outcome.is_degraded());
        assert!(!outcome.is_total_failure());
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].id, "exp1");
        assert_eq!(outcome.failures[0].attempts, 1);
        assert!(outcome.failures[0].error.contains("forced panic"));
        // The survivor is byte-identical to its clean-run twin.
        assert_eq!(
            outcome.successes[0].report.to_string(),
            clean.successes[1].report.to_string(),
            "a caught panic must not leak into later experiments"
        );
        // And the popcache scope is still usable after the reset.
        let table = outcome.failure_table().expect("one failure");
        assert_eq!(table.n_rows(), 1);
        assert_eq!(table.cell(0, 0), "exp1");
    }

    #[test]
    fn total_failure_is_distinguished() {
        let cfg = SimConfig::quick();
        let opts = HarnessOptions {
            forced_panics: vec!["exp1".to_string()],
            ..HarnessOptions::default()
        };
        let outcome = quiet_panics(|| run_experiments(&cfg, &["exp1"], &opts));
        assert!(outcome.is_total_failure());
        assert!(!outcome.is_degraded());
    }

    #[test]
    fn unknown_id_fails_without_panicking() {
        let cfg = SimConfig::quick();
        let outcome = run_experiments(&cfg, &["exp99"], &HarnessOptions::default());
        assert!(outcome.is_total_failure());
        assert!(outcome.failures[0].error.contains("unknown experiment"));
    }

    #[test]
    fn retries_reseed_only_flaky_tolerant_experiments() {
        let cfg = SimConfig::quick();
        // Headline experiments retry under the original seed.
        assert_eq!(attempt_config(&cfg, "exp2", 0), cfg);
        assert_eq!(attempt_config(&cfg, "exp2", 3), cfg);
        // Flaky-tolerant ones derive a fresh, reproducible seed per attempt.
        assert_eq!(attempt_config(&cfg, "exp3", 0), cfg);
        let retry1 = attempt_config(&cfg, "exp3", 1);
        let retry2 = attempt_config(&cfg, "exp3", 2);
        assert_ne!(retry1.seed, cfg.seed);
        assert_ne!(retry1.seed, retry2.seed);
        assert_eq!(retry1, attempt_config(&cfg, "exp3", 1), "reseeds are stable");
        // Only the seed moves.
        assert_eq!(retry1.clone().with_seed(cfg.seed), cfg);
    }

    #[test]
    fn retry_budget_is_spent_and_recorded() {
        let cfg = SimConfig::quick();
        let opts = HarnessOptions {
            max_retries: 2,
            forced_panics: vec!["exp3".to_string()],
            ..HarnessOptions::default()
        };
        let outcome = quiet_panics(|| run_experiments(&cfg, &["exp3"], &opts));
        assert_eq!(outcome.failures[0].attempts, 3, "1 try + 2 retries");
    }

    #[test]
    fn watchdog_abandons_a_stuck_experiment_and_keeps_fast_ones() {
        let cfg = SimConfig::quick();
        let opts = HarnessOptions {
            // exp1 at quick scale completes in well under 30 s; a forced
            // panic exercises the worker's catch_unwind path too.
            watchdog: Some(Duration::from_secs(30)),
            forced_panics: vec!["exp3".to_string()],
            ..HarnessOptions::default()
        };
        let outcome = quiet_panics(|| run_experiments(&cfg, &["exp1", "exp3"], &opts));
        assert_eq!(outcome.successes.len(), 1);
        assert_eq!(outcome.failures.len(), 1);
        // A zero watchdog abandons everything immediately.
        let opts = HarnessOptions {
            watchdog: Some(Duration::from_millis(0)),
            ..HarnessOptions::default()
        };
        let outcome = run_experiments(&cfg, &["exp1"], &opts);
        assert!(outcome.is_total_failure());
        assert!(outcome.failures[0].error.contains("watchdog"));
    }
}
