//! Shared fleet-authentication trial runner behind EXP-18 and the
//! `repro serve-bench` mode.
//!
//! A trial stands up one [`aro_serve::AuthService`] for a small fleet:
//! factory enrollment on fresh silicon (CRP reference + key/helper
//! record per device), then field damage — hard ring faults, verifier
//! NVM erosion via [`aro_serve::ShardedStore::erode`], and aging
//! through the aged-state snapshot store — and finally
//! [`aro_serve::run_bench`] traffic. Everything is deterministic in
//! `(config seed, style, age, fault plan)`: the same
//! plan-parallel-fold discipline as every other sweep, so reports are
//! byte-identical at any `--threads N`.

use std::sync::atomic::{AtomicUsize, Ordering};

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_ecc::keygen::KeyGenerator;
use aro_faults::FaultInjector;
use aro_metrics::bits::BitString;
use aro_puf::{Challenge, Chip, MissionProfile, PairingStrategy, PufDesign};
use aro_serve::{
    run_bench, AuthService, BenchPlan, BenchStats, FleetContext, ServicePolicy, StoredRecord,
};

use crate::config::SimConfig;
use crate::popcache::{age_chip_snapshotted, AgeCursor};
use crate::runner::pct;

/// CRP response width served per authentication request. 64 bits keeps
/// the impostor acceptance tail negligible: at a 0.25 fractional-HD
/// threshold an impostor needs ≤ 16 of 64 coin-flip bits wrong
/// (p ≈ 3e-5 per attempt), where 32 bits (≤ 8 of 32, p ≈ 7e-3) lets
/// bounded-retry impostors through at observable rates. Clamped to the
/// design's pair budget for tiny test configurations.
pub const CRP_BITS: usize = 64;

/// Store shards (`aro-par`'s fixed-index chunk discipline).
pub const N_SHARDS: usize = 4;

/// Default store replication factor: two replicas per record survive
/// any single replica wipe or whole-shard loss per group, and the
/// maintenance scrub heals the survivor back to full strength.
pub const DEFAULT_REPLICAS: usize = 2;

/// Mission length the store-erosion fraction is normalized against.
const MISSION_YEARS: f64 = 10.0;

static REPLICA_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the store replication factor for subsequent trials
/// (`repro --replicas N`). 0 restores [`DEFAULT_REPLICAS`].
pub fn set_replica_override(replicas: usize) {
    REPLICA_OVERRIDE.store(replicas, Ordering::Relaxed);
}

/// The replication factor trials run with: the override if set, else
/// [`DEFAULT_REPLICAS`].
#[must_use]
pub fn replicas() -> usize {
    let forced = REPLICA_OVERRIDE.load(Ordering::Relaxed);
    if forced == 0 {
        DEFAULT_REPLICAS
    } else {
        forced
    }
}

/// The reusable bench for one cell style: fabricated fleet, per-device
/// challenge pair sets, and cached golden responses. Each trial rewinds
/// the silicon with [`Chip::reset_to_fabricated`] instead of
/// re-fabricating, exactly like EXP-16's sweep workspace.
pub struct FleetWorkspace {
    style: RoStyle,
    design: PufDesign,
    env: Environment,
    profile: MissionProfile,
    key_pairs: Vec<(usize, usize)>,
    challenge_pairs: Vec<Vec<(usize, usize)>>,
    chips: Vec<Chip>,
    key_goldens: Vec<BitString>,
    crp_goldens: Vec<BitString>,
}

impl FleetWorkspace {
    /// Fabricates a fleet of `fleet` chips of `style` sized for
    /// `generator`'s response width.
    #[must_use]
    pub fn new(cfg: &SimConfig, generator: &KeyGenerator, style: RoStyle, fleet: usize) -> Self {
        let _span = aro_obs::span("serve.workspace");
        let n_ros = 2 * generator.response_bits();
        let design = PufDesign::builder(style)
            .n_ros(n_ros)
            .seed(cfg.seed ^ 0xe18)
            .build();
        let env = Environment::nominal(design.tech());
        let profile = MissionProfile::typical(design.tech());
        let key_pairs = PairingStrategy::Neighbor.pairs(n_ros);
        let chips: Vec<Chip> = (0..fleet as u64)
            .map(|id| Chip::fabricate(&design, id))
            .collect();
        let crp_bits = CRP_BITS.min(n_ros / 2);
        let challenge_pairs: Vec<Vec<(usize, usize)>> = (0..fleet as u64)
            .map(|id| Challenge(cfg.seed ^ (0x5e7e << 16) ^ id).pairs(n_ros, crp_bits))
            .collect();
        let key_goldens: Vec<BitString> = chips
            .iter()
            .map(|chip| chip.golden_response(&design, &env, &key_pairs))
            .collect();
        let crp_goldens: Vec<BitString> = chips
            .iter()
            .zip(&challenge_pairs)
            .map(|(chip, pairs)| chip.golden_response(&design, &env, pairs))
            .collect();
        Self {
            style,
            design,
            env,
            profile,
            key_pairs,
            challenge_pairs,
            chips,
            key_goldens,
            crp_goldens,
        }
    }

    /// The fleet's cell style.
    #[must_use]
    pub fn style(&self) -> RoStyle {
        self.style
    }

    /// Fleet size.
    #[must_use]
    pub fn fleet(&self) -> usize {
        self.chips.len()
    }

    /// Runs one (fleet age, fault plan) trial: rewind the silicon,
    /// enroll the service at the factory, apply field damage (hard ring
    /// faults, store erosion scaled to the age fraction of the mission,
    /// snapshot-store aging), then drive `plan`'s traffic through
    /// [`run_bench`]. Deterministic in its arguments. `scope` labels the
    /// trial's audit scope (one sweep cell, e.g.
    /// `"ARO age=10y faults=storm@0.5"`) when the audit trail is on.
    #[must_use]
    pub fn run_trial(
        &mut self,
        cfg: &SimConfig,
        generator: &KeyGenerator,
        inj: Option<&FaultInjector>,
        age_years: f64,
        plan: &BenchPlan,
        scope: &str,
    ) -> BenchStats {
        let _span = aro_obs::span("serve.trial");
        let _trial = aro_serve::audit::scope_begin(scope);
        let policy = ServicePolicy {
            replicas: replicas(),
            ..ServicePolicy::default()
        };
        let mut service = AuthService::new(policy, self.chips.len(), N_SHARDS, cfg.seed);
        // Factory enrollment on fresh silicon: golden CRP reference plus
        // the key/helper record, sealed into its fixed store shard.
        let enroll_span = aro_obs::span("serve.enroll_fleet");
        for (slot, chip) in self.chips.iter_mut().enumerate() {
            let id = slot as u64;
            chip.reset_to_fabricated();
            let mut rng = self.design.seed_domain().child("serve-enroll").rng(id);
            let (key, helper) = generator.enroll(&self.key_goldens[slot], &mut rng);
            service.enroll(StoredRecord::new(
                id,
                self.challenge_pairs[slot].clone(),
                self.crp_goldens[slot].clone(),
                helper,
                key,
            ));
        }
        drop(enroll_span);
        // Field damage. Hard faults land up front (worst case: the whole
        // service life runs with them); the verifier's store erodes with
        // storage time, so the eroded fraction tracks the fleet age.
        if let Some(inj) = inj {
            for (slot, chip) in self.chips.iter_mut().enumerate() {
                for (ro, health) in inj.hard_faults(slot as u64, self.design.n_ros()) {
                    chip.set_ro_health(ro, health);
                }
            }
            let fraction = (age_years / MISSION_YEARS).clamp(0.0, 1.0);
            if fraction > 0.0 {
                let window = (age_years * 100.0) as u64;
                service.store_mut().erode(inj, window, fraction);
            }
        }
        // Aging walks the snapshot store: trials at the same age replay
        // one cached wear prefix instead of re-running the physics.
        let mut cursors: Vec<AgeCursor> = (0..self.chips.len()).map(|_| AgeCursor::new()).collect();
        if age_years > 0.0 {
            let _age_span = aro_obs::span("serve.age_fleet");
            for (chip, cursor) in self.chips.iter_mut().zip(&mut cursors) {
                age_chip_snapshotted(chip, &self.design, &self.profile, age_years * YEAR, cursor);
            }
        }
        let ctx = FleetContext {
            design: &self.design,
            env: &self.env,
            generator,
            key_pairs: &self.key_pairs,
        };
        let bench_span = aro_obs::span("serve.bench");
        let stats = run_bench(&mut service, &mut self.chips, &ctx, plan, inj);
        drop(bench_span);
        if age_years > 0.0 {
            for (chip, cursor) in self.chips.iter().zip(&cursors) {
                crate::popcache::harvest_kernel_hints(chip, &self.design, cursor);
            }
        }
        stats
    }
}

/// The shared serve-table column set (EXP-18 and `serve-bench`).
#[must_use]
pub fn table_columns() -> [&'static str; 12] {
    [
        "cell",
        "fleet age",
        "faults",
        "auths/s",
        "p50 µs",
        "p99 µs",
        "FAR",
        "FRR",
        "shed",
        "quarantined (healed)",
        "health",
        "store (scrubbed)",
    ]
}

/// Renders one trial as a table row under [`table_columns`].
#[must_use]
pub fn stats_row(style: RoStyle, age_years: f64, faults: &str, stats: &BenchStats) -> Vec<String> {
    vec![
        style.label().to_string(),
        format!("{age_years:.0} y"),
        faults.to_string(),
        format!("{:.0}", stats.auths_per_sec()),
        stats.p50_us.to_string(),
        stats.p99_us.to_string(),
        pct(stats.far()),
        pct(stats.frr()),
        stats.tallies.shed.to_string(),
        format!("{} ({})", stats.tallies.quarantines, stats.tallies.reenrolled),
        stats.final_state.label().to_string(),
        format!("{} ({})", stats.final_store_health.label(), stats.scrub_repairs),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::exp2;
    use crate::runner::puf_area_params;
    use aro_serve::HealthState;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    fn tiny_generator(cfg: &SimConfig) -> KeyGenerator {
        let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
        let ber = timeline.final_quantile(0.99);
        let params = puf_area_params(RoStyle::AgingResistant, 5);
        KeyGenerator::for_bit_error_rate(ber, cfg.key_bits, cfg.key_fail_target, &params)
            .expect("feasible")
    }

    #[test]
    fn fault_free_fresh_fleet_serves_cleanly() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let mut ws = FleetWorkspace::new(&cfg, &generator, RoStyle::AgingResistant, 4);
        let plan = BenchPlan {
            genuine_rounds: 3,
            impostor_rounds: 2,
        };
        let stats = ws.run_trial(&cfg, &generator, None, 0.0, &plan, "test fresh");
        assert_eq!(stats.final_state, HealthState::Healthy);
        assert_eq!(stats.impostor_accepted, 0, "FAR must be zero");
        assert_eq!(stats.genuine_denied, 0, "fresh fault-free fleet: no denials");
        assert!(stats.genuine_served > 0);
        assert!(stats.wall_us > 0 && stats.p99_us >= stats.p50_us);
    }

    #[test]
    fn trials_are_replayable_and_independent() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let mut ws = FleetWorkspace::new(&cfg, &generator, RoStyle::Conventional, 4);
        let plan = BenchPlan {
            genuine_rounds: 2,
            impostor_rounds: 1,
        };
        let inj = FaultInjector::new(aro_faults::FaultPlan::storm().scaled(0.5), cfg.seed);
        let first = ws.run_trial(&cfg, &generator, Some(&inj), 5.0, &plan, "test replay");
        let again = ws.run_trial(&cfg, &generator, Some(&inj), 5.0, &plan, "test replay");
        assert_eq!(first, again, "a trial must fully rewind the workspace");
    }
}
