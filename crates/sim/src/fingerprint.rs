//! Experiment fingerprints: the replay-eligibility key of the run ledger.
//!
//! A ledger record may stand in for a live run only when *everything*
//! that determines the run's bytes matches: the simulation config, the
//! fault plan and its seed, and the experiment itself. This module digests
//! exactly those inputs into one `u64`. Wall-clock, thread count, and
//! observability settings are deliberately excluded — they never change
//! report bytes (the determinism contract every perf PR re-proves against
//! the golden fixture).

use crate::config::SimConfig;

/// The splitmix64 finalizer — the same full-avalanche mix the fault-plan
/// fingerprint uses, re-implemented locally to keep the digest stable
/// even if `aro-faults` internals move.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Digests `(config, faults, experiment)` into the ledger key.
///
/// `fault_fingerprint` is `FaultInjector::fingerprint()` for a live
/// injector and `0` when no faults are installed; `faultctx` maps
/// zero-intensity plans to "not installed", so a `--faults off@0` run
/// shares fingerprints with a fault-free run — matching the byte-identity
/// the injector guarantees for such plans.
#[must_use]
pub fn experiment_fingerprint(cfg: &SimConfig, fault_fingerprint: u64, id: &str) -> u64 {
    let mut h = 0xa0b9_c2d4_e6f8_1357_u64;
    for field in [
        cfg.n_chips as u64,
        cfg.n_ros as u64,
        cfg.seed,
        cfg.key_bits as u64,
        cfg.key_fail_target.to_bits(),
        fault_fingerprint,
    ] {
        h = mix64(h ^ field);
    }
    for byte in id.bytes() {
        h = mix64(h ^ u64::from(byte));
    }
    h
}

/// The fault fingerprint of the calling scope: the installed injector's
/// digest, or `0` outside any (effective) fault scope.
#[must_use]
pub fn current_fault_fingerprint() -> u64 {
    crate::faultctx::current().map_or(0, |injector| injector.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_input_perturbs_the_digest() {
        let cfg = SimConfig::quick();
        let base = experiment_fingerprint(&cfg, 0, "exp1");
        assert_eq!(base, experiment_fingerprint(&cfg, 0, "exp1"), "stable");
        assert_ne!(base, experiment_fingerprint(&cfg, 0, "exp2"));
        assert_ne!(base, experiment_fingerprint(&cfg, 1, "exp1"));
        let reseeded = cfg.clone().with_seed(cfg.seed + 1);
        assert_ne!(base, experiment_fingerprint(&reseeded, 0, "exp1"));
        let mut retargeted = cfg.clone();
        retargeted.key_fail_target *= 0.5;
        assert_ne!(base, experiment_fingerprint(&retargeted, 0, "exp1"));
        let mut resized = cfg;
        resized.n_chips += 1;
        assert_ne!(base, experiment_fingerprint(&resized, 0, "exp1"));
    }

    #[test]
    fn no_fault_scope_reads_as_zero() {
        assert_eq!(current_fault_fingerprint(), 0);
    }

    #[test]
    fn ids_do_not_collide_by_concatenation() {
        // "exp1" + "1" vs "exp11": per-byte mixing must separate them.
        let cfg = SimConfig::quick();
        assert_ne!(
            experiment_fingerprint(&cfg, 0, "exp11"),
            experiment_fingerprint(&cfg, 0, "exp1")
        );
    }
}
