//! Simulation configuration shared by every experiment.

/// Population sizes, seeds, and scale knobs for an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Chips per population (the paper simulates 100).
    pub n_chips: usize,
    /// Rings per chip (256 → 128-bit responses with neighbour pairing).
    pub n_ros: usize,
    /// Master seed; every sub-stream derives from it.
    pub seed: u64,
    /// Key width for the area/key experiments.
    pub key_bits: usize,
    /// Key-failure target for ECC provisioning.
    pub key_fail_target: f64,
}

impl SimConfig {
    /// Paper-scale configuration: 100 chips × 256 rings, 128-bit keys at
    /// a 10⁻⁶ failure target.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            n_chips: 100,
            n_ros: 256,
            seed: 2014,
            key_bits: 128,
            key_fail_target: 1e-6,
        }
    }

    /// A small configuration for unit tests and smoke runs: the same
    /// physics, 10× fewer chips and 4× fewer rings.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            n_chips: 10,
            n_ros: 64,
            seed: 2014,
            key_bits: 128,
            key_fail_target: 1e-6,
        }
    }

    /// Returns a copy with a different seed (for seed-sensitivity runs).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Response bits per chip with neighbour pairing.
    #[must_use]
    pub fn response_bits(&self) -> usize {
        self.n_ros / 2
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_paper() {
        let cfg = SimConfig::paper();
        assert_eq!(cfg.n_chips, 100);
        assert_eq!(cfg.response_bits(), 128);
        assert_eq!(cfg.key_bits, 128);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = SimConfig::quick();
        let p = SimConfig::paper();
        assert!(q.n_chips < p.n_chips);
        assert!(q.n_ros < p.n_ros);
        assert_eq!(q.seed, p.seed, "same seed, comparable streams");
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let cfg = SimConfig::paper().with_seed(7);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.n_chips, 100);
    }
}
