//! Simulation configuration shared by every experiment.

/// A [`SimConfig`] that cannot drive a meaningful run, with the field
/// that broke it. Returned by [`SimConfig::validate`]; the `repro` CLI and
/// the experiment harness reject such configs up front instead of letting
/// a zero-sized population panic deep inside an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `n_chips` is zero — no population to measure.
    NoChips,
    /// `n_ros` is below 4 or odd — the array cannot form neighbour pairs.
    BadRingCount(usize),
    /// `key_bits` is zero — nothing to provision an ECC for.
    NoKeyBits,
    /// `key_fail_target` is not in `(0, 1)` — no ECC search can meet it.
    BadFailTarget(f64),
    /// A checkpoint list is empty — a timeline needs at least one stop.
    EmptyCheckpoints,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoChips => write!(f, "config needs at least one chip"),
            ConfigError::BadRingCount(n) => {
                write!(f, "config needs an even ring count >= 4, got {n}")
            }
            ConfigError::NoKeyBits => write!(f, "config needs a non-zero key width"),
            ConfigError::BadFailTarget(t) => {
                write!(f, "key failure target must be in (0, 1), got {t}")
            }
            ConfigError::EmptyCheckpoints => {
                write!(f, "timeline needs at least one checkpoint")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Population sizes, seeds, and scale knobs for an experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Chips per population (the paper simulates 100).
    pub n_chips: usize,
    /// Rings per chip (256 → 128-bit responses with neighbour pairing).
    pub n_ros: usize,
    /// Master seed; every sub-stream derives from it.
    pub seed: u64,
    /// Key width for the area/key experiments.
    pub key_bits: usize,
    /// Key-failure target for ECC provisioning.
    pub key_fail_target: f64,
}

impl SimConfig {
    /// Paper-scale configuration: 100 chips × 256 rings, 128-bit keys at
    /// a 10⁻⁶ failure target.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            n_chips: 100,
            n_ros: 256,
            seed: 2014,
            key_bits: 128,
            key_fail_target: 1e-6,
        }
    }

    /// A small configuration for unit tests and smoke runs: the same
    /// physics, 10× fewer chips and 4× fewer rings.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            n_chips: 10,
            n_ros: 64,
            seed: 2014,
            key_bits: 128,
            key_fail_target: 1e-6,
        }
    }

    /// Returns a copy with a different seed (for seed-sensitivity runs).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Response bits per chip with neighbour pairing.
    #[must_use]
    pub fn response_bits(&self) -> usize {
        self.n_ros / 2
    }

    /// Checks that this configuration can drive a run: a non-empty
    /// population, a pairable array, and a satisfiable key spec.
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_chips == 0 {
            return Err(ConfigError::NoChips);
        }
        if self.n_ros < 4 || !self.n_ros.is_multiple_of(2) {
            return Err(ConfigError::BadRingCount(self.n_ros));
        }
        if self.key_bits == 0 {
            return Err(ConfigError::NoKeyBits);
        }
        if !(self.key_fail_target > 0.0 && self.key_fail_target < 1.0) {
            return Err(ConfigError::BadFailTarget(self.key_fail_target));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_paper() {
        let cfg = SimConfig::paper();
        assert_eq!(cfg.n_chips, 100);
        assert_eq!(cfg.response_bits(), 128);
        assert_eq!(cfg.key_bits, 128);
    }

    #[test]
    fn quick_config_is_smaller() {
        let q = SimConfig::quick();
        let p = SimConfig::paper();
        assert!(q.n_chips < p.n_chips);
        assert!(q.n_ros < p.n_ros);
        assert_eq!(q.seed, p.seed, "same seed, comparable streams");
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let cfg = SimConfig::paper().with_seed(7);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.n_chips, 100);
    }

    #[test]
    fn stock_configs_validate() {
        assert_eq!(SimConfig::paper().validate(), Ok(()));
        assert_eq!(SimConfig::quick().validate(), Ok(()));
    }

    #[test]
    fn validation_names_the_broken_field() {
        let mut cfg = SimConfig::quick();
        cfg.n_chips = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoChips));

        let mut cfg = SimConfig::quick();
        cfg.n_ros = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::BadRingCount(0)));
        cfg.n_ros = 7;
        assert_eq!(cfg.validate(), Err(ConfigError::BadRingCount(7)));

        let mut cfg = SimConfig::quick();
        cfg.key_bits = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::NoKeyBits));

        let mut cfg = SimConfig::quick();
        cfg.key_fail_target = 0.0;
        assert_eq!(cfg.validate(), Err(ConfigError::BadFailTarget(0.0)));
        cfg.key_fail_target = 1.5;
        assert_eq!(cfg.validate(), Err(ConfigError::BadFailTarget(1.5)));
    }

    #[test]
    fn config_errors_render_for_cli_use() {
        assert!(ConfigError::NoChips.to_string().contains("chip"));
        assert!(ConfigError::BadRingCount(7).to_string().contains('7'));
        assert!(ConfigError::EmptyCheckpoints.to_string().contains("checkpoint"));
    }
}
