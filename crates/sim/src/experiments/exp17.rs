//! EXP-17 — fault-aware provisioning: the area cost of storm tolerance.
//!
//! EXP-5 provisions the ECC against the *aging* BER alone — the implicit
//! assumption being that the field is otherwise kind. EXP-15 shows it is
//! not. This experiment extends the design-space search to a **(BER,
//! fault-rate) envelope**: for each storm intensity it re-measures the
//! ten-year flip timeline *with the fault layer live* (supply
//! excursions, RTN bursts, and dead/stuck rings land in the measured
//! statistics, exactly as a hostile qualification lot would show them),
//! folds the counter-glitch rate in analytically (a glitch flips a
//! response bit independently of the physics:
//! `aro_ecc::area::compose_error_rates`), and provisions the cheapest
//! code for the composed envelope.
//!
//! The deliverable is the **area premium**: how many more gate
//! equivalents a storm-rated key generator costs than the fault-free
//! provisioning of the same silicon. Helper-data erasures are deliberately
//! *not* in the envelope — no code rate fixes a corrupted offset bit
//! (EXP-15's lesson); they are the lifecycle's job (erasure-aware
//! decoding + refresh, EXP-16), which is what makes this split of labor
//! provisioning-complete: codes buy response-side margin, the lifecycle
//! buys stored-bit integrity.

use std::sync::Arc;

use aro_circuit::ring::RoStyle;
use aro_ecc::area::{compose_error_rates, KeyGenSpec};
use aro_faults::{FaultInjector, FaultPlan};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// Swept storm intensities (zero = EXP-5's fault-free baseline).
pub const INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

/// One point of the (BER, fault-rate) provisioning envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopePoint {
    /// Fraction of the full storm plan applied while measuring.
    pub intensity: f64,
    /// 99th-percentile ten-year BER measured with the fault layer live.
    pub measured_ber: f64,
    /// The plan's per-bit counter-glitch probability (composed in
    /// analytically).
    pub glitch_rate: f64,
    /// The composed envelope BER the search provisions for.
    pub envelope_ber: f64,
    /// The winning design point, or `None` when no swept code meets the
    /// failure target at this envelope.
    pub spec: Option<KeyGenSpec>,
}

/// Measures the faulted flip timeline and provisions the ARO design for
/// one intensity. The measurement runs inside a scoped fault context, so
/// the population cache keys it by the injector fingerprint — the
/// fault-free cache entries are never aliased.
#[must_use]
pub fn provision_for_intensity(cfg: &SimConfig, intensity: f64) -> EnvelopePoint {
    let plan = FaultPlan::storm().scaled(intensity);
    let inj = FaultInjector::new(plan, cfg.seed);
    let injector = if inj.is_off() { None } else { Some(Arc::new(inj)) };
    let timeline = crate::faultctx::scoped(injector, || {
        exp2::flip_timeline(cfg, RoStyle::AgingResistant)
    });
    let measured_ber = timeline.final_quantile(0.99);
    let glitch_rate = plan.glitch_prob;
    let envelope_ber = compose_error_rates(measured_ber, glitch_rate);
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let spec = crate::popcache::provisioned_spec(
        envelope_ber,
        cfg.key_bits,
        cfg.key_fail_target,
        &params,
    );
    EnvelopePoint {
        intensity,
        measured_ber,
        glitch_rate,
        envelope_ber,
        spec,
    }
}

/// Runs EXP-17.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-17", "Fault-aware provisioning envelope");

    let points: Vec<EnvelopePoint> = INTENSITIES
        .iter()
        .map(|&intensity| provision_for_intensity(cfg, intensity))
        .collect();
    let baseline_ge = points
        .first()
        .and_then(|p| p.spec.as_ref())
        .map(KeyGenSpec::total_ge);

    let mut table = Table::new(
        "ARO-PUF provisioning for the (aging BER, fault rate) envelope \
         (99th-percentile chip, 1e-6 key failure)",
        &[
            "intensity",
            "measured BER",
            "glitch rate",
            "envelope BER",
            "repetition",
            "BCH (n,k,t)",
            "raw bits",
            "total GE",
            "area vs fault-free",
        ],
    );
    for point in &points {
        let (rep, bch, raw, total, ratio) = match &point.spec {
            Some(s) => (
                format!("{}x", s.rep_r),
                if s.bch_t == 0 {
                    "-".to_string()
                } else {
                    format!("BCH({},{},{})", s.bch_n, s.bch_k, s.bch_t)
                },
                s.raw_bits.to_string(),
                format!("{:.0}", s.total_ge()),
                baseline_ge.map_or("-".to_string(), |b| format!("{:.2}x", s.total_ge() / b)),
            ),
            None => (
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "infeasible".to_string(),
            ),
        };
        table.push_row(vec![
            format!("{:.2}", point.intensity),
            pct(point.measured_ber),
            pct(point.glitch_rate),
            pct(point.envelope_ber),
            rep,
            bch,
            raw,
            total,
            ratio,
        ]);
    }
    report.push_table(table);

    match (
        baseline_ge,
        points.last().and_then(|p| p.spec.as_ref()),
    ) {
        (Some(baseline), Some(storm_spec)) => report.push_note(format!(
            "storm tolerance is a provisioning line item: rating the same silicon for the \
             full-storm envelope costs {:.2}x the fault-free key generator's area \
             ({:.0} vs {:.0} GE)",
            storm_spec.total_ge() / baseline,
            storm_spec.total_ge(),
            baseline,
        )),
        (_, None) => report.push_note(
            "the full-storm envelope exceeds the swept code space — no repetition ⊗ BCH \
             point meets 1e-6 there; pair a lighter rating with the EXP-16 lifecycle instead",
        ),
        (None, _) => report.push_note(
            "no feasible fault-free baseline — increase the code search space",
        ),
    }
    report.push_note(
        "the envelope covers response-side faults only (excursions, bursts, hard rings in \
         the measured timeline; glitches composed analytically): helper-data erasures \
         defeat any code rate and are handled by the EXP-16 lifecycle, not by provisioning",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    #[test]
    fn zero_intensity_matches_the_fault_free_provisioning() {
        let cfg = tiny_cfg();
        let point = provision_for_intensity(&cfg, 0.0);
        assert_eq!(point.glitch_rate, 0.0);
        assert_eq!(point.measured_ber, point.envelope_ber);
        // Identical to exp5's ARO path at the same quantile.
        let timeline = exp2::flip_timeline(&cfg, RoStyle::AgingResistant);
        assert_eq!(point.measured_ber, timeline.final_quantile(0.99));
    }

    #[test]
    fn envelopes_widen_and_cost_area_with_intensity() {
        let cfg = tiny_cfg();
        let clean = provision_for_intensity(&cfg, 0.0);
        let storm = provision_for_intensity(&cfg, 1.0);
        assert!(
            storm.envelope_ber > clean.envelope_ber,
            "storm envelope {} must exceed clean {}",
            storm.envelope_ber,
            clean.envelope_ber
        );
        let clean_spec = clean.spec.expect("fault-free point feasible");
        if let Some(storm_spec) = storm.spec {
            assert!(
                storm_spec.total_ge() >= clean_spec.total_ge(),
                "storm rating cannot be cheaper"
            );
        }
    }

    #[test]
    fn provisioning_is_replayable() {
        let cfg = tiny_cfg();
        assert_eq!(
            provision_for_intensity(&cfg, 0.5),
            provision_for_intensity(&cfg, 0.5)
        );
    }

    #[test]
    fn report_covers_every_intensity_with_verdict_notes() {
        let report = run(&tiny_cfg());
        assert_eq!(report.tables()[0].n_rows(), INTENSITIES.len());
        assert_eq!(report.notes().len(), 2);
        assert_eq!(report.tables()[0].cell(0, 8), "1.00x");
    }
}
