//! EXP-11 — ablation: spatially correlated variation vs. pairing
//! distance.
//!
//! The calibrated headline model carries its systematic variation in a
//! smooth gradient. Real dies also show mid-range correlated variation
//! (exponential kernel). This experiment switches that field on
//! ([`aro_device::spatial::CorrelatedField`]) and compares neighbour
//! pairing against cross-die pairing: neighbours share the correlated
//! component, so it cancels in the comparison and the response stays
//! driven by white mismatch; distant pairs absorb the field into their
//! margins, inflating margins (fewer aging flips) but importing die-level
//! structure. It is the quantitative form of the folklore rule "compare
//! adjacent ROs".

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::params::TechParams;
use aro_device::units::YEAR;
use aro_metrics::quality::inter_chip_hd;
use aro_metrics::stats::Summary;
use aro_puf::{Enrollment, MissionProfile, PairingStrategy, PufDesign};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::pct;
use crate::table::Table;

/// The correlated-field strengths swept, in volts.
const FIELD_SIGMAS: [f64; 3] = [0.0, 0.01, 0.02];

/// One (field strength, pairing) design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationPoint {
    /// Correlated-field sigma in volts.
    pub sigma_v: f64,
    /// Pairing strategy label.
    pub pairing: String,
    /// Mean enrollment margin (relative frequency distance).
    pub mean_margin: f64,
    /// Mean ten-year flip rate.
    pub flip_rate: f64,
    /// Mean inter-chip HD of fresh responses.
    pub inter_hd: f64,
}

/// Evaluates one design point.
#[must_use]
pub fn evaluate(cfg: &SimConfig, sigma_v: f64, strategy: &PairingStrategy) -> CorrelationPoint {
    let tech = TechParams {
        sigma_vth_correlated: sigma_v,
        ..TechParams::default()
    };
    let design = PufDesign::builder(RoStyle::Conventional)
        .n_ros(cfg.n_ros)
        .tech(tech)
        .seed(cfg.seed ^ 0xe11)
        .build();
    let n_chips = (cfg.n_chips / 2).max(6).min(cfg.n_chips);
    let mut population = crate::popcache::fabricate(&design, n_chips);
    let env = Environment::nominal(design.tech());

    let inter_hd = inter_chip_hd(&population.golden_responses(&env, strategy)).mean();
    let enrollments: Vec<Enrollment> = population.enroll_all(&env, strategy);
    let mean_margin = Summary::of(
        &enrollments
            .iter()
            .flat_map(|e| e.margins_rel().iter().copied())
            .collect::<Vec<_>>(),
    )
    .mean();
    population.age_all(&MissionProfile::typical(design.tech()), 10.0 * YEAR);
    let design = population.design().clone();
    let flip_rate = enrollments
        .iter()
        .zip(population.chips_mut())
        .map(|(e, chip)| e.flip_rate_now(chip, &design, &env))
        .sum::<f64>()
        / n_chips as f64;

    CorrelationPoint {
        sigma_v,
        pairing: strategy.label(),
        mean_margin,
        flip_rate,
        inter_hd,
    }
}

/// Runs EXP-11.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new(
        "EXP-11",
        "Spatially correlated variation vs. pairing distance",
    );
    let mut table = Table::new(
        "Conventional cell under an exponential-kernel correlated field",
        &[
            "field sigma",
            "pairing",
            "mean margin",
            "10-y flips",
            "inter-chip HD",
        ],
    );
    let mut points = Vec::new();
    for &sigma in &FIELD_SIGMAS {
        for strategy in [PairingStrategy::Neighbor, PairingStrategy::Distant] {
            let p = evaluate(cfg, sigma, &strategy);
            table.push_row(vec![
                format!("{:.0} mV", sigma * 1000.0),
                p.pairing.clone(),
                pct(p.mean_margin),
                pct(p.flip_rate),
                pct(p.inter_hd),
            ]);
            points.push(p);
        }
    }
    report.push_table(table);

    // Margin gains relative to the field-free baseline.
    let gain = |with: &CorrelationPoint, without: &CorrelationPoint| {
        with.mean_margin / without.mean_margin
    };
    let neighbor_gain = gain(&points[4], &points[0]);
    let distant_gain = gain(&points[5], &points[1]);
    report.push_note(format!(
        "a 20 mV correlated field inflates enrollment margins {distant_gain:.2}x for \
         cross-die pairs but only {neighbor_gain:.2}x for neighbours (which share most of \
         the field and cancel it in the comparison); the extra margin cuts aging flips, \
         but it is *die structure*, not device entropy — an attacker who models the \
         spatial process predicts it, which is why neighbour pairing remains the \
         conservative choice",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distant_pairs_gain_more_margin_from_the_field_than_neighbors() {
        let cfg = SimConfig::quick();
        let base_neighbor = evaluate(&cfg, 0.0, &PairingStrategy::Neighbor);
        let field_neighbor = evaluate(&cfg, 0.02, &PairingStrategy::Neighbor);
        let base_distant = evaluate(&cfg, 0.0, &PairingStrategy::Distant);
        let field_distant = evaluate(&cfg, 0.02, &PairingStrategy::Distant);
        let neighbor_gain = field_neighbor.mean_margin / base_neighbor.mean_margin;
        let distant_gain = field_distant.mean_margin / base_distant.mean_margin;
        assert!(
            distant_gain > 1.1 * neighbor_gain,
            "distant gain {distant_gain} must exceed neighbour gain {neighbor_gain}: \
             neighbours share (and cancel) most of the field"
        );
        assert!(field_distant.mean_margin > 1.3 * base_distant.mean_margin);
    }

    #[test]
    fn field_inflated_margins_reduce_aging_flips() {
        // Same pairing, with vs without the field: extra margin (from die
        // structure) directly buys aging reliability.
        let cfg = SimConfig::quick();
        let without = evaluate(&cfg, 0.0, &PairingStrategy::Distant);
        let with = evaluate(&cfg, 0.02, &PairingStrategy::Distant);
        assert!(
            with.flip_rate < without.flip_rate,
            "field {} vs baseline {}",
            with.flip_rate,
            without.flip_rate
        );
    }

    #[test]
    fn uniqueness_stays_sane_under_the_field() {
        let cfg = SimConfig::quick();
        for sigma in [0.0, 0.02] {
            let p = evaluate(&cfg, sigma, &PairingStrategy::Neighbor);
            assert!(p.inter_hd > 0.3 && p.inter_hd < 0.7, "HD {}", p.inter_hd);
        }
    }
}
