//! EXP-6 — ablation: how the ten-year flip rate scales with idle stress
//! duty and with mission temperature.
//!
//! The duty sweep is the design knob behind the whole paper: the ARO
//! cell's value is exactly that it moves the idle-stress duty factor from
//! 1.0 (conventional static stress) toward 0. The temperature sweep shows
//! Arrhenius acceleration: the hotter the mission, the bigger the ARO
//! advantage.

use aro_circuit::ring::RoStyle;
use aro_device::params::TechParams;
use aro_device::units::YEAR;
use aro_puf::{MissionProfile, PufDesign};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{design_for, measure_flip_timeline, pct};
use crate::table::{Figure, Series, Table};

/// The idle-duty grid of the ablation.
const DUTIES: [f64; 6] = [1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0];

/// The mission-temperature grid in °C.
const TEMPS: [f64; 5] = [25.0, 45.0, 65.0, 85.0, 105.0];

fn sweep_chips(cfg: &SimConfig) -> usize {
    (cfg.n_chips / 2).max(8).min(cfg.n_chips)
}

/// Ten-year flip rate of an ARO-style array whose idle residual duty is
/// forced to `duty`.
#[must_use]
pub fn flip_rate_at_duty(cfg: &SimConfig, duty: f64) -> f64 {
    let tech = TechParams {
        aro_idle_stress_fraction: duty,
        ..TechParams::default()
    };
    let design = PufDesign::builder(RoStyle::AgingResistant)
        .n_ros(cfg.n_ros)
        .tech(tech)
        .seed(cfg.seed ^ 0x6e6)
        .build();
    let mut population = crate::popcache::fabricate(&design, sweep_chips(cfg));
    let profile = MissionProfile::typical(design.tech());
    measure_flip_timeline(&mut population, &profile, &[10.0 * YEAR])
        .final_mean()
        .expect("one checkpoint")
}

/// Ten-year flip rate of a style at mission temperature `temp_celsius`.
#[must_use]
pub fn flip_rate_at_temp(cfg: &SimConfig, style: RoStyle, temp_celsius: f64) -> f64 {
    // The population cache collapses the temperature sweep to two
    // fabrications per style (first sighting + baseline promotion); every
    // later point clones the baseline (this function used to refabricate
    // the identical population per point).
    let design = design_for(cfg, style);
    let mut population = crate::popcache::fabricate(&design, sweep_chips(cfg));
    let mut profile = MissionProfile::typical(design.tech());
    profile.temp_celsius = temp_celsius;
    measure_flip_timeline(&mut population, &profile, &[10.0 * YEAR])
        .final_mean()
        .expect("one checkpoint")
}

/// Runs EXP-6.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-6", "Stress-scenario ablation (duty and temperature)");

    let duty_rates: Vec<(f64, f64)> = DUTIES
        .iter()
        .map(|&d| (d, flip_rate_at_duty(cfg, d)))
        .collect();
    let mut duty_table = Table::new(
        "Ten-year flip rate vs. idle stress duty (ARO cell, duty forced)",
        &["idle duty", "flip rate"],
    );
    for &(d, r) in &duty_rates {
        duty_table.push_row(vec![format!("{d:.4}"), pct(r)]);
    }
    report.push_table(duty_table);
    let mut duty_fig = Figure::new("Flip rate vs. idle duty", "duty", "flip fraction");
    duty_fig.push_series(Series::new("ARO cell", duty_rates.clone()));
    report.push_figure(duty_fig);

    let mut temp_table = Table::new(
        "Ten-year flip rate vs. mission temperature",
        &["temperature", "RO-PUF", "ARO-PUF"],
    );
    let mut conv_curve = Vec::new();
    let mut aro_curve = Vec::new();
    for &t in &TEMPS {
        let conv = flip_rate_at_temp(cfg, RoStyle::Conventional, t);
        let aro = flip_rate_at_temp(cfg, RoStyle::AgingResistant, t);
        conv_curve.push((t, conv));
        aro_curve.push((t, aro));
        temp_table.push_row(vec![format!("{t:.0} C"), pct(conv), pct(aro)]);
    }
    report.push_table(temp_table);
    let mut temp_fig = Figure::new("Flip rate vs. temperature", "deg C", "flip fraction");
    temp_fig.push_series(Series::new("RO-PUF", conv_curve.clone()));
    temp_fig.push_series(Series::new("ARO-PUF", aro_curve));
    report.push_figure(temp_fig);

    report.push_note(format!(
        "flip rate rises monotonically with idle duty ({} at duty 1e-4 vs {} at duty 1.0) — \
         the ARO cell's stress removal is the mechanism, not a side effect",
        pct(duty_rates[0].1),
        pct(duty_rates[5].1)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_rate_is_monotone_in_duty() {
        let cfg = SimConfig::quick();
        let low = flip_rate_at_duty(&cfg, 1e-4);
        let mid = flip_rate_at_duty(&cfg, 0.05);
        let high = flip_rate_at_duty(&cfg, 1.0);
        assert!(low < mid, "{low} !< {mid}");
        assert!(mid < high, "{mid} !< {high}");
        assert!(
            high > 0.2,
            "full-duty ARO ages like a conventional cell: {high}"
        );
    }

    #[test]
    fn hotter_missions_flip_more_for_conventional() {
        let cfg = SimConfig::quick();
        let cool = flip_rate_at_temp(&cfg, RoStyle::Conventional, 25.0);
        let hot = flip_rate_at_temp(&cfg, RoStyle::Conventional, 105.0);
        assert!(hot > cool, "hot {hot} vs cool {cool}");
    }

    #[test]
    fn aro_beats_conventional_at_every_temperature() {
        let cfg = SimConfig::quick();
        for t in [25.0, 85.0] {
            let conv = flip_rate_at_temp(&cfg, RoStyle::Conventional, t);
            let aro = flip_rate_at_temp(&cfg, RoStyle::AgingResistant, t);
            assert!(aro < conv, "at {t} C: aro {aro} vs conv {conv}");
        }
    }
}
