//! EXP-18 — the fleet authentication service under fault storms.
//!
//! The lifecycle experiments (EXP-15/16/17) ask whether one *device*
//! keeps its key; this one asks whether the *verifier backend* keeps
//! serving. A fleet of enrolled devices drives authentication traffic
//! through [`aro_serve::AuthService`] while storms hit both sides: the
//! devices (excursions, bursts, glitches, dead rings) and the service's
//! own record store (NVM erosion of the stored helper data, checksum-
//! detected on read). The sweep crosses cell style × fleet age × storm
//! intensity and reports throughput, tail latency, FAR/FRR, and how the
//! service *degrades*: load shedding, quarantine → helper-refresh →
//! re-admission, and the healthy → degraded → read-only state machine.
//!
//! The robustness claims under test:
//!
//! * **Zero false accepts, always.** Corrupt records, malformed
//!   answers, and timed-out reads fail closed at every intensity.
//! * **Degrade, don't die.** At `storm@1` the service ends a sweep
//!   point shedding load (degraded/read-only), not crashed — rejects
//!   with retry-after are the designed failure mode.
//! * **Aging is recoverable.** The ARO cell keeps genuine distances
//!   inside the accept threshold at ten years; devices whose margin
//!   erodes are quarantined and re-anchored through the continuity-
//!   gated helper refresh, then re-admitted.

use aro_circuit::ring::RoStyle;
use aro_faults::{FaultInjector, FaultPlan};
use aro_serve::{BenchPlan, HealthState};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::report::Report;
use crate::runner::puf_area_params;
use crate::servefleet::{stats_row, table_columns, FleetWorkspace};
use crate::table::Table;

/// Swept fleet ages in years (fresh silicon and the paper's ten-year
/// mission end).
pub const FLEET_AGES_YEARS: [f64; 2] = [0.0, 10.0];

/// Swept storm intensities (zero is the fault-free determinism anchor).
pub const INTENSITIES: [f64; 3] = [0.0, 0.5, 1.0];

/// Traffic per sweep point.
const PLAN: BenchPlan = BenchPlan {
    genuine_rounds: 6,
    impostor_rounds: 2,
};

/// Runs EXP-18.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new(
        "EXP-18",
        "Fleet authentication service under fault storms",
    );
    let fleet = cfg.n_chips.clamp(4, 8);
    let mut table = Table::new(
        "Fleet auth service vs. cell style, fleet age, and storm intensity",
        &table_columns(),
    );
    let mut degraded_points = 0u64;
    let mut false_accepts = 0u64;
    let mut reenrolled = 0u64;
    let mut quarantines = 0u64;
    for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
        // Per-style provisioning, as everywhere: the ECC is sized for the
        // style's own fault-free ten-year BER.
        let timeline = exp2::flip_timeline(cfg, style);
        let ber = timeline.final_quantile(0.99);
        let params = puf_area_params(style, 5);
        let Some(generator) = crate::popcache::provisioned_generator(
            ber,
            cfg.key_bits,
            cfg.key_fail_target,
            &params,
        ) else {
            report.push_note(format!(
                "{}: no feasible design point — increase the code search space",
                style.label()
            ));
            continue;
        };
        let mut workspace = FleetWorkspace::new(cfg, &generator, style, fleet);
        for age_years in FLEET_AGES_YEARS {
            for intensity in INTENSITIES {
                let inj = (intensity > 0.0)
                    .then(|| FaultInjector::new(FaultPlan::storm().scaled(intensity), cfg.seed));
                let scope = format!(
                    "EXP-18 {} age={age_years:.0}y faults=storm@{intensity}",
                    style.label()
                );
                let stats =
                    workspace.run_trial(cfg, &generator, inj.as_ref(), age_years, &PLAN, &scope);
                if stats.final_state != HealthState::Healthy {
                    degraded_points += 1;
                }
                false_accepts += stats.impostor_accepted;
                reenrolled += stats.tallies.reenrolled;
                quarantines += stats.tallies.quarantines;
                table.push_row(stats_row(
                    style,
                    age_years,
                    &format!("storm@{intensity}"),
                    &stats,
                ));
            }
        }
    }
    report.push_table(table);
    report.push_note(format!(
        "false accepts across all traffic (genuine + impostor + storms): {false_accepts} \
         — corrupt store records, malformed answers, and timed-out reads all fail closed"
    ));
    if degraded_points > 0 {
        aro_obs::counter("serve.sweep_degraded_points", degraded_points);
        report.push_note(format!(
            "{degraded_points} sweep point(s) ended with the service shedding load \
             (degraded/read-only): reject-with-retry-after and refused re-enrollment \
             writes, never a wrong answer and never a crash"
        ));
    }
    report.push_note(format!(
        "maintenance loop: {quarantines} quarantine(s), {reenrolled} re-admitted through \
         the continuity-gated helper refresh (store record resealed against today's \
         silicon)"
    ));
    report.push_note(
        "pipeline policy: 3 attempts per request under a 400 µs per-attempt budget with \
         exponential seed-jittered backoff; store erosion uses the device NVM fault \
         machinery at verifier-side window coordinates, detected by per-record checksums \
         on read",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    #[test]
    fn report_sweeps_all_points_and_never_false_accepts() {
        let report = run(&tiny_cfg());
        let table = &report.tables()[0];
        assert_eq!(
            table.n_rows(),
            2 * FLEET_AGES_YEARS.len() * INTENSITIES.len(),
            "both styles × ages × intensities"
        );
        let zero_fa = report
            .notes()
            .iter()
            .any(|n| n.contains("false accepts across all traffic") && n.contains(": 0 "));
        assert!(zero_fa, "the zero-false-accept note must hold: {:?}", report.notes());
    }

    #[test]
    fn report_is_deterministic() {
        let cfg = tiny_cfg();
        assert_eq!(run(&cfg), run(&cfg));
    }
}
