//! EXP-7 — ablation: pairing and masking strategies.
//!
//! The Suh–Devadas 1-out-of-k masking is the classic *architectural*
//! defence against unreliable bits: spend k rings per bit, keep only the
//! widest-margin pair. This experiment quantifies the trade-off the paper
//! leans on for its area argument — masking buys reliability at a steep
//! ring cost, the ARO cell buys it in the device.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_metrics::quality::inter_chip_hd;
use aro_puf::{Enrollment, MissionProfile, PairingStrategy};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{design_for, pct};
use crate::table::Table;

/// One strategy's measured trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// The strategy.
    pub strategy: PairingStrategy,
    /// Response bits per array.
    pub bits: usize,
    /// Rings consumed per response bit.
    pub ros_per_bit: f64,
    /// Mean ten-year flip rate.
    pub flip_rate: f64,
    /// Mean inter-chip HD of fresh responses.
    pub inter_hd: f64,
}

/// Evaluates one strategy on a conventional-cell population.
#[must_use]
pub fn evaluate(cfg: &SimConfig, style: RoStyle, strategy: PairingStrategy) -> StrategyOutcome {
    let design = design_for(cfg, style);
    let mut population = crate::popcache::fabricate(&design, cfg.n_chips);
    let env = Environment::nominal(design.tech());

    let fresh = population.golden_responses(&env, &strategy);
    let inter_hd = inter_chip_hd(&fresh).mean();
    let bits = fresh[0].len();

    let enrollments: Vec<Enrollment> = population.enroll_all(&env, &strategy);
    let profile = MissionProfile::typical(design.tech());
    population.age_all(&profile, 10.0 * YEAR);
    let design = population.design().clone();
    let flip_rate = enrollments
        .iter()
        .zip(population.chips_mut())
        .map(|(e, chip)| e.flip_rate_now(chip, &design, &env))
        .sum::<f64>()
        / cfg.n_chips as f64;

    StrategyOutcome {
        strategy,
        bits,
        ros_per_bit: cfg.n_ros as f64 / bits as f64,
        flip_rate,
        inter_hd,
    }
}

/// The strategies the ablation sweeps.
#[must_use]
pub fn strategies() -> Vec<PairingStrategy> {
    vec![
        PairingStrategy::Neighbor,
        PairingStrategy::Sequential,
        PairingStrategy::Distant,
        PairingStrategy::SortedOneOutOfK { k: 4 },
        PairingStrategy::SortedOneOutOfK { k: 8 },
    ]
}

/// Runs EXP-7.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-7", "Pairing / masking strategy ablation");
    let mut table = Table::new(
        "Conventional RO-PUF: strategy trade-offs after ten years",
        &[
            "strategy",
            "bits/array",
            "ROs/bit",
            "10-y flip rate",
            "inter-chip HD",
        ],
    );
    let mut outcomes = Vec::new();
    for strategy in strategies() {
        let o = evaluate(cfg, RoStyle::Conventional, strategy);
        table.push_row(vec![
            o.strategy.label(),
            o.bits.to_string(),
            format!("{:.1}", o.ros_per_bit),
            pct(o.flip_rate),
            pct(o.inter_hd),
        ]);
        outcomes.push(o);
    }
    report.push_table(table);

    // The punchline: masking vs the ARO cell at the same neighbour pairing.
    let aro = evaluate(cfg, RoStyle::AgingResistant, PairingStrategy::Neighbor);
    let masked8 = &outcomes[4];
    report.push_note(format!(
        "1-out-of-8 masking cuts the conventional flip rate to {} at {:.0} rings/bit; the ARO \
         cell reaches {} at 2 rings/bit — reliability in the device beats reliability by \
         redundancy",
        pct(masked8.flip_rate),
        masked8.ros_per_bit,
        pct(aro.flip_rate)
    ));
    let mut aro_table = Table::new(
        "ARO-PUF reference point (neighbour pairing)",
        &[
            "strategy",
            "bits/array",
            "ROs/bit",
            "10-y flip rate",
            "inter-chip HD",
        ],
    );
    aro_table.push_row(vec![
        "ARO + neighbor".to_string(),
        aro.bits.to_string(),
        format!("{:.1}", aro.ros_per_bit),
        pct(aro.flip_rate),
        pct(aro.inter_hd),
    ]);
    report.push_table(aro_table);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_improves_reliability_at_ring_cost() {
        let cfg = SimConfig::quick();
        let neighbor = evaluate(&cfg, RoStyle::Conventional, PairingStrategy::Neighbor);
        let masked = evaluate(
            &cfg,
            RoStyle::Conventional,
            PairingStrategy::SortedOneOutOfK { k: 8 },
        );
        assert!(masked.flip_rate < neighbor.flip_rate, "masking must help");
        assert!(
            masked.ros_per_bit > 3.9 * neighbor.ros_per_bit,
            "at 4x the ring cost"
        );
        assert!(masked.bits < neighbor.bits);
    }

    #[test]
    fn sequential_packs_more_bits_per_array() {
        let cfg = SimConfig::quick();
        let neighbor = evaluate(&cfg, RoStyle::Conventional, PairingStrategy::Neighbor);
        let sequential = evaluate(&cfg, RoStyle::Conventional, PairingStrategy::Sequential);
        assert!(sequential.bits > neighbor.bits);
        assert!(sequential.ros_per_bit < neighbor.ros_per_bit);
    }

    #[test]
    fn all_strategies_keep_uniqueness_in_a_sane_band() {
        let cfg = SimConfig::quick();
        for strategy in strategies() {
            let o = evaluate(&cfg, RoStyle::Conventional, strategy);
            assert!(
                o.inter_hd > 0.30 && o.inter_hd < 0.70,
                "{}: inter-chip HD {}",
                o.strategy.label(),
                o.inter_hd
            );
        }
    }
}
