//! EXP-8 — end-to-end 128-bit key generation over ten years.
//!
//! The full product flow on real (simulated) silicon: provision an ECC
//! for the ARO-PUF's measured worst-case BER, fabricate chips with enough
//! rings for the code's raw-bit budget, enroll a key per chip through the
//! code-offset fuzzy extractor, deploy for ten years, and attempt key
//! reconstruction from fresh noisy readings.
//!
//! A negative control runs conventional-cell chips through the *same*
//! (ARO-sized) code: their ten-year drift overwhelms it and keys are
//! lost — the concrete failure the paper's area table prices in.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_ecc::keygen::KeyGenerator;
use aro_puf::{MissionProfile, PairingStrategy, PufDesign};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::popcache::{age_chip_snapshotted, AgeCursor};
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// Outcome of the end-to-end run for one style.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyTrial {
    /// Cell style of the chips.
    pub style: RoStyle,
    /// Chips enrolled.
    pub chips: usize,
    /// Reconstruction attempts per chip.
    pub attempts_per_chip: usize,
    /// Attempts that failed to reproduce the enrolled key.
    pub failures: usize,
}

impl KeyTrial {
    /// Measured key-failure rate.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.failures as f64 / (self.chips * self.attempts_per_chip) as f64
    }
}

/// Runs the end-to-end flow for one style against a given key generator.
#[must_use]
pub fn run_trial(
    cfg: &SimConfig,
    style: RoStyle,
    generator: &KeyGenerator,
    chips: usize,
    attempts_per_chip: usize,
) -> KeyTrial {
    // The array must supply the code's raw-bit budget via neighbour pairs.
    let n_ros = 2 * generator.response_bits();
    let design = PufDesign::builder(style)
        .n_ros(n_ros)
        .seed(cfg.seed ^ 0xe2e)
        .build();
    let env = Environment::nominal(design.tech());
    let profile = MissionProfile::typical(design.tech());
    let pairs = PairingStrategy::Neighbor.pairs(n_ros);

    let mut failures = 0;
    for id in 0..chips as u64 {
        // Chip and golden come from the population cache: EXP-15's chaos
        // sweep re-enrolls the same silicon and reads them back.
        let mut chip = crate::popcache::fabricated_chip(&design, id);
        let mut enroll_rng = design.seed_domain().child("keygen").rng(id);
        let enrollment_response = crate::popcache::golden_response(&chip, &design, &env, &pairs);
        let (key, helper) = generator.enroll(&enrollment_response, &mut enroll_rng);

        // Through the aged-state snapshot store: this is the first walk
        // of the shared ten-year step inside a run, so it records the
        // wear that EXP-15's intensity sweep later replays per chip.
        let mut cursor = AgeCursor::new();
        age_chip_snapshotted(&mut chip, &design, &profile, 10.0 * YEAR, &mut cursor);

        for _ in 0..attempts_per_chip {
            let noisy = chip.response(&design, &env, &pairs);
            if generator.reconstruct(&noisy, &helper) != Some(key.clone()) {
                failures += 1;
            }
        }
        // The reads above warmed this chip's kernels at the post-step
        // state; donate them so EXP-15's replays preload instead of
        // rebuilding.
        crate::popcache::harvest_kernel_hints(&chip, &design, &cursor);
    }
    KeyTrial {
        style,
        chips,
        attempts_per_chip,
        failures,
    }
}

/// Runs EXP-8.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-8", "End-to-end 128-bit key generation over ten years");

    // Provision the code for the ARO-PUF's measured worst-case BER.
    let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
    let ber = timeline.final_quantile(0.99);
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let Some(generator) =
        crate::popcache::provisioned_generator(ber, cfg.key_bits, cfg.key_fail_target, &params)
    else {
        report.push_note("no feasible ARO design point — increase the code search space");
        return report;
    };
    let spec = generator.spec().clone();
    report.push_note(format!(
        "ECC provisioned for BER {}: {}x repetition ⊗ BCH({},{},{}), {} raw bits",
        pct(ber),
        spec.rep_r,
        spec.bch_n,
        spec.bch_k,
        spec.bch_t,
        spec.raw_bits
    ));

    let chips = cfg.n_chips.clamp(4, 12);
    let attempts = 4;
    let aro = run_trial(cfg, RoStyle::AgingResistant, &generator, chips, attempts);
    let control = run_trial(cfg, RoStyle::Conventional, &generator, chips, attempts);

    let mut table = Table::new(
        "Key reconstruction after ten years (same ECC for both styles)",
        &[
            "chips",
            "design",
            "attempts",
            "failures",
            "measured failure rate",
            "analytic target",
        ],
    );
    table.push_row(vec![
        aro.chips.to_string(),
        "ARO-PUF".to_string(),
        (aro.chips * aro.attempts_per_chip).to_string(),
        aro.failures.to_string(),
        pct(aro.failure_rate()),
        format!("{:.1e}", spec.key_failure),
    ]);
    table.push_row(vec![
        control.chips.to_string(),
        "RO-PUF (control)".to_string(),
        (control.chips * control.attempts_per_chip).to_string(),
        control.failures.to_string(),
        pct(control.failure_rate()),
        "undersized".to_string(),
    ]);
    report.push_table(table);

    report.push_note(format!(
        "every ARO key survives ({} failures); the conventional control loses {} of keys \
         through the same code — the reliability gap is a key-loss gap",
        aro.failures,
        pct(control.failure_rate())
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        // Small key keeps the raw-bit budget (and thus the array) small in
        // debug-mode tests; the physics is unchanged.
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    #[test]
    fn aro_keys_survive_ten_years_and_the_control_fails() {
        let cfg = tiny_cfg();
        let timeline = exp2::flip_timeline(&cfg, RoStyle::AgingResistant);
        let ber = timeline.final_quantile(0.99);
        let params = puf_area_params(RoStyle::AgingResistant, 5);
        let generator =
            KeyGenerator::for_bit_error_rate(ber, cfg.key_bits, cfg.key_fail_target, &params)
                .expect("feasible");

        let aro = run_trial(&cfg, RoStyle::AgingResistant, &generator, 4, 2);
        assert_eq!(
            aro.failures, 0,
            "a 1e-6 design point must not fail in 8 attempts"
        );

        let control = run_trial(&cfg, RoStyle::Conventional, &generator, 4, 2);
        assert!(
            control.failure_rate() > 0.5,
            "undersized code must lose conventional keys: {}",
            control.failure_rate()
        );
    }

    #[test]
    fn report_contains_both_rows() {
        let report = run(&tiny_cfg());
        assert_eq!(report.tables()[0].n_rows(), 2);
        assert!(report.notes().len() >= 2);
    }
}
