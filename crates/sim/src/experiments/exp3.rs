//! EXP-3 — inter-chip Hamming distance (abstract claim C2: **average
//! inter-chip HD 49.67 % for the ARO-PUF vs ~45 % for the conventional
//! RO-PUF**, ideal 50 %).
//!
//! All pairwise HDs between the fresh golden responses of the population
//! (100 chips → 4950 pairs at paper scale). The conventional array's
//! deterministic layout bias pushes chips toward agreeing on the same
//! bits; the ARO cell's symmetric layout restores uniqueness.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_metrics::quality::pairwise_hds;
use aro_metrics::stats::{Histogram, Summary};
use aro_puf::PairingStrategy;

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{build_population, pct};
use crate::table::{Figure, Table};

/// The pairwise inter-chip HD sample of one style.
#[must_use]
pub fn interchip_sample(cfg: &SimConfig, style: RoStyle) -> Vec<f64> {
    let population = build_population(cfg, style);
    let env = Environment::nominal(population.design().tech());
    let responses = population.golden_responses(&env, &PairingStrategy::Neighbor);
    pairwise_hds(&responses)
}

/// Runs EXP-3.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let conv = interchip_sample(cfg, RoStyle::Conventional);
    let aro = interchip_sample(cfg, RoStyle::AgingResistant);
    let conv_summary = Summary::of(&conv);
    let aro_summary = Summary::of(&aro);

    let mut report = Report::new("EXP-3", "Inter-chip Hamming distance distribution");
    report.push_note(format!(
        "average inter-chip HD: RO-PUF {} (paper: ~45 %), ARO-PUF {} (paper: 49.67 %, ideal 50 %)",
        pct(conv_summary.mean()),
        pct(aro_summary.mean())
    ));

    let mut table = Table::new(
        "Inter-chip HD statistics over all chip pairs",
        &["design", "pairs", "mean", "sd", "min", "max"],
    );
    for (label, s) in [("RO-PUF", &conv_summary), ("ARO-PUF", &aro_summary)] {
        table.push_row(vec![
            label.to_string(),
            s.n().to_string(),
            pct(s.mean()),
            pct(s.std_dev()),
            pct(s.min()),
            pct(s.max()),
        ]);
    }
    report.push_table(table);

    for (label, sample) in [("RO-PUF", &conv), ("ARO-PUF", &aro)] {
        let mut histogram = Histogram::new(0.30, 0.70, 20);
        histogram.add_all(sample);
        report.push_figure(Figure::from_histogram(
            format!("{label} inter-chip HD histogram"),
            "fractional HD",
            label,
            &histogram,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aro_uniqueness_beats_conventional_and_approaches_ideal() {
        let cfg = SimConfig::quick();
        let conv = Summary::of(&interchip_sample(&cfg, RoStyle::Conventional));
        let aro = Summary::of(&interchip_sample(&cfg, RoStyle::AgingResistant));
        assert!(
            aro.mean() > conv.mean(),
            "ARO {} vs conventional {}",
            aro.mean(),
            conv.mean()
        );
        assert!(
            (aro.mean() - 0.5).abs() < 0.03,
            "ARO mean {} should be within 3 points of ideal",
            aro.mean()
        );
        assert!(
            conv.mean() < 0.485,
            "conventional must show the bias: {}",
            conv.mean()
        );
        assert!(conv.mean() > 0.35);
    }

    #[test]
    fn histogram_covers_the_sample() {
        let report = run(&SimConfig::quick());
        assert_eq!(report.figures().len(), 2);
        let n_pairs = 10 * 9 / 2;
        assert!(report.tables()[0].cell(0, 1) == n_pairs.to_string());
    }
}
