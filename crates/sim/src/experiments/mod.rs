//! The paper experiments, one module each. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for the paper-vs-measured record.

pub mod exp1;
pub mod exp10;
pub mod exp11;
pub mod exp12;
pub mod exp13;
pub mod exp14;
pub mod exp15;
pub mod exp16;
pub mod exp17;
pub mod exp18;
pub mod exp19;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod exp5;
pub mod exp6;
pub mod exp7;
pub mod exp8;
pub mod exp9;
pub mod serve_bench;

use crate::config::SimConfig;
use crate::report::Report;

/// Every experiment id, in paper order.
pub const ALL_IDS: [&str; 19] = [
    "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8", "exp9", "exp10", "exp11",
    "exp12", "exp13", "exp14", "exp15", "exp16", "exp17", "exp18", "exp19",
];

/// Wraps one experiment run in its phase span and progress counter, so
/// every entry path (`run_all`, `run_by_id`, direct module calls routed
/// here) reports identically.
fn traced(id: &str, cfg: &SimConfig, run: fn(&SimConfig) -> Report) -> Report {
    let _span = aro_obs::span(&format!("exp.{id}"));
    let report = run(cfg);
    aro_obs::counter("sim.experiments_run", 1);
    report
}

/// Runs every experiment at the given configuration, in order. The whole
/// sweep shares one population cache, so each reused (design, chip count)
/// key fabricates at most twice — once to detect reuse, once for the
/// retained baseline — no matter how many experiments request it.
#[must_use]
pub fn run_all(cfg: &SimConfig) -> Vec<Report> {
    crate::popcache::scoped(|| {
        ALL_IDS
            .iter()
            .map(|id| run_by_id(id, cfg).expect("ALL_IDS entries are valid"))
            .collect()
    })
}

/// Runs one experiment by id (`"exp1"`…`"exp19"`, plus the
/// `"serve-bench"` mode, which is not in [`ALL_IDS`] — it only runs when
/// asked for by name), or `None` for an unknown id. Opens a
/// population-cache scope of its own (a no-op when the caller — e.g.
/// [`run_all`] — already holds one).
#[must_use]
pub fn run_by_id(id: &str, cfg: &SimConfig) -> Option<Report> {
    let run: fn(&SimConfig) -> Report = match id {
        "exp1" => exp1::run,
        "exp2" => exp2::run,
        "exp3" => exp3::run,
        "exp4" => exp4::run,
        "exp5" => exp5::run,
        "exp6" => exp6::run,
        "exp7" => exp7::run,
        "exp8" => exp8::run,
        "exp9" => exp9::run,
        "exp10" => exp10::run,
        "exp11" => exp11::run,
        "exp12" => exp12::run,
        "exp13" => exp13::run,
        "exp14" => exp14::run,
        "exp15" => exp15::run,
        "exp16" => exp16::run,
        "exp17" => exp17::run,
        "exp18" => exp18::run,
        "exp19" => exp19::run,
        "serve-bench" => serve_bench::run,
        _ => return None,
    };
    Some(crate::popcache::scoped(|| traced(id, cfg, run)))
}
