//! The paper experiments, one module each. See `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for the paper-vs-measured record.

pub mod exp1;
pub mod exp10;
pub mod exp11;
pub mod exp12;
pub mod exp13;
pub mod exp14;
pub mod exp2;
pub mod exp3;
pub mod exp4;
pub mod exp5;
pub mod exp6;
pub mod exp7;
pub mod exp8;
pub mod exp9;

use crate::config::SimConfig;
use crate::report::Report;

/// Runs every experiment at the given configuration, in order.
#[must_use]
pub fn run_all(cfg: &SimConfig) -> Vec<Report> {
    vec![
        exp1::run(cfg),
        exp2::run(cfg),
        exp3::run(cfg),
        exp4::run(cfg),
        exp5::run(cfg),
        exp6::run(cfg),
        exp7::run(cfg),
        exp8::run(cfg),
        exp9::run(cfg),
        exp10::run(cfg),
        exp11::run(cfg),
        exp12::run(cfg),
        exp13::run(cfg),
        exp14::run(cfg),
    ]
}

/// Runs one experiment by id (`"exp1"`…`"exp8"`), or `None` for an
/// unknown id.
#[must_use]
pub fn run_by_id(id: &str, cfg: &SimConfig) -> Option<Report> {
    match id {
        "exp1" => Some(exp1::run(cfg)),
        "exp2" => Some(exp2::run(cfg)),
        "exp3" => Some(exp3::run(cfg)),
        "exp4" => Some(exp4::run(cfg)),
        "exp5" => Some(exp5::run(cfg)),
        "exp6" => Some(exp6::run(cfg)),
        "exp7" => Some(exp7::run(cfg)),
        "exp8" => Some(exp8::run(cfg)),
        "exp9" => Some(exp9::run(cfg)),
        "exp10" => Some(exp10::run(cfg)),
        "exp11" => Some(exp11::run(cfg)),
        "exp12" => Some(exp12::run(cfg)),
        "exp13" => Some(exp13::run(cfg)),
        "exp14" => Some(exp14::run(cfg)),
        _ => None,
    }
}
