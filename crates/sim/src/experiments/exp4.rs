//! EXP-4 — randomness and environmental reliability (abstract claim C3:
//! ARO-PUF keys are "unique, random, and more reliable").
//!
//! Three views:
//! 1. **Response statistics** — uniformity, bit-aliasing, min-entropy per
//!    bit across the population.
//! 2. **NIST SP 800-22-lite battery** on the concatenated population
//!    responses.
//! 3. **Environmental reliability** — intra-chip HD of responses taken at
//!    temperature/voltage corners against the nominal enrollment.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_metrics::bits::BitString;
use aro_metrics::entropy::min_entropy_from_aliasing;
use aro_metrics::nist;
use aro_metrics::quality::{bit_aliasing, fractional_hd, uniformity};
use aro_puf::{PairingStrategy, Population};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{build_population, pct};
use crate::table::Table;

/// The environmental corners the paper's reliability analysis sweeps.
const CORNERS: [(f64, f64); 6] = [
    (-20.0, 1.2),
    (0.0, 1.2),
    (55.0, 1.2),
    (85.0, 1.2),
    (25.0, 1.08),
    (25.0, 1.32),
];

struct StyleAnalysis {
    uniformity_mean: f64,
    aliasing_worst: f64,
    min_entropy_per_bit: f64,
    nist: Vec<nist::TestResult>,
    corner_hd: Vec<((f64, f64), f64)>,
    noise_hd: f64,
}

fn analyze(cfg: &SimConfig, style: RoStyle) -> StyleAnalysis {
    let mut population: Population = build_population(cfg, style);
    let design = population.design().clone();
    let nominal = Environment::nominal(design.tech());
    let strategy = PairingStrategy::Neighbor;

    let responses = population.golden_responses(&nominal, &strategy);
    let uniformity_mean = responses.iter().map(uniformity).sum::<f64>() / responses.len() as f64;
    let aliasing = bit_aliasing(&responses);
    let aliasing_worst = aliasing
        .iter()
        .map(|p| (p - 0.5).abs())
        .fold(0.0f64, f64::max);
    let min_entropy_per_bit = min_entropy_from_aliasing(&aliasing) / aliasing.len() as f64;

    let concatenated: BitString = responses
        .iter()
        .flat_map(|r| r.iter().collect::<Vec<_>>())
        .collect();
    let nist = nist::battery(&concatenated);

    let corner_hd = CORNERS
        .iter()
        .map(|&(t, v)| {
            let env = Environment::new(t, v);
            let corner_responses = population.golden_responses(&env, &strategy);
            let mean_hd = responses
                .iter()
                .zip(&corner_responses)
                .map(|(a, b)| fractional_hd(a, b))
                .sum::<f64>()
                / responses.len() as f64;
            ((t, v), mean_hd)
        })
        .collect();

    // Measurement-noise reliability: noisy re-read vs golden at nominal.
    let noisy = population.responses(&nominal, &strategy);
    let noise_hd = responses
        .iter()
        .zip(&noisy)
        .map(|(a, b)| fractional_hd(a, b))
        .sum::<f64>()
        / responses.len() as f64;

    StyleAnalysis {
        uniformity_mean,
        aliasing_worst,
        min_entropy_per_bit,
        nist,
        corner_hd,
        noise_hd,
    }
}

/// Runs EXP-4.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let conv = analyze(cfg, RoStyle::Conventional);
    let aro = analyze(cfg, RoStyle::AgingResistant);

    let mut report = Report::new("EXP-4", "Randomness and environmental reliability");
    let aro_passes = aro.nist.iter().filter(|r| r.pass).count();
    report.push_note(format!(
        "ARO-PUF responses pass {aro_passes}/{} NIST-lite tests; min-entropy {:.3} bits/bit \
         (conventional: {:.3})",
        aro.nist.len(),
        aro.min_entropy_per_bit,
        conv.min_entropy_per_bit
    ));

    let mut stats = Table::new(
        "Response statistics across the population",
        &[
            "design",
            "uniformity",
            "worst bit-aliasing dev",
            "min-entropy/bit",
            "noise intra-HD",
        ],
    );
    for (label, a) in [("RO-PUF", &conv), ("ARO-PUF", &aro)] {
        stats.push_row(vec![
            label.to_string(),
            pct(a.uniformity_mean),
            pct(a.aliasing_worst),
            format!("{:.4}", a.min_entropy_per_bit),
            pct(a.noise_hd),
        ]);
    }
    report.push_table(stats);

    let mut nist_table = Table::new(
        "NIST SP 800-22-lite battery on concatenated population responses",
        &["test", "RO-PUF p", "RO-PUF", "ARO-PUF p", "ARO-PUF"],
    );
    for (c, a) in conv.nist.iter().zip(&aro.nist) {
        nist_table.push_row(vec![
            c.name.to_string(),
            format!("{:.4}", c.p_value),
            if c.pass { "pass" } else { "FAIL" }.to_string(),
            format!("{:.4}", a.p_value),
            if a.pass { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    report.push_table(nist_table);

    let mut corners = Table::new(
        "Mean intra-chip HD vs. environmental corner (reference: 25 C / 1.20 V)",
        &["corner", "RO-PUF", "ARO-PUF"],
    );
    for (i, &(t, v)) in CORNERS.iter().enumerate() {
        corners.push_row(vec![
            format!("{t:.0} C / {v:.2} V"),
            pct(conv.corner_hd[i].1),
            pct(aro.corner_hd[i].1),
        ]);
    }
    report.push_table(corners);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aro_randomness_is_near_ideal() {
        let aro = analyze(&SimConfig::quick(), RoStyle::AgingResistant);
        assert!(
            (aro.uniformity_mean - 0.5).abs() < 0.06,
            "uniformity {}",
            aro.uniformity_mean
        );
        assert!(
            aro.min_entropy_per_bit > 0.55,
            "min-entropy {}",
            aro.min_entropy_per_bit
        );
        let passes = aro.nist.iter().filter(|r| r.pass).count();
        assert!(
            passes >= aro.nist.len() - 1,
            "{passes}/{} NIST passes",
            aro.nist.len()
        );
    }

    #[test]
    fn conventional_has_lower_entropy_than_aro() {
        let cfg = SimConfig::quick();
        let conv = analyze(&cfg, RoStyle::Conventional);
        let aro = analyze(&cfg, RoStyle::AgingResistant);
        assert!(conv.min_entropy_per_bit < aro.min_entropy_per_bit);
    }

    #[test]
    fn environmental_corners_flip_few_bits() {
        let aro = analyze(&SimConfig::quick(), RoStyle::AgingResistant);
        for ((t, v), hd) in &aro.corner_hd {
            assert!(*hd < 0.12, "corner {t} C/{v} V flipped {hd}");
        }
        // Extremes flip more than mild corners.
        let hd_85 = aro.corner_hd[3].1;
        let hd_55 = aro.corner_hd[2].1;
        assert!(hd_85 >= hd_55 - 0.01);
    }

    #[test]
    fn report_has_three_tables() {
        let report = run(&SimConfig::quick());
        assert_eq!(report.tables().len(), 3);
        assert_eq!(report.tables()[2].n_rows(), 6);
    }
}
