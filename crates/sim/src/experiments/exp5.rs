//! EXP-5 — total PUF + ECC area for a 128-bit key (abstract claim C4:
//! **~24× area reduction** for the ARO-PUF).
//!
//! Pipeline: measure each design's ten-year flip statistics (EXP-2's
//! machinery), provision the ECC for the **worst-case chip**
//! (99th-percentile BER — a key generator that only works on the average
//! chip is not a product), search the (repetition ⊗ BCH) design space for
//! the cheapest stack meeting the 10⁻⁶ key-failure target, and total the
//! silicon: RO cells + readout + decoders. The average-BER provisioning
//! is reported alongside for transparency.

use aro_circuit::ring::RoStyle;
use aro_ecc::area::KeyGenSpec;

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// One provisioned design point with its measured BER input.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionedDesign {
    /// Which cell style.
    pub style: RoStyle,
    /// The BER the ECC was provisioned for.
    pub ber: f64,
    /// The winning design point.
    pub spec: KeyGenSpec,
}

/// Measures BERs and provisions both styles at the given quantile
/// (`0.99` = worst-case chip, `0.5` ≈ average chip).
#[must_use]
pub fn provision(cfg: &SimConfig, quantile: f64) -> Option<(ProvisionedDesign, ProvisionedDesign)> {
    let mut out = Vec::new();
    for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
        let timeline = exp2::flip_timeline(cfg, style);
        let ber = timeline.final_quantile(quantile);
        let params = puf_area_params(style, 5);
        let spec = crate::popcache::provisioned_spec(ber, cfg.key_bits, cfg.key_fail_target, &params)?;
        out.push(ProvisionedDesign { style, ber, spec });
    }
    let aro = out.pop()?;
    let conv = out.pop()?;
    Some((conv, aro))
}

fn spec_row(p: &ProvisionedDesign) -> Vec<String> {
    let s = &p.spec;
    vec![
        p.style.label().to_string(),
        pct(p.ber),
        format!("{}x", s.rep_r),
        if s.bch_t == 0 {
            "-".to_string()
        } else {
            format!("BCH({},{},{})", s.bch_n, s.bch_k, s.bch_t)
        },
        s.blocks.to_string(),
        s.raw_bits.to_string(),
        format!("{:.0}", s.puf_ge),
        format!("{:.0}", s.decoder_ge),
        format!("{:.0}", s.total_ge()),
        format!("{:.0}", s.total_um2()),
    ]
}

const SPEC_HEADERS: [&str; 10] = [
    "design",
    "provisioned BER",
    "repetition",
    "BCH (n,k,t)",
    "blocks",
    "raw bits",
    "PUF GE",
    "decoder GE",
    "total GE",
    "area um^2",
];

/// Runs EXP-5.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-5", "PUF + ECC area for a 128-bit key at 1e-6 failure");

    if let Some((conv, aro)) = provision(cfg, 0.99) {
        let ratio = conv.spec.total_ge() / aro.spec.total_ge();
        report.push_note(format!(
            "worst-case (99th-percentile chip) provisioning: area ratio RO-PUF / ARO-PUF = \
             {ratio:.1}x (paper: ~24x)"
        ));
        let mut table = Table::new(
            "Worst-case provisioning (99th-percentile ten-year BER)",
            &SPEC_HEADERS,
        );
        table.push_row(spec_row(&conv));
        table.push_row(spec_row(&aro));
        report.push_table(table);
    } else {
        report.push_note(
            "worst-case provisioning infeasible for the conventional design in the swept \
             code space — the ARO advantage is unbounded at this quantile",
        );
    }

    if let Some((conv, aro)) = provision(cfg, 0.5) {
        let ratio = conv.spec.total_ge() / aro.spec.total_ge();
        report.push_note(format!(
            "average-chip provisioning (optimistic): area ratio = {ratio:.1}x"
        ));
        let mut table = Table::new(
            "Average-chip provisioning (median ten-year BER)",
            &SPEC_HEADERS,
        );
        table.push_row(spec_row(&conv));
        table.push_row(spec_row(&aro));
        report.push_table(table);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_provisioning_shows_an_order_of_magnitude_gap() {
        let (conv, aro) = provision(&SimConfig::quick(), 0.99).expect("both feasible");
        assert!(conv.ber > aro.ber, "conventional BER must be worse");
        let ratio = conv.spec.total_ge() / aro.spec.total_ge();
        assert!(ratio > 6.0, "area ratio {ratio} (paper: ~24x)");
        assert!(conv.spec.raw_bits > aro.spec.raw_bits);
    }

    #[test]
    fn average_provisioning_still_favors_aro() {
        let (conv, aro) = provision(&SimConfig::quick(), 0.5).expect("both feasible");
        assert!(conv.spec.total_ge() > 2.0 * aro.spec.total_ge());
    }

    #[test]
    fn specs_meet_the_failure_target() {
        let cfg = SimConfig::quick();
        let (conv, aro) = provision(&cfg, 0.99).unwrap();
        assert!(conv.spec.key_failure <= cfg.key_fail_target);
        assert!(aro.spec.key_failure <= cfg.key_fail_target);
    }

    #[test]
    fn report_renders_both_tables() {
        let report = run(&SimConfig::quick());
        assert!(!report.tables().is_empty());
        assert!(report.notes()[0].contains("paper: ~24x"));
    }
}
