//! EXP-13 — reproduction robustness: error bars on the headline numbers.
//!
//! One Monte Carlo run is one sample; a reviewer should know how much the
//! headline claims move with the dice. This experiment re-runs the EXP-2
//! (ten-year flips) and EXP-3 (inter-chip HD) headline numbers under
//! several independent master seeds and reports mean ± sd across seeds —
//! the reproduction's own error bars.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_metrics::quality::inter_chip_hd;
use aro_metrics::stats::Summary;
use aro_puf::PairingStrategy;

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{build_population, pct};
use crate::table::Table;

/// The independent master seeds swept.
const SEEDS: [u64; 5] = [2014, 1, 42, 777, 0xdeadbeef];

/// Headline numbers of one style at one seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Ten-year mean flip rate.
    pub flips_10y: f64,
    /// Mean inter-chip HD of fresh responses.
    pub inter_hd: f64,
}

/// Measures one style's headline pair at one seed.
///
/// Both measurements go through the cross-experiment population cache:
/// the flip timeline is the standard memoized one (for the run's own
/// master seed this is a guaranteed hit against EXP-2/EXP-6), and the
/// pristine population read for inter-chip HD is a cache clone — which is
/// bit-identical to a fresh fabrication (same seed, fresh measurement
/// nonces, no accumulated wear).
#[must_use]
pub fn headline(cfg: &SimConfig, style: RoStyle, seed: u64) -> Headline {
    let cfg = cfg.clone().with_seed(seed);
    let flips_10y = crate::popcache::standard_flip_timeline(&cfg, style)
        .final_mean()
        .expect("standard checkpoints are non-empty");
    let population = build_population(&cfg, style);
    let env = Environment::nominal(population.design().tech());
    let inter_hd =
        inter_chip_hd(&population.golden_responses(&env, &PairingStrategy::Neighbor)).mean();
    Headline {
        flips_10y,
        inter_hd,
    }
}

/// Runs EXP-13.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-13", "Seed robustness of the headline claims");
    let mut table = Table::new(
        "Headline numbers across independent Monte Carlo seeds (mean ± sd)",
        &["quantity", "paper", "mean", "sd", "min", "max"],
    );

    let mut conv_flips = Vec::new();
    let mut aro_flips = Vec::new();
    let mut conv_hd = Vec::new();
    let mut aro_hd = Vec::new();
    for &seed in &SEEDS {
        let conv = headline(cfg, RoStyle::Conventional, seed);
        let aro = headline(cfg, RoStyle::AgingResistant, seed);
        conv_flips.push(conv.flips_10y);
        aro_flips.push(aro.flips_10y);
        conv_hd.push(conv.inter_hd);
        aro_hd.push(aro.inter_hd);
    }
    for (label, paper, samples) in [
        ("RO-PUF 10-y flips", "32 %", &conv_flips),
        ("ARO-PUF 10-y flips", "7.7 %", &aro_flips),
        ("RO-PUF inter-chip HD", "~45 %", &conv_hd),
        ("ARO-PUF inter-chip HD", "49.67 %", &aro_hd),
    ] {
        let s = Summary::of(samples);
        table.push_row(vec![
            label.to_string(),
            paper.to_string(),
            pct(s.mean()),
            pct(s.std_dev()),
            pct(s.min()),
            pct(s.max()),
        ]);
    }
    report.push_table(table);

    let conv = Summary::of(&conv_flips);
    let aro = Summary::of(&aro_flips);
    report.push_note(format!(
        "across {} independent seeds the flip-rate conclusion never flips: the worst ARO \
         seed ({}) stays far below the best conventional seed ({})",
        SEEDS.len(),
        pct(Summary::of(&aro_flips).max()),
        pct(Summary::of(&conv_flips).min()),
    ));
    report.push_note(format!(
        "seed-to-seed sd: RO-PUF flips {} | ARO-PUF flips {} — the calibrated means are \
         stable against the Monte Carlo dice",
        pct(conv.std_dev()),
        pct(aro.std_dev()),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_hold_across_seeds() {
        let cfg = SimConfig::quick();
        let mut worst_aro: f64 = 0.0;
        let mut best_conv = f64::INFINITY;
        for seed in [1u64, 99, 12345] {
            let conv = headline(&cfg, RoStyle::Conventional, seed);
            let aro = headline(&cfg, RoStyle::AgingResistant, seed);
            worst_aro = worst_aro.max(aro.flips_10y);
            best_conv = best_conv.min(conv.flips_10y);
            assert!(
                (aro.inter_hd - 0.5).abs() < (conv.inter_hd - 0.5).abs() + 0.02,
                "seed {seed}: HD ordering"
            );
        }
        assert!(
            worst_aro < best_conv,
            "worst ARO {worst_aro} vs best conventional {best_conv}"
        );
    }

    #[test]
    fn report_has_four_headline_rows() {
        let report = run(&SimConfig::quick());
        assert_eq!(report.tables()[0].n_rows(), 4);
        assert_eq!(report.notes().len(), 2);
    }
}
