//! `repro serve-bench` — the fleet authentication service benchmark.
//!
//! Unlike EXP-18 (which sweeps its *own* storm intensities), this mode
//! runs under the **ambient** fault plan installed by `repro --faults`
//! (see [`crate::faultctx`]): the operator picks one storm and the
//! benchmark reports what the service delivers under it — auths/sec,
//! p50/p99 simulated latency, and FAR/FRR across cell styles and fleet
//! ages. All latency is simulated integer µs and every random draw is
//! seed-derived, so the whole report is byte-identical at any
//! `--threads N` — which is exactly what lets `verify.sh` diff a
//! 1-thread run against a 4-thread run.
//!
//! When any sweep point ends with the service out of its healthy state,
//! the report carries [`DEGRADED_MARKER`]; the `repro` binary maps that
//! marker to exit code 3 (degraded-but-served), distinct from both
//! success (0) and crash.

use aro_circuit::ring::RoStyle;
use aro_serve::{BenchPlan, HealthState};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::report::Report;
use crate::runner::puf_area_params;
use crate::servefleet::{stats_row, table_columns, FleetWorkspace};
use crate::table::Table;

/// Note prefix the `repro` binary greps for to exit 3 when the service
/// finished a bench point degraded or read-only. Stable across
/// ledger-replayed and fresh runs (it lives in the rendered report).
pub const DEGRADED_MARKER: &str = "service ended degraded";

/// Swept fleet ages in years.
pub const FLEET_AGES_YEARS: [f64; 3] = [0.0, 5.0, 10.0];

/// Traffic per sweep point (heavier than EXP-18: this is the perf mode).
const PLAN: BenchPlan = BenchPlan {
    genuine_rounds: 8,
    impostor_rounds: 3,
};

/// Runs the serve benchmark under the ambient fault plan.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("SERVE-BENCH", "Fleet authentication service benchmark");
    let inj = crate::faultctx::current();
    // The context only carries the injector, not the operator's spec
    // string; tag rows with the plan fingerprint (stable for a given
    // `--faults` spec and seed, so thread-count diffs still match).
    let faults_label = inj.as_ref().map_or_else(
        || "off".to_string(),
        |inj| format!("ambient#{:08x}", inj.fingerprint() as u32),
    );
    let fleet = cfg.n_chips.clamp(4, 8);
    let replicas = crate::servefleet::replicas();
    let mut table = Table::new(
        format!(
            "Fleet auth service throughput/accuracy (faults: {faults_label}, \
             {replicas}-way replicated store)"
        ),
        &table_columns(),
    );
    let mut degraded_points = 0u64;
    let mut false_accepts = 0u64;
    let mut total_served = 0u64;
    for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
        let timeline = exp2::flip_timeline(cfg, style);
        let ber = timeline.final_quantile(0.99);
        let params = puf_area_params(style, 5);
        let Some(generator) = crate::popcache::provisioned_generator(
            ber,
            cfg.key_bits,
            cfg.key_fail_target,
            &params,
        ) else {
            report.push_note(format!(
                "{}: no feasible design point — increase the code search space",
                style.label()
            ));
            continue;
        };
        let mut workspace = FleetWorkspace::new(cfg, &generator, style, fleet);
        for age_years in FLEET_AGES_YEARS {
            let scope = format!(
                "SERVE-BENCH {} age={age_years:.0}y faults={faults_label}",
                style.label()
            );
            let stats =
                workspace.run_trial(cfg, &generator, inj.as_deref(), age_years, &PLAN, &scope);
            if stats.final_state != HealthState::Healthy {
                degraded_points += 1;
            }
            false_accepts += stats.impostor_accepted;
            total_served += stats.genuine_served + stats.impostor_served;
            // Per-point gauges feeding the `--bench-json` "serve" section
            // (picked up by `report diff`/trajectory across PRs).
            let cell = style.label().to_lowercase().replace('-', "_");
            let point = format!("serve.bench.{cell}.age{age_years:.0}y");
            aro_obs::gauge(&format!("{point}.auths_per_sec"), stats.auths_per_sec());
            aro_obs::gauge(&format!("{point}.p50_us"), stats.p50_us as f64);
            aro_obs::gauge(&format!("{point}.p99_us"), stats.p99_us as f64);
            aro_obs::gauge(&format!("{point}.quarantines"), stats.tallies.quarantines as f64);
            aro_obs::gauge(&format!("{point}.reenrolled"), stats.tallies.reenrolled as f64);
            aro_obs::gauge(&format!("{point}.scrub_repairs"), stats.scrub_repairs as f64);
            aro_obs::gauge(
                &format!("{point}.replica_fallbacks"),
                stats.tallies.replica_fallbacks as f64,
            );
            table.push_row(stats_row(style, age_years, &faults_label, &stats));
        }
    }
    report.push_table(table);
    report.push_note(format!(
        "{total_served} authentications served, {false_accepts} false accepts — every \
         untrustworthy read (corrupt record, malformed answer, timeout) fails closed"
    ));
    if degraded_points > 0 {
        aro_obs::counter("serve.bench_degraded_points", degraded_points);
        report.push_note(format!(
            "{DEGRADED_MARKER} at {degraded_points} sweep point(s): deterministic load \
             shedding (reject-with-retry-after) kept answering instead of crashing; \
             `repro` exits 3"
        ));
    }
    report.push_note(
        "latency is simulated (integer µs, shard-parallel wall model) and every jitter \
         draw is seed-derived per (device, event): the report is byte-identical at any \
         `--threads N`",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_faults::{FaultInjector, FaultPlan};
    use std::sync::Arc;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    #[test]
    fn fault_free_bench_stays_healthy_with_no_marker() {
        let report = run(&tiny_cfg());
        assert_eq!(report.tables()[0].n_rows(), 2 * FLEET_AGES_YEARS.len());
        assert!(
            !report.notes().iter().any(|n| n.contains(DEGRADED_MARKER)),
            "no faults, no degraded marker: {:?}",
            report.notes()
        );
    }

    #[test]
    fn full_storm_degrades_without_false_accepts() {
        let cfg = tiny_cfg();
        let inj = Arc::new(FaultInjector::new(FaultPlan::storm(), cfg.seed));
        let report = crate::faultctx::scoped(Some(inj), || run(&cfg));
        assert!(
            report.notes().iter().any(|n| n.contains(DEGRADED_MARKER)),
            "storm@1 must end degraded: {:?}",
            report.notes()
        );
        assert!(
            report
                .notes()
                .iter()
                .any(|n| n.contains("0 false accepts")),
            "zero false accepts even at storm@1: {:?}",
            report.notes()
        );
    }
}
