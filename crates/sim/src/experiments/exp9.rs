//! EXP-9 — ablation: temporal majority voting (TMV).
//!
//! TMV re-reads every pair several times and majority-votes the bit. It
//! is the cheapest reliability knob a PUF integrator has — but it only
//! averages *measurement noise*. An aging flip inverts the pair's true
//! frequency ordering, so every re-read votes the same wrong way. The
//! experiment separates the two error populations: on fresh silicon TMV
//! drives flips toward zero; after ten years the curves flatten at the
//! aging floor, which only the ARO cell lowers.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_puf::{Enrollment, MissionProfile, PairingStrategy, Population};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{design_for, pct};
use crate::table::{Figure, Series, Table};

/// The vote counts the ablation sweeps.
const VOTES: [usize; 4] = [1, 3, 9, 15];

/// One flip-rate-vs-votes curve: `(votes, mean flip rate)` points.
pub type TmvCurve = Vec<(f64, f64)>;

/// Mean flip rate of a style vs. vote count, fresh and after ten years.
#[must_use]
pub fn tmv_curves(cfg: &SimConfig, style: RoStyle) -> (TmvCurve, TmvCurve) {
    let design = design_for(cfg, style);
    let n_chips = (cfg.n_chips / 2).max(6).min(cfg.n_chips);
    let mut population = crate::popcache::fabricate(&design, n_chips);
    let env = Environment::nominal(design.tech());
    let strategy = PairingStrategy::Neighbor;
    let enrollments: Vec<Enrollment> = population.enroll_all(&env, &strategy);
    let design = population.design().clone();

    let measure = |population: &mut Population| -> Vec<(f64, f64)> {
        VOTES
            .iter()
            .map(|&votes| {
                let total: f64 = enrollments
                    .iter()
                    .zip(population.chips_mut())
                    .map(|(e, chip)| {
                        let now = chip.response_voted(&design, &env, e.pairs(), votes);
                        e.reference().hamming_distance(&now) as f64 / e.bits() as f64
                    })
                    .sum();
                (votes as f64, total / n_chips as f64)
            })
            .collect()
    };

    let fresh = measure(&mut population);
    population.age_all(&MissionProfile::typical(design.tech()), 10.0 * YEAR);
    let aged = measure(&mut population);
    (fresh, aged)
}

/// Runs EXP-9.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-9", "Temporal majority voting vs. the aging floor");
    let (conv_fresh, conv_aged) = tmv_curves(cfg, RoStyle::Conventional);
    let (aro_fresh, aro_aged) = tmv_curves(cfg, RoStyle::AgingResistant);

    let mut table = Table::new(
        "Flip rate vs. TMV votes (fresh and after ten years)",
        &[
            "votes",
            "RO-PUF fresh",
            "RO-PUF 10 y",
            "ARO-PUF fresh",
            "ARO-PUF 10 y",
        ],
    );
    for (i, &votes) in VOTES.iter().enumerate() {
        table.push_row(vec![
            votes.to_string(),
            pct(conv_fresh[i].1),
            pct(conv_aged[i].1),
            pct(aro_fresh[i].1),
            pct(aro_aged[i].1),
        ]);
    }
    report.push_table(table);

    let mut figure = Figure::new("Flip rate vs. TMV votes", "votes", "flip fraction");
    figure.push_series(Series::new("RO-PUF 10y", conv_aged.clone()));
    figure.push_series(Series::new("ARO-PUF 10y", aro_aged.clone()));
    figure.push_series(Series::new("RO-PUF fresh", conv_fresh.clone()));
    figure.push_series(Series::new("ARO-PUF fresh", aro_fresh.clone()));
    report.push_figure(figure);

    report.push_note(format!(
        "voting wipes out fresh-silicon noise ({} → {} for ARO) but cannot touch the \
         ten-year aging floor ({} at 15 votes vs {} at 1 for the conventional design) — \
         reliability against aging must come from the cell, not the readout",
        pct(aro_fresh[0].1),
        pct(aro_fresh[3].1),
        pct(conv_aged[3].1),
        pct(conv_aged[0].1),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voting_kills_noise_but_not_aging() {
        let cfg = SimConfig::quick();
        let (fresh, aged) = tmv_curves(&cfg, RoStyle::Conventional);
        // Fresh: 15 votes beat 1 vote.
        assert!(fresh[3].1 <= fresh[0].1);
        // Aged: the floor barely moves — voting recovers only the noise
        // component.
        assert!(
            aged[3].1 > 0.6 * aged[0].1,
            "aging floor: {} vs {}",
            aged[3].1,
            aged[0].1
        );
        assert!(
            aged[3].1 > fresh[3].1 + 0.05,
            "aging dominates after ten years"
        );
    }

    #[test]
    fn aro_floor_is_far_below_conventional_floor() {
        let cfg = SimConfig::quick();
        let (_, conv_aged) = tmv_curves(&cfg, RoStyle::Conventional);
        let (_, aro_aged) = tmv_curves(&cfg, RoStyle::AgingResistant);
        assert!(aro_aged[3].1 < 0.5 * conv_aged[3].1);
    }

    #[test]
    fn report_has_full_sweep() {
        let report = run(&SimConfig::quick());
        assert_eq!(report.tables()[0].n_rows(), 4);
        assert_eq!(report.figures()[0].series().len(), 4);
    }
}
