//! EXP-16 — the self-healing key lifecycle: refresh-interval sweep.
//!
//! EXP-15 measures how storms erode a *static* enrollment; EXP-14's
//! erasure appendix shows knowing the damage recovers most of it. This
//! experiment closes the loop: a maintained device periodically
//! **refresh-enrolls** (`aro_ecc::refresh`) — it reconstructs its current
//! key erasure-aware (the continuity gate), then re-derives helper data
//! against the *aged* response. Each successful refresh discards the
//! accumulated NVM erosion with the old helper block and re-anchors the
//! enrollment on today's silicon, so aging drift and hard ring faults
//! stop consuming code margin.
//!
//! The sweep asks the provisioning question: across `storm@x`
//! intensities, what is the *cheapest* refresh schedule (fewest
//! refreshes over the ten-year mission) that keeps key recovery at or
//! above the 99 % target?
//!
//! Lifecycle model, stated explicitly:
//!
//! * NVM erosion accrues with storage time: a window spanning a fraction
//!   `f` of the mission erodes each stored bit with probability
//!   `rate · f` (`FaultInjector::helper_erasures_during`), so refreshing
//!   every `T/k` leaves `1/k` of the ten-year damage at each gate.
//! * Maintenance reads are careful: the re-enrollment anchor is a
//!   5-vote majority read at nominal conditions (a maintenance window),
//!   while the gate's reconstruction read runs under full field faults.
//! * Reads retry: a fielded key generator knows when reconstruction
//!   failed (keys are checked against a stored hash in any real
//!   deployment), so gates and final reconstructions retry up to
//!   [`READ_RETRIES`] times — each retry is its own measurement event
//!   and can be hit by its own transient faults.
//! * The key **rotates** at each refresh (code-offset enrollment draws a
//!   fresh salt): recovery at ten years means reconstructing the key of
//!   the *latest successful* refresh — exactly what a re-wrapped payload
//!   needs.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_ecc::fuzzy::HelperData;
use aro_ecc::keygen::KeyGenerator;
use aro_ecc::refresh::{refresh_enrollment, RefreshSchedule};
use aro_ecc::soft::{Erasures, SoftBit};
use aro_faults::{FaultInjector, FaultPlan};
use aro_metrics::bits::BitString;
use aro_puf::{Chip, MissionProfile, PairingStrategy, PufDesign};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::popcache::{age_chip_snapshotted, AgeCursor};
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// Swept refresh intervals in years (`INFINITY` = never refresh — the
/// static-enrollment control).
pub const INTERVALS_YEARS: [f64; 4] = [f64::INFINITY, 5.0, 2.5, 1.25];

/// Swept storm intensities (zero is EXP-15's anchor; the lifecycle only
/// matters under fire).
pub const INTENSITIES: [f64; 3] = [0.25, 0.5, 1.0];

/// Bounded read retries at every gate and final reconstruction.
pub const READ_RETRIES: usize = 3;

/// Ten-year recovery target the schedule search provisions for.
pub const RECOVERY_TARGET: f64 = 0.99;

/// Event-id base for refresh-gate measurement events, keeping them
/// disjoint from the final reconstruction events on the same chip.
const REFRESH_EVENT_BASE: u64 = 1 << 32;

/// Event-id base for impostor reconstruction attempts (EXP-19's
/// false-accept probe), disjoint from gates and genuine attempts.
const IMPOSTOR_EVENT_BASE: u64 = 1 << 33;

/// Per-replica helper-erosion window stride — the same failure-domain
/// discipline as `aro_serve::REPLICA_WINDOW_STRIDE`: sibling replicas of
/// one helper block erode at disjoint fault coordinates, so their damage
/// is independent. Replica 0's coordinates are unchanged, which keeps
/// the single-replica lifecycle byte-identical to EXP-16's.
const HELPER_REPLICA_WINDOW_STRIDE: u64 = 1 << 20;

/// Outcome of one maintained ten-year mission sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleTrial {
    /// Fraction of the full storm plan applied.
    pub intensity: f64,
    /// Refresh interval in years (`INFINITY` = never).
    pub interval_years: f64,
    /// Chips enrolled.
    pub chips: usize,
    /// Final reconstruction attempts per chip.
    pub attempts_per_chip: usize,
    /// Attempts that recovered the current key at ten years.
    pub recovered: usize,
    /// Refresh gates scheduled across the population.
    pub refreshes_scheduled: usize,
    /// Refresh gates that passed (continuity held, helper re-derived).
    pub refreshes_succeeded: usize,
    /// Helper bits eroded across the population over the whole mission.
    pub helper_bits_eroded: usize,
}

impl LifecycleTrial {
    /// Measured ten-year key-recovery rate.
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        self.recovered as f64 / (self.chips * self.attempts_per_chip) as f64
    }
}

/// Outcome of one replicated maintained mission sweep point (EXP-19):
/// the lifecycle of [`LifecycleTrial`] with the helper block stored in
/// N independently-eroding replicas, plus the false-accept probe.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedLifecycleTrial {
    /// The underlying lifecycle numbers.
    pub lifecycle: LifecycleTrial,
    /// Helper-store replication factor.
    pub replicas: usize,
    /// Gates and reconstructions served by a replica other than 0 —
    /// the events a single-replica deployment would have lost.
    pub replica_fallbacks: usize,
    /// Impostor reconstruction attempts (chip *i* against chip
    /// *i+1 mod n*'s enrollment).
    pub impostor_attempts: usize,
    /// Impostor attempts that recovered the victim's key — the
    /// false-accept count, which must stay zero.
    pub impostor_accepts: usize,
}

/// One faulted soft measurement event (the same excursion/burst/glitch
/// plumbing as EXP-15's attempts).
fn faulted_soft_reading(
    inj: &FaultInjector,
    chip: &mut Chip,
    design: &PufDesign,
    env: &Environment,
    pairs: &[(usize, usize)],
    chip_id: u64,
    event: u64,
) -> Vec<SoftBit> {
    let meas_env = inj.measurement_env(chip_id, event, env);
    let burst_design = inj
        .noise_burst(chip_id, event)
        .map(|factor| design.with_readout(design.readout().with_noise_burst(factor)));
    let meas_design = burst_design.as_ref().unwrap_or(design);
    let mut soft: Vec<SoftBit> = chip
        .response_soft(meas_design, &meas_env, pairs)
        .into_iter()
        .map(|(bit, confidence)| SoftBit::new(bit, confidence))
        .collect();
    for bit in inj.response_glitches(chip_id, event, soft.len()) {
        soft[bit].value = !soft[bit].value;
    }
    soft
}

/// The sweep's reusable chip bench: the design and its fabricated chips
/// plus their golden (enrollment) responses, built once for all twelve
/// (intensity, interval) points. Fabrication and the golden read are
/// pure per *(design, chip id)*, so each trial rewinds the silicon with
/// [`Chip::reset_to_fabricated`] instead of re-sampling it, and re-uses
/// the cached goldens instead of re-deriving every ring's frequency.
pub struct SweepWorkspace {
    design: PufDesign,
    env: Environment,
    profile: MissionProfile,
    pairs: Vec<(usize, usize)>,
    chips: Vec<Chip>,
    goldens: Vec<BitString>,
}

impl SweepWorkspace {
    /// Fabricates the bench: `chips` chips sized for `generator`.
    #[must_use]
    pub fn new(cfg: &SimConfig, generator: &KeyGenerator, chips: usize) -> Self {
        let n_ros = 2 * generator.response_bits();
        let design = PufDesign::builder(RoStyle::AgingResistant)
            .n_ros(n_ros)
            .seed(cfg.seed ^ 0xe16)
            .build();
        let env = Environment::nominal(design.tech());
        let profile = MissionProfile::typical(design.tech());
        let pairs = PairingStrategy::Neighbor.pairs(n_ros);
        let chips: Vec<Chip> = (0..chips as u64)
            .map(|id| Chip::fabricate(&design, id))
            .collect();
        let goldens: Vec<BitString> = chips
            .iter()
            .map(|chip| chip.golden_response(&design, &env, &pairs))
            .collect();
        Self {
            design,
            env,
            profile,
            pairs,
            chips,
            goldens,
        }
    }
}

/// Rebuilds the device's own damage knowledge in place: the dedup'd
/// erosion backlog replaces the helper flags while the BIST response
/// flags (constant for the whole mission) stay put — no per-window
/// clone of the BIST vector.
fn refresh_known(known: &mut Erasures, accumulated: &[(usize, usize)]) {
    known.helper.clear();
    known.helper.extend_from_slice(accumulated);
    known.helper.sort_unstable();
    known.helper.dedup();
}

/// Runs one (intensity, interval) point of the maintained mission.
/// Deterministic in its arguments: the injector is coordinate-addressed
/// and every measurement event has a stable id.
#[must_use]
pub fn run_trial(
    cfg: &SimConfig,
    generator: &KeyGenerator,
    intensity: f64,
    interval_years: f64,
    chips: usize,
    attempts_per_chip: usize,
) -> LifecycleTrial {
    let mut workspace = SweepWorkspace::new(cfg, generator, chips);
    run_trial_on(
        cfg,
        generator,
        &mut workspace,
        intensity,
        interval_years,
        attempts_per_chip,
    )
}

/// [`run_trial`] on a reusable [`SweepWorkspace`]. Aging goes through the
/// aged-state snapshot store ([`age_chip_snapshotted`]): all three
/// intensities walk the same per-interval aging prefixes, so only the
/// first trial to reach a given window pays the wear physics.
fn run_trial_on(
    cfg: &SimConfig,
    generator: &KeyGenerator,
    workspace: &mut SweepWorkspace,
    intensity: f64,
    interval_years: f64,
    attempts_per_chip: usize,
) -> LifecycleTrial {
    run_replicated_trial_on(
        cfg,
        generator,
        workspace,
        intensity,
        interval_years,
        1,
        attempts_per_chip,
        0,
    )
    .lifecycle
}

/// One (intensity, interval, replicas) point of the replicated
/// maintained mission, on its own workspace (EXP-19's unit trial).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_replicated_trial(
    cfg: &SimConfig,
    generator: &KeyGenerator,
    intensity: f64,
    interval_years: f64,
    replicas: usize,
    chips: usize,
    attempts_per_chip: usize,
    impostor_attempts_per_chip: usize,
) -> ReplicatedLifecycleTrial {
    let mut workspace = SweepWorkspace::new(cfg, generator, chips);
    run_replicated_trial_on(
        cfg,
        generator,
        &mut workspace,
        intensity,
        interval_years,
        replicas,
        attempts_per_chip,
        impostor_attempts_per_chip,
    )
}

/// The generalized lifecycle: the helper block is stored in `replicas`
/// independently-eroding copies. Every gate and every reconstruction
/// reads the silicon once, then tries the replicas in index order —
/// lowest intact lineage serves, exactly the quorum-read discipline of
/// `aro_serve`'s store — and a successful refresh rewrites *all*
/// replicas pristine (the lifecycle's anti-entropy scrub). With
/// `impostor_attempts_per_chip > 0`, chip *i* additionally attacks chip
/// *i+1 mod n*'s final enrollment to measure the false-accept side.
/// Deterministic in its arguments; `replicas = 1,
/// impostor_attempts_per_chip = 0` reproduces [`run_trial`] byte for
/// byte.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
pub fn run_replicated_trial_on(
    cfg: &SimConfig,
    generator: &KeyGenerator,
    workspace: &mut SweepWorkspace,
    intensity: f64,
    interval_years: f64,
    replicas: usize,
    attempts_per_chip: usize,
    impostor_attempts_per_chip: usize,
) -> ReplicatedLifecycleTrial {
    assert!(replicas >= 1, "the helper store needs at least one replica");
    let mission_s = 10.0 * YEAR;
    let plan = FaultPlan::storm().scaled(intensity);
    let inj = FaultInjector::new(plan, cfg.seed);
    let schedule = RefreshSchedule::new(interval_years * YEAR, mission_s);

    let SweepWorkspace {
        design,
        env,
        profile,
        pairs,
        chips,
        goldens,
    } = workspace;
    let n_ros = design.n_ros();
    let chip_count = chips.len();

    let mut recovered = 0;
    let mut refreshes_scheduled = 0;
    let mut refreshes_succeeded = 0;
    let mut helper_bits_eroded = 0;
    let mut replica_fallbacks = 0;
    // Each chip's end-of-mission stored state — per-replica (eroded
    // helper, erasure flags) plus the current key — kept for the
    // impostor pass below.
    let mut finals: Vec<(Vec<(HelperData, Erasures)>, BitString)> =
        Vec::with_capacity(chip_count);
    for (slot, chip) in chips.iter_mut().enumerate() {
        let id = slot as u64;
        chip.reset_to_fabricated();
        let mut cursor = AgeCursor::new();
        let mut rng = design.seed_domain().child("exp16").rng(id);
        let (mut key, mut helper) = generator.enroll(&goldens[slot], &mut rng);
        let block_lens = helper.block_lens();

        // The field kills rings up front (worst case for a lifecycle:
        // every window lives with the damage); BIST flags the affected
        // response bits for the whole mission.
        for (slot, health) in inj.hard_faults(id, n_ros) {
            chip.set_ro_health(slot, health);
        }
        let bist: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| {
                !chip.ros()[a].health().is_healthy() || !chip.ros()[b].health().is_healthy()
            })
            .map(|(bit, _)| bit)
            .collect();

        // Erosion accumulates per replica between refreshes (sibling
        // replicas erode at disjoint fault coordinates — the window
        // stride); a successful refresh rewrites every replica pristine
        // and clears all backlogs. The BIST flags live in
        // `known.response` for the whole mission; only the helper
        // backlog is rebuilt per window and replica.
        let mut accumulated: Vec<Vec<(usize, usize)>> = vec![Vec::new(); replicas];
        let mut known = Erasures {
            helper: Vec::new(),
            response: bist,
        };

        let mut boundaries = schedule.refresh_times();
        boundaries.push(mission_s);
        let mut elapsed = 0.0;
        for (window, &t) in boundaries.iter().enumerate() {
            let dt = t - elapsed;
            age_chip_snapshotted(chip, design, profile, dt, &mut cursor);
            for (k, backlog) in accumulated.iter_mut().enumerate() {
                backlog.extend(inj.helper_erasures_during(
                    id,
                    window as u64 + k as u64 * HELPER_REPLICA_WINDOW_STRIDE,
                    dt / mission_s,
                    &block_lens,
                ));
            }
            elapsed = t;

            let is_refresh_gate = window < boundaries.len() - 1;
            if !is_refresh_gate {
                break;
            }
            refreshes_scheduled += 1;
            'gate: for retry in 0..READ_RETRIES as u64 {
                let event = REFRESH_EVENT_BASE + window as u64 * READ_RETRIES as u64 + retry;
                let soft = faulted_soft_reading(&inj, chip, design, env, pairs, id, event);
                let anchor = chip.response_voted(design, env, pairs, 5);
                // One silicon read, then the replicas in index order:
                // the gate passes on the first replica whose lineage
                // still holds the key chain together.
                for (k, backlog) in accumulated.iter().enumerate() {
                    let eroded = helper.with_flipped_bits(backlog);
                    refresh_known(&mut known, backlog);
                    let Some((new_key, new_helper)) = refresh_enrollment(
                        generator, &soft, &eroded, &known, &key, &anchor, &mut rng,
                    ) else {
                        continue;
                    };
                    if k > 0 {
                        replica_fallbacks += 1;
                    }
                    key = new_key;
                    helper = new_helper;
                    helper_bits_eroded += accumulated.iter().map(Vec::len).sum::<usize>();
                    for backlog in &mut accumulated {
                        backlog.clear();
                    }
                    refreshes_succeeded += 1;
                    break 'gate;
                }
            }
        }

        // End of mission: reconstruct the current key from what is
        // actually stored, under full field faults.
        helper_bits_eroded += accumulated.iter().map(Vec::len).sum::<usize>();
        let stored: Vec<(HelperData, Erasures)> = accumulated
            .iter()
            .map(|backlog| {
                let eroded = helper.with_flipped_bits(backlog);
                let mut flags = Erasures {
                    helper: Vec::new(),
                    response: known.response.clone(),
                };
                refresh_known(&mut flags, backlog);
                (eroded, flags)
            })
            .collect();
        for attempt in 0..attempts_per_chip as u64 {
            'attempt: for retry in 0..READ_RETRIES as u64 {
                let event = attempt * READ_RETRIES as u64 + retry;
                let soft = faulted_soft_reading(&inj, chip, design, env, pairs, id, event);
                for (k, (eroded, flags)) in stored.iter().enumerate() {
                    if generator.reconstruct_soft_erasure_aware(&soft, eroded, flags)
                        == Some(key.clone())
                    {
                        if k > 0 {
                            replica_fallbacks += 1;
                        }
                        recovered += 1;
                        break 'attempt;
                    }
                }
            }
        }
        finals.push((stored, key));
        // The mission's reads warmed this chip's kernels at its final
        // aged state; donate them so the next trial to replay the same
        // aging prefix preloads instead of rebuilding.
        crate::popcache::harvest_kernel_hints(chip, design, &cursor);
    }

    // False-accept probe: chip i attacks chip i+1 (mod n)'s stored
    // enrollment with its own silicon — every replica of the victim's
    // helper is fair game, and any reconstruction of the victim's key
    // is a false accept.
    let mut impostor_attempts = 0;
    let mut impostor_accepts = 0;
    if impostor_attempts_per_chip > 0 && chip_count >= 2 {
        for (slot, chip) in chips.iter_mut().enumerate() {
            let (victim_stored, victim_key) = &finals[(slot + 1) % chip_count];
            for attempt in 0..impostor_attempts_per_chip as u64 {
                impostor_attempts += 1;
                'probe: for retry in 0..READ_RETRIES as u64 {
                    let event = IMPOSTOR_EVENT_BASE + attempt * READ_RETRIES as u64 + retry;
                    let soft =
                        faulted_soft_reading(&inj, chip, design, env, pairs, slot as u64, event);
                    for (eroded, flags) in victim_stored {
                        if generator.reconstruct_soft_erasure_aware(&soft, eroded, flags)
                            == Some(victim_key.clone())
                        {
                            impostor_accepts += 1;
                            break 'probe;
                        }
                    }
                }
            }
        }
    }

    ReplicatedLifecycleTrial {
        lifecycle: LifecycleTrial {
            intensity,
            interval_years,
            chips: chip_count,
            attempts_per_chip,
            recovered,
            refreshes_scheduled,
            refreshes_succeeded,
            helper_bits_eroded,
        },
        replicas,
        replica_fallbacks,
        impostor_attempts,
        impostor_accepts,
    }
}

/// Human label for a refresh interval (`INFINITY` = "never").
#[must_use]
pub fn interval_label(interval_years: f64) -> String {
    if interval_years.is_finite() {
        format!("{interval_years:.2} y")
    } else {
        "never".to_string()
    }
}

/// Runs EXP-16.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new(
        "EXP-16",
        "Self-healing helper-data refresh (interval sweep)",
    );

    // Same provisioning as EXP-15: the ECC sized for the ARO design's
    // fault-free ten-year BER. The lifecycle — not a bigger code — has to
    // supply the storm margin.
    let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
    let ber = timeline.final_quantile(0.99);
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let Some(generator) =
        crate::popcache::provisioned_generator(ber, cfg.key_bits, cfg.key_fail_target, &params)
    else {
        report.push_note("no feasible ARO design point — increase the code search space");
        return report;
    };
    report.push_note(format!(
        "lifecycle model: erasure-aware reconstruction everywhere, {READ_RETRIES} read \
         retries per gate/attempt, 5-vote maintenance anchor reads, key rotation at each \
         refresh behind a continuity gate; ECC provisioned for fault-free BER {}",
        pct(ber)
    ));

    let chips = cfg.n_chips.clamp(4, 8);
    let attempts = 2;
    // One fabricated bench for the whole 12-point sweep; every trial
    // rewinds it to fresh silicon and re-ages it through the snapshot
    // store (the sweep's aging prefixes repeat across intensities).
    let mut workspace = SweepWorkspace::new(cfg, &generator, chips);
    let mut table = Table::new(
        "Ten-year key recovery vs. refresh interval (ARO-PUF, storm-scaled faults)",
        &[
            "intensity",
            "refresh interval",
            "refreshes (ok/scheduled)",
            "helper bits eroded",
            "attempts",
            "recovered",
            "recovery rate",
        ],
    );
    let mut cheapest = Vec::new();
    for intensity in INTENSITIES {
        let mut trials = Vec::new();
        for interval_years in INTERVALS_YEARS {
            let trial = run_trial_on(
                cfg,
                &generator,
                &mut workspace,
                intensity,
                interval_years,
                attempts,
            );
            table.push_row(vec![
                format!("{intensity:.2}"),
                interval_label(interval_years),
                format!("{}/{}", trial.refreshes_succeeded, trial.refreshes_scheduled),
                trial.helper_bits_eroded.to_string(),
                (trial.chips * trial.attempts_per_chip).to_string(),
                trial.recovered.to_string(),
                pct(trial.recovery_rate()),
            ]);
            trials.push(trial);
        }
        // Cheapest schedule = fewest refreshes meeting the target.
        let winner = trials
            .iter()
            .filter(|t| t.recovery_rate() >= RECOVERY_TARGET)
            .min_by_key(|t| t.refreshes_scheduled);
        cheapest.push((intensity, winner.cloned()));
    }
    report.push_table(table);

    for (intensity, winner) in &cheapest {
        match winner {
            Some(t) => report.push_note(format!(
                "storm@{intensity}: cheapest schedule at or above {} recovery is `{}` \
                 ({} refresh(es) over the mission, recovery {})",
                pct(RECOVERY_TARGET),
                interval_label(t.interval_years),
                t.refreshes_scheduled / t.chips.max(1),
                pct(t.recovery_rate()),
            )),
            None => report.push_note(format!(
                "storm@{intensity}: no swept schedule reaches {} recovery — refresh more \
                 often than every {} years or grow the code",
                pct(RECOVERY_TARGET),
                INTERVALS_YEARS[INTERVALS_YEARS.len() - 1],
            )),
        }
    }
    report.push_note(
        "a refresh both scrubs the helper NVM (erosion backlog drops to the current \
         window's) and re-anchors enrollment on aged silicon (drift and BIST-flagged \
         rings stop spending code margin) — the static `never` row pays the full \
         ten-year backlog at its only reconstruction",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    fn tiny_generator(cfg: &SimConfig) -> KeyGenerator {
        let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
        let ber = timeline.final_quantile(0.99);
        let params = puf_area_params(RoStyle::AgingResistant, 5);
        KeyGenerator::for_bit_error_rate(ber, cfg.key_bits, cfg.key_fail_target, &params)
            .expect("feasible")
    }

    #[test]
    fn never_refreshing_schedules_no_gates() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let trial = run_trial(&cfg, &generator, 0.5, f64::INFINITY, 3, 2);
        assert_eq!(trial.refreshes_scheduled, 0);
        assert_eq!(trial.refreshes_succeeded, 0);
    }

    #[test]
    fn refreshing_schedules_gates_and_is_replayable() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let trial = run_trial(&cfg, &generator, 0.5, 2.5, 3, 2);
        assert_eq!(trial.refreshes_scheduled, 3 * 3, "3 gates per chip");
        assert!(trial.refreshes_succeeded > 0, "some gate must pass");
        assert_eq!(
            trial,
            run_trial(&cfg, &generator, 0.5, 2.5, 3, 2),
            "the lifecycle must be replayable"
        );
    }

    #[test]
    fn refreshing_never_recovers_fewer_keys_than_the_static_control() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let never = run_trial(&cfg, &generator, 1.0, f64::INFINITY, 4, 2);
        let maintained = run_trial(&cfg, &generator, 1.0, 2.5, 4, 2);
        assert!(
            maintained.recovered >= never.recovered,
            "maintained {} vs static {}",
            maintained.recovered,
            never.recovered
        );
    }

    #[test]
    fn single_replica_lifecycle_matches_the_unreplicated_trial() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let plain = run_trial(&cfg, &generator, 0.5, 2.5, 3, 2);
        let replicated = run_replicated_trial(&cfg, &generator, 0.5, 2.5, 1, 3, 2, 0);
        assert_eq!(replicated.lifecycle, plain, "replicas=1 must be byte-identical");
        assert_eq!(replicated.replica_fallbacks, 0);
        assert_eq!(replicated.impostor_attempts, 0);
    }

    #[test]
    fn replication_never_recovers_fewer_keys_and_rejects_impostors() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let one = run_replicated_trial(&cfg, &generator, 1.0, 2.5, 1, 4, 2, 1);
        let three = run_replicated_trial(&cfg, &generator, 1.0, 2.5, 3, 4, 2, 1);
        assert!(
            three.lifecycle.recovered >= one.lifecycle.recovered,
            "3 replicas {} vs 1 replica {}",
            three.lifecycle.recovered,
            one.lifecycle.recovered
        );
        assert_eq!(one.impostor_attempts, 4);
        assert_eq!(one.impostor_accepts, 0, "FAR must be zero");
        assert_eq!(three.impostor_accepts, 0, "FAR must be zero");
        assert_eq!(
            three,
            run_replicated_trial(&cfg, &generator, 1.0, 2.5, 3, 4, 2, 1),
            "the replicated lifecycle must be replayable"
        );
    }

    #[test]
    fn report_sweeps_all_points_and_names_a_schedule_per_intensity() {
        let report = run(&tiny_cfg());
        let table = &report.tables()[0];
        assert_eq!(table.n_rows(), INTENSITIES.len() * INTERVALS_YEARS.len());
        // One model note + one schedule note per intensity + one closing.
        assert_eq!(report.notes().len(), 2 + INTENSITIES.len());
    }
}
