//! EXP-14 — soft-decision decoding gain.
//!
//! The counter readout knows *how close* every comparison was, not just
//! its sign. A soft-decision inner decoder (confidence-weighted majority,
//! `aro_ecc::soft`) uses that magnitude, so hesitant wrong reads lose to
//! confident right ones. This experiment deliberately under-provisions
//! both code layers, ages the silicon ten years, and reconstructs
//! keys both ways from the *same* readings: hard decoding loses keys the
//! soft decoder still recovers — i.e. soft decision buys back code area.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_ecc::keygen::KeyGenerator;
use aro_ecc::soft::{Erasures, SoftBit};
use aro_faults::{FaultInjector, FaultPlan};
use aro_metrics::bits::BitString;
use aro_puf::{Chip, MissionProfile, PairingStrategy, PufDesign};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// Outcome of the hard-vs-soft comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftGain {
    /// Reconstruction attempts per decoder.
    pub attempts: usize,
    /// Hard-decision failures.
    pub hard_failures: usize,
    /// Soft-decision failures on the same readings.
    pub soft_failures: usize,
    /// Mean |Δcount| of bits that agreed with enrollment.
    pub confidence_correct: f64,
    /// Mean |Δcount| of bits that flipped since enrollment.
    pub confidence_flipped: f64,
}

/// Runs the under-provisioned ten-year key trial for the ARO design.
#[must_use]
pub fn measure(cfg: &SimConfig, chips: usize, attempts_per_chip: usize) -> SoftGain {
    // Provision properly, then under-provision the inner repetition so
    // failures become observable at trial scale.
    let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
    let ber = timeline.final_quantile(0.99);
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let provisioned =
        crate::popcache::provisioned_generator(ber, cfg.key_bits, cfg.key_fail_target, &params)
            .expect("feasible ARO design point");
    // Under-provision both layers: the thinnest soft-capable inner code
    // (r = 3) and a quarter of the outer correction capability. Hard
    // decoding now fails visibly at ten years; the soft decoder sees the
    // same counts.
    let mut spec = provisioned.spec().clone();
    spec.rep_r = 3;
    spec.bch_t = (spec.bch_t / 4).max(2);
    spec.raw_bits = spec.blocks * spec.bch_n * spec.rep_r;
    let generator = KeyGenerator::from_spec(&spec, cfg.key_bits);

    let n_ros = 2 * generator.response_bits();
    let design = PufDesign::builder(RoStyle::AgingResistant)
        .n_ros(n_ros)
        .seed(cfg.seed ^ 0xe14)
        .build();
    let env = Environment::nominal(design.tech());
    let profile = MissionProfile::typical(design.tech());
    let pairs = PairingStrategy::Neighbor.pairs(n_ros);

    let mut hard_failures = 0;
    let mut soft_failures = 0;
    let mut conf_correct = (0.0, 0usize);
    let mut conf_flipped = (0.0, 0usize);
    for id in 0..chips as u64 {
        let mut chip = Chip::fabricate(&design, id);
        let mut rng = design.seed_domain().child("exp14").rng(id);
        let enrolled = chip.golden_response(&design, &env, &pairs);
        let (key, helper) = generator.enroll(&enrolled, &mut rng);

        profile.age_chip(&mut chip, &design, 10.0 * YEAR);

        for _ in 0..attempts_per_chip {
            let soft_reading = chip.response_soft(&design, &env, &pairs);
            for (i, &(bit, confidence)) in soft_reading.iter().enumerate() {
                if bit == enrolled.get(i) {
                    conf_correct.0 += confidence;
                    conf_correct.1 += 1;
                } else {
                    conf_flipped.0 += confidence;
                    conf_flipped.1 += 1;
                }
            }
            let hard: BitString = soft_reading.iter().map(|&(b, _)| b).collect();
            if generator.reconstruct(&hard, &helper) != Some(key.clone()) {
                hard_failures += 1;
            }
            let soft: Vec<SoftBit> = soft_reading
                .iter()
                .map(|&(b, w)| SoftBit::new(b, w))
                .collect();
            if generator.reconstruct_soft(&soft, &helper) != Some(key.clone()) {
                soft_failures += 1;
            }
        }
    }
    SoftGain {
        attempts: chips * attempts_per_chip,
        hard_failures,
        soft_failures,
        confidence_correct: conf_correct.0 / conf_correct.1.max(1) as f64,
        confidence_flipped: conf_flipped.0 / conf_flipped.1.max(1) as f64,
    }
}

/// Outcome of the blind-vs-erasure-aware comparison under helper-data
/// erosion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErasureGain {
    /// Reconstruction attempts per decoder.
    pub attempts: usize,
    /// Blind soft-decoding failures (the decoder does not know which
    /// helper bits eroded).
    pub blind_failures: usize,
    /// Erasure-aware failures on the same readings, with the eroded
    /// positions flagged.
    pub aware_failures: usize,
    /// Helper bits eroded across the population.
    pub helper_bits_erased: usize,
}

/// Measures what *knowing* the damage is worth: a **properly provisioned**
/// generator (no under-sizing — aging alone never costs it a key), a
/// ten-year mission, and `storm`-rate helper-data erosion with the eroded
/// positions flagged, as an NVM integrity check would. Blind soft decoding
/// loses every key whose helper block took a hit (the re-applied corrupted
/// offset survives decoding); erasure-aware decoding substitutes the
/// measured bit at flagged positions and keeps the rest of the code budget
/// for ordinary noise.
#[must_use]
pub fn measure_erasure_gain(cfg: &SimConfig, chips: usize, attempts_per_chip: usize) -> ErasureGain {
    let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
    let ber = timeline.final_quantile(0.99);
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let generator =
        crate::popcache::provisioned_generator(ber, cfg.key_bits, cfg.key_fail_target, &params)
            .expect("feasible ARO design point");
    let inj = FaultInjector::new(FaultPlan::storm(), cfg.seed);

    let n_ros = 2 * generator.response_bits();
    let design = PufDesign::builder(RoStyle::AgingResistant)
        .n_ros(n_ros)
        .seed(cfg.seed ^ 0x14e5)
        .build();
    let env = Environment::nominal(design.tech());
    let profile = MissionProfile::typical(design.tech());
    let pairs = PairingStrategy::Neighbor.pairs(n_ros);

    let mut blind_failures = 0;
    let mut aware_failures = 0;
    let mut helper_bits_erased = 0;
    for id in 0..chips as u64 {
        let mut chip = Chip::fabricate(&design, id);
        let mut rng = design.seed_domain().child("exp14-erasure").rng(id);
        let enrolled = chip.golden_response(&design, &env, &pairs);
        let (key, helper) = generator.enroll(&enrolled, &mut rng);

        let erased = inj.helper_erasures(id, &helper.block_lens());
        helper_bits_erased += erased.len();
        let eroded = helper.with_flipped_bits(&erased);
        let known = Erasures::from_helper(erased);

        profile.age_chip(&mut chip, &design, 10.0 * YEAR);

        for _ in 0..attempts_per_chip {
            let soft: Vec<SoftBit> = chip
                .response_soft(&design, &env, &pairs)
                .into_iter()
                .map(|(bit, confidence)| SoftBit::new(bit, confidence))
                .collect();
            if generator.reconstruct_soft(&soft, &eroded) != Some(key.clone()) {
                blind_failures += 1;
            }
            if generator.reconstruct_soft_erasure_aware(&soft, &eroded, &known) != Some(key.clone())
            {
                aware_failures += 1;
            }
        }
    }
    ErasureGain {
        attempts: chips * attempts_per_chip,
        blind_failures,
        aware_failures,
        helper_bits_erased,
    }
}

/// Runs EXP-14.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-14", "Soft-decision decoding gain");
    let chips = cfg.n_chips.clamp(4, 16);
    let gain = measure(cfg, chips, 4);

    let mut table = Table::new(
        "Ten-year key reconstruction with an under-provisioned inner code \
         (same readings, two decoders)",
        &["decoder", "attempts", "failures", "failure rate"],
    );
    table.push_row(vec![
        "hard majority".to_string(),
        gain.attempts.to_string(),
        gain.hard_failures.to_string(),
        pct(gain.hard_failures as f64 / gain.attempts as f64),
    ]);
    table.push_row(vec![
        "soft (confidence-weighted)".to_string(),
        gain.attempts.to_string(),
        gain.soft_failures.to_string(),
        pct(gain.soft_failures as f64 / gain.attempts as f64),
    ]);
    report.push_table(table);

    let mut confidence = Table::new(
        "Readout confidence (|Δcount|) by bit outcome",
        &["bit outcome", "mean |Δcount|"],
    );
    confidence.push_row(vec![
        "agrees with enrollment".to_string(),
        format!("{:.0}", gain.confidence_correct),
    ]);
    confidence.push_row(vec![
        "flipped since enrollment".to_string(),
        format!("{:.0}", gain.confidence_flipped),
    ]);
    report.push_table(confidence);

    report.push_note(format!(
        "flipped bits announce themselves: their mean |Δcount| is {:.1}x smaller than \
         stable bits', which is exactly the signal the soft decoder uses to out-recover \
         the hard one ({} vs {} failures on identical readings)",
        gain.confidence_correct / gain.confidence_flipped.max(1e-9),
        gain.soft_failures,
        gain.hard_failures,
    ));

    let erasure = measure_erasure_gain(cfg, chips, 2);
    let mut erasure_table = Table::new(
        "Helper-data erosion at storm rates (properly provisioned ECC, \
         same readings, blind vs. erasure-aware soft decoding)",
        &[
            "decoder",
            "attempts",
            "failures",
            "failure rate",
            "helper bits erased",
        ],
    );
    erasure_table.push_row(vec![
        "soft, blind to erasures".to_string(),
        erasure.attempts.to_string(),
        erasure.blind_failures.to_string(),
        pct(erasure.blind_failures as f64 / erasure.attempts as f64),
        erasure.helper_bits_erased.to_string(),
    ]);
    erasure_table.push_row(vec![
        "soft, erasure-aware".to_string(),
        erasure.attempts.to_string(),
        erasure.aware_failures.to_string(),
        pct(erasure.aware_failures as f64 / erasure.attempts as f64),
        erasure.helper_bits_erased.to_string(),
    ]);
    report.push_table(erasure_table);
    report.push_note(format!(
        "confidence alone cannot see stored-bit damage: a corrupted offset bit survives \
         blind decoding and defeats the key ({} of {} attempts), while flagging the \
         eroded positions as erasures recovers all but {} — knowledge of *where* the \
         damage sits is worth more than any amount of decoding margin",
        erasure.blind_failures, erasure.attempts, erasure.aware_failures,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    #[test]
    fn soft_never_fails_more_than_hard_and_flips_are_low_confidence() {
        let gain = measure(&tiny_cfg(), 6, 3);
        assert!(
            gain.soft_failures <= gain.hard_failures,
            "soft {} vs hard {}",
            gain.soft_failures,
            gain.hard_failures
        );
        assert!(
            gain.confidence_flipped < 0.6 * gain.confidence_correct,
            "flipped-bit confidence {} should be well below stable-bit {}",
            gain.confidence_flipped,
            gain.confidence_correct
        );
    }

    #[test]
    fn report_renders_both_decoders() {
        let report = run(&tiny_cfg());
        assert_eq!(report.tables()[0].n_rows(), 2);
        assert_eq!(report.tables()[1].n_rows(), 2);
        assert_eq!(report.tables()[2].n_rows(), 2);
    }

    #[test]
    fn erasure_awareness_beats_blind_soft_decoding_under_erosion() {
        let gain = measure_erasure_gain(&tiny_cfg(), 6, 2);
        assert!(
            gain.helper_bits_erased > 0,
            "storm must erode some helper bits"
        );
        assert!(
            gain.blind_failures > gain.aware_failures,
            "blind {} must lose keys aware decoding ({}) keeps",
            gain.blind_failures,
            gain.aware_failures
        );
        // Blind decoding is near-certain loss (any helper hit defeats the
        // key); erasure-awareness turns that into a per-bit risk, so it
        // must recover at least half the attempts blind decoding loses.
        assert!(
            2 * gain.aware_failures <= gain.blind_failures,
            "aware {} should at least halve blind {}",
            gain.aware_failures,
            gain.blind_failures
        );
    }
}
