//! EXP-15 — key recovery under injected faults (chaos sweep).
//!
//! The robustness capstone: take exp8's end-to-end key-generation flow
//! and sweep it across fault intensities. Each intensity point scales the
//! `storm` plan's *rates* (how often physics misbehaves) while keeping
//! magnitudes fixed, then replays the full product flow — enroll at the
//! healthy factory, deploy for ten years while rings die, helper-data NVM
//! bits erode, and every field measurement risks a supply droop, an RTN
//! burst, or a counter glitch — and counts how many reconstruction
//! attempts still recover the enrolled key.
//!
//! Zero intensity is the anchor: the plan is off, the injector never
//! fires, and the trial is byte-identical to the fault-free flow. The
//! sweep then shows *which* PUF budget buys robustness: the ARO design's
//! ECC margin absorbs early intensities, while the conventional control —
//! already failing through the same undersized code — has no margin left
//! to spend.
//!
//! Note the fault-class split documented in `docs/ROBUSTNESS.md`: the
//! flip-timeline experiments see environment excursions, noise bursts,
//! and hard RO faults (faults expressible as a measurement's physics);
//! counter glitches and helper-data erasures act on *responses* and
//! *stored bits*, so this experiment is where they bite.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_ecc::keygen::KeyGenerator;
use aro_ecc::soft::{Erasures, SoftBit};
use aro_faults::{FaultInjector, FaultPlan};
use aro_metrics::bits::BitString;
use aro_puf::{Chip, MissionProfile, PairingStrategy, PufDesign};

use crate::config::SimConfig;
use crate::experiments::exp2;
use crate::popcache::{age_chip_snapshotted, AgeCursor};
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// The swept intensity points (fractions of the full `storm` plan).
pub const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// Outcome of the faulted end-to-end flow for one (style, intensity).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedKeyTrial {
    /// Cell style of the chips.
    pub style: RoStyle,
    /// Fraction of the full storm plan applied.
    pub intensity: f64,
    /// Chips enrolled.
    pub chips: usize,
    /// Reconstruction attempts per chip.
    pub attempts_per_chip: usize,
    /// Attempts that reproduced the enrolled key.
    pub recovered: usize,
    /// Attempts recovered by *blind* soft decoding of the same readings
    /// (confidence-weighted, but ignorant of which positions are damaged).
    pub recovered_soft: usize,
    /// Attempts recovered by **erasure-aware** soft decoding: NVM-flagged
    /// helper bits and BIST-flagged faulty-ring response bits vote with
    /// zero confidence (see `aro_ecc::soft::Erasures`).
    pub recovered_erasure_aware: usize,
    /// Rings killed or stuck across the population (hard faults).
    pub hard_faulted_ros: usize,
    /// Helper-data bits erased across the population.
    pub helper_bits_erased: usize,
}

impl FaultedKeyTrial {
    /// Measured key-recovery rate (hard decoding — the baseline flow).
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        self.recovered as f64 / (self.chips * self.attempts_per_chip) as f64
    }

    /// Key-recovery rate of blind soft decoding.
    #[must_use]
    pub fn soft_recovery_rate(&self) -> f64 {
        self.recovered_soft as f64 / (self.chips * self.attempts_per_chip) as f64
    }

    /// Key-recovery rate of erasure-aware soft decoding.
    #[must_use]
    pub fn erasure_aware_recovery_rate(&self) -> f64 {
        self.recovered_erasure_aware as f64 / (self.chips * self.attempts_per_chip) as f64
    }
}

/// The chaos sweep's reusable chip bench for one style: fabricated once
/// with cached golden (enrollment) responses, rewound to fresh silicon
/// per intensity point (see EXP-16's workspace for the pattern).
struct StyleWorkspace {
    design: PufDesign,
    env: Environment,
    profile: MissionProfile,
    pairs: Vec<(usize, usize)>,
    chips: Vec<Chip>,
    goldens: Vec<BitString>,
}

impl StyleWorkspace {
    fn new(cfg: &SimConfig, style: RoStyle, generator: &KeyGenerator, chips: usize) -> Self {
        let n_ros = 2 * generator.response_bits();
        let design = PufDesign::builder(style)
            .n_ros(n_ros)
            .seed(cfg.seed ^ 0xe2e)
            .build();
        let env = Environment::nominal(design.tech());
        let profile = MissionProfile::typical(design.tech());
        let pairs = PairingStrategy::Neighbor.pairs(n_ros);
        // Chips and goldens come from the population cache: EXP-8 already
        // fabricated and enrolled exactly this silicon (same design seed),
        // so the sweep reads the cached population back instead of
        // re-deriving process variation and enrollment responses.
        let chips: Vec<Chip> = (0..chips as u64)
            .map(|id| crate::popcache::fabricated_chip(&design, id))
            .collect();
        let goldens: Vec<BitString> = chips
            .iter()
            .map(|chip| crate::popcache::golden_response(chip, &design, &env, &pairs))
            .collect();
        Self {
            design,
            env,
            profile,
            pairs,
            chips,
            goldens,
        }
    }
}

/// Runs the faulted end-to-end flow for one style at one intensity.
/// Deterministic in `(cfg, style, generator, intensity)`: the injector is
/// coordinate-addressed, so the schedule does not depend on thread count
/// or call order. Uses exp8's design seed, so a zero-intensity trial
/// walks exactly the fault-free flow.
#[must_use]
pub fn run_trial(
    cfg: &SimConfig,
    style: RoStyle,
    generator: &KeyGenerator,
    intensity: f64,
    chips: usize,
    attempts_per_chip: usize,
) -> FaultedKeyTrial {
    let mut workspace = StyleWorkspace::new(cfg, style, generator, chips);
    run_trial_on(cfg, &mut workspace, intensity, generator, attempts_per_chip)
}

/// [`run_trial`] on a reusable [`StyleWorkspace`]. The ten-year aging
/// step goes through the aged-state snapshot store
/// ([`age_chip_snapshotted`]): inside one run, EXP-8 has already walked
/// the same silicon through the same step, so every intensity replays
/// its wear instead of re-deriving it.
fn run_trial_on(
    cfg: &SimConfig,
    workspace: &mut StyleWorkspace,
    intensity: f64,
    generator: &KeyGenerator,
    attempts_per_chip: usize,
) -> FaultedKeyTrial {
    let plan = FaultPlan::storm().scaled(intensity);
    let inj = FaultInjector::new(plan, cfg.seed);

    let StyleWorkspace {
        design,
        env,
        profile,
        pairs,
        chips,
        goldens,
    } = workspace;
    let style = design.style();
    let n_ros = design.n_ros();
    let chip_count = chips.len();

    let mut recovered = 0;
    let mut recovered_soft = 0;
    let mut recovered_erasure_aware = 0;
    let mut hard_faulted_ros = 0;
    let mut helper_bits_erased = 0;
    for (slot, chip) in chips.iter_mut().enumerate() {
        let id = slot as u64;
        // Factory: healthy silicon, nominal conditions, pristine NVM.
        chip.reset_to_fabricated();
        let mut cursor = AgeCursor::new();
        let mut enroll_rng = design.seed_domain().child("keygen").rng(id);
        let (key, helper) = generator.enroll(&goldens[slot], &mut enroll_rng);

        // Field: rings die behind the factory's back, stored helper bits
        // erode once (NVM damage persists across attempts).
        for (fault_slot, health) in inj.hard_faults(id, n_ros) {
            chip.set_ro_health(fault_slot, health);
        }
        hard_faulted_ros += chip.faulted_ro_count();
        let erasures = inj.helper_erasures(id, &helper.block_lens());
        helper_bits_erased += erasures.len();
        let helper = helper.with_flipped_bits(&erasures);

        // What the device *knows* about its own damage: NVM integrity
        // flags name the eroded helper bits, and BIST names the response
        // bits whose pair involves a dead/stuck ring. Transient faults
        // (excursions, bursts, glitches) stay invisible — erasure-aware
        // decoding only gets knowledge the hardware actually has.
        let known = Erasures {
            helper: erasures.clone(),
            response: pairs
                .iter()
                .enumerate()
                .filter(|&(_, &(a, b))| {
                    !chip.ros()[a].health().is_healthy() || !chip.ros()[b].health().is_healthy()
                })
                .map(|(bit, _)| bit)
                .collect(),
        };

        age_chip_snapshotted(chip, design, profile, 10.0 * YEAR, &mut cursor);

        for attempt in 0..attempts_per_chip as u64 {
            // Each attempt is one measurement event: it may run under a
            // transient droop/spike, through a noisier readout, and its
            // counters may glitch. The soft reading consumes the exact
            // nonce stream `Chip::response` would, so the hard-decode
            // column is byte-identical to the original flow.
            let meas_env = inj.measurement_env(id, attempt, env);
            let burst_design = inj
                .noise_burst(id, attempt)
                .map(|factor| design.with_readout(design.readout().with_noise_burst(factor)));
            let meas_design = burst_design.as_ref().unwrap_or(design);
            let mut soft: Vec<SoftBit> = chip
                .response_soft(meas_design, &meas_env, pairs)
                .into_iter()
                .map(|(bit, confidence)| SoftBit::new(bit, confidence))
                .collect();
            for bit in inj.response_glitches(id, attempt, soft.len()) {
                soft[bit].value = !soft[bit].value;
            }
            let noisy: BitString = soft.iter().map(|s| s.value).collect();
            if generator.reconstruct(&noisy, &helper) == Some(key.clone()) {
                recovered += 1;
            }
            if generator.reconstruct_soft(&soft, &helper) == Some(key.clone()) {
                recovered_soft += 1;
            }
            if generator.reconstruct_soft_erasure_aware(&soft, &helper, &known) == Some(key.clone())
            {
                recovered_erasure_aware += 1;
            }
        }
        // The attempts warmed kernels at the aged state; donate them so
        // the next intensity point's replay preloads instead of
        // rebuilding.
        crate::popcache::harvest_kernel_hints(chip, design, &cursor);
    }
    FaultedKeyTrial {
        style,
        intensity,
        chips: chip_count,
        attempts_per_chip,
        recovered,
        recovered_soft,
        recovered_erasure_aware,
        hard_faulted_ros,
        helper_bits_erased,
    }
}

/// Runs EXP-15.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-15", "Key recovery under injected faults (chaos sweep)");

    // Same provisioning as exp8: the ECC sized for the ARO design's
    // measured worst-case ten-year BER — the sweep then measures how much
    // *fault* margin that aging margin left behind.
    let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
    let ber = timeline.final_quantile(0.99);
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let Some(generator) =
        crate::popcache::provisioned_generator(ber, cfg.key_bits, cfg.key_fail_target, &params)
    else {
        report.push_note("no feasible ARO design point — increase the code search space");
        return report;
    };
    report.push_note(format!(
        "fault model: `storm` plan scaled by intensity (rates scale, magnitudes fixed); \
         ECC provisioned for fault-free BER {}",
        pct(ber)
    ));

    let chips = cfg.n_chips.clamp(4, 8);
    let attempts = 2;
    let mut table = Table::new(
        "Ten-year key recovery vs. injected fault intensity (same ECC for both styles)",
        &[
            "intensity",
            "design",
            "attempts",
            "recovered",
            "recovery rate",
            "hard-faulted ROs",
            "helper bits erased",
        ],
    );
    let mut anchors = Vec::new();
    let mut trials = Vec::new();
    for style in [RoStyle::AgingResistant, RoStyle::Conventional] {
        // One fabricated bench per style for the whole intensity sweep,
        // rewound to fresh silicon at each point.
        let mut workspace = StyleWorkspace::new(cfg, style, &generator, chips);
        for intensity in INTENSITIES {
            let trial = run_trial_on(cfg, &mut workspace, intensity, &generator, attempts);
            if intensity == 0.0 {
                anchors.push(trial.clone());
            }
            table.push_row(vec![
                format!("{intensity:.2}"),
                match style {
                    RoStyle::AgingResistant => "ARO-PUF".to_string(),
                    RoStyle::Conventional => "RO-PUF (control)".to_string(),
                },
                (trial.chips * trial.attempts_per_chip).to_string(),
                trial.recovered.to_string(),
                pct(trial.recovery_rate()),
                trial.hard_faulted_ros.to_string(),
                trial.helper_bits_erased.to_string(),
            ]);
            trials.push(trial);
        }
    }
    report.push_table(table);

    let mut strategies = Table::new(
        "Decode-strategy comparison on identical faulted readings \
         (hard vs. blind soft vs. erasure-aware soft)",
        &[
            "intensity",
            "design",
            "hard",
            "soft (blind)",
            "erasure-aware",
        ],
    );
    for trial in &trials {
        strategies.push_row(vec![
            format!("{:.2}", trial.intensity),
            match trial.style {
                RoStyle::AgingResistant => "ARO-PUF".to_string(),
                RoStyle::Conventional => "RO-PUF (control)".to_string(),
            },
            pct(trial.recovery_rate()),
            pct(trial.soft_recovery_rate()),
            pct(trial.erasure_aware_recovery_rate()),
        ]);
    }
    report.push_table(strategies);

    report.push_note(format!(
        "zero-intensity anchor (must match the fault-free flow): ARO-PUF recovers {}, \
         RO-PUF control {}",
        pct(anchors[0].recovery_rate()),
        pct(anchors[1].recovery_rate())
    ));
    report.push_note(
        "glitches and helper-data erasures act on responses and stored bits, so they appear \
         here and not in the flip-timeline experiments; a single surviving helper-bit flip \
         defeats the key even inside the code's correction radius (see docs/ROBUSTNESS.md)",
    );
    let storm_lost: usize = trials
        .iter()
        .filter(|t| t.style == RoStyle::AgingResistant && t.intensity > 0.0)
        .map(|t| t.chips * t.attempts_per_chip - t.recovered)
        .sum();
    let storm_healed: usize = trials
        .iter()
        .filter(|t| t.style == RoStyle::AgingResistant && t.intensity > 0.0)
        .map(|t| t.recovered_erasure_aware.saturating_sub(t.recovered))
        .sum();
    report.push_note(format!(
        "erasure-aware decoding uses only knowledge the hardware has (NVM integrity flags, \
         ring BIST): zero-confidence votes silence flagged positions and the measured bit \
         stands in for each flagged offset bit — recovering {storm_healed} of the \
         {storm_lost} ARO attempts hard decoding loses across the nonzero intensities",
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    fn tiny_generator(cfg: &SimConfig) -> KeyGenerator {
        let timeline = exp2::flip_timeline(cfg, RoStyle::AgingResistant);
        let ber = timeline.final_quantile(0.99);
        let params = puf_area_params(RoStyle::AgingResistant, 5);
        KeyGenerator::for_bit_error_rate(ber, cfg.key_bits, cfg.key_fail_target, &params)
            .expect("feasible")
    }

    #[test]
    fn zero_intensity_matches_the_fault_free_flow() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let clean = run_trial(&cfg, RoStyle::AgingResistant, &generator, 0.0, 4, 2);
        assert_eq!(clean.recovered, 8, "fault-free ARO keys all survive");
        assert_eq!(clean.hard_faulted_ros, 0);
        assert_eq!(clean.helper_bits_erased, 0);
        // Same flow as exp8's trial, bit for bit (same design seed, same
        // enrollment streams): failures there = attempts - recovered here.
        let exp8 =
            crate::experiments::exp8::run_trial(&cfg, RoStyle::AgingResistant, &generator, 4, 2);
        assert_eq!(exp8.failures, 8 - clean.recovered);
    }

    #[test]
    fn full_storm_costs_keys_and_is_replayable() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let clean = run_trial(&cfg, RoStyle::AgingResistant, &generator, 0.0, 4, 2);
        let storm = run_trial(&cfg, RoStyle::AgingResistant, &generator, 1.0, 4, 2);
        assert!(
            storm.hard_faulted_ros + storm.helper_bits_erased > 0,
            "full storm must actually fault something"
        );
        assert!(
            storm.recovered < clean.recovered,
            "full storm must cost keys: {} vs {}",
            storm.recovered,
            clean.recovered
        );
        assert_eq!(
            storm,
            run_trial(&cfg, RoStyle::AgingResistant, &generator, 1.0, 4, 2),
            "the chaos sweep must be replayable"
        );
    }

    #[test]
    fn report_sweeps_both_styles_across_all_intensities() {
        let report = run(&tiny_cfg());
        let table = &report.tables()[0];
        assert_eq!(table.n_rows(), 2 * INTENSITIES.len());
        assert!(report.notes().len() >= 4);
        // The zero-intensity ARO row anchors at full recovery.
        assert_eq!(table.cell(0, 0), "0.00");
        assert_eq!(table.cell(0, 4), "100.00 %");
        // The strategy table covers the same sweep.
        assert_eq!(report.tables()[1].n_rows(), 2 * INTENSITIES.len());
    }

    #[test]
    fn erasure_awareness_dominates_blind_decoding_at_every_intensity() {
        let cfg = tiny_cfg();
        let generator = tiny_generator(&cfg);
        let mut healed = 0usize;
        let mut lost = 0usize;
        for intensity in INTENSITIES {
            let trial = run_trial(&cfg, RoStyle::AgingResistant, &generator, intensity, 4, 2);
            assert!(
                trial.recovered_erasure_aware >= trial.recovered_soft,
                "aware {} < blind soft {} at intensity {intensity}",
                trial.recovered_erasure_aware,
                trial.recovered_soft,
            );
            assert!(
                trial.recovered_erasure_aware >= trial.recovered,
                "aware {} < hard {} at intensity {intensity}",
                trial.recovered_erasure_aware,
                trial.recovered,
            );
            if intensity == 0.0 {
                assert_eq!(trial.recovered_erasure_aware, 8, "clean flow loses nothing");
            } else {
                healed += trial.recovered_erasure_aware - trial.recovered;
                lost += 8 - trial.recovered;
            }
        }
        assert!(
            healed > 0,
            "erasure awareness must strictly recover some storm-lost keys ({lost} lost)"
        );
    }
}
