//! EXP-19 — surviving the full storm end-to-end: the cheapest
//! (code area, refresh interval, replication factor) triple.
//!
//! EXP-16 sweeps the refresh schedule but caps below target at the full
//! storm — the residual losses are stored-bit casualties no schedule
//! fixes alone. EXP-17 prices storm tolerance into the code but leaves
//! helper-data integrity to the lifecycle. This experiment composes the
//! two with the third axis the serve layer added: **N-way replicated
//! helper storage** with quorum reads and scrub-on-refresh. For every
//! storm intensity it searches the cross product of
//!
//! * EXP-17's envelope-provisioned codes (fault-free up to full-storm
//!   rated — each with its own logic area),
//! * EXP-16's refresh intervals (never → every 1.25 years), and
//! * replication factors 1–3 (each replica is a full helper copy of
//!   public NVM, priced by `aro_ecc::area::replicated_total_ge`),
//!
//! in **ascending area order** (ties: fewer refreshes, then fewer
//! replicas), running one replicated maintained-mission trial per triple
//! and stopping at the first that reaches the ≥99 % ten-year recovery
//! target with zero impostor accepts. The stop point *is* the answer:
//! the cheapest provisioning triple that survives that storm. Every
//! trial also drives the false-accept probe (chip *i* attacks chip
//! *i+1*'s enrollment), because a "survival" bought with a loose code
//! would show up here as accepted impostors.

use std::collections::BTreeMap;

use aro_circuit::ring::RoStyle;
use aro_device::units::YEAR;
use aro_ecc::area::{replicated_total_ge, KeyGenSpec};
use aro_ecc::keygen::KeyGenerator;
use aro_ecc::refresh::RefreshSchedule;

use crate::config::SimConfig;
use crate::experiments::exp16::{
    self, interval_label, run_replicated_trial_on, ReplicatedLifecycleTrial, SweepWorkspace,
};
use crate::experiments::exp17;
use crate::report::Report;
use crate::runner::{pct, puf_area_params};
use crate::table::Table;

/// Swept storm intensities (EXP-16's: the lifecycle only matters under
/// fire, and storm@1 is the acceptance bar).
pub const INTENSITIES: [f64; 3] = exp16::INTENSITIES;

/// Swept helper-store replication factors.
pub const REPLICAS: [usize; 3] = [1, 2, 3];

/// Ten-year recovery target every surviving triple must reach.
pub const RECOVERY_TARGET: f64 = exp16::RECOVERY_TARGET;

/// One candidate code from the EXP-17 envelope.
struct Candidate {
    provisioned_for: f64,
    spec: KeyGenSpec,
    generator: KeyGenerator,
}

/// One evaluated (code, interval, replicas) point of the search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchPoint {
    /// Storm intensity the code was envelope-provisioned for.
    pub provisioned_for: f64,
    /// Total provisioned area — logic plus replicated helper NVM, GE.
    pub area_ge: f64,
    /// The replicated maintained-mission trial (interval and replica
    /// count live inside).
    pub trial: ReplicatedLifecycleTrial,
}

impl SearchPoint {
    /// Whether this triple survives: recovery at or above target with
    /// zero false accepts.
    #[must_use]
    pub fn survives(&self) -> bool {
        self.trial.lifecycle.recovery_rate() >= RECOVERY_TARGET && self.trial.impostor_accepts == 0
    }
}

/// The cost-ordered search at one storm intensity: every trial that ran,
/// in ascending-area order. When `survived` is true the last point is
/// the cheapest surviving triple.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityOutcome {
    /// Fraction of the full storm plan applied.
    pub intensity: f64,
    /// Trials in search order.
    pub points: Vec<SearchPoint>,
    /// Whether the search terminated on a surviving triple.
    pub survived: bool,
}

impl IntensityOutcome {
    /// The cheapest surviving triple, if the search found one.
    #[must_use]
    pub fn winner(&self) -> Option<&SearchPoint> {
        if self.survived {
            self.points.last()
        } else {
            None
        }
    }
}

fn code_label(provisioned_for: f64) -> String {
    if provisioned_for == 0.0 {
        "fault-free".to_string()
    } else {
        format!("storm@{provisioned_for:.2}")
    }
}

/// Runs the full search: for each storm intensity, trials in ascending
/// (area, refreshes, replicas) order until one survives. Deterministic
/// in `cfg` at any thread count — trials are sequential and every
/// measurement event is coordinate-addressed.
#[must_use]
pub fn sweep(cfg: &SimConfig) -> Vec<IntensityOutcome> {
    let _span = aro_obs::span("exp19.sweep");
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    // Candidate codes from the EXP-17 envelope, deduplicated: adjacent
    // intensities can provision to the same design point.
    let mut candidates: Vec<Candidate> = Vec::new();
    for &provisioned_for in &exp17::INTENSITIES {
        let point = exp17::provision_for_intensity(cfg, provisioned_for);
        let Some(spec) = point.spec else { continue };
        if candidates.iter().any(|c| c.spec == spec) {
            continue;
        }
        let Some(generator) = crate::popcache::provisioned_generator(
            point.envelope_ber,
            cfg.key_bits,
            cfg.key_fail_target,
            &params,
        ) else {
            continue;
        };
        candidates.push(Candidate {
            provisioned_for,
            spec,
            generator,
        });
    }

    let chips = cfg.n_chips.clamp(4, 8);
    let attempts = 2;
    let impostor_attempts = 2;

    // The cost-ordered triple list is intensity-independent: area first
    // (the provisioning axis), then operational cost (refresh count),
    // then replica count.
    let mission_s = 10.0 * YEAR;
    let mut triples: Vec<(usize, usize, f64, f64, usize)> = Vec::new();
    for (ci, candidate) in candidates.iter().enumerate() {
        for &replicas in &REPLICAS {
            let area = replicated_total_ge(&candidate.spec, replicas);
            for &interval_years in &exp16::INTERVALS_YEARS {
                let refreshes =
                    RefreshSchedule::new(interval_years * YEAR, mission_s).refresh_count();
                triples.push((ci, replicas, interval_years, area, refreshes));
            }
        }
    }
    triples.sort_by(|a, b| {
        a.3.total_cmp(&b.3)
            .then(a.4.cmp(&b.4))
            .then(a.1.cmp(&b.1))
    });

    // One fabricated bench per candidate code, shared across every
    // intensity and triple that uses it (the aged-state snapshot store
    // makes repeated aging prefixes cheap).
    let mut workspaces: BTreeMap<usize, SweepWorkspace> = BTreeMap::new();
    INTENSITIES
        .iter()
        .map(|&intensity| {
            let mut points = Vec::new();
            let mut survived = false;
            for &(ci, replicas, interval_years, area_ge, _) in &triples {
                let candidate = &candidates[ci];
                let workspace = workspaces
                    .entry(ci)
                    .or_insert_with(|| SweepWorkspace::new(cfg, &candidate.generator, chips));
                let trial = run_replicated_trial_on(
                    cfg,
                    &candidate.generator,
                    workspace,
                    intensity,
                    interval_years,
                    replicas,
                    attempts,
                    impostor_attempts,
                );
                let point = SearchPoint {
                    provisioned_for: candidate.provisioned_for,
                    area_ge,
                    trial,
                };
                let done = point.survives();
                points.push(point);
                if done {
                    survived = true;
                    break;
                }
            }
            IntensityOutcome {
                intensity,
                points,
                survived,
            }
        })
        .collect()
}

/// Runs EXP-19.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new(
        "EXP-19",
        "Full-storm survival: cheapest (area, refresh, replication) triple",
    );
    report.push_note(format!(
        "search: EXP-17 envelope codes × EXP-16 refresh intervals × 1–3 helper replicas, \
         trialled in ascending total-area order (logic + replicated helper NVM) until a \
         triple reaches {} ten-year recovery with zero impostor accepts; each trial is the \
         replicated maintained mission — independent per-replica NVM erosion, quorum-read \
         gates/reconstructions, scrub-on-refresh",
        pct(RECOVERY_TARGET)
    ));

    let outcomes = sweep(cfg);
    let mut table = Table::new(
        "Cost-ordered survival search (each intensity stops at its cheapest surviving triple)",
        &[
            "intensity",
            "code",
            "interval",
            "replicas",
            "area GE",
            "refreshes (ok/sched)",
            "fallbacks",
            "recovered",
            "recovery",
            "impostors (acc/att)",
            "verdict",
        ],
    );
    for outcome in &outcomes {
        for point in &outcome.points {
            let t = &point.trial;
            table.push_row(vec![
                format!("{:.2}", outcome.intensity),
                code_label(point.provisioned_for),
                interval_label(t.lifecycle.interval_years),
                t.replicas.to_string(),
                format!("{:.0}", point.area_ge),
                format!(
                    "{}/{}",
                    t.lifecycle.refreshes_succeeded, t.lifecycle.refreshes_scheduled
                ),
                t.replica_fallbacks.to_string(),
                format!(
                    "{}/{}",
                    t.lifecycle.recovered,
                    t.lifecycle.chips * t.lifecycle.attempts_per_chip
                ),
                pct(t.lifecycle.recovery_rate()),
                format!("{}/{}", t.impostor_accepts, t.impostor_attempts),
                if point.survives() {
                    "survives".to_string()
                } else {
                    "falls short".to_string()
                },
            ]);
        }
    }
    report.push_table(table);

    for outcome in &outcomes {
        match outcome.winner() {
            Some(point) => {
                let t = &point.trial;
                report.push_note(format!(
                    "storm@{}: cheapest surviving triple is ({:.0} GE, refresh {}, {} \
                     replica(s)) — {} code, recovery {}, {}/{} impostor accepts, {} replica \
                     fallback(s) a single-replica store would have lost",
                    outcome.intensity,
                    point.area_ge,
                    interval_label(t.lifecycle.interval_years),
                    t.replicas,
                    code_label(point.provisioned_for),
                    pct(t.lifecycle.recovery_rate()),
                    t.impostor_accepts,
                    t.impostor_attempts,
                    t.replica_fallbacks,
                ));
            }
            None => report.push_note(format!(
                "storm@{}: no swept triple survives — widen the envelope codes or refresh \
                 faster than every {} years",
                outcome.intensity,
                exp16::INTERVALS_YEARS[exp16::INTERVALS_YEARS.len() - 1],
            )),
        }
    }
    report.push_note(
        "the three axes buy different things and none substitutes for another: the code \
         buys response-side margin (EXP-17), replication buys stored-bit durability the \
         code cannot (one intact lineage revives the whole group), and the refresh \
         schedule converts both into ten-year recovery by scrubbing every replica at each \
         gate — the full-storm survivor uses all three",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::quick();
        cfg.key_bits = 32;
        cfg
    }

    #[test]
    fn search_finds_a_surviving_triple_at_every_intensity() {
        let outcomes = crate::popcache::scoped(|| sweep(&tiny_cfg()));
        assert_eq!(outcomes.len(), INTENSITIES.len());
        for outcome in &outcomes {
            let winner = outcome
                .winner()
                .unwrap_or_else(|| panic!("storm@{} must have a survivor", outcome.intensity));
            assert!(winner.trial.lifecycle.recovery_rate() >= RECOVERY_TARGET);
            assert_eq!(winner.trial.impostor_accepts, 0, "FAR must be zero");
            assert!(winner.trial.impostor_attempts > 0, "the probe must run");
            // Cost-ordered search: the winner is the last (most
            // expensive) point tried, and everything before it failed.
            for earlier in &outcome.points[..outcome.points.len() - 1] {
                assert!(!earlier.survives());
                assert!(earlier.area_ge <= winner.area_ge + 1e-9);
            }
        }
    }

    #[test]
    fn report_covers_the_search_and_names_the_triples() {
        let report = crate::popcache::scoped(|| run(&tiny_cfg()));
        let table = &report.tables()[0];
        assert!(table.n_rows() >= INTENSITIES.len(), "one row per trial run");
        // Model note + one verdict note per intensity + closing note.
        assert_eq!(report.notes().len(), 2 + INTENSITIES.len());
    }
}
