//! EXP-2 — percentage of flipped bits vs. operation time (abstract claim
//! C1: **32 % for the conventional RO-PUF vs 7.7 % for the ARO-PUF after
//! ten years**).
//!
//! Each population is enrolled at the factory (averaged reads, nominal
//! conditions), deployed under the typical mission profile, and re-read at
//! the paper's checkpoints; a bit counts as flipped when it differs from
//! the enrollment reference.

use aro_circuit::ring::RoStyle;
use aro_device::units::{format_duration, YEAR};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{pct, FlipTimeline};
use crate::table::{Figure, Series, Table};

/// Measures the flip timeline of one style under the typical mission.
/// Memoized per run scope — exp5, exp8 and exp14 re-request the same
/// timeline this experiment measures.
#[must_use]
pub fn flip_timeline(cfg: &SimConfig, style: RoStyle) -> FlipTimeline {
    crate::popcache::standard_flip_timeline(cfg, style)
}

/// Runs EXP-2.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let conv = flip_timeline(cfg, RoStyle::Conventional);
    let aro = flip_timeline(cfg, RoStyle::AgingResistant);

    let mut report = Report::new("EXP-2", "Percentage of flipped bits vs. operation time");
    report.push_note(format!(
        "ten-year average flipped bits: RO-PUF {} (paper: 32 %), ARO-PUF {} (paper: 7.7 %)",
        pct(conv.final_mean().expect("standard checkpoints are non-empty")),
        pct(aro.final_mean().expect("standard checkpoints are non-empty"))
    ));
    report.push_note(format!(
        "99th-percentile chip at ten years: RO-PUF {}, ARO-PUF {} — the BER an ECC must be \
         provisioned for (used by EXP-5)",
        pct(conv.final_quantile(0.99)),
        pct(aro.final_quantile(0.99))
    ));

    let mut table = Table::new(
        "Average flipped bits vs. time (mean ± sd across chips)",
        &["age", "RO-PUF", "RO-PUF sd", "ARO-PUF", "ARO-PUF sd"],
    );
    for (i, &cp) in conv.checkpoints.iter().enumerate() {
        table.push_row(vec![
            format_duration(cp),
            pct(conv.mean[i]),
            pct(conv.std[i]),
            pct(aro.mean[i]),
            pct(aro.std[i]),
        ]);
    }
    report.push_table(table);

    let mut figure = Figure::new("Flipped bits vs. time", "years", "flip fraction");
    let to_points = |t: &FlipTimeline| {
        t.checkpoints
            .iter()
            .zip(&t.mean)
            .map(|(&c, &m)| (c / YEAR, m))
            .collect()
    };
    figure.push_series(Series::new("RO-PUF", to_points(&conv)));
    figure.push_series(Series::new("ARO-PUF", to_points(&aro)));
    report.push_figure(figure);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aro_flips_far_fewer_bits_with_the_right_shape() {
        let cfg = SimConfig::quick();
        let conv = flip_timeline(&cfg, RoStyle::Conventional);
        let aro = flip_timeline(&cfg, RoStyle::AgingResistant);
        // Shape: conventional lands in the tens of percent, ARO under ten
        // percent, ratio around 4× (paper: 32 / 7.7 ≈ 4.2).
        let conv_final = conv.final_mean().unwrap();
        let aro_final = aro.final_mean().unwrap();
        assert!(conv_final > 0.20, "conventional {conv_final}");
        assert!(conv_final < 0.45);
        assert!(aro_final < 0.13, "aro {aro_final}");
        let ratio = conv_final / aro_final;
        assert!(ratio > 2.0, "flip-rate ratio {ratio}");
        // Flip rates grow over the timeline.
        assert!(conv.mean.last().unwrap() > conv.mean.first().unwrap());
    }

    #[test]
    fn report_contains_the_paper_rows() {
        let report = run(&SimConfig::quick());
        assert_eq!(report.tables()[0].n_rows(), 6, "1 mo .. 10 y checkpoints");
        assert_eq!(report.figures()[0].series().len(), 2);
        assert!(report.notes()[0].contains("paper: 32 %"));
    }
}
