//! EXP-12 — authentication after ten years: FAR/FRR and the aging margin.
//!
//! CRP authentication accepts a device when its answer is within a
//! Hamming threshold of enrollment. The decision margin is the gap
//! between the **genuine** distance distribution (noise + aging drift)
//! and the **impostor** distribution (centred near 50 %). Ten years of
//! conventional-cell aging pushes the genuine distribution to ~33 % —
//! within a few sigma of the impostors — while the ARO-PUF's stays at
//! ~8 %: the paper's reliability claim, restated as an authentication
//! error rate.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_puf::auth::{far_frr, CrpDatabase};
use aro_puf::{Challenge, MissionProfile};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{design_for, pct};
use crate::table::{Figure, Series, Table};

/// The decision thresholds swept (fractional HD).
const THRESHOLDS: [f64; 7] = [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40];

/// Genuine (ten-year-aged) and impostor distance samples for one style.
#[must_use]
pub fn distance_samples(cfg: &SimConfig, style: RoStyle) -> (Vec<f64>, Vec<f64>) {
    let design = design_for(cfg, style);
    let n_chips = (cfg.n_chips / 2).clamp(6, cfg.n_chips.max(6));
    let mut population = crate::popcache::fabricate(&design, n_chips);
    let env = Environment::nominal(design.tech());
    let challenges: Vec<Challenge> = (0..4u64).map(|i| Challenge(0x12e + i)).collect();
    let bits = (design.n_ros() / 2).min(64);

    // Enroll every chip's CRP table on fresh silicon.
    let databases: Vec<CrpDatabase> = population
        .chips()
        .iter()
        .map(|chip| CrpDatabase::enroll(chip, &design, &env, &challenges, bits))
        .collect();

    // Impostors answer each other's tables while fresh (cloning attacks
    // don't wait a decade).
    let design_c = population.design().clone();
    let mut impostor = Vec::new();
    for holder in 0..databases.len() {
        let attacker = (holder + 1) % databases.len();
        let device = &mut population.chips_mut()[attacker];
        impostor.extend(databases[holder].distances(device, &design_c, &env));
    }

    // The genuine devices age ten years, then answer their own tables.
    population.age_all(&MissionProfile::typical(design.tech()), 10.0 * YEAR);
    let mut genuine = Vec::new();
    for (db, chip) in databases.iter().zip(population.chips_mut()) {
        genuine.extend(db.distances(chip, &design_c, &env));
    }
    (genuine, impostor)
}

/// Runs EXP-12.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-12", "Authentication FAR/FRR after ten years");
    let mut roc_figure = Figure::new("FRR vs threshold (10-y genuine)", "threshold", "rate");

    let mut summaries = Vec::new();
    for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
        let (genuine, impostor) = distance_samples(cfg, style);
        let mut table = Table::new(
            format!("{} decision error rates (genuine aged 10 y)", style.label()),
            &[
                "threshold",
                "FRR (genuine rejected)",
                "FAR (impostor accepted)",
            ],
        );
        let mut frr_curve = Vec::new();
        for &threshold in &THRESHOLDS {
            let (far, frr) = far_frr(&genuine, &impostor, threshold);
            table.push_row(vec![pct(threshold), pct(frr), pct(far)]);
            frr_curve.push((threshold, frr));
        }
        report.push_table(table);
        roc_figure.push_series(Series::new(style.label(), frr_curve));

        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        summaries.push((style, mean(&genuine), mean(&impostor)));
    }
    report.push_figure(roc_figure);

    let (_, conv_genuine, conv_impostor) = summaries[0];
    let (_, aro_genuine, aro_impostor) = summaries[1];
    report.push_note(format!(
        "mean genuine distance after ten years: RO-PUF {} (impostors at {}) vs ARO-PUF {} \
         (impostors at {}) — the conventional design's decision margin nearly closes, the \
         ARO design keeps authentication trivially separable",
        pct(conv_genuine),
        pct(conv_impostor),
        pct(aro_genuine),
        pct(aro_impostor),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aro_keeps_a_wide_margin_and_conventional_nearly_loses_it() {
        let cfg = SimConfig::quick();
        let (conv_genuine, conv_impostor) = distance_samples(&cfg, RoStyle::Conventional);
        let (aro_genuine, aro_impostor) = distance_samples(&cfg, RoStyle::AgingResistant);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        // Impostors sit near 50 % for both.
        assert!((mean(&conv_impostor) - 0.5).abs() < 0.12);
        assert!((mean(&aro_impostor) - 0.5).abs() < 0.12);
        // Aged genuine: conventional drifts far from zero, ARO stays low.
        assert!(
            mean(&conv_genuine) > 0.2,
            "conventional genuine {}",
            mean(&conv_genuine)
        );
        assert!(
            mean(&aro_genuine) < 0.15,
            "aro genuine {}",
            mean(&aro_genuine)
        );
    }

    #[test]
    fn a_quarter_threshold_authenticates_aro_but_not_aged_conventional() {
        let cfg = SimConfig::quick();
        let (conv_genuine, conv_impostor) = distance_samples(&cfg, RoStyle::Conventional);
        let (aro_genuine, aro_impostor) = distance_samples(&cfg, RoStyle::AgingResistant);
        let (aro_far, aro_frr) = far_frr(&aro_genuine, &aro_impostor, 0.25);
        assert_eq!(aro_far, 0.0, "no impostor inside 25 %");
        assert!(
            aro_frr < 0.2,
            "aged ARO devices still authenticate: FRR {aro_frr}"
        );
        let (conv_far, conv_frr) = far_frr(&conv_genuine, &conv_impostor, 0.25);
        assert_eq!(conv_far, 0.0);
        assert!(
            conv_frr > 0.5,
            "aged conventional devices mostly fail authentication: FRR {conv_frr}"
        );
    }

    #[test]
    fn report_has_a_table_per_style() {
        let report = run(&SimConfig::quick());
        assert_eq!(report.tables().len(), 2);
        assert_eq!(report.figures()[0].series().len(), 2);
    }
}
