//! EXP-10 — ablation: margin-threshold masking.
//!
//! At enrollment the factory knows every pair's frequency margin. Masking
//! discards pairs below a threshold (storing the kept indices as helper
//! data): the wider the threshold, the fewer bits survive enrollment but
//! the fewer flip in the field. This sweep traces the whole trade-off
//! curve for both cells — the conventional design has to throw away a
//! large fraction of its bits to approach the reliability the ARO design
//! gets for free.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_puf::{Enrollment, MissionProfile, PairingStrategy};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::{design_for, pct};
use crate::table::{Figure, Series, Table};

/// Relative-margin thresholds the sweep applies (0 = keep everything).
const THRESHOLDS: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.04];

/// One masking design point.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskingPoint {
    /// The margin threshold applied.
    pub threshold: f64,
    /// Fraction of enrolled bits kept.
    pub kept_fraction: f64,
    /// Mean ten-year flip rate over the kept bits.
    pub flip_rate: f64,
}

/// Sweeps masking thresholds for one style.
#[must_use]
pub fn masking_sweep(cfg: &SimConfig, style: RoStyle) -> Vec<MaskingPoint> {
    let design = design_for(cfg, style);
    let n_chips = (cfg.n_chips / 2).max(6).min(cfg.n_chips);
    let mut population = crate::popcache::fabricate(&design, n_chips);
    let env = Environment::nominal(design.tech());
    let enrollments: Vec<Enrollment> = population.enroll_all(&env, &PairingStrategy::Neighbor);
    population.age_all(&MissionProfile::typical(design.tech()), 10.0 * YEAR);
    let design = population.design().clone();

    THRESHOLDS
        .iter()
        .map(|&threshold| {
            let mut kept_bits = 0usize;
            let mut total_bits = 0usize;
            let mut flips = 0.0;
            let mut measured_chips = 0usize;
            for (enrollment, chip) in enrollments.iter().zip(population.chips_mut()) {
                let masked = enrollment.masked(threshold);
                total_bits += enrollment.bits();
                kept_bits += masked.bits();
                if masked.bits() > 0 {
                    flips += masked.flip_rate_now(chip, &design, &env);
                    measured_chips += 1;
                }
            }
            MaskingPoint {
                threshold,
                kept_fraction: kept_bits as f64 / total_bits as f64,
                flip_rate: if measured_chips > 0 {
                    flips / measured_chips as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Runs EXP-10.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let mut report = Report::new("EXP-10", "Margin-threshold masking trade-off");
    let conv = masking_sweep(cfg, RoStyle::Conventional);
    let aro = masking_sweep(cfg, RoStyle::AgingResistant);

    let mut table = Table::new(
        "Bits kept vs. ten-year flips over the kept bits",
        &[
            "margin threshold",
            "RO-PUF kept",
            "RO-PUF flips",
            "ARO-PUF kept",
            "ARO-PUF flips",
        ],
    );
    for (c, a) in conv.iter().zip(&aro) {
        table.push_row(vec![
            format!("{:.1} %", c.threshold * 100.0),
            pct(c.kept_fraction),
            pct(c.flip_rate),
            pct(a.kept_fraction),
            pct(a.flip_rate),
        ]);
    }
    report.push_table(table);

    let mut figure = Figure::new("Masking trade-off", "kept fraction", "10-y flip fraction");
    figure.push_series(Series::new(
        "RO-PUF",
        conv.iter()
            .map(|p| (p.kept_fraction, p.flip_rate))
            .collect(),
    ));
    figure.push_series(Series::new(
        "ARO-PUF",
        aro.iter().map(|p| (p.kept_fraction, p.flip_rate)).collect(),
    ));
    report.push_figure(figure);

    report.push_note(format!(
        "to match the unmasked ARO flip rate ({}), the conventional design must discard \
         a large share of its enrolled bits — margin helper data trades silicon (more ROs \
         per usable bit) for the reliability the ARO cell provides directly",
        pct(aro[0].flip_rate)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_monotonically_trades_bits_for_reliability() {
        let sweep = masking_sweep(&SimConfig::quick(), RoStyle::Conventional);
        assert_eq!(
            sweep[0].kept_fraction, 1.0,
            "zero threshold keeps everything"
        );
        for pair in sweep.windows(2) {
            assert!(pair[1].kept_fraction <= pair[0].kept_fraction);
        }
        // The widest threshold must help reliability vs no masking.
        let first = sweep.first().unwrap();
        let last = sweep.last().unwrap();
        assert!(
            last.flip_rate < first.flip_rate,
            "{} !< {}",
            last.flip_rate,
            first.flip_rate
        );
        assert!(
            last.kept_fraction < 0.95,
            "the threshold must actually bite"
        );
    }

    #[test]
    fn aro_keeps_more_bits_at_equal_reliability() {
        let cfg = SimConfig::quick();
        let conv = masking_sweep(&cfg, RoStyle::Conventional);
        let aro = masking_sweep(&cfg, RoStyle::AgingResistant);
        // Find the first conventional point at or below ARO's unmasked
        // flip rate; it must come at a large bit cost.
        let target = aro[0].flip_rate;
        // (If no threshold reaches ARO's rate, that is an even stronger
        // statement and the assertion is vacuously satisfied.)
        if let Some(point) = conv.iter().find(|p| p.flip_rate <= target) {
            assert!(
                point.kept_fraction < 0.8,
                "conventional needs to shed >20 % of bits, kept {}",
                point.kept_fraction
            );
        }
    }
}
