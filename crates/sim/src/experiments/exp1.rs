//! EXP-1 — RO frequency degradation vs. time (paper figure: the raw
//! aging curves that motivate the design).
//!
//! One chip per style lives ten years under the typical mission profile;
//! at each checkpoint we record the array-mean frequency at nominal
//! conditions. The conventional ring decays by several percent (static
//! idle BTI); the ARO ring's curve stays nearly flat.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::{format_duration, YEAR};
use aro_puf::{Chip, MissionProfile};

use crate::config::SimConfig;
use crate::report::Report;
use crate::runner::design_for;
use crate::table::{Figure, Series, Table};

/// The degradation timeline of one style: `(age_s, mean Δf/f)` points.
fn degradation_curve(cfg: &SimConfig, style: RoStyle, checkpoints: &[f64]) -> Vec<(f64, f64)> {
    let design = design_for(cfg, style);
    let env = Environment::nominal(design.tech());
    let profile = MissionProfile::typical(design.tech());
    let mut chip = Chip::fabricate(&design, 0);
    let fresh: f64 = chip.frequencies(&design, &env).iter().sum::<f64>() / design.n_ros() as f64;

    let mut points = vec![(0.0, 0.0)];
    let mut age = 0.0;
    for &checkpoint in checkpoints {
        profile.age_chip(&mut chip, &design, checkpoint - age);
        age = checkpoint;
        let now: f64 = chip.frequencies(&design, &env).iter().sum::<f64>() / design.n_ros() as f64;
        points.push((checkpoint / YEAR, (fresh - now) / fresh));
    }
    points
}

/// Runs EXP-1.
#[must_use]
pub fn run(cfg: &SimConfig) -> Report {
    let checkpoints: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0]
        .iter()
        .map(|y| y * YEAR)
        .collect();
    let conv = degradation_curve(cfg, RoStyle::Conventional, &checkpoints);
    let aro = degradation_curve(cfg, RoStyle::AgingResistant, &checkpoints);

    let mut report = Report::new("EXP-1", "RO frequency degradation vs. time");
    report.push_note(format!(
        "ten-year mean frequency degradation: RO-PUF {:.2} %, ARO-PUF {:.2} % \
         (typical mission: 45 C, always-on, 10 readouts/day)",
        conv.last().unwrap().1 * 100.0,
        aro.last().unwrap().1 * 100.0
    ));

    let mut table = Table::new(
        "Mean frequency degradation (Δf/f) at nominal 25 C / 1.20 V",
        &["age", "RO-PUF", "ARO-PUF"],
    );
    for (i, &cp) in std::iter::once(&0.0).chain(checkpoints.iter()).enumerate() {
        table.push_row(vec![
            format_duration(cp),
            format!("{:.3} %", conv[i].1 * 100.0),
            format!("{:.3} %", aro[i].1 * 100.0),
        ]);
    }
    report.push_table(table);

    let mut figure = Figure::new("Frequency degradation vs. time", "years", "Δf/f");
    figure.push_series(Series::new("RO-PUF", conv));
    figure.push_series(Series::new("ARO-PUF", aro));
    report.push_figure(figure);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_degrades_much_more_and_both_are_monotone() {
        let report = run(&SimConfig::quick());
        let figure = &report.figures()[0];
        let conv = &figure.series()[0];
        let aro = &figure.series()[1];
        assert!(
            conv.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12),
            "monotone"
        );
        assert!(aro.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12));
        assert!(
            conv.last_y() > 0.04,
            "conventional ten-year decay {:.4}",
            conv.last_y()
        );
        assert!(conv.last_y() < 0.20);
        assert!(
            aro.last_y() < 0.35 * conv.last_y(),
            "ARO must decay far less"
        );
        assert_eq!(report.tables()[0].n_rows(), 9);
    }

    #[test]
    fn degradation_follows_a_power_law_shape() {
        // t^(1/6): the first year contributes more than the last year.
        let report = run(&SimConfig::quick());
        let conv = &report.figures()[0].series()[0];
        let first_year = conv.points[3].1; // 1 y
        let last_five = conv.last_y() - conv.points[6].1; // 5 y → 10 y
        assert!(
            first_year > last_five,
            "aging must decelerate: {first_year} vs {last_five}"
        );
    }
}
