//! Deterministic data parallelism — re-exported from [`aro_par`].
//!
//! The implementation moved to the `aro-par` crate so that `aro-puf`
//! (which sits below `aro-sim` in the dependency graph) can fan
//! `Population::fabricate` out over the same pool. This module keeps the
//! historical `aro_sim::parallel::*` paths working.

pub use aro_par::{par_build, par_map_mut, set_thread_override, thread_override};
