//! Deterministic data parallelism for Monte Carlo sweeps.
//!
//! Every chip carries its own derived RNG streams, so per-chip work is
//! embarrassingly parallel *and* order-independent: results are written
//! back by index, making a parallel run bit-identical to a sequential
//! one. Built on `std::thread::scope` — no extra dependency needed.

/// Applies `f` to every element of `items` in parallel (scoped threads,
/// one chunk per available core), collecting results in input order.
///
/// Falls back to a sequential loop for small inputs where spawn overhead
/// would dominate.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(n.max(1));
    if threads <= 1 || n < 4 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        for (chunk_index, (item_chunk, result_chunk)) in items
            .chunks_mut(chunk_size)
            .zip(results.chunks_mut(chunk_size))
            .enumerate()
        {
            scope.spawn(move || {
                let base = chunk_index * chunk_size;
                for (offset, (item, slot)) in item_chunk
                    .iter_mut()
                    .zip(result_chunk.iter_mut())
                    .enumerate()
                {
                    *slot = Some(f(base + offset, item));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let mut items: Vec<usize> = (0..100).collect();
        let out = par_map_mut(&mut items, |i, item| {
            *item += 1;
            i * 10
        });
        assert_eq!(out, (0..100).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(items[0], 1);
        assert_eq!(items[99], 100);
    }

    #[test]
    fn matches_sequential_execution() {
        let mut a: Vec<u64> = (0..53).collect();
        let mut b = a.clone();
        let par = par_map_mut(&mut a, |i, x| {
            *x = x.wrapping_mul(2654435761);
            *x ^ i as u64
        });
        let seq: Vec<u64> = b
            .iter_mut()
            .enumerate()
            .map(|(i, x)| {
                *x = x.wrapping_mul(2654435761);
                *x ^ i as u64
            })
            .collect();
        assert_eq!(par, seq);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, x| *x).is_empty());
        let mut one = vec![7u32];
        assert_eq!(par_map_mut(&mut one, |_, x| *x * 2), vec![14]);
    }

    #[test]
    fn parallel_mutation_is_visible() {
        let mut items = vec![0u64; 64];
        par_map_mut(&mut items, |i, x| {
            *x = i as u64;
        });
        assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64));
    }
}
