//! Property-based tests for the circuit substrate.

use aro_circuit::logic::{GateLevelRing, RippleCounter};
use aro_circuit::readout::{Measurement, ReadoutConfig};
use aro_circuit::ring::{AgingModels, RingOscillator, RoStyle};
use aro_device::environment::Environment;
use aro_device::params::TechParams;
use aro_device::process::{ChipProcess, DiePosition};
use aro_device::rng::SeedDomain;
use proptest::prelude::*;

fn arb_style() -> impl Strategy<Value = RoStyle> {
    prop_oneof![Just(RoStyle::Conventional), Just(RoStyle::AgingResistant)]
}

proptest! {
    /// Ring frequency is positive and finite for any fabrication seed,
    /// style, environment, and stage count.
    #[test]
    fn frequency_positive_finite(seed in any::<u64>(), style in arb_style(),
                                 stages in prop::sample::select(vec![3usize, 5, 7, 9, 13]),
                                 temp in -40.0..125.0f64, vdd in 0.9..1.5f64) {
        let tech = TechParams::default();
        let mut rng = SeedDomain::new(seed).rng(0);
        let ro = RingOscillator::new(style, stages, DiePosition::new(0.5, 0.5), &tech, &mut rng);
        let chip = ChipProcess::sample(&tech, &mut rng);
        let f = ro.frequency(&tech, &Environment::new(temp, vdd), &chip);
        prop_assert!(f.is_finite() && f > 0.0);
    }

    /// More stages → slower ring, same everything else.
    #[test]
    fn frequency_decreases_with_stage_count(seed in any::<u64>()) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        let chip = ChipProcess::typical();
        let f_of = |stages: usize| {
            let mut rng = SeedDomain::new(seed).rng(0);
            RingOscillator::new(RoStyle::Conventional, stages, DiePosition::new(0.5, 0.5), &tech, &mut rng)
                .frequency(&tech, &env, &chip)
        };
        // Different stage counts consume different amounts of randomness, so
        // compare typical-chip rings built from the same seed: the mismatch
        // of shared stages is identical, extra stages only add delay.
        prop_assert!(f_of(7) < f_of(5) * 1.05, "7 stages should be slower-ish");
        prop_assert!(f_of(13) < f_of(5));
    }

    /// Idle aging only ever slows a ring down, never speeds it up,
    /// regardless of style, temperature, or duration.
    #[test]
    fn idle_aging_is_monotone(seed in any::<u64>(), style in arb_style(),
                              years in 0.0..15.0f64, temp in 0.0..110.0f64) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        let chip = ChipProcess::typical();
        let models = AgingModels::new(&tech);
        let mut rng = SeedDomain::new(seed).rng(0);
        let mut ro = RingOscillator::new(style, 5, DiePosition::new(0.5, 0.5), &tech, &mut rng);
        let fresh = ro.frequency(&tech, &env, &chip);
        ro.stress_idle(&tech, &models, temp, tech.vdd_nominal, years * 3.156e7);
        prop_assert!(ro.frequency(&tech, &env, &chip) <= fresh);
    }

    /// For equal idle time, the ARO ring never degrades more than the
    /// conventional ring built from the same fabrication seed.
    #[test]
    fn aro_never_ages_faster_idle(seed in any::<u64>(), years in 0.5..12.0f64) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        let chip = ChipProcess::typical();
        let models = AgingModels::new(&tech);
        let degradation = |style: RoStyle| {
            let mut rng = SeedDomain::new(seed).rng(0);
            let mut ro = RingOscillator::new(style, 5, DiePosition::new(0.5, 0.5), &tech, &mut rng);
            let fresh = ro.frequency(&tech, &env, &chip);
            ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, years * 3.156e7);
            (fresh - ro.frequency(&tech, &env, &chip)) / fresh
        };
        prop_assert!(degradation(RoStyle::AgingResistant) <= degradation(RoStyle::Conventional));
    }

    /// Measurement counts are within noise bounds of the true count and
    /// the frequency estimate round-trips.
    #[test]
    fn measurement_is_close_to_truth(seed in any::<u64>(), f in 1e8..5e9f64) {
        let cfg = ReadoutConfig::default();
        let mut rng = SeedDomain::new(seed).rng(0);
        let m = cfg.measure(f, &mut rng);
        let rel_err = (m.frequency() - f).abs() / f;
        // 8 sigma of the noise model plus one LSB.
        let bound = 8.0 * cfg.sigma_rel_at(f) + 1.0 / (f * cfg.gate_time_s);
        prop_assert!(rel_err < bound, "rel_err = {rel_err}, bound = {bound}");
    }

    /// The gate-level ripple counter counts any pulse train exactly
    /// (modulo its width), fed in any number of bursts.
    #[test]
    fn ripple_counter_counts_any_burst_pattern(bursts in prop::collection::vec(1usize..40, 1..5)) {
        let mut counter = RippleCounter::new(10);
        let mut expected = 0usize;
        for burst in bursts {
            counter.count_pulses(burst, 1_000);
            expected += burst;
        }
        prop_assert_eq!(counter.value(), (expected % 1024) as u64);
    }

    /// The gate-level free-running ring's measured period matches twice
    /// its loop delay for arbitrary stage delays.
    #[test]
    fn gate_level_ring_period_matches_loop_delay(
        delays in prop::collection::vec(10u64..60, 7),
        stages in prop::sample::select(vec![3usize, 5, 7]),
    ) {
        let mut ring = GateLevelRing::new(&delays[..stages]);
        let measured = ring.measure_period_ps(12);
        let analytic = ring.analytic_period_ps() as f64;
        prop_assert!(
            (measured / analytic - 1.0).abs() < 0.08,
            "measured {measured} vs analytic {analytic}"
        );
    }

    /// bit_against is a strict order: antisymmetric and transitive over
    /// counts.
    #[test]
    fn bit_against_is_strict_order(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        let ma = Measurement::new(a, 1e-4);
        let mb = Measurement::new(b, 1e-4);
        let mc = Measurement::new(c, 1e-4);
        prop_assert!(!(ma.bit_against(&mb) && mb.bit_against(&ma)));
        if ma.bit_against(&mb) && mb.bit_against(&mc) {
            prop_assert!(ma.bit_against(&mc));
        }
    }
}
