//! Structural cell descriptions: transistor counts and silicon area.
//!
//! The paper's headline area claim ("~24× area reduction for a 128-bit
//! key") is a *system* number: (number of RO cells needed) × (cell area) +
//! (readout) + (ECC decoder area). This module provides the circuit-side
//! inputs; the decoder-side gate counts live in `aro-ecc::area`.
//!
//! Area accounting uses **gate equivalents** (GE, the area of a 2-input
//! NAND) so the ratios survive a technology retarget; the µm² conversion
//! below is the usual 90 nm figure.

/// Area of one gate equivalent (2-input NAND) at the 90 nm node, in µm².
pub const GE_AREA_UM2: f64 = 3.1;

/// Average transistor area including local wiring at 90 nm, in µm²
/// (a 4-transistor NAND occupying one GE).
pub const TRANSISTOR_AREA_UM2: f64 = GE_AREA_UM2 / 4.0;

/// Silicon footprint of a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellArea {
    /// Transistor count.
    pub transistors: usize,
    /// Area in µm² (90 nm node).
    pub area_um2: f64,
}

impl CellArea {
    /// Footprint of `transistors` transistors at the standard density.
    #[must_use]
    pub fn from_transistors(transistors: usize) -> Self {
        Self {
            transistors,
            area_um2: transistors as f64 * TRANSISTOR_AREA_UM2,
        }
    }

    /// Area expressed in gate equivalents.
    #[must_use]
    pub fn gate_equivalents(&self) -> f64 {
        self.area_um2 / GE_AREA_UM2
    }
}

/// Structural description of one ring-oscillator cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoCell {
    n_stages: usize,
    is_aging_resistant: bool,
}

impl RoCell {
    /// A conventional cell: enable NAND (4 T) + `n_stages − 1` inverters
    /// (2 T each).
    ///
    /// # Panics
    /// Panics if `n_stages` is even or less than 3.
    #[must_use]
    pub fn conventional(n_stages: usize) -> Self {
        assert!(
            n_stages >= 3 && n_stages % 2 == 1,
            "ring needs an odd stage count >= 3"
        );
        Self {
            n_stages,
            is_aging_resistant: false,
        }
    }

    /// The paper's ARO cell: the conventional topology plus two gating
    /// transistors per stage (supply decoupling + node equalization) and a
    /// 4-transistor idle-control driver.
    ///
    /// # Panics
    /// Panics if `n_stages` is even or less than 3.
    #[must_use]
    pub fn aging_resistant(n_stages: usize) -> Self {
        assert!(
            n_stages >= 3 && n_stages % 2 == 1,
            "ring needs an odd stage count >= 3"
        );
        Self {
            n_stages,
            is_aging_resistant: true,
        }
    }

    /// Stage count including the enable NAND.
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Whether this is the ARO cell.
    #[must_use]
    pub fn is_aging_resistant(&self) -> bool {
        self.is_aging_resistant
    }

    /// Transistor count of the cell.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        let base = 4 + (self.n_stages - 1) * 2;
        if self.is_aging_resistant {
            base + 2 * self.n_stages + 4
        } else {
            base
        }
    }

    /// Silicon footprint of the cell.
    #[must_use]
    pub fn area(&self) -> CellArea {
        CellArea::from_transistors(self.transistor_count())
    }
}

/// Footprint of the shared readout path (two ripple counters, comparator,
/// and the pair-selection muxes) for an array of `n_ros` rings, with
/// `counter_bits`-bit counters.
///
/// Counter: ~12 T per bit (TFF + reset). Comparator: ~10 T per bit.
/// Mux tree: 2 × (n_ros − 1) 2:1 muxes at 6 T each.
#[must_use]
pub fn readout_area(n_ros: usize, counter_bits: usize) -> CellArea {
    let counters = 2 * counter_bits * 12;
    let comparator = counter_bits * 10;
    let muxes = 2 * n_ros.saturating_sub(1) * 6;
    CellArea::from_transistors(counters + comparator + muxes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_five_stage_cell_is_twelve_transistors() {
        let cell = RoCell::conventional(5);
        assert_eq!(cell.transistor_count(), 4 + 4 * 2);
        assert!(!cell.is_aging_resistant());
        assert_eq!(cell.n_stages(), 5);
    }

    #[test]
    fn aro_cell_is_larger_but_less_than_three_x() {
        let conv = RoCell::conventional(5);
        let aro = RoCell::aging_resistant(5);
        assert!(aro.transistor_count() > conv.transistor_count());
        let ratio = aro.area().area_um2 / conv.area().area_um2;
        assert!(
            ratio > 1.5 && ratio < 3.0,
            "ARO/RO cell area ratio = {ratio}"
        );
    }

    #[test]
    fn area_scales_linearly_with_transistors() {
        let a = CellArea::from_transistors(10);
        let b = CellArea::from_transistors(20);
        assert!((b.area_um2 / a.area_um2 - 2.0).abs() < 1e-12);
        assert!((a.gate_equivalents() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn readout_area_grows_with_array_size() {
        let small = readout_area(16, 16);
        let large = readout_area(256, 16);
        assert!(large.area_um2 > small.area_um2);
        assert!(small.transistors > 0);
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_cell_panics() {
        let _ = RoCell::conventional(6);
    }

    #[test]
    fn ge_conversion_is_consistent() {
        assert!((CellArea::from_transistors(4).gate_equivalents() - 1.0).abs() < 1e-12);
    }
}
