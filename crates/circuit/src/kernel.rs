//! The precomputed frequency kernel for the ring-oscillator hot path.
//!
//! `RingOscillator::frequency` used to rederive everything on every call:
//! the `HciModel`, the mobility factor, the switched load, the systematic
//! ΔVth at the ring's die position, and — per stage, per polarity — the
//! effective threshold, overdrive, drive factor and the `powf` of the
//! alpha-power law. All of those are pure functions of
//! *(technology, environment, die process, wear state)*, and a Monte Carlo
//! sweep evaluates the same ring thousands of times between wear events
//! (enrollment reads, majority votes, flip-rate scans). A [`FreqKernel`]
//! folds that whole derivation into one precomputation, stored per ring and
//! invalidated by a wear epoch counter plus an identity check on the inputs.
//!
//! The kernel deliberately stores only the *result* (period and frequency)
//! plus the identity key — no per-stage intermediates. Populations fabricate
//! hundreds of thousands of rings per run, and each ring's first `frequency`
//! call builds a kernel; a flat, allocation-free struct keeps that first
//! build as cheap as the arithmetic itself.
//!
//! **Bit-identity contract:** the kernel evaluates the *same floating-point
//! expression chain, in the same order*, as the original per-call path
//! (`InverterStage::period_contribution` →
//! `Mosfet::drive_current_with_mismatch`), so a cache hit returns a value
//! bitwise equal to what a cold computation would produce. The golden-output
//! regression test in the workspace root pins this down end to end.

use aro_device::aging::HciModel;
use aro_device::environment::Environment;
use aro_device::params::TechParams;
use aro_device::process::ChipProcess;

use crate::gates::InverterStage;
use crate::ring::RoStyle;

/// The cached result of one full frequency derivation, together with the
/// identity of the inputs it was derived from.
///
/// Built once per *(tech, env, chip process, wear epoch, layout bias,
/// correlated ΔVth)* tuple; [`FreqKernel::is_valid`] re-checks that tuple so
/// a stale kernel can never leak a frequency across an aging step or an
/// environment change.
#[derive(Debug, Clone)]
pub struct FreqKernel {
    // --- identity key ---
    tech: TechParams,
    env: Environment,
    chip: ChipProcess,
    wear_epoch: u64,
    freq_bias_rel: f64,
    correlated_dvth: f64,
    // --- precomputed result ---
    period_s: f64,
    freq_hz: f64,
    /// Set on kernels installed from a cached result
    /// ([`FreqKernel::from_cached`]) whose rebuild was *skipped*, not
    /// performed. The first warm hit books the skipped rebuild against
    /// `circuit.kernel_rebuilds` and clears the flag, so counter totals
    /// match a cold run exactly: a preloaded kernel that is never read
    /// (or is invalidated first) books nothing — just like the cold
    /// rebuild that would never have happened.
    phantom: bool,
}

impl FreqKernel {
    /// Derives the kernel for one ring. See [`FreqKernel::recompute`] for
    /// the arithmetic.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn build(
        style: RoStyle,
        stages: &[InverterStage],
        position_systematic: f64,
        correlated_dvth: f64,
        freq_bias_rel: f64,
        tech: &TechParams,
        env: &Environment,
        chip: &ChipProcess,
        wear_epoch: u64,
    ) -> Self {
        let mut kernel = Self {
            tech: tech.clone(),
            env: *env,
            chip: *chip,
            wear_epoch,
            freq_bias_rel,
            correlated_dvth,
            period_s: 0.0,
            freq_hz: 0.0,
            phantom: false,
        };
        kernel.recompute(
            style,
            stages,
            position_systematic,
            correlated_dvth,
            freq_bias_rel,
            tech,
            env,
            chip,
            wear_epoch,
        );
        kernel
    }

    /// Rederives the kernel in place for new inputs (the aging hot path
    /// rebuilds a ring's kernel on every epoch bump). The float expression
    /// chain mirrors `period_contribution` / `drive_current_with_mismatch`
    /// term for term — do not "simplify" the arithmetic here, associativity
    /// changes bits.
    #[allow(clippy::too_many_arguments)]
    pub fn recompute(
        &mut self,
        style: RoStyle,
        stages: &[InverterStage],
        position_systematic: f64,
        correlated_dvth: f64,
        freq_bias_rel: f64,
        tech: &TechParams,
        env: &Environment,
        chip: &ChipProcess,
        wear_epoch: u64,
    ) {
        let hci = HciModel::new(tech);
        let mobility = env.mobility_factor(tech);
        let c_load = tech.c_stage * style.load_factor(tech);
        let systematic = position_systematic + correlated_dvth;

        let mut period_s = 0.0f64;
        // Every device of the ring has accumulated the same HCI cycle
        // count, so the raw HCI power law is evaluated once per rebuild and
        // replayed for the other stages (bit-exact: same input → same
        // memoized output).
        let mut hci_memo: Option<(f64, f64)> = None;
        for stage in stages {
            let pmos = stage.pmos();
            let dvth_p =
                chip.dvth_interdie_p() + pmos.dvth_total_memoized(systematic, &hci, &mut hci_memo);
            let vth_p = pmos.device().vth_effective(tech, env, dvth_p);
            let od_p = tech.overdrive(env.vdd(), vth_p);
            let b_p = pmos.device().beta0()
                * (1.0 + (pmos.variation().dbeta_rel + chip.dbeta_interdie_rel()))
                * mobility;
            let cur_p = b_p * od_p.powf(tech.alpha);

            let nmos = stage.nmos();
            let dvth_n =
                chip.dvth_interdie_n() + nmos.dvth_total_memoized(systematic, &hci, &mut hci_memo);
            let vth_n = nmos.device().vth_effective(tech, env, dvth_n);
            let od_n = tech.overdrive(env.vdd(), vth_n);
            let b_n = nmos.device().beta0()
                * (1.0 + (nmos.variation().dbeta_rel + chip.dbeta_interdie_rel()))
                * mobility;
            let cur_n = b_n * od_n.powf(tech.alpha);

            let half_swing = c_load * env.vdd() / 2.0;
            period_s += half_swing / cur_p + stage.kind().pulldown_penalty() * half_swing / cur_n;
        }

        self.tech.clone_from(tech);
        self.env = *env;
        self.chip = *chip;
        self.wear_epoch = wear_epoch;
        self.freq_bias_rel = freq_bias_rel;
        self.correlated_dvth = correlated_dvth;
        self.period_s = period_s;
        self.freq_hz = (1.0 / period_s) * (1.0 + freq_bias_rel);
        self.phantom = false;
        aro_obs::counter("circuit.kernel_rebuilds", 1);
    }

    /// Installs a kernel from a previously computed *(period, frequency)*
    /// result without rederiving it — the aged-state snapshot layer
    /// harvests these from a chip that already walked the same aging
    /// prefix and preloads them after a replay.
    ///
    /// The caller asserts the result was produced by [`FreqKernel::build`]
    /// for exactly this identity tuple on identical silicon. No rebuild
    /// counter is booked here: the kernel is marked phantom and the first
    /// warm hit books it (see the `phantom` field), keeping
    /// `circuit.kernel_rebuilds` bit-identical to a cold run under every
    /// read sequence.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_cached(
        tech: &TechParams,
        env: &Environment,
        chip: &ChipProcess,
        wear_epoch: u64,
        freq_bias_rel: f64,
        correlated_dvth: f64,
        period_s: f64,
        freq_hz: f64,
    ) -> Self {
        Self {
            tech: tech.clone(),
            env: *env,
            chip: *chip,
            wear_epoch,
            freq_bias_rel,
            correlated_dvth,
            period_s,
            freq_hz,
            phantom: true,
        }
    }

    /// Clears the phantom flag, returning whether it was set — the warm
    /// path in `RingOscillator::frequency` books the deferred rebuild
    /// counter exactly once per preloaded kernel.
    pub fn take_phantom(&mut self) -> bool {
        std::mem::take(&mut self.phantom)
    }

    /// The environment this kernel was derived for.
    #[must_use]
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// Whether this kernel still describes the ring under the given inputs.
    /// The wear epoch is the cheap first gate; the environment, die process
    /// and technology identity checks guard the rare case of the same ring
    /// being interrogated under different conditions.
    #[must_use]
    pub fn is_valid(
        &self,
        tech: &TechParams,
        env: &Environment,
        chip: &ChipProcess,
        wear_epoch: u64,
        freq_bias_rel: f64,
        correlated_dvth: f64,
    ) -> bool {
        self.wear_epoch == wear_epoch
            && self.env == *env
            && self.chip == *chip
            && self.freq_bias_rel == freq_bias_rel
            && self.correlated_dvth == correlated_dvth
            && self.tech == *tech
    }

    /// The cached oscillation frequency in hertz.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.freq_hz
    }

    /// The cached oscillation period in seconds.
    #[must_use]
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// The wear epoch this kernel was built at.
    #[must_use]
    pub fn wear_epoch(&self) -> u64 {
        self.wear_epoch
    }
}
