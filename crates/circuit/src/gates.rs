//! Transistor instances and CMOS stage delay.
//!
//! A [`TransistorInst`] is one *physical* transistor: the nominal device
//! plus its fabrication-sampled mismatch and its accumulated wear-out. An
//! [`InverterStage`] is a complementary pair driving the next stage's load;
//! its pull-up/pull-down delays come straight from the alpha-power drive
//! currents, so every effect in the device layer (mismatch, BTI, HCI,
//! temperature, supply droop) propagates into ring frequency with no extra
//! fitting.

use aro_device::aging::{BtiModel, HciModel, StressInterval, TransistorAging};
use aro_device::environment::Environment;
use aro_device::mosfet::{Geometry, MosType, Mosfet};
use aro_device::params::TechParams;
use aro_device::process::DeviceVariation;
use rand::Rng;

/// One physical transistor: nominal device + sampled mismatch + wear state.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorInst {
    device: Mosfet,
    variation: DeviceVariation,
    aging: TransistorAging,
}

impl TransistorInst {
    /// Fabricates a transistor of the given polarity and geometry:
    /// samples its Pelgrom mismatch and its aging-variability multipliers
    /// from `rng`.
    pub fn fabricate<R: Rng + ?Sized>(
        mos_type: MosType,
        geometry: Geometry,
        tech: &TechParams,
        rng: &mut R,
    ) -> Self {
        Self {
            device: Mosfet::new(mos_type, geometry, tech),
            variation: DeviceVariation::sample(tech, geometry, rng),
            aging: TransistorAging::with_variability(rng, tech.sigma_aging_rel),
        }
    }

    /// The nominal device.
    #[must_use]
    pub fn device(&self) -> &Mosfet {
        &self.device
    }

    /// This transistor's fabrication-time mismatch.
    #[must_use]
    pub fn variation(&self) -> DeviceVariation {
        self.variation
    }

    /// Immutable view of the wear-out state.
    #[must_use]
    pub fn aging(&self) -> &TransistorAging {
        &self.aging
    }

    /// Mutable access to the wear-out state (the ring applies stress).
    pub fn aging_mut(&mut self) -> &mut TransistorAging {
        &mut self.aging
    }

    /// Total threshold shift of this instance in volts: mismatch +
    /// chip-systematic component + BTI + HCI.
    #[must_use]
    pub fn dvth_total(&self, systematic_dvth: f64, hci: &HciModel) -> f64 {
        self.variation.dvth
            + systematic_dvth
            + self.aging.dvth_bti()
            + self.aging.dvth_hci_with(hci)
    }

    /// [`Mosfet::dvth_total`] with the raw HCI power law memoized through
    /// `memo` (see [`TransistorAging::dvth_hci_memoized`]). Every device of
    /// a ring accumulates the same equivalent cycle count, so a kernel
    /// rebuild shares one memo across all its stages. The sum order is
    /// identical to `dvth_total`, keeping the result bitwise equal.
    #[must_use]
    pub fn dvth_total_memoized(
        &self,
        systematic_dvth: f64,
        hci: &HciModel,
        memo: &mut Option<(f64, f64)>,
    ) -> f64 {
        self.variation.dvth
            + systematic_dvth
            + self.aging.dvth_bti()
            + self.aging.dvth_hci_memoized(hci, memo)
    }

    /// Drive current in amperes under `env`, including every variation and
    /// wear source. `interdie_dvth`/`interdie_dbeta_rel` are the die
    /// common-mode shifts, `systematic_dvth` the within-die surface value
    /// at this transistor's location.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn drive_current(
        &self,
        tech: &TechParams,
        env: &Environment,
        hci: &HciModel,
        interdie_dvth: f64,
        interdie_dbeta_rel: f64,
        systematic_dvth: f64,
    ) -> f64 {
        let dvth = interdie_dvth + self.dvth_total(systematic_dvth, hci);
        let dbeta = self.variation.dbeta_rel + interdie_dbeta_rel;
        self.device
            .drive_current_with_mismatch(tech, env, dvth, dbeta)
    }

    /// Applies one BTI stress interval to this transistor, using the model
    /// matching its polarity (NBTI for PMOS, PBTI for NMOS).
    pub fn stress_bti(&mut self, nbti: &BtiModel, pbti: &BtiModel, interval: &StressInterval) {
        match self.device.mos_type() {
            MosType::Pmos => self.aging.apply_bti(nbti, interval),
            MosType::Nmos => self.aging.apply_bti(pbti, interval),
        }
    }

    /// Applies HCI wear for `cycles` output transitions at supply `vdd`.
    pub fn stress_hci(&mut self, hci: &HciModel, cycles: f64, vdd: f64) {
        self.aging.apply_hci(hci, cycles, vdd);
    }
}

/// The logic function of a ring stage. The enable gate of a conventional RO
/// is a NAND whose series NMOS stack slows its pull-down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Plain CMOS inverter.
    Inverter,
    /// 2-input NAND used as the enable gate (first stage of a conventional
    /// ring). The stacked NMOS pair pulls down ~1.5× slower.
    EnableNand,
}

impl StageKind {
    /// Pull-down delay penalty of the stage topology (series NMOS stack).
    #[must_use]
    pub fn pulldown_penalty(self) -> f64 {
        match self {
            Self::Inverter => 1.0,
            Self::EnableNand => 1.5,
        }
    }

    /// Transistor count of the stage topology.
    #[must_use]
    pub fn transistor_count(self) -> usize {
        match self {
            Self::Inverter => 2,
            Self::EnableNand => 4,
        }
    }
}

/// One ring stage: a complementary transistor pair of a given topology.
#[derive(Debug, Clone, PartialEq)]
pub struct InverterStage {
    kind: StageKind,
    pmos: TransistorInst,
    nmos: TransistorInst,
}

impl InverterStage {
    /// Fabricates a stage, sampling both transistors' mismatch from `rng`.
    pub fn fabricate<R: Rng + ?Sized>(
        kind: StageKind,
        geometry: Geometry,
        tech: &TechParams,
        rng: &mut R,
    ) -> Self {
        Self {
            kind,
            pmos: TransistorInst::fabricate(MosType::Pmos, geometry, tech, rng),
            nmos: TransistorInst::fabricate(MosType::Nmos, geometry, tech, rng),
        }
    }

    /// The stage topology.
    #[must_use]
    pub fn kind(&self) -> StageKind {
        self.kind
    }

    /// The pull-up transistor.
    #[must_use]
    pub fn pmos(&self) -> &TransistorInst {
        &self.pmos
    }

    /// The pull-down transistor.
    #[must_use]
    pub fn nmos(&self) -> &TransistorInst {
        &self.nmos
    }

    /// Mutable pull-up transistor.
    pub fn pmos_mut(&mut self) -> &mut TransistorInst {
        &mut self.pmos
    }

    /// Mutable pull-down transistor.
    pub fn nmos_mut(&mut self) -> &mut TransistorInst {
        &mut self.nmos
    }

    /// The time this stage contributes to one full oscillation period, in
    /// seconds: one pull-up plus one pull-down of the load `c_load`.
    ///
    /// `t = C·Vdd/(2·I_p) + penalty·C·Vdd/(2·I_n)`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn period_contribution(
        &self,
        tech: &TechParams,
        env: &Environment,
        hci: &HciModel,
        c_load: f64,
        interdie_dvth_p: f64,
        interdie_dvth_n: f64,
        interdie_dbeta_rel: f64,
        systematic_dvth: f64,
    ) -> f64 {
        let i_p = self.pmos.drive_current(
            tech,
            env,
            hci,
            interdie_dvth_p,
            interdie_dbeta_rel,
            systematic_dvth,
        );
        let i_n = self.nmos.drive_current(
            tech,
            env,
            hci,
            interdie_dvth_n,
            interdie_dbeta_rel,
            systematic_dvth,
        );
        let half_swing = c_load * env.vdd() / 2.0;
        half_swing / i_p + self.kind.pulldown_penalty() * half_swing / i_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_device::rng::SeedDomain;

    fn setup() -> (TechParams, Environment, HciModel) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        let hci = HciModel::new(&tech);
        (tech, env, hci)
    }

    #[test]
    fn fabricated_transistors_differ() {
        let (tech, ..) = setup();
        let mut rng = SeedDomain::new(21).rng(0);
        let a = TransistorInst::fabricate(MosType::Nmos, Geometry::default(), &tech, &mut rng);
        let b = TransistorInst::fabricate(MosType::Nmos, Geometry::default(), &tech, &mut rng);
        assert_ne!(
            a.variation(),
            b.variation(),
            "mismatch must be per-instance"
        );
    }

    #[test]
    fn drive_current_includes_mismatch_and_aging() {
        let (tech, env, hci) = setup();
        let mut rng = SeedDomain::new(22).rng(0);
        let mut t = TransistorInst::fabricate(MosType::Pmos, Geometry::default(), &tech, &mut rng);
        let fresh = t.drive_current(&tech, &env, &hci, 0.0, 0.0, 0.0);
        let nbti = BtiModel::nbti(&tech);
        let pbti = BtiModel::pbti(&tech);
        t.stress_bti(
            &nbti,
            &pbti,
            &StressInterval::static_dc(3.15e8, 25.0, tech.vdd_nominal),
        );
        let aged = t.drive_current(&tech, &env, &hci, 0.0, 0.0, 0.0);
        assert!(aged < fresh);
    }

    #[test]
    fn pbti_routes_to_nmos_and_nbti_to_pmos() {
        let (tech, ..) = setup();
        let nbti = BtiModel::nbti(&tech);
        let pbti = BtiModel::pbti(&tech);
        let mut rng = SeedDomain::new(23).rng(0);
        let interval = StressInterval::static_dc(1e8, 25.0, tech.vdd_nominal);

        let mut p = TransistorInst::fabricate(MosType::Pmos, Geometry::default(), &tech, &mut rng);
        let mut n = TransistorInst::fabricate(MosType::Nmos, Geometry::default(), &tech, &mut rng);
        // Strip variability so the comparison is purely model strength.
        *p.aging_mut() = TransistorAging::new();
        *n.aging_mut() = TransistorAging::new();
        p.stress_bti(&nbti, &pbti, &interval);
        n.stress_bti(&nbti, &pbti, &interval);
        assert!(
            p.aging().dvth_bti() > n.aging().dvth_bti(),
            "PMOS suffers the stronger NBTI: {} vs {}",
            p.aging().dvth_bti(),
            n.aging().dvth_bti()
        );
    }

    #[test]
    fn hci_slows_the_stage() {
        let (tech, env, hci) = setup();
        let mut rng = SeedDomain::new(24).rng(0);
        let mut t = TransistorInst::fabricate(MosType::Nmos, Geometry::default(), &tech, &mut rng);
        let fresh = t.drive_current(&tech, &env, &hci, 0.0, 0.0, 0.0);
        t.stress_hci(&hci, 1e12, tech.vdd_nominal);
        assert!(t.drive_current(&tech, &env, &hci, 0.0, 0.0, 0.0) < fresh);
    }

    #[test]
    fn nand_stage_is_slower_than_inverter() {
        let (tech, env, hci) = setup();
        let mut rng = SeedDomain::new(25).rng(0);
        // Same devices, different topology: compare delay penalty only.
        let inv =
            InverterStage::fabricate(StageKind::Inverter, Geometry::default(), &tech, &mut rng);
        let mut nand = inv.clone();
        // Rebuild as NAND kind with identical transistors.
        nand = InverterStage {
            kind: StageKind::EnableNand,
            ..nand
        };
        let d_inv = inv.period_contribution(&tech, &env, &hci, tech.c_stage, 0.0, 0.0, 0.0, 0.0);
        let d_nand = nand.period_contribution(&tech, &env, &hci, tech.c_stage, 0.0, 0.0, 0.0, 0.0);
        assert!(d_nand > d_inv);
    }

    #[test]
    fn stage_delay_is_tens_of_picoseconds() {
        let (tech, env, hci) = setup();
        let mut rng = SeedDomain::new(26).rng(0);
        let stage =
            InverterStage::fabricate(StageKind::Inverter, Geometry::default(), &tech, &mut rng);
        let d = stage.period_contribution(&tech, &env, &hci, tech.c_stage, 0.0, 0.0, 0.0, 0.0);
        assert!(d > 1e-11 && d < 1e-9, "period contribution {d} s");
    }

    #[test]
    fn transistor_counts_match_topologies() {
        assert_eq!(StageKind::Inverter.transistor_count(), 2);
        assert_eq!(StageKind::EnableNand.transistor_count(), 4);
    }
}
