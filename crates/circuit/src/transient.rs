//! Transient (SPICE-like) simulation of a ring oscillator.
//!
//! The Monte Carlo experiments use the *analytic* period formula in
//! [`crate::ring`] (constant-current charge/discharge of the stage load).
//! This module is the second validation harness (the first being the
//! gate-level counter in [`crate::logic`]): it integrates the actual node
//! voltages of an inverter ring through time with a two-region MOSFET
//! model — saturation current `beta·(Vgs−Vth)^alpha` rolling off linearly
//! below `Vdsat` — and extracts the oscillation period from the waveform
//! itself.
//!
//! The two models agree on everything the PUF cares about (see the
//! tests): the transient frequency tracks the analytic one within a
//! constant waveform-shape factor, and — critically — *ratios* between
//! two rings (the quantity a PUF bit is made of) match to a fraction of a
//! percent.

use aro_device::environment::Environment;
use aro_device::params::TechParams;

use crate::ring::RingOscillator;

/// Result of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    /// Extracted oscillation frequency in hertz.
    pub frequency_hz: f64,
    /// Number of full periods measured.
    pub periods_measured: usize,
    /// Integration time step used, in seconds.
    pub dt_s: f64,
}

/// Drain current of one transistor with the two-region model: saturation
/// `beta·(Vgs−Vth)^alpha`, linear roll-off below `vdsat = overdrive/2`.
fn drain_current(beta: f64, alpha: f64, overdrive: f64, vds: f64) -> f64 {
    if overdrive <= 0.0 || vds <= 0.0 {
        return 0.0;
    }
    let i_sat = beta * overdrive.powf(alpha);
    let vdsat = 0.5 * overdrive;
    if vds >= vdsat {
        i_sat
    } else {
        i_sat * vds / vdsat
    }
}

/// Integrates the node voltages of a ring and extracts its frequency.
///
/// Every stage drives the next stage's input node through its
/// complementary pair; the input threshold is `Vdd/2`. Integration is
/// forward Euler with `steps_per_period` points per *expected* period
/// (from the analytic model), and the frequency is taken from the mean
/// spacing of rising threshold crossings of node 0 after the oscillation
/// locks in.
///
/// # Panics
/// Panics if `periods` or `steps_per_period` is zero.
#[must_use]
pub fn simulate_ring(
    ro: &RingOscillator,
    tech: &TechParams,
    env: &Environment,
    chip: &aro_device::process::ChipProcess,
    periods: usize,
    steps_per_period: usize,
) -> TransientResult {
    assert!(
        periods >= 1 && steps_per_period >= 8,
        "need a sensible resolution"
    );
    let n = ro.n_stages();
    let vdd = env.vdd();
    let c_load = tech.c_stage * ro.style().load_factor(tech);
    let hci = aro_device::aging::HciModel::new(tech);
    let systematic = chip.systematic_dvth(ro.position()) + ro.correlated_dvth();

    // Per-stage effective parameters (match the analytic model's inputs).
    struct StageParams {
        beta_p: f64,
        beta_n: f64,
        od_p: f64,
        od_n: f64,
        alpha: f64,
        pulldown_penalty: f64,
    }
    let stages: Vec<StageParams> = ro
        .stages()
        .iter()
        .map(|s| {
            let mob = env.mobility_factor(tech);
            let vth_p = s.pmos().device().vth_effective(
                tech,
                env,
                chip.dvth_interdie_p() + s.pmos().dvth_total(systematic, &hci),
            );
            let vth_n = s.nmos().device().vth_effective(
                tech,
                env,
                chip.dvth_interdie_n() + s.nmos().dvth_total(systematic, &hci),
            );
            StageParams {
                beta_p: s.pmos().device().beta0()
                    * (1.0 + s.pmos().variation().dbeta_rel + chip.dbeta_interdie_rel())
                    * mob,
                beta_n: s.nmos().device().beta0()
                    * (1.0 + s.nmos().variation().dbeta_rel + chip.dbeta_interdie_rel())
                    * mob,
                od_p: tech.overdrive(vdd, vth_p),
                od_n: tech.overdrive(vdd, vth_n),
                alpha: tech.alpha,
                pulldown_penalty: s.kind().pulldown_penalty(),
            }
        })
        .collect();

    // Initial condition: alternating rail voltages, one node mid-rail to
    // break symmetry and start the wave.
    let mut v: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { vdd } else { 0.0 }).collect();
    v[0] = 0.51 * vdd;

    let expected_period = 1.0 / ro.frequency(tech, env, chip);
    let dt = expected_period / steps_per_period as f64;
    let total_steps = (periods + 4) * steps_per_period; // settle + measure

    let threshold = vdd / 2.0;
    let mut crossings: Vec<f64> = Vec::new();
    let mut prev_v0 = v[0];

    for step in 0..total_steps {
        let t = step as f64 * dt;
        let mut dv = vec![0.0f64; n];
        for i in 0..n {
            let driver = &stages[i];
            let input = v[(i + n - 1) % n];
            let out = v[i];
            // The driver of node i is stage i, whose input is node i−1.
            // Gate drive is the digital approximation: a device is fully
            // on (its full overdrive) when the input commits past the
            // threshold, off otherwise — the output-side two-region Vds
            // dependence is what the analytic model lacks.
            let gate_p = if input < threshold { driver.od_p } else { 0.0 };
            let gate_n = if input > threshold { driver.od_n } else { 0.0 };
            let i_up = drain_current(driver.beta_p, driver.alpha, gate_p, vdd - out);
            let i_down = drain_current(
                driver.beta_n / driver.pulldown_penalty,
                driver.alpha,
                gate_n,
                out,
            );
            dv[i] = (i_up - i_down) / c_load * dt;
        }
        for i in 0..n {
            v[i] = (v[i] + dv[i]).clamp(0.0, vdd);
        }
        // Rising crossing of node 0.
        if prev_v0 < threshold && v[0] >= threshold && step > 2 * steps_per_period {
            crossings.push(t);
        }
        prev_v0 = v[0];
    }

    assert!(
        crossings.len() >= 2,
        "ring failed to oscillate in the transient window"
    );
    let measured = crossings.len() - 1;
    let period = (crossings[measured] - crossings[0]) / measured as f64;
    TransientResult {
        frequency_hz: 1.0 / period,
        periods_measured: measured,
        dt_s: dt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{AgingModels, RoStyle};
    use aro_device::process::{ChipProcess, DiePosition};
    use aro_device::rng::SeedDomain;
    use aro_device::units::YEAR;

    fn setup(seed: u64) -> (TechParams, Environment, ChipProcess, RingOscillator) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        let chip = ChipProcess::typical();
        let mut rng = SeedDomain::new(seed).rng(0);
        let ro = RingOscillator::new(
            RoStyle::Conventional,
            5,
            DiePosition::new(0.5, 0.5),
            &tech,
            &mut rng,
        );
        (tech, env, chip, ro)
    }

    #[test]
    fn transient_frequency_tracks_the_analytic_model() {
        let (tech, env, chip, ro) = setup(71);
        let analytic = ro.frequency(&tech, &env, &chip);
        let transient = simulate_ring(&ro, &tech, &env, &chip, 12, 400);
        let ratio = transient.frequency_hz / analytic;
        // The waveform-shape factor between constant-current and
        // two-region charging is bounded and near one.
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "transient {} vs analytic {} (ratio {ratio})",
            transient.frequency_hz,
            analytic
        );
        assert!(transient.periods_measured >= 8);
    }

    #[test]
    fn frequency_ratio_of_two_rings_matches_analytic_ratio() {
        // The PUF bit only cares about which ring is faster and by how
        // much; the waveform-shape factor cancels in the ratio.
        let (tech, env, chip, ro_a) = setup(72);
        let (.., ro_b) = setup(73);
        let analytic_ratio =
            ro_a.frequency(&tech, &env, &chip) / ro_b.frequency(&tech, &env, &chip);
        let t_a = simulate_ring(&ro_a, &tech, &env, &chip, 12, 400);
        let t_b = simulate_ring(&ro_b, &tech, &env, &chip, 12, 400);
        let transient_ratio = t_a.frequency_hz / t_b.frequency_hz;
        assert!(
            (transient_ratio / analytic_ratio - 1.0).abs() < 0.01,
            "transient ratio {transient_ratio} vs analytic {analytic_ratio}"
        );
    }

    #[test]
    fn transient_sees_aging_slowdown_too() {
        let (tech, env, chip, mut ro) = setup(74);
        let fresh = simulate_ring(&ro, &tech, &env, &chip, 10, 300).frequency_hz;
        let models = AgingModels::new(&tech);
        ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, 10.0 * YEAR);
        let aged = simulate_ring(&ro, &tech, &env, &chip, 10, 300).frequency_hz;
        assert!(aged < fresh, "aged {aged} vs fresh {fresh}");
        let analytic_drop = 1.0
            - ro.frequency(&tech, &env, &chip) / {
                let mut fresh_ro = ro.clone();
                fresh_ro.reset_wear();
                fresh_ro.frequency(&tech, &env, &chip)
            };
        let transient_drop = 1.0 - aged / fresh;
        assert!(
            (transient_drop - analytic_drop).abs() < 0.03,
            "transient drop {transient_drop} vs analytic {analytic_drop}"
        );
    }

    #[test]
    fn supply_droop_slows_the_transient_ring() {
        let (tech, env, chip, ro) = setup(75);
        let nominal = simulate_ring(&ro, &tech, &env, &chip, 10, 300).frequency_hz;
        let droop = simulate_ring(&ro, &tech, &env.with_vdd(1.08), &chip, 10, 300).frequency_hz;
        assert!(droop < nominal);
    }

    #[test]
    #[should_panic(expected = "sensible resolution")]
    fn zero_periods_panics() {
        let (tech, env, chip, ro) = setup(76);
        let _ = simulate_ring(&ro, &tech, &env, &chip, 0, 300);
    }
}
