//! A small event-driven gate-level logic simulator.
//!
//! The RO-PUF's readout datapath — ripple counters behind muxes, a
//! comparator — is digital hardware. The behavioural model in
//! [`crate::readout`] is what the Monte Carlo experiments run (it is four
//! orders of magnitude faster), but the substitution needs evidence: this
//! module simulates the *actual netlist* of a ripple counter driven by an
//! oscillating source and shows the behavioural counter matches it (see
//! `counter_netlist_matches_behavioral_model` below and the
//! `gate_level_readout` integration test).
//!
//! The simulator is a classic discrete-event kernel: nets carry boolean
//! levels, gates re-evaluate when an input changes and schedule their
//! output after a propagation delay, and edge-triggered D flip-flops
//! sample on the rising clock edge.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A net (wire) in the circuit, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Combinational gate kinds (plus the sequential DFF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 mux: inputs `[select, a, b]`, output = `select ? b : a`.
    Mux2,
    /// Rising-edge D flip-flop: inputs `[clk, d]`.
    Dff,
}

impl GateKind {
    /// Number of input pins.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            Self::Inv => 1,
            Self::Mux2 => 3,
            Self::Dff => 2,
            _ => 2,
        }
    }

    fn eval(self, inputs: &[bool], state: bool) -> bool {
        match self {
            Self::Inv => !inputs[0],
            Self::Nand2 => !(inputs[0] && inputs[1]),
            Self::Nor2 => !(inputs[0] || inputs[1]),
            Self::And2 => inputs[0] && inputs[1],
            Self::Or2 => inputs[0] || inputs[1],
            Self::Xor2 => inputs[0] ^ inputs[1],
            Self::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            Self::Dff => state,
        }
    }
}

#[derive(Debug, Clone)]
struct Gate {
    kind: GateKind,
    inputs: Vec<NetId>,
    output: NetId,
    delay_ps: u64,
    /// DFF stored value.
    state: bool,
}

/// A gate-level netlist plus its event-driven simulation state.
#[derive(Debug, Clone)]
pub struct LogicCircuit {
    gates: Vec<Gate>,
    net_values: Vec<bool>,
    /// For each net: gates watching it.
    fanout: Vec<Vec<usize>>,
    /// Event queue: (time_ps, net, value), min-heap by time then insertion.
    events: BinaryHeap<Reverse<(u64, u64, usize, bool)>>,
    sequence: u64,
    now_ps: u64,
}

impl Default for LogicCircuit {
    fn default() -> Self {
        Self::new()
    }
}

impl LogicCircuit {
    /// An empty circuit.
    #[must_use]
    pub fn new() -> Self {
        Self {
            gates: Vec::new(),
            net_values: Vec::new(),
            fanout: Vec::new(),
            events: BinaryHeap::new(),
            sequence: 0,
            now_ps: 0,
        }
    }

    /// Allocates a new net, initially low.
    pub fn net(&mut self) -> NetId {
        self.net_at(false)
    }

    /// Allocates a new net with a chosen power-up level — needed to
    /// initialize feedback loops into a single consistent state (an ideal
    /// event-driven ring would otherwise sustain every wave launched by
    /// an inconsistent power-up).
    pub fn net_at(&mut self, level: bool) -> NetId {
        self.net_values.push(level);
        self.fanout.push(Vec::new());
        NetId(self.net_values.len() - 1)
    }

    /// Adds a gate driving a fresh output net; returns that net.
    ///
    /// # Panics
    /// Panics if the input count does not match the gate's arity or an
    /// input net does not exist.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId], delay_ps: u64) -> NetId {
        let output = self.net();
        self.gate_into(kind, inputs, output, delay_ps);
        output
    }

    /// Adds a gate driving an *existing* net — required for feedback
    /// loops (e.g. a toggle flip-flop's D input). The caller is
    /// responsible for single-driver discipline.
    ///
    /// # Panics
    /// Panics if the input count does not match the gate's arity or any
    /// net does not exist.
    pub fn gate_into(&mut self, kind: GateKind, inputs: &[NetId], output: NetId, delay_ps: u64) {
        assert_eq!(inputs.len(), kind.arity(), "wrong input count for {kind:?}");
        for net in inputs.iter().chain(std::iter::once(&output)) {
            assert!(net.0 < self.net_values.len(), "dangling net");
        }
        let index = self.gates.len();
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay_ps,
            state: false,
        });
        for input in inputs {
            self.fanout[input.0].push(index);
        }
        // Schedule the gate's power-up evaluation so constant-0 inputs
        // still produce correct initial levels (an inverter of a low net
        // must rise without waiting for an input *change*).
        if kind != GateKind::Dff {
            let input_levels: Vec<bool> = inputs.iter().map(|n| self.net_values[n.0]).collect();
            let initial = kind.eval(&input_levels, false);
            self.schedule_output(output, initial, delay_ps);
        }
    }

    /// Current level of a net.
    ///
    /// # Panics
    /// Panics if the net does not exist.
    #[must_use]
    pub fn level(&self, net: NetId) -> bool {
        self.net_values[net.0]
    }

    /// Current simulation time in picoseconds.
    #[must_use]
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// Schedules an external drive of `net` to `value` at absolute time
    /// `at_ps`.
    ///
    /// # Panics
    /// Panics if `at_ps` is in the past.
    pub fn drive(&mut self, net: NetId, value: bool, at_ps: u64) {
        assert!(at_ps >= self.now_ps, "cannot drive in the past");
        self.sequence += 1;
        self.events
            .push(Reverse((at_ps, self.sequence, net.0, value)));
    }

    /// Schedules a square-wave clock on `net`: period `period_ps`,
    /// starting with a rising edge at `start_ps`, for `cycles` cycles.
    pub fn drive_clock(&mut self, net: NetId, period_ps: u64, start_ps: u64, cycles: usize) {
        assert!(period_ps >= 2, "period must fit a high and a low phase");
        for c in 0..cycles {
            let rise = start_ps + c as u64 * period_ps;
            self.drive(net, true, rise);
            self.drive(net, false, rise + period_ps / 2);
        }
    }

    /// Runs the simulation until the event queue drains or `until_ps` is
    /// reached, whichever comes first.
    pub fn run_until(&mut self, until_ps: u64) {
        while let Some(Reverse((t, _, net, value))) = self.events.peek().copied() {
            if t > until_ps {
                break;
            }
            self.events.pop();
            self.now_ps = t;
            if self.net_values[net] == value {
                continue;
            }
            // Capture rising edges before updating, for DFF clocking.
            let rising = value && !self.net_values[net];
            self.net_values[net] = value;
            let watchers = self.fanout[net].clone();
            for g in watchers {
                self.evaluate_gate(g, net, rising);
            }
        }
        self.now_ps = self.now_ps.max(until_ps);
    }

    fn evaluate_gate(&mut self, g: usize, changed_net: usize, rising: bool) {
        let (kind, delay, output, state) = {
            let gate = &self.gates[g];
            (gate.kind, gate.delay_ps, gate.output, gate.state)
        };
        if kind == GateKind::Dff {
            // Only a rising edge on the clock pin (input 0) matters.
            let clk = self.gates[g].inputs[0];
            if clk.0 != changed_net || !rising {
                return;
            }
            let d = self.net_values[self.gates[g].inputs[1].0];
            self.gates[g].state = d;
            self.schedule_output(output, d, delay);
            return;
        }
        let inputs: Vec<bool> = self.gates[g]
            .inputs
            .iter()
            .map(|n| self.net_values[n.0])
            .collect();
        let new_value = kind.eval(&inputs, state);
        self.schedule_output(output, new_value, delay);
    }

    fn schedule_output(&mut self, output: NetId, value: bool, delay_ps: u64) {
        self.sequence += 1;
        self.events.push(Reverse((
            self.now_ps + delay_ps,
            self.sequence,
            output.0,
            value,
        )));
    }
}

/// A free-running gate-level ring oscillator: an odd inverter chain with
/// feedback, built in the event simulator.
///
/// Complements [`RippleCounter`]: together they re-create the whole
/// oscillator-plus-counter readout in actual logic, cross-validating the
/// analytic models (see `free_running_ring_period_is_the_delay_sum`).
#[derive(Debug, Clone)]
pub struct GateLevelRing {
    circuit: LogicCircuit,
    tap: NetId,
    period_sum_ps: u64,
}

impl GateLevelRing {
    /// Builds a free-running ring from per-stage delays (one inverter per
    /// entry; the count must be odd) and lets it start oscillating.
    ///
    /// # Panics
    /// Panics if the stage count is even, zero, or any delay is zero.
    #[must_use]
    pub fn new(stage_delays_ps: &[u64]) -> Self {
        assert!(
            !stage_delays_ps.is_empty() && stage_delays_ps.len() % 2 == 1,
            "ring needs an odd stage count"
        );
        assert!(
            stage_delays_ps.iter().all(|&d| d > 0),
            "zero-delay stages oscillate unphysically"
        );
        let mut circuit = LogicCircuit::new();
        // Preset a consistent alternating state so power-up launches
        // exactly ONE wave (at the loop-closure contradiction) instead of
        // one per stage.
        let feedback = circuit.net_at(false);
        let mut node = feedback;
        let mut level = false;
        let mut tap = feedback;
        for &delay in stage_delays_ps {
            level = !level;
            let out = circuit.net_at(level);
            circuit.gate_into(GateKind::Inv, &[node], out, delay);
            node = out;
            tap = out;
        }
        // Close the loop: the last node is high (odd count) but feedback
        // was preset low — this single inconsistency starts the wave.
        circuit.gate_into(GateKind::Or2, &[node, node], feedback, 1);
        Self {
            circuit,
            tap,
            period_sum_ps: 2 * (stage_delays_ps.iter().sum::<u64>() + 1),
        }
    }

    /// The analytic period (twice the loop delay), in picoseconds.
    #[must_use]
    pub fn analytic_period_ps(&self) -> u64 {
        self.period_sum_ps
    }

    /// Runs the ring and measures the mean period over `periods` cycles
    /// from the output-tap rising edges, in picoseconds.
    ///
    /// # Panics
    /// Panics if the ring fails to produce enough edges (cannot happen
    /// for a validly constructed ring).
    pub fn measure_period_ps(&mut self, periods: usize) -> f64 {
        let deadline = self.circuit.now_ps() + (periods as u64 + 4) * self.period_sum_ps;
        let mut rising: Vec<u64> = Vec::new();
        let mut prev = self.circuit.level(self.tap);
        // Step the simulation in small quanta, sampling edges on the tap.
        let quantum = (self.period_sum_ps / 64).max(1);
        let mut t = self.circuit.now_ps();
        while t < deadline && rising.len() <= periods + 1 {
            t += quantum;
            self.circuit.run_until(t);
            let now = self.circuit.level(self.tap);
            if now && !prev {
                rising.push(self.circuit.now_ps());
            }
            prev = now;
        }
        assert!(rising.len() >= 2, "ring did not oscillate");
        let n = rising.len() - 1;
        (rising[n] - rising[0]) as f64 / n as f64
    }
}

/// A gate-level asynchronous (ripple) counter built from T-stages
/// (a DFF whose D input is its inverted output).
#[derive(Debug, Clone)]
pub struct RippleCounter {
    circuit: LogicCircuit,
    clock: NetId,
    bit_nets: Vec<NetId>,
}

impl RippleCounter {
    /// Builds a `bits`-wide ripple counter clocked by an external net.
    ///
    /// # Panics
    /// Panics if `bits` is zero.
    #[must_use]
    pub fn new(bits: usize) -> Self {
        assert!(bits >= 1, "counter needs at least one bit");
        let mut circuit = LogicCircuit::new();
        let clock = circuit.net();
        let mut bit_nets = Vec::with_capacity(bits);
        let mut stage_clock = clock;
        for _ in 0..bits {
            // T-stage: q = DFF(clk = stage_clock, d = !q). The feedback
            // inverter is what turns the DFF into a toggle.
            let q_feedback = circuit.net();
            let q = circuit.gate(GateKind::Dff, &[stage_clock, q_feedback], 20);
            let q_bar = circuit.gate(GateKind::Inv, &[q], 10);
            // Close the loop: a buffer (OR of a net with itself) drives
            // the pre-allocated feedback net from q_bar.
            circuit.gate_into(GateKind::Or2, &[q_bar, q_bar], q_feedback, 1);
            // Next stage clocks on this stage's inverted output (counts on
            // falling edges of q, i.e. rising edges of q_bar).
            stage_clock = q_bar;
            bit_nets.push(q);
        }
        // Let power-up evaluation settle: q = 0, q_bar = 1, feedback = 1.
        circuit.run_until(1_000);
        Self {
            circuit,
            clock,
            bit_nets,
        }
    }

    /// Number of counter bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bit_nets.len()
    }

    /// Feeds `cycles` clock cycles of period `period_ps` and settles.
    pub fn count_pulses(&mut self, cycles: usize, period_ps: u64) {
        let start = self.circuit.now_ps() + period_ps;
        self.circuit
            .drive_clock(self.clock, period_ps, start, cycles);
        let settle = start + (cycles as u64 + 2) * period_ps + 1_000;
        self.circuit.run_until(settle);
    }

    /// The current counter value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.bit_nets
            .iter()
            .enumerate()
            .map(|(i, &net)| u64::from(self.circuit.level(net)) << i)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_gates_evaluate_truth_tables() {
        for (kind, table) in [
            (GateKind::Nand2, [true, true, true, false]),
            (GateKind::Nor2, [true, false, false, false]),
            (GateKind::And2, [false, false, false, true]),
            (GateKind::Or2, [false, true, true, true]),
            (GateKind::Xor2, [false, true, true, false]),
        ] {
            for (i, expected) in table.iter().enumerate() {
                let mut c = LogicCircuit::new();
                let a = c.net();
                let b = c.net();
                let y = c.gate(kind, &[a, b], 5);
                c.drive(a, i & 1 != 0, 10);
                c.drive(b, i & 2 != 0, 10);
                c.run_until(100);
                assert_eq!(c.level(y), *expected, "{kind:?} row {i}");
            }
        }
    }

    #[test]
    fn inverter_chain_accumulates_delay() {
        let mut c = LogicCircuit::new();
        let input = c.net();
        let n1 = c.gate(GateKind::Inv, &[input], 10);
        let n2 = c.gate(GateKind::Inv, &[n1], 10);
        let n3 = c.gate(GateKind::Inv, &[n2], 10);
        c.drive(input, true, 100);
        c.run_until(115);
        assert!(!c.level(n1) || c.now_ps() < 110);
        c.run_until(200);
        assert!(!c.level(n3), "three inversions of 1 → 0");
        assert!(c.level(n2));
    }

    #[test]
    fn mux_selects() {
        let mut c = LogicCircuit::new();
        let sel = c.net();
        let a = c.net();
        let b = c.net();
        let y = c.gate(GateKind::Mux2, &[sel, a, b], 5);
        c.drive(a, true, 10);
        c.drive(b, false, 10);
        c.run_until(50);
        assert!(c.level(y), "sel=0 picks a");
        c.drive(sel, true, 60);
        c.run_until(100);
        assert!(!c.level(y), "sel=1 picks b");
    }

    #[test]
    fn dff_samples_on_rising_edge_only() {
        let mut c = LogicCircuit::new();
        let clk = c.net();
        let d = c.net();
        let q = c.gate(GateKind::Dff, &[clk, d], 5);
        c.drive(d, true, 10);
        c.run_until(50);
        assert!(!c.level(q), "no edge yet");
        c.drive(clk, true, 100);
        c.run_until(150);
        assert!(c.level(q), "sampled 1 on the rising edge");
        c.drive(d, false, 200);
        c.drive(clk, false, 250); // falling edge: no sample
        c.run_until(300);
        assert!(c.level(q), "falling edge must not sample");
        c.drive(clk, true, 400);
        c.run_until(450);
        assert!(!c.level(q), "next rising edge samples 0");
    }

    #[test]
    fn free_running_ring_period_is_the_delay_sum() {
        let mut ring = GateLevelRing::new(&[20, 25, 20, 25, 20]);
        let analytic = ring.analytic_period_ps() as f64;
        let measured = ring.measure_period_ps(20);
        assert!(
            (measured / analytic - 1.0).abs() < 0.05,
            "measured {measured} ps vs analytic {analytic} ps"
        );
    }

    #[test]
    fn slower_stages_make_a_slower_gate_level_ring() {
        let fast = GateLevelRing::new(&[20, 20, 20]).measure_period_ps(20);
        let slow = GateLevelRing::new(&[30, 30, 30]).measure_period_ps(20);
        assert!(slow > 1.3 * fast, "slow {slow} vs fast {fast}");
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_gate_level_ring_panics() {
        let _ = GateLevelRing::new(&[10, 10]);
    }

    #[test]
    fn ripple_counter_counts_exactly() {
        let mut counter = RippleCounter::new(8);
        assert_eq!(counter.value(), 0);
        counter.count_pulses(1, 1_000);
        assert_eq!(counter.value(), 1);
        counter.count_pulses(4, 1_000);
        assert_eq!(counter.value(), 5);
        counter.count_pulses(95, 1_000);
        assert_eq!(counter.value(), 100);
    }

    #[test]
    fn ripple_counter_wraps_at_width() {
        let mut counter = RippleCounter::new(4);
        counter.count_pulses(18, 1_000);
        assert_eq!(counter.value(), 2, "16 + 2 wraps a 4-bit counter");
    }

    #[test]
    fn counter_netlist_matches_behavioral_model() {
        // The central validation: gate-level count == floor(f · T) from
        // the behavioural readout, for a noiseless source.
        let f_hz = 1.0e9;
        let gate_time_s = 257e-9; // 257 cycles
        let period_ps = (1e12 / f_hz) as u64;
        let cycles = (f_hz * gate_time_s) as usize;
        let mut counter = RippleCounter::new(12);
        counter.count_pulses(cycles, period_ps);
        assert_eq!(counter.value(), cycles as u64);
        let behavioral = crate::readout::ReadoutConfig::ideal();
        let mut rng = aro_device::rng::SeedDomain::new(1).rng(0);
        let mut cfg = behavioral;
        cfg.gate_time_s = gate_time_s;
        let m = cfg.measure(f_hz, &mut rng);
        assert!(
            (m.count() as i64 - counter.value() as i64).abs() <= 1,
            "behavioural {} vs gate-level {}",
            m.count(),
            counter.value()
        );
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn arity_mismatch_panics() {
        let mut c = LogicCircuit::new();
        let a = c.net();
        let _ = c.gate(GateKind::Nand2, &[a], 5);
    }

    #[test]
    #[should_panic(expected = "cannot drive in the past")]
    fn past_drive_panics() {
        let mut c = LogicCircuit::new();
        let a = c.net();
        c.drive(a, true, 100);
        c.run_until(200);
        c.drive(a, false, 50);
    }
}
