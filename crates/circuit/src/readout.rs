//! Counter-based frequency readout.
//!
//! A real RO-PUF never sees a frequency directly: each selected ring drives
//! a binary counter for a fixed **gate time**, and the pair's two counts
//! are compared. Two noise sources matter:
//!
//! * **Quantization** — the count is `floor(f · T + phase)`; short gate
//!   times leave few counts and the ±1 LSB matters for close pairs.
//! * **Jitter and environmental micro-noise** — accumulated period jitter
//!   shrinks with `1/sqrt(cycles)`, while supply/temperature
//!   micro-fluctuations put a floor on the relative error that does not
//!   average out within one gate window.
//!
//! The paper (like Suh & Devadas) reads all pairs with two shared counters
//! behind muxes, so a ring only oscillates — and only *ages by HCI* —
//! during its own measurement windows. [`ReadoutConfig::active_time_per_ro`]
//! exposes exactly that duration to the mission-profile scheduler.

use rand::Rng;

use aro_device::rng::standard_normal;

/// Configuration of the counter-based readout path.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadoutConfig {
    /// Counter gate time in seconds.
    pub gate_time_s: f64,
    /// Cycle-to-cycle period jitter, relative to the period. Its effect on
    /// the count shrinks as `1/sqrt(cycles)`.
    pub jitter_rel: f64,
    /// Floor of the relative frequency error from supply/temperature
    /// micro-fluctuation within a gate window (does not average out).
    pub sigma_meas_rel: f64,
}

impl Default for ReadoutConfig {
    /// 100 µs gate time, 1 % cycle jitter, 0.02 % environmental floor —
    /// a counter resolution comparable to published RO-PUF testbeds.
    fn default() -> Self {
        Self {
            gate_time_s: 100e-6,
            jitter_rel: 0.01,
            sigma_meas_rel: 2e-4,
        }
    }
}

impl ReadoutConfig {
    /// A noiseless, quantization-only readout (for deterministic tests).
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            gate_time_s: 100e-6,
            jitter_rel: 0.0,
            sigma_meas_rel: 0.0,
        }
    }

    /// The default readout with its environmental floor widened by the
    /// RTN (random-telegraph-noise) contribution of the ring's devices —
    /// trap occupancy does not average out within a gate window, so it
    /// adds in quadrature to the floor. See [`aro_device::rtn`].
    #[must_use]
    pub fn with_rtn_floor(
        tech: &aro_device::params::TechParams,
        geometry: aro_device::mosfet::Geometry,
        n_transistors: usize,
    ) -> Self {
        let base = Self::default();
        let rtn = aro_device::rtn::frequency_sigma_rel(tech, geometry, n_transistors);
        Self {
            sigma_meas_rel: (base.sigma_meas_rel.powi(2) + rtn.powi(2)).sqrt(),
            ..base
        }
    }

    /// Relative 1-sigma error of a frequency estimate for a ring running
    /// at `freq` hertz.
    #[must_use]
    pub fn sigma_rel_at(&self, freq: f64) -> f64 {
        let cycles = (freq * self.gate_time_s).max(1.0);
        ((self.jitter_rel * self.jitter_rel) / cycles + self.sigma_meas_rel * self.sigma_meas_rel)
            .sqrt()
    }

    /// How long one ring oscillates (and accrues HCI) per response bit it
    /// participates in: the gate time.
    #[must_use]
    pub fn active_time_per_ro(&self) -> f64 {
        self.gate_time_s
    }

    /// Returns this readout with both noise contributions (cycle jitter
    /// and the environmental floor) amplified by `factor` — the
    /// fault-injection hook for RTN bursts, where a trap ensemble briefly
    /// multiplies the non-averaging noise floor (see [`aro_device::rtn`]).
    ///
    /// # Panics
    /// Panics if `factor` is not finite and `>= 1.0` (a burst never
    /// quietens the readout).
    #[must_use]
    pub fn with_noise_burst(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "noise burst factor must be >= 1"
        );
        Self {
            gate_time_s: self.gate_time_s,
            jitter_rel: self.jitter_rel * factor,
            sigma_meas_rel: self.sigma_meas_rel * factor,
        }
    }

    /// Counts `f_true` through the gate window, adding jitter noise and
    /// quantizing. A dead ring (`f_true == 0`) legitimately counts zero —
    /// the counter simply never advances.
    pub fn measure<R: Rng + ?Sized>(&self, f_true: f64, rng: &mut R) -> Measurement {
        assert!(f_true >= 0.0, "frequency must be non-negative");
        if f_true == 0.0 {
            return Measurement::new(0, self.gate_time_s);
        }
        let sigma = self.sigma_rel_at(f_true);
        let f_noisy = f_true * (1.0 + sigma * standard_normal(rng));
        let phase: f64 = rng.gen_range(0.0..1.0);
        let count = (f_noisy * self.gate_time_s + phase).floor().max(0.0) as u64;
        Measurement::new(count, self.gate_time_s)
    }
}

/// One gated count of one ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    count: u64,
    gate_time_s: f64,
}

impl Measurement {
    /// Wraps a raw counter value taken over `gate_time_s` seconds.
    ///
    /// # Panics
    /// Panics if `gate_time_s` is not strictly positive.
    #[must_use]
    pub fn new(count: u64, gate_time_s: f64) -> Self {
        assert!(gate_time_s > 0.0, "gate time must be positive");
        Self { count, gate_time_s }
    }

    /// The raw counter value.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The gate time used, in seconds.
    #[must_use]
    pub fn gate_time_s(&self) -> f64 {
        self.gate_time_s
    }

    /// The frequency estimate in hertz.
    #[must_use]
    pub fn frequency(&self) -> f64 {
        self.count as f64 / self.gate_time_s
    }

    /// Returns this measurement with `xor_mask` xored into the raw count —
    /// the fault-injection hook for counter glitches, where a single-event
    /// upset flips counter flip-flops mid-window. The gate time is
    /// unchanged; the corrupted count propagates into
    /// [`Measurement::frequency`] and [`Measurement::bit_against`] exactly
    /// like a genuine miscounting.
    #[must_use]
    pub fn glitched(&self, xor_mask: u64) -> Self {
        Self {
            count: self.count ^ xor_mask,
            gate_time_s: self.gate_time_s,
        }
    }

    /// The response bit of a pair: `1` iff `self` counted strictly more
    /// than `other` (a tie deterministically yields `0`, as a hardware
    /// comparator would resolve `a > b`).
    #[must_use]
    pub fn bit_against(&self, other: &Measurement) -> bool {
        self.count > other.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_device::rng::SeedDomain;

    #[test]
    fn ideal_readout_recovers_frequency_to_one_lsb() {
        let cfg = ReadoutConfig::ideal();
        let mut rng = SeedDomain::new(51).rng(0);
        let f = 1.234_567e9;
        let m = cfg.measure(f, &mut rng);
        let err = (m.frequency() - f).abs();
        assert!(err <= 1.0 / cfg.gate_time_s, "error {err} Hz within 1 LSB");
    }

    #[test]
    fn sigma_shrinks_with_gate_time() {
        let short = ReadoutConfig {
            gate_time_s: 1e-6,
            ..ReadoutConfig::default()
        };
        let long = ReadoutConfig {
            gate_time_s: 1e-3,
            ..ReadoutConfig::default()
        };
        assert!(long.sigma_rel_at(1e9) < short.sigma_rel_at(1e9));
    }

    #[test]
    fn sigma_has_environmental_floor() {
        let cfg = ReadoutConfig {
            gate_time_s: 10.0,
            ..ReadoutConfig::default()
        };
        assert!(cfg.sigma_rel_at(1e9) >= cfg.sigma_meas_rel);
    }

    #[test]
    fn measurement_noise_spreads_counts() {
        let cfg = ReadoutConfig::default();
        let mut rng = SeedDomain::new(52).rng(0);
        let f = 1e9;
        let counts: Vec<u64> = (0..200).map(|_| cfg.measure(f, &mut rng).count()).collect();
        let distinct: std::collections::HashSet<_> = counts.iter().collect();
        assert!(distinct.len() > 5, "noise must spread repeated counts");
    }

    #[test]
    fn close_pair_bits_are_noisy_but_distant_pair_bits_are_stable() {
        let cfg = ReadoutConfig::default();
        let mut rng = SeedDomain::new(53).rng(0);
        let f = 1e9;
        // Distant pair: 1 % apart — always resolves the same way.
        let stable = (0..200)
            .filter(|_| {
                let a = cfg.measure(f * 1.01, &mut rng);
                let b = cfg.measure(f, &mut rng);
                a.bit_against(&b)
            })
            .count();
        assert_eq!(stable, 200);
        // Near-tie pair: flips sometimes.
        let flips = (0..400)
            .filter(|_| {
                let a = cfg.measure(f * (1.0 + 1e-5), &mut rng);
                let b = cfg.measure(f, &mut rng);
                !a.bit_against(&b)
            })
            .count();
        assert!(flips > 0, "a 10 ppm margin must occasionally flip");
    }

    #[test]
    fn bit_against_is_antisymmetric_for_distinct_counts() {
        let a = Measurement::new(100, 1e-4);
        let b = Measurement::new(99, 1e-4);
        assert!(a.bit_against(&b));
        assert!(!b.bit_against(&a));
        // Tie resolves to 0 both ways (hardware comparator semantics).
        let c = Measurement::new(100, 1e-4);
        assert!(!a.bit_against(&c));
        assert!(!c.bit_against(&a));
    }

    #[test]
    fn rtn_floor_widens_the_default_noise() {
        let tech = aro_device::params::TechParams::default();
        let base = ReadoutConfig::default();
        let with_rtn =
            ReadoutConfig::with_rtn_floor(&tech, aro_device::mosfet::Geometry::default(), 10);
        assert!(with_rtn.sigma_meas_rel > base.sigma_meas_rel);
        assert!(
            with_rtn.sigma_meas_rel < 10.0 * base.sigma_meas_rel,
            "RTN is a floor, not a wall"
        );
        assert_eq!(with_rtn.gate_time_s, base.gate_time_s);
    }

    #[test]
    fn active_time_per_ro_is_the_gate_time() {
        let cfg = ReadoutConfig::default();
        assert_eq!(cfg.active_time_per_ro(), cfg.gate_time_s);
    }

    #[test]
    #[should_panic(expected = "frequency must be non-negative")]
    fn measuring_negative_frequency_panics() {
        let cfg = ReadoutConfig::default();
        let mut rng = SeedDomain::new(54).rng(0);
        let _ = cfg.measure(-1.0, &mut rng);
    }

    #[test]
    fn dead_ring_counts_zero_without_consuming_randomness() {
        let cfg = ReadoutConfig::default();
        let mut rng = SeedDomain::new(55).rng(0);
        let m = cfg.measure(0.0, &mut rng);
        assert_eq!(m.count(), 0);
        assert_eq!(m.frequency(), 0.0);
        // The zero path returns before any draw: the stream is untouched.
        let mut fresh = SeedDomain::new(55).rng(0);
        assert_eq!(
            cfg.measure(1e9, &mut rng).count(),
            cfg.measure(1e9, &mut fresh).count()
        );
    }

    #[test]
    fn glitch_xors_the_count_and_keeps_the_gate_time() {
        let m = Measurement::new(0b1010, 1e-4);
        let g = m.glitched(0b0110);
        assert_eq!(g.count(), 0b1100);
        assert_eq!(g.gate_time_s(), m.gate_time_s());
        assert_eq!(g.glitched(0b0110), m, "xor is self-inverse");
        assert_eq!(m.glitched(0), m, "zero mask is the identity");
    }

    #[test]
    fn noise_burst_amplifies_sigma() {
        let base = ReadoutConfig::default();
        let burst = base.with_noise_burst(8.0);
        assert!(burst.sigma_rel_at(1e9) > 7.9 * base.sigma_rel_at(1e9));
        assert_eq!(burst.gate_time_s, base.gate_time_s);
        assert_eq!(base.with_noise_burst(1.0), base);
    }

    #[test]
    #[should_panic(expected = "noise burst factor")]
    fn quieting_noise_burst_panics() {
        let _ = ReadoutConfig::default().with_noise_burst(0.5);
    }
}
