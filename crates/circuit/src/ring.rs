//! Ring oscillators: the conventional enable-NAND ring and the paper's
//! aging-resistant (ARO) cell.
//!
//! # The aging asymmetry the paper exploits
//!
//! When a **conventional** ring is disabled (enable = 0), the NAND output
//! locks high and the chain settles into alternating static levels. Every
//! stage whose input rests at 1 keeps its NMOS under full DC PBTI stress;
//! every stage whose input rests at 0 keeps its PMOS under full DC NBTI
//! stress — for years, since a PUF is queried rarely. Aging variability
//! then makes paired rings drift apart and bits flip.
//!
//! The **ARO** cell adds gating transistors that (a) decouple the inverter
//! chain from the supply when idle and (b) equalize the internal nodes, so
//! every gate-source voltage collapses to ~0. BTI stress drops to a
//! leakage-level duty factor ([`TechParams::aro_idle_stress_fraction`]) and
//! the devices spend essentially their whole life in recovery. The price is
//! a slightly larger, slightly slower cell
//! ([`TechParams::aro_load_factor`]) — and the symmetric layout that comes
//! with it also suppresses the per-position bias that hurts the
//! conventional array's uniqueness.

use std::cell::RefCell;

use aro_device::aging::{BtiBatch, BtiModel, HciModel, StressInterval, WearLevel};
use aro_device::environment::Environment;
use aro_device::mosfet::Geometry;
use aro_device::params::TechParams;
use aro_device::process::{ChipProcess, DiePosition};
use rand::Rng;

use crate::gates::{InverterStage, StageKind};
use crate::kernel::FreqKernel;

/// The three wear-out models bundled, so callers don't rebuild them per
/// stress call.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingModels {
    /// NBTI model applied to PMOS devices.
    pub nbti: BtiModel,
    /// PBTI model applied to NMOS devices.
    pub pbti: BtiModel,
    /// HCI model applied to switching devices.
    pub hci: HciModel,
}

impl AgingModels {
    /// Builds the models of a technology.
    #[must_use]
    pub fn new(tech: &TechParams) -> Self {
        Self {
            nbti: BtiModel::nbti(tech),
            pbti: BtiModel::pbti(tech),
            hci: HciModel::new(tech),
        }
    }
}

/// One idle-stress interval, prefactored and memoized, shareable across
/// every ring of a chip.
///
/// The Arrhenius/voltage acceleration of an interval depends only on the
/// interval itself — never on the device — so a chip evaluates it once and
/// hands the same batch to all of its rings via
/// [`RingOscillator::stress_idle_with`]. The embedded [`BtiBatch`] memos
/// then collapse the per-device BTI power law: devices that share a stress
/// history (all same-polarity devices of an ARO chip; each idle-level group
/// of a conventional chip) replay one memoized, bitwise-identical
/// transition instead of re-running `powf`.
#[derive(Debug, Clone)]
pub struct IdleStressBatch {
    style: RoStyle,
    duration_s: f64,
    /// NBTI transitions for PMOS devices under idle stress.
    nbti: BtiBatch,
    /// PBTI transitions for NMOS devices under idle stress.
    pbti: BtiBatch,
}

impl IdleStressBatch {
    /// Prefactors one idle interval for rings of `style`.
    #[must_use]
    pub fn new(
        style: RoStyle,
        tech: &TechParams,
        models: &AgingModels,
        temp_celsius: f64,
        vdd: f64,
        duration_s: f64,
    ) -> Self {
        let interval = match style {
            RoStyle::Conventional => StressInterval::static_dc(duration_s, temp_celsius, vdd),
            RoStyle::AgingResistant => StressInterval::duty_cycled(
                duration_s,
                temp_celsius,
                vdd,
                tech.aro_idle_stress_fraction,
            ),
        };
        Self {
            style,
            duration_s,
            nbti: BtiBatch::new(models.nbti.time_exp(), models.nbti.k_eff(&interval), duration_s),
            pbti: BtiBatch::new(models.pbti.time_exp(), models.pbti.k_eff(&interval), duration_s),
        }
    }
}

/// One oscillation-stress interval, prefactored and memoized, shareable
/// across every ring of a chip (see [`IdleStressBatch`]).
///
/// BTI under oscillation depends only on the interval, so its transitions
/// are shared; HCI depends on each ring's own cycle count and is *not*
/// memoized here — only its voltage acceleration factor is hoisted.
#[derive(Debug, Clone)]
pub struct ActiveStressBatch {
    duration_s: f64,
    /// NBTI transitions for PMOS devices under 50 %-duty AC stress.
    nbti: BtiBatch,
    /// PBTI transitions for NMOS devices under 50 %-duty AC stress.
    pbti: BtiBatch,
    /// Per-cycle HCI equivalence factor at the interval's supply.
    hci_factor: f64,
}

impl ActiveStressBatch {
    /// Prefactors one oscillation interval under `env`.
    #[must_use]
    pub fn new(models: &AgingModels, env: &Environment, duration_s: f64) -> Self {
        let interval =
            StressInterval::oscillating(duration_s, env.temp_celsius(), env.vdd());
        Self {
            duration_s,
            nbti: BtiBatch::new(models.nbti.time_exp(), models.nbti.k_eff(&interval), duration_s),
            pbti: BtiBatch::new(models.pbti.time_exp(), models.pbti.k_eff(&interval), duration_s),
            hci_factor: models.hci.equivalent_cycle_factor(env.vdd()),
        }
    }
}

/// Which ring-oscillator cell a PUF instance is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoStyle {
    /// Enable-NAND + inverter chain; idle state = static DC stress.
    Conventional,
    /// The paper's ARO cell: power-gated, node-equalized idle state with
    /// BTI recovery; symmetric layout.
    AgingResistant,
}

impl RoStyle {
    /// Switched-load multiplier of the cell relative to the plain chain.
    #[must_use]
    pub fn load_factor(self, tech: &TechParams) -> f64 {
        match self {
            Self::Conventional => 1.0,
            Self::AgingResistant => tech.aro_load_factor,
        }
    }

    /// Sigma of the deterministic per-position layout bias for an array of
    /// this cell.
    #[must_use]
    pub fn position_bias_sigma(self, tech: &TechParams) -> f64 {
        match self {
            Self::Conventional => tech.sigma_position_bias_rel,
            Self::AgingResistant => tech.sigma_position_bias_rel_aro,
        }
    }

    /// Short lowercase label for tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Conventional => "RO-PUF",
            Self::AgingResistant => "ARO-PUF",
        }
    }
}

impl std::fmt::Display for RoStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hard-fault state of one ring — the circuit-level hook consumed by the
/// fault-injection layer (`aro-faults`).
///
/// Real arrays lose rings: an enable net shorts and the ring never
/// oscillates (`Dead`), or a mux/control defect leaves the readout seeing a
/// constant source instead of the ring's own mismatch signature (`Stuck`).
/// Both destroy the affected pair bits *persistently*, unlike the transient
/// faults modelled at measurement time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoHealth {
    /// The ring oscillates normally.
    Healthy,
    /// The ring does not oscillate at all; its counter reads zero.
    Dead,
    /// The readout sees a constant frequency (in hertz) regardless of the
    /// ring's silicon, environment, or wear.
    Stuck(f64),
}

impl RoHealth {
    /// Whether the ring is fault-free.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        matches!(self, RoHealth::Healthy)
    }
}

/// The ring's lazily built frequency kernels: two slots with
/// most-recently-used preference, so a read sequence that alternates
/// between two environments (the lifecycle sweeps interleave faulted
/// measurement excursions with nominal maintenance reads) keeps both
/// derivations warm instead of thrashing one slot with full alpha-power
/// rebuilds. Slots are boxed so an idle cache costs two pointers per
/// ring — populations hold tens of thousands of rings and clone often.
#[derive(Debug, Default)]
struct KernelCache {
    slots: [Option<Box<FreqKernel>>; 2],
    /// Index of the most-recently hit or filled slot; misses evict the
    /// other one.
    mru: usize,
}

/// One fabricated ring oscillator.
///
/// Carries a lazily built [`KernelCache`] so repeated frequency queries
/// between wear events cost one cached load instead of a full alpha-power
/// rederivation. The kernels are interior state: two rings compare equal
/// iff their fabricated silicon and wear histories match, regardless of
/// what either has cached.
#[derive(Debug)]
pub struct RingOscillator {
    style: RoStyle,
    stages: Vec<InverterStage>,
    position: DiePosition,
    freq_bias_rel: f64,
    correlated_dvth: f64,
    health: RoHealth,
    /// Bumped by every wear mutation; each kernel stores the epoch it was
    /// built at, so a bump invalidates without touching the cache itself.
    wear_epoch: u64,
    kernel: RefCell<KernelCache>,
}

impl Clone for RingOscillator {
    fn clone(&self) -> Self {
        // The kernels are a derived cache — rebuilding them in the clone
        // is cheaper than deep-copying them on every population clone.
        Self {
            style: self.style,
            stages: self.stages.clone(),
            position: self.position,
            freq_bias_rel: self.freq_bias_rel,
            correlated_dvth: self.correlated_dvth,
            health: self.health,
            wear_epoch: self.wear_epoch,
            kernel: RefCell::new(KernelCache::default()),
        }
    }
}

impl PartialEq for RingOscillator {
    fn eq(&self, other: &Self) -> bool {
        // The kernel cache and the epoch counter are performance state, not
        // silicon: `stages` already carries the full wear history.
        self.style == other.style
            && self.stages == other.stages
            && self.position == other.position
            && self.freq_bias_rel == other.freq_bias_rel
            && self.correlated_dvth == other.correlated_dvth
            && self.health == other.health
    }
}

impl RingOscillator {
    /// Fabricates a ring of `n_stages` at die position `position`,
    /// sampling all per-device randomness from `rng`. Stage 0 is the
    /// enable NAND; the rest are inverters.
    ///
    /// # Panics
    /// Panics if `n_stages` is even or less than 3 (an even ring does not
    /// oscillate).
    pub fn new<R: Rng + ?Sized>(
        style: RoStyle,
        n_stages: usize,
        position: DiePosition,
        tech: &TechParams,
        rng: &mut R,
    ) -> Self {
        assert!(
            n_stages >= 3 && n_stages % 2 == 1,
            "ring needs an odd stage count >= 3"
        );
        let geometry = Geometry::default();
        let stages = (0..n_stages)
            .map(|i| {
                let kind = if i == 0 {
                    StageKind::EnableNand
                } else {
                    StageKind::Inverter
                };
                InverterStage::fabricate(kind, geometry, tech, rng)
            })
            .collect();
        Self {
            style,
            stages,
            position,
            freq_bias_rel: 0.0,
            correlated_dvth: 0.0,
            health: RoHealth::Healthy,
            wear_epoch: 0,
            kernel: RefCell::new(KernelCache::default()),
        }
    }

    /// Marks every cached derivation of this ring's wear state stale.
    fn bump_wear_epoch(&mut self) {
        self.wear_epoch = self.wear_epoch.wrapping_add(1);
    }

    /// The current wear epoch: increments on every stress application and
    /// wear reset. Exposed for cache-invalidation tests.
    #[must_use]
    pub fn wear_epoch(&self) -> u64 {
        self.wear_epoch
    }

    /// Whether any frequency kernel is currently cached (it may still be
    /// stale for a given query). Exposed for cache-invalidation tests.
    #[must_use]
    pub fn kernel_is_cached(&self) -> bool {
        self.kernel.borrow().slots.iter().any(Option::is_some)
    }

    /// The cell style.
    #[must_use]
    pub fn style(&self) -> RoStyle {
        self.style
    }

    /// Number of stages (including the enable NAND).
    #[must_use]
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Die position of this ring.
    #[must_use]
    pub fn position(&self) -> DiePosition {
        self.position
    }

    /// The stages, NAND first.
    #[must_use]
    pub fn stages(&self) -> &[InverterStage] {
        &self.stages
    }

    /// Deterministic relative frequency offset of this ring's array slot
    /// (layout bias); set by the array builder.
    #[must_use]
    pub fn freq_bias_rel(&self) -> f64 {
        self.freq_bias_rel
    }

    /// Sets the layout bias of this ring's slot.
    pub fn set_freq_bias_rel(&mut self, bias_rel: f64) {
        self.freq_bias_rel = bias_rel;
    }

    /// Hard-fault state of this ring.
    #[must_use]
    pub fn health(&self) -> RoHealth {
        self.health
    }

    /// Sets the hard-fault state of this ring (fault-injection hook). A
    /// faulted ring reports a degenerate frequency from
    /// [`RingOscillator::frequency`]; restoring `Healthy` reverts to the
    /// physical model — the underlying silicon and wear are untouched.
    pub fn set_health(&mut self, health: RoHealth) {
        self.health = health;
    }

    /// This ring's sampled mid-range correlated Vth offset in volts
    /// (zero unless the design enables the correlated field).
    #[must_use]
    pub fn correlated_dvth(&self) -> f64 {
        self.correlated_dvth
    }

    /// Sets the correlated Vth offset of this ring (set by the chip
    /// builder from the design's [`aro_device::spatial::CorrelatedField`]).
    pub fn set_correlated_dvth(&mut self, dvth: f64) {
        self.correlated_dvth = dvth;
    }

    /// The oscillation frequency in hertz under environment `env` on a die
    /// with process realization `chip`, including mismatch, systematic
    /// variation, layout bias, and all accumulated wear.
    ///
    /// A hard-faulted ring short-circuits the physical model: `Dead` reads
    /// 0 Hz, `Stuck` reads its fixed frequency.
    #[must_use]
    pub fn frequency(&self, tech: &TechParams, env: &Environment, chip: &ChipProcess) -> f64 {
        match self.health {
            RoHealth::Healthy => {}
            RoHealth::Dead => return 0.0,
            RoHealth::Stuck(freq_hz) => return freq_hz,
        }
        let mut cache = self.kernel.borrow_mut();
        // MRU slot first: a run of same-environment reads stays on one
        // comparison; an alternating pattern (faulted measurement env vs
        // nominal anchor reads) hits the second slot instead of rebuilding.
        for offset in 0..2 {
            let idx = (cache.mru + offset) % 2;
            let Some(kernel) = cache.slots[idx].as_deref_mut() else {
                continue;
            };
            if kernel.is_valid(
                tech,
                env,
                chip,
                self.wear_epoch,
                self.freq_bias_rel,
                self.correlated_dvth,
            ) {
                if kernel.take_phantom() {
                    // Preloaded kernel, first use: book the rebuild the
                    // preload skipped, at the moment the cold path would
                    // have performed it.
                    aro_obs::counter("circuit.kernel_rebuilds", 1);
                }
                let freq = kernel.frequency();
                cache.mru = idx;
                return freq;
            }
        }
        // Miss: rebuild into an empty slot if there is one, else evict the
        // least-recently used. A stale kernel can never revalidate (wear
        // epochs only move forward between cache clears), so eviction
        // order never changes which future reads hit.
        let victim = match cache.slots.iter().position(Option::is_none) {
            Some(empty) => empty,
            None => (cache.mru + 1) % 2,
        };
        let freq = match cache.slots[victim].as_deref_mut() {
            Some(kernel) => {
                // Rederive in place, reusing the allocation.
                kernel.recompute(
                    self.style,
                    &self.stages,
                    chip.systematic_dvth(self.position),
                    self.correlated_dvth,
                    self.freq_bias_rel,
                    tech,
                    env,
                    chip,
                    self.wear_epoch,
                );
                kernel.frequency()
            }
            None => {
                let kernel = Box::new(FreqKernel::build(
                    self.style,
                    &self.stages,
                    chip.systematic_dvth(self.position),
                    self.correlated_dvth,
                    self.freq_bias_rel,
                    tech,
                    env,
                    chip,
                    self.wear_epoch,
                ));
                let freq = kernel.frequency();
                cache.slots[victim] = Some(kernel);
                freq
            }
        };
        cache.mru = victim;
        // Sketch points come from rebuilds only (distinct physical
        // states, unweighted by cache re-reads), thinned through the
        // deterministic 1-in-16 gate — see `obs_sampled`.
        if self.obs_sampled() {
            aro_obs::sketch("circuit.ring_freq_ghz", freq * 1e-9);
        }
        freq
    }

    /// The most recent kernel's *(environment, period, frequency)* if it
    /// describes this ring's present wear state — what the aged-state
    /// snapshot layer harvests after a recorded step's reads so replays
    /// of the same step can preload instead of rebuilding. Returns
    /// `None` for faulted rings and for kernels left stale by a later
    /// wear event.
    #[must_use]
    pub fn cached_kernel_result(&self) -> Option<(Environment, f64, f64)> {
        if !self.health.is_healthy() {
            return None;
        }
        let cache = self.kernel.borrow();
        for offset in 0..2 {
            let idx = (cache.mru + offset) % 2;
            if let Some(kernel) = cache.slots[idx].as_deref() {
                if kernel.wear_epoch() == self.wear_epoch {
                    return Some((*kernel.env(), kernel.period_s(), kernel.frequency()));
                }
            }
        }
        None
    }

    /// Installs a harvested kernel result for this ring's *current* wear
    /// state, skipping the rebuild a first read would pay. Returns `false`
    /// without installing for faulted rings and for rings the 1-in-16
    /// observability gate samples — a sampled ring must rebuild live so
    /// its `circuit.ring_freq_ghz` sketch point is emitted exactly as on
    /// the cold path. (Non-sampled rebuilds emit only the order-free
    /// rebuild counter, which the phantom kernel books on first use.)
    ///
    /// The caller asserts `(period_s, freq_hz)` came from a kernel built
    /// for identical silicon at this exact wear state under `env`.
    pub fn preload_kernel(
        &self,
        tech: &TechParams,
        env: &Environment,
        chip: &ChipProcess,
        period_s: f64,
        freq_hz: f64,
    ) -> bool {
        if !self.health.is_healthy() || self.obs_sampled() {
            return false;
        }
        let kernel = FreqKernel::from_cached(
            tech,
            env,
            chip,
            self.wear_epoch,
            self.freq_bias_rel,
            self.correlated_dvth,
            period_s,
            freq_hz,
        );
        let mut cache = self.kernel.borrow_mut();
        let slot = cache.slots.iter().position(Option::is_none).unwrap_or(0);
        cache.slots[slot] = Some(Box::new(kernel));
        cache.mru = slot;
        true
    }

    /// Keep-1-in-16 gate for the per-state observability streams
    /// (`circuit.ring_freq_ghz`, `device.bti_dvth_mv`).
    ///
    /// Every kernel rebuild and every stress batch is a distinct physical
    /// state — millions per instrumented quick run, ~100× more resolution
    /// than fleet percentiles need, and observing them all measured as
    /// +12 % of total wall (docs/PERFORMANCE.md, "Observability cost").
    /// The gate hashes (wear epoch, die position), so the kept subsequence
    /// is a pure function of deterministic ring state — byte-identical at
    /// any `--threads N` — and different rings keep *different*
    /// checkpoints. (A plain per-ring stride counter would alias with the
    /// periodic checkpoint schedule: every ring would keep the same early
    /// ages and the fleet drift sketch would under-represent late life.)
    fn obs_sampled(&self) -> bool {
        if !aro_obs::enabled() {
            return false;
        }
        let mut z = self.wear_epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.position.x.to_bits().rotate_left(17)
            ^ self.position.y.to_bits().rotate_left(43);
        z ^= z >> 31;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 29;
        z & 0xF == 0
    }

    /// Ages the ring through `duration_s` seconds of *idle* time at die
    /// temperature `temp_celsius` and supply `vdd`.
    ///
    /// * `Conventional`: the disabled chain holds alternating static
    ///   levels — stage inputs are 1 for the NAND (its feedback rests
    ///   high) and for odd inverters, 0 for even inverters. Input 1 puts
    ///   full DC PBTI on the NMOS; input 0 puts full DC NBTI on the PMOS.
    /// * `AgingResistant`: every device sees only the leakage-level
    ///   residual duty [`TechParams::aro_idle_stress_fraction`].
    pub fn stress_idle(
        &mut self,
        tech: &TechParams,
        models: &AgingModels,
        temp_celsius: f64,
        vdd: f64,
        duration_s: f64,
    ) {
        let mut batch =
            IdleStressBatch::new(self.style, tech, models, temp_celsius, vdd, duration_s);
        self.stress_idle_with(&mut batch);
    }

    /// [`RingOscillator::stress_idle`] driven by a prebuilt, possibly
    /// shared [`IdleStressBatch`]. A chip passes one batch across all of
    /// its rings: the interval acceleration is evaluated once per chip, and
    /// the batch's transition memo collapses the per-device BTI power law
    /// to one evaluation per distinct stress history (see
    /// [`BtiBatch::apply`] for why replaying a memoized transition is
    /// bit-exact). The batch must have been built for this ring's style.
    pub fn stress_idle_with(&mut self, batch: &mut IdleStressBatch) {
        debug_assert_eq!(batch.style, self.style, "batch built for another style");
        if batch.duration_s <= 0.0 {
            return;
        }
        self.bump_wear_epoch();
        // Applies are tallied locally and reported as one aggregated
        // counter bump per interval, keeping registry traffic off the
        // per-device path.
        let mut bti_applies: u64 = 0;
        match self.style {
            RoStyle::Conventional => {
                for (i, stage) in self.stages.iter_mut().enumerate() {
                    // Idle node pattern of the disabled ring (see module docs).
                    let input_high = i == 0 || i % 2 == 1;
                    let applied = if input_high {
                        batch.pbti.apply(stage.nmos_mut().aging_mut())
                    } else {
                        batch.nbti.apply(stage.pmos_mut().aging_mut())
                    };
                    bti_applies += u64::from(applied);
                }
            }
            RoStyle::AgingResistant => {
                for stage in &mut self.stages {
                    bti_applies += u64::from(batch.nbti.apply(stage.pmos_mut().aging_mut()));
                    bti_applies += u64::from(batch.pbti.apply(stage.nmos_mut().aging_mut()));
                }
            }
        }
        if bti_applies > 0 {
            aro_obs::counter("device.bti_applies", bti_applies);
            self.sketch_bti_drift();
        }
    }

    /// Ages the ring through `duration_s` seconds of *oscillation* (a
    /// measurement window) under `env` on die `chip`: 50 %-duty AC BTI on
    /// every device plus HCI proportional to the number of transitions.
    pub fn stress_active(
        &mut self,
        tech: &TechParams,
        models: &AgingModels,
        env: &Environment,
        chip: &ChipProcess,
        duration_s: f64,
    ) {
        let mut batch = ActiveStressBatch::new(models, env, duration_s);
        self.stress_active_with(tech, env, chip, &mut batch);
    }

    /// [`RingOscillator::stress_active`] driven by a prebuilt, possibly
    /// shared [`ActiveStressBatch`]. A chip passes one batch across all of
    /// its rings (see [`RingOscillator::stress_idle_with`]); the HCI cycle
    /// count still depends on this ring's own frequency, so only the BTI
    /// transitions and the acceleration prefactors are shared.
    pub fn stress_active_with(
        &mut self,
        tech: &TechParams,
        env: &Environment,
        chip: &ChipProcess,
        batch: &mut ActiveStressBatch,
    ) {
        if batch.duration_s <= 0.0 {
            return;
        }
        let freq = self.frequency(tech, env, chip);
        self.bump_wear_epoch();
        let cycles = freq * batch.duration_s;
        // Tally applies locally; one counter bump per interval (see
        // `stress_idle_with`).
        let mut bti_applies: u64 = 0;
        let mut hci_applies: u64 = 0;
        for stage in &mut self.stages {
            bti_applies += u64::from(batch.nbti.apply(stage.pmos_mut().aging_mut()));
            bti_applies += u64::from(batch.pbti.apply(stage.nmos_mut().aging_mut()));
            hci_applies += u64::from(
                stage
                    .pmos_mut()
                    .aging_mut()
                    .apply_hci_equivalent(cycles, batch.hci_factor),
            );
            hci_applies += u64::from(
                stage
                    .nmos_mut()
                    .aging_mut()
                    .apply_hci_equivalent(cycles, batch.hci_factor),
            );
        }
        if bti_applies > 0 {
            aro_obs::counter("device.bti_applies", bti_applies);
            self.sketch_bti_drift();
        }
        if hci_applies > 0 {
            aro_obs::counter("device.hci_applies", hci_applies);
        }
    }

    /// Streams this ring's mean accumulated BTI threshold shift (mV,
    /// across all devices) into the drift-vs-age sketch — one point per
    /// *sampled* stress interval (see `obs_sampled`), so the sketch traces
    /// how hard the fleet has aged without paying the per-device sum on
    /// every batch.
    fn sketch_bti_drift(&self) {
        if !self.obs_sampled() {
            return;
        }
        let mut dvth_sum = 0.0;
        for stage in &self.stages {
            dvth_sum += stage.pmos().aging().dvth_bti() + stage.nmos().aging().dvth_bti();
        }
        #[allow(clippy::cast_precision_loss)]
        let n_devices = (2 * self.stages.len()) as f64;
        aro_obs::sketch("device.bti_dvth_mv", dvth_sum / n_devices * 1e3);
    }

    /// Clears all accumulated wear (keeps fabrication randomness).
    pub fn reset_wear(&mut self) {
        self.bump_wear_epoch();
        for stage in &mut self.stages {
            stage.pmos_mut().aging_mut().reset_wear();
            stage.nmos_mut().aging_mut().reset_wear();
        }
    }

    /// Appends this ring's per-device wear accumulators to `out` in the
    /// canonical device order (per stage: PMOS then NMOS) — the layout
    /// [`RingOscillator::restore_wear_levels`] consumes.
    pub fn capture_wear_levels(&self, out: &mut Vec<WearLevel>) {
        for stage in &self.stages {
            out.push(stage.pmos().aging().wear());
            out.push(stage.nmos().aging().wear());
        }
    }

    /// Restores per-device wear captured by
    /// [`RingOscillator::capture_wear_levels`] and pins the wear epoch.
    /// The kernel cache is dropped unconditionally: a restored ring's next
    /// frequency query must rederive from the restored wear (the epoch
    /// counter alone cannot distinguish two histories that happen to share
    /// an epoch value, e.g. across reused workspace chips).
    ///
    /// # Panics
    /// Panics if `levels` does not hold exactly two entries per stage.
    pub fn restore_wear_levels(&mut self, levels: &[WearLevel], wear_epoch: u64) {
        assert_eq!(
            levels.len(),
            2 * self.stages.len(),
            "wear snapshot layout mismatch"
        );
        for (i, stage) in self.stages.iter_mut().enumerate() {
            stage.pmos_mut().aging_mut().set_wear(levels[2 * i]);
            stage.nmos_mut().aging_mut().set_wear(levels[2 * i + 1]);
        }
        self.wear_epoch = wear_epoch;
        *self.kernel.borrow_mut() = KernelCache::default();
    }

    /// Returns the ring to its exact post-fabrication state: zero wear,
    /// epoch 0, healthy, no cached kernel. The fabricated silicon
    /// (variation, bias, correlated offset) is untouched, so a reused
    /// workspace ring is bitwise indistinguishable from a fresh
    /// fabrication of the same design and id.
    pub fn reset_to_fabricated(&mut self) {
        for stage in &mut self.stages {
            stage.pmos_mut().aging_mut().reset_wear();
            stage.nmos_mut().aging_mut().reset_wear();
        }
        self.health = RoHealth::Healthy;
        self.wear_epoch = 0;
        *self.kernel.borrow_mut() = KernelCache::default();
    }

    /// Mean BTI threshold shift over all devices in the ring, in volts —
    /// a diagnostic for degradation plots.
    #[must_use]
    pub fn mean_dvth_bti(&self) -> f64 {
        let sum: f64 = self
            .stages
            .iter()
            .map(|s| s.pmos().aging().dvth_bti() + s.nmos().aging().dvth_bti())
            .sum();
        sum / (2.0 * self.stages.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_device::rng::SeedDomain;
    use aro_device::units::YEAR;

    fn setup() -> (TechParams, Environment, ChipProcess, AgingModels) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        (
            tech.clone(),
            env,
            ChipProcess::typical(),
            AgingModels::new(&tech),
        )
    }

    fn make_ring(style: RoStyle, seed: u64) -> (RingOscillator, TechParams) {
        let tech = TechParams::default();
        let mut rng = SeedDomain::new(seed).rng(0);
        (
            RingOscillator::new(style, 5, DiePosition::new(0.5, 0.5), &tech, &mut rng),
            tech,
        )
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_stage_count_panics() {
        let tech = TechParams::default();
        let mut rng = SeedDomain::new(0).rng(0);
        let _ = RingOscillator::new(
            RoStyle::Conventional,
            4,
            DiePosition::new(0.5, 0.5),
            &tech,
            &mut rng,
        );
    }

    #[test]
    fn nominal_frequency_is_in_the_gigahertz_range() {
        let (tech, env, chip, _) = setup();
        let (ro, _) = make_ring(RoStyle::Conventional, 31);
        let f = ro.frequency(&tech, &env, &chip);
        assert!(f > 2e8 && f < 2e10, "f = {f} Hz");
    }

    #[test]
    fn aro_cell_is_slightly_slower_due_to_gating_load() {
        let (tech, env, chip, _) = setup();
        let mut rng_a = SeedDomain::new(32).rng(0);
        let mut rng_b = SeedDomain::new(32).rng(0);
        let conv = RingOscillator::new(
            RoStyle::Conventional,
            5,
            DiePosition::new(0.5, 0.5),
            &tech,
            &mut rng_a,
        );
        let aro = RingOscillator::new(
            RoStyle::AgingResistant,
            5,
            DiePosition::new(0.5, 0.5),
            &tech,
            &mut rng_b,
        );
        let fc = conv.frequency(&tech, &env, &chip);
        let fa = aro.frequency(&tech, &env, &chip);
        assert!(fa < fc);
        assert!(
            (fc / fa - tech.aro_load_factor).abs() < 1e-9,
            "ratio = {}",
            fc / fa
        );
    }

    #[test]
    fn rings_of_one_chip_differ_in_frequency() {
        let (tech, env, chip, _) = setup();
        let dom = SeedDomain::new(33);
        let mut rng = dom.rng(0);
        let a = RingOscillator::new(
            RoStyle::Conventional,
            5,
            DiePosition::new(0.2, 0.2),
            &tech,
            &mut rng,
        );
        let b = RingOscillator::new(
            RoStyle::Conventional,
            5,
            DiePosition::new(0.8, 0.8),
            &tech,
            &mut rng,
        );
        let fa = a.frequency(&tech, &env, &chip);
        let fb = b.frequency(&tech, &env, &chip);
        assert!(
            (fa - fb).abs() / fa > 1e-4,
            "mismatch must separate rings: {fa} vs {fb}"
        );
    }

    #[test]
    fn conventional_idle_stress_slows_the_ring() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 34);
        let fresh = ro.frequency(&tech, &env, &chip);
        ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, 10.0 * YEAR);
        let aged = ro.frequency(&tech, &env, &chip);
        assert!(aged < fresh);
        let degradation = (fresh - aged) / fresh;
        assert!(
            degradation > 0.01,
            "ten idle years must cost >1 %: {degradation}"
        );
    }

    #[test]
    fn aro_idle_stress_is_far_smaller() {
        let (tech, env, chip, models) = setup();
        let (mut conv, _) = make_ring(RoStyle::Conventional, 35);
        let (mut aro, _) = make_ring(RoStyle::AgingResistant, 35);
        let f_conv = conv.frequency(&tech, &env, &chip);
        let f_aro = aro.frequency(&tech, &env, &chip);
        conv.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, 10.0 * YEAR);
        aro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, 10.0 * YEAR);
        let d_conv = (f_conv - conv.frequency(&tech, &env, &chip)) / f_conv;
        let d_aro = (f_aro - aro.frequency(&tech, &env, &chip)) / f_aro;
        assert!(
            d_aro < 0.25 * d_conv,
            "ARO degradation {d_aro} must be well under conventional {d_conv}"
        );
    }

    #[test]
    fn conventional_idle_stresses_alternating_devices() {
        let (tech, _, _, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 36);
        ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, YEAR);
        for (i, stage) in ro.stages().iter().enumerate() {
            let input_high = i == 0 || i % 2 == 1;
            if input_high {
                assert!(
                    stage.nmos().aging().dvth_bti() > 0.0,
                    "stage {i} NMOS stressed"
                );
                assert_eq!(
                    stage.pmos().aging().dvth_bti(),
                    0.0,
                    "stage {i} PMOS spared"
                );
            } else {
                assert!(
                    stage.pmos().aging().dvth_bti() > 0.0,
                    "stage {i} PMOS stressed"
                );
                assert_eq!(
                    stage.nmos().aging().dvth_bti(),
                    0.0,
                    "stage {i} NMOS spared"
                );
            }
        }
    }

    #[test]
    fn active_stress_applies_hci_and_ac_bti_to_everything() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::AgingResistant, 37);
        ro.stress_active(&tech, &models, &env, &chip, 1.0);
        for stage in ro.stages() {
            assert!(stage.pmos().aging().dvth_bti() > 0.0);
            assert!(stage.nmos().aging().dvth_bti() > 0.0);
            assert!(stage.pmos().aging().dvth_hci_with(&models.hci) > 0.0);
        }
    }

    #[test]
    fn zero_duration_stress_is_a_no_op() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 38);
        let before = ro.clone();
        ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, 0.0);
        ro.stress_active(&tech, &models, &env, &chip, 0.0);
        assert_eq!(ro, before);
    }

    #[test]
    fn reset_wear_restores_fresh_frequency() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 39);
        let fresh = ro.frequency(&tech, &env, &chip);
        ro.stress_idle(&tech, &models, 85.0, tech.vdd_nominal, 10.0 * YEAR);
        assert!(ro.frequency(&tech, &env, &chip) < fresh);
        ro.reset_wear();
        assert_eq!(ro.frequency(&tech, &env, &chip), fresh);
    }

    #[test]
    fn layout_bias_scales_frequency() {
        let (tech, env, chip, _) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 40);
        let base = ro.frequency(&tech, &env, &chip);
        ro.set_freq_bias_rel(0.01);
        assert!((ro.frequency(&tech, &env, &chip) / base - 1.01).abs() < 1e-12);
    }

    #[test]
    fn hot_and_low_vdd_environment_slows_ring() {
        let (tech, env, chip, _) = setup();
        let (ro, _) = make_ring(RoStyle::Conventional, 41);
        let nominal = ro.frequency(&tech, &env, &chip);
        let hot = ro.frequency(&tech, &env.with_temp_celsius(85.0), &chip);
        let droop = ro.frequency(&tech, &env.with_vdd(tech.vdd_nominal * 0.9), &chip);
        assert!(hot < nominal);
        assert!(droop < nominal);
    }

    #[test]
    fn mean_dvth_diagnostic_tracks_stress() {
        let (tech, _, _, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 42);
        assert_eq!(ro.mean_dvth_bti(), 0.0);
        ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, YEAR);
        assert!(ro.mean_dvth_bti() > 0.0);
    }

    #[test]
    fn style_labels_and_display() {
        assert_eq!(RoStyle::Conventional.label(), "RO-PUF");
        assert_eq!(RoStyle::AgingResistant.to_string(), "ARO-PUF");
    }

    #[test]
    fn dead_ring_reads_zero_and_recovers_on_repair() {
        let (tech, env, chip, _) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 50);
        let fresh = ro.frequency(&tech, &env, &chip);
        assert!(ro.health().is_healthy());
        ro.set_health(RoHealth::Dead);
        assert_eq!(ro.frequency(&tech, &env, &chip), 0.0);
        ro.set_health(RoHealth::Healthy);
        assert_eq!(
            ro.frequency(&tech, &env, &chip).to_bits(),
            fresh.to_bits(),
            "repairing a fault must restore the physical model exactly"
        );
    }

    #[test]
    fn stuck_ring_ignores_environment_and_wear() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 51);
        ro.set_health(RoHealth::Stuck(1.0e9));
        assert_eq!(ro.frequency(&tech, &env, &chip), 1.0e9);
        ro.stress_idle(&tech, &models, 85.0, tech.vdd_nominal, YEAR);
        assert_eq!(
            ro.frequency(&tech, &env.with_temp_celsius(85.0), &chip),
            1.0e9
        );
    }

    #[test]
    fn health_participates_in_equality_and_clone() {
        let (mut a, _) = make_ring(RoStyle::Conventional, 52);
        let b = a.clone();
        assert_eq!(a, b);
        a.set_health(RoHealth::Dead);
        assert_ne!(a, b, "a faulted ring is not equal to its healthy twin");
        let c = a.clone();
        assert_eq!(c.health(), RoHealth::Dead, "clone carries the fault");
    }

    #[test]
    fn kernel_caches_after_first_query_and_hits_are_bitwise_stable() {
        let (tech, env, chip, _) = setup();
        let (ro, _) = make_ring(RoStyle::Conventional, 43);
        assert!(!ro.kernel_is_cached(), "fresh ring has no kernel");
        let first = ro.frequency(&tech, &env, &chip);
        assert!(ro.kernel_is_cached(), "first query builds the kernel");
        assert_eq!(
            first.to_bits(),
            ro.frequency(&tech, &env, &chip).to_bits(),
            "cache hit must be bitwise identical to the cold computation"
        );
    }

    #[test]
    fn aging_invalidates_the_kernel() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 44);
        let fresh = ro.frequency(&tech, &env, &chip);
        let epoch = ro.wear_epoch();
        ro.stress_idle(&tech, &models, 85.0, tech.vdd_nominal, YEAR);
        assert!(ro.wear_epoch() > epoch, "stress must bump the wear epoch");
        assert!(
            ro.frequency(&tech, &env, &chip) < fresh,
            "a stale kernel must not survive an aging step"
        );
    }

    #[test]
    fn environment_change_invalidates_the_kernel() {
        let (tech, env, chip, _) = setup();
        let (ro, _) = make_ring(RoStyle::Conventional, 45);
        let nominal = ro.frequency(&tech, &env, &chip);
        let hot = ro.frequency(&tech, &env.with_temp_celsius(85.0), &chip);
        assert!(hot < nominal, "the hot query must not reuse the cold kernel");
        assert_eq!(
            nominal.to_bits(),
            ro.frequency(&tech, &env, &chip).to_bits(),
            "returning to the first environment must rebuild exactly"
        );
    }

    #[test]
    fn wear_snapshot_roundtrip_is_bitwise_exact() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 60);
        ro.stress_active(&tech, &models, &env, &chip, 30.0);
        ro.stress_idle(&tech, &models, 45.0, tech.vdd_nominal, YEAR);
        let aged_freq = ro.frequency(&tech, &env, &chip);
        let epoch = ro.wear_epoch();
        let mut levels = Vec::new();
        ro.capture_wear_levels(&mut levels);
        assert_eq!(levels.len(), 2 * ro.n_stages());

        // Diverge, then restore: silicon, frequency, and epoch all return.
        let pristine = ro.clone();
        ro.stress_idle(&tech, &models, 85.0, tech.vdd_nominal, YEAR);
        assert_ne!(ro, pristine);
        ro.restore_wear_levels(&levels, epoch);
        assert_eq!(ro, pristine);
        assert_eq!(ro.wear_epoch(), epoch);
        assert!(!ro.kernel_is_cached(), "restore must drop the kernel");
        assert_eq!(ro.frequency(&tech, &env, &chip).to_bits(), aged_freq.to_bits());
    }

    #[test]
    fn reset_to_fabricated_matches_a_fresh_ring() {
        let (tech, env, chip, models) = setup();
        let (mut ro, _) = make_ring(RoStyle::Conventional, 61);
        let (fresh, _) = make_ring(RoStyle::Conventional, 61);
        ro.stress_active(&tech, &models, &env, &chip, 30.0);
        ro.set_health(RoHealth::Dead);
        ro.reset_to_fabricated();
        assert_eq!(ro, fresh);
        assert_eq!(ro.wear_epoch(), 0);
        assert_eq!(
            ro.frequency(&tech, &env, &chip).to_bits(),
            fresh.frequency(&tech, &env, &chip).to_bits()
        );
    }

    #[test]
    fn shared_stress_batches_match_per_ring_stress_bitwise() {
        // A chip drives many rings through ONE IdleStressBatch /
        // ActiveStressBatch; the memoized transitions must leave every
        // device bitwise identical to the unshared per-ring path.
        for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
            let (tech, env, chip, models) = setup();
            let mut rng_a = SeedDomain::new(46).rng(0);
            let mut rng_b = SeedDomain::new(46).rng(0);
            let make = |rng: &mut _| {
                (0..4)
                    .map(|_| {
                        RingOscillator::new(style, 5, DiePosition::new(0.5, 0.5), &tech, rng)
                    })
                    .collect::<Vec<_>>()
            };
            let mut solo = make(&mut rng_a);
            let mut batched = make(&mut rng_b);

            for ro in &mut solo {
                ro.stress_active(&tech, &models, &env, &chip, 30.0);
                ro.stress_idle(&tech, &models, 45.0, tech.vdd_nominal, YEAR);
            }
            let mut active = ActiveStressBatch::new(&models, &env, 30.0);
            for ro in &mut batched {
                ro.stress_active_with(&tech, &env, &chip, &mut active);
            }
            let mut idle =
                IdleStressBatch::new(style, &tech, &models, 45.0, tech.vdd_nominal, YEAR);
            for ro in &mut batched {
                ro.stress_idle_with(&mut idle);
            }

            for (a, b) in solo.iter().zip(&batched) {
                assert_eq!(a, b, "{style:?}: shared batch diverged from solo stress");
                assert_eq!(
                    a.frequency(&tech, &env, &chip).to_bits(),
                    b.frequency(&tech, &env, &chip).to_bits()
                );
            }
        }
    }
}
