//! Circuit-level substrate for the ARO-PUF (DATE 2014) reproduction.
//!
//! Builds on [`aro_device`] to model the circuits the paper simulates in
//! HSPICE:
//!
//! * [`gates`] — transistor instances (nominal device + sampled mismatch +
//!   wear-out state) and CMOS stage delay from the alpha-power law.
//! * [`ring`] — the ring oscillator itself, in two flavours:
//!   [`ring::RoStyle::Conventional`] (enable-NAND + inverter chain, whose
//!   *idle* state holds static DC stress on alternating stages) and
//!   [`ring::RoStyle::AgingResistant`] (the paper's ARO cell: gating
//!   transistors decouple the supply and equalize internal nodes when idle,
//!   so BTI stress shrinks to a leakage-level duty factor and recovery runs
//!   almost all the time).
//! * [`readout`] — the counter-based frequency measurement: finite gate
//!   time (quantization) plus accumulated-jitter noise, and the pairwise
//!   comparison that yields a response bit.
//! * [`netlist`] — structural cell descriptions (transistor counts, area)
//!   used by the paper's area comparison.
//!
//! # Example
//!
//! A fresh conventional RO and its frequency after ten idle years:
//!
//! ```
//! use aro_circuit::ring::{AgingModels, RingOscillator, RoStyle};
//! use aro_device::environment::Environment;
//! use aro_device::params::TechParams;
//! use aro_device::process::{ChipProcess, DiePosition};
//! use aro_device::rng::SeedDomain;
//! use aro_device::units::YEAR;
//!
//! let tech = TechParams::default();
//! let env = Environment::nominal(&tech);
//! let chip = ChipProcess::typical();
//! let models = AgingModels::new(&tech);
//! let mut rng = SeedDomain::new(1).rng(0);
//!
//! let mut ro = RingOscillator::new(RoStyle::Conventional, 5, DiePosition::new(0.5, 0.5), &tech, &mut rng);
//! let fresh = ro.frequency(&tech, &env, &chip);
//! assert!(fresh > 1e8, "a 5-stage 90 nm ring runs near a gigahertz");
//!
//! ro.stress_idle(&tech, &models, 25.0, tech.vdd_nominal, 10.0 * YEAR);
//! let aged = ro.frequency(&tech, &env, &chip);
//! assert!(aged < fresh, "static idle stress slows the conventional ring");
//! ```

pub mod gates;
pub mod kernel;
pub mod logic;
pub mod netlist;
pub mod readout;
pub mod ring;
pub mod transient;

pub use gates::{InverterStage, StageKind, TransistorInst};
pub use kernel::FreqKernel;
pub use logic::{GateKind, LogicCircuit, NetId, RippleCounter};
pub use netlist::{CellArea, RoCell};
pub use readout::{Measurement, ReadoutConfig};
pub use ring::{AgingModels, RingOscillator, RoHealth, RoStyle};
