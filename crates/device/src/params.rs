//! Technology parameters: every physical constant of the simulated process
//! in one place.
//!
//! Values marked **published** are representative 90 nm-class numbers from
//! the open literature (Sakurai–Newton alpha-power law fits, Pelgrom mismatch
//! coefficients, long-term NBTI reaction–diffusion fits). Values marked
//! **CALIBRATED** were tuned so the end-to-end Monte Carlo reproduces the
//! ARO-PUF paper's headline numbers (32 %/7.7 % ten-year bit flips,
//! ~45 %/49.67 % inter-chip HD); see `EXPERIMENTS.md`.

/// All technology, variation, and aging constants for the simulated process.
///
/// Construct with [`TechParams::default`] for the calibrated 90 nm-class
/// process used throughout the reproduction, then override individual fields
/// for sensitivity studies:
///
/// ```
/// use aro_device::params::TechParams;
/// let mut tech = TechParams::default();
/// tech.vdd_nominal = 1.0; // low-power corner
/// assert!(tech.vdd_nominal < 1.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechParams {
    // ------------------------------------------------------------------
    // Supply / device core (published 90 nm-class values)
    // ------------------------------------------------------------------
    /// Nominal supply voltage in volts. *Published*: 1.2 V at 90 nm.
    pub vdd_nominal: f64,
    /// Zero-bias NMOS threshold voltage magnitude in volts.
    pub vth0_n: f64,
    /// Zero-bias PMOS threshold voltage magnitude in volts.
    pub vth0_p: f64,
    /// Velocity-saturation index of the alpha-power law. *Published*:
    /// 1.2–1.4 for deep-submicron CMOS; we use 1.3.
    pub alpha: f64,
    /// NMOS drive factor in A/V^alpha for a device of reference geometry.
    pub beta_n: f64,
    /// PMOS drive factor in A/V^alpha for a device of reference geometry.
    /// PMOS mobility is roughly 40–50 % of NMOS.
    pub beta_p: f64,
    /// Switched load capacitance per ring-oscillator stage in farads
    /// (gate + junction + local wire). Sets the absolute frequency scale.
    pub c_stage: f64,

    // ------------------------------------------------------------------
    // Temperature / supply sensitivity (published)
    // ------------------------------------------------------------------
    /// Threshold-voltage temperature coefficient in V/K (Vth drops as the
    /// die heats). *Published*: ≈ −1 mV/K.
    pub vth_temp_coeff: f64,
    /// Mobility temperature exponent: mobility ∝ (T/T_ref)^(−k).
    /// *Published*: 1.2–1.6; we use 1.5.
    pub mobility_temp_exp: f64,
    /// Reference temperature for temperature scaling, in kelvin (25 °C).
    pub t_ref_kelvin: f64,

    // ------------------------------------------------------------------
    // Process variation (published mismatch physics, CALIBRATED scales)
    // ------------------------------------------------------------------
    /// Inter-die (chip-to-chip, common-mode) threshold-voltage sigma in
    /// volts. Cancels almost fully in RO pairs.
    pub sigma_vth_interdie: f64,
    /// Pelgrom mismatch coefficient A_VT in V·m: the per-device random
    /// threshold sigma is `a_vt / sqrt(W·L)`. *Published*: ≈ 4.5 mV·µm at
    /// 90 nm, i.e. 4.5e-9 V·m.
    pub a_vt: f64,
    /// Relative sigma of the per-device random drive-factor (beta) mismatch.
    pub sigma_beta_rel: f64,
    /// Peak-to-peak amplitude of the systematic within-die Vth gradient
    /// across the RO array, in volts (per-chip random direction).
    pub sys_gradient_vpp: f64,
    /// Sigma of the mid-range spatially *correlated* intra-die Vth
    /// variation (exponential kernel; see `spatial::CorrelatedField`), in
    /// volts. Defaults to 0 — the smooth gradient/bowl surface carries
    /// the systematic component in the calibrated model — and is enabled
    /// by the EXP-11 pairing-distance ablation.
    pub sigma_vth_correlated: f64,
    /// Correlation length of the correlated field in normalized die
    /// units.
    pub correlation_length: f64,
    /// Sigma of the deterministic per-*position* frequency bias shared by
    /// every chip of the design, expressed as a relative frequency offset.
    /// Models layout-induced asymmetry (routing to the readout mux, supply
    /// IR gradients baked into the floorplan). This is what pulls the
    /// conventional RO-PUF's inter-chip HD below 50 %. **CALIBRATED** to
    /// the paper's ~45 %.
    pub sigma_position_bias_rel: f64,
    /// Residual relative per-position bias of the ARO symmetric cell.
    /// **CALIBRATED** to the paper's 49.67 % inter-chip HD.
    pub sigma_position_bias_rel_aro: f64,

    // ------------------------------------------------------------------
    // BTI aging (published model form; prefactor CALIBRATED)
    // ------------------------------------------------------------------
    /// NBTI prefactor `A` in volts: ΔVth after 1 s of static stress at the
    /// reference temperature and nominal Vdd, before the power law.
    /// **CALIBRATED** so 10 years of static stress gives ≈ 100 mV.
    pub nbti_a: f64,
    /// PBTI prefactor in volts. PBTI on NMOS is weaker than NBTI at this
    /// node (high-k era made them comparable; at 90 nm PBTI ≈ 40 % of NBTI).
    pub pbti_a: f64,
    /// Time exponent `n` of the long-term reaction–diffusion power law
    /// ΔVth ∝ t^n. *Published*: 1/6 for H2 diffusion.
    pub bti_time_exp: f64,
    /// Arrhenius activation energy in eV. *Published*: ≈ 0.08–0.1 eV for
    /// the long-term NBTI prefactor at use conditions.
    pub bti_ea_ev: f64,
    /// Gate-overdrive voltage acceleration exponent: prefactor ∝
    /// (|Vgs|/Vdd_nominal)^gamma. *Published*: 2–3.
    pub bti_vgs_exp: f64,
    /// Relative sigma of the per-device log-normal aging variability
    /// multiplier. This is the source of *differential* pair aging and thus
    /// of bit flips. **CALIBRATED** to the paper's 32 % ten-year flips.
    pub sigma_aging_rel: f64,

    // ------------------------------------------------------------------
    // HCI aging (published model form; prefactor CALIBRATED small)
    // ------------------------------------------------------------------
    /// HCI prefactor in volts: ΔVth per sqrt(1e9 transitions) at nominal
    /// Vdd. Only accrues while a ring actually oscillates.
    pub hci_b: f64,
    /// HCI supply-voltage acceleration exponent.
    pub hci_vdd_exp: f64,
    /// HCI time/cycles exponent (ΔVth ∝ N^m). *Published*: ≈ 0.5.
    pub hci_cycle_exp: f64,

    // ------------------------------------------------------------------
    // ARO cell specifics
    // ------------------------------------------------------------------
    /// Fraction of full static stress still experienced by an idle ARO cell
    /// (gate leakage keeps internal nodes from floating perfectly).
    /// **CALIBRATED** (with the mission profile) to the paper's 7.7 %.
    pub aro_idle_stress_fraction: f64,
    /// Extra switched load of the ARO cell relative to the plain inverter
    /// chain (the gating transistors add diffusion capacitance).
    pub aro_load_factor: f64,
}

impl TechParams {
    /// Effective gate overdrive `Vdd − Vth` available to an NMOS with
    /// threshold shift `dvth` at supply `vdd`, clamped at a small positive
    /// floor so aged devices never produce a negative drive.
    #[must_use]
    pub fn overdrive(&self, vdd: f64, vth: f64) -> f64 {
        (vdd - vth).max(0.05)
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self {
            vdd_nominal: 1.2,
            vth0_n: 0.40,
            vth0_p: 0.40,
            alpha: 1.3,
            beta_n: 5.0e-4,
            beta_p: 5.0e-4, // per-device width already compensates mobility
            c_stage: 50e-15,

            vth_temp_coeff: -1.0e-3,
            mobility_temp_exp: 1.5,
            t_ref_kelvin: 298.15,

            sigma_vth_interdie: 0.020,
            a_vt: 4.5e-9,
            sigma_beta_rel: 0.02,
            sys_gradient_vpp: 0.010,
            sigma_vth_correlated: 0.0,
            correlation_length: 0.25,
            sigma_position_bias_rel: 0.0070,
            sigma_position_bias_rel_aro: 0.0016,

            nbti_a: 0.0038,
            pbti_a: 0.0015,
            bti_time_exp: 1.0 / 6.0,
            bti_ea_ev: 0.09,
            bti_vgs_exp: 2.5,
            sigma_aging_rel: 0.50,

            hci_b: 1.0e-4,
            hci_vdd_exp: 3.0,
            hci_cycle_exp: 0.5,

            aro_idle_stress_fraction: 0.014,
            aro_load_factor: 1.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physically_sane() {
        let p = TechParams::default();
        assert!(p.vdd_nominal > p.vth0_n, "supply must exceed threshold");
        assert!(p.vdd_nominal > p.vth0_p);
        assert!(p.alpha >= 1.0 && p.alpha <= 2.0, "alpha-power range");
        assert!(p.bti_time_exp > 0.0 && p.bti_time_exp < 0.5);
        assert!(p.aro_idle_stress_fraction < 0.05);
        assert!(p.aro_load_factor >= 1.0);
    }

    #[test]
    fn overdrive_is_clamped_for_degenerate_inputs() {
        let p = TechParams::default();
        assert!(p.overdrive(1.2, 0.4) > 0.7);
        // An absurdly aged device still yields a positive drive.
        assert_eq!(p.overdrive(1.2, 2.0), 0.05);
    }

    #[test]
    fn pelgrom_sigma_at_reference_geometry_is_tens_of_millivolts() {
        let p = TechParams::default();
        // W = 400 nm, L = 100 nm reference device.
        let sigma = p.a_vt / (400e-9_f64 * 100e-9).sqrt();
        assert!(sigma > 0.010 && sigma < 0.040, "sigma = {sigma}");
    }
}
