//! Transistor wear-out: NBTI, PBTI, and HCI.
//!
//! **Bias Temperature Instability** (negative for PMOS, positive for NMOS)
//! is the dominant aging mechanism for a PUF, because an *idle* conventional
//! ring oscillator holds static DC levels: alternating stages keep a PMOS
//! (input low) or an NMOS (input high) under continuous gate stress for the
//! product's whole lifetime. We use the long-term reaction–diffusion power
//! law `ΔVth = K(T, Vgs) · t^n` with `n ≈ 1/6`, Arrhenius temperature
//! acceleration, and gate-overdrive voltage acceleration.
//!
//! **Recovery**: BTI partially heals when the stress is removed. Under a
//! duty-cycled stress with duty factor `α`, the long-term envelope is well
//! approximated by `ΔVth_dyn(t) ≈ sqrt(α) · ΔVth_static(t)` — this square
//! root is exactly the lever the ARO-PUF pulls: its gated cell reduces the
//! idle duty factor from 1.0 to nearly 0.
//!
//! **Hot Carrier Injection** accrues only while a ring actually oscillates
//! (it needs drain current during switching) and grows with the number of
//! transitions, `ΔVth ∝ N_cycles^0.5`.
//!
//! **Heterogeneous stress histories** (different temperatures/duties per
//! interval) are accumulated with the standard *equivalent-time* method: the
//! current ΔVth is converted into the time that would have produced it under
//! the new interval's conditions, the interval is appended, and the power
//! law is re-evaluated.
//!
//! **Aging variability**: silicon shows device-to-device dispersion of the
//! BTI/HCI prefactor; each transistor carries log-normal multipliers sampled
//! at fabrication. This dispersion — not the mean shift — is what makes the
//! frequencies of two paired ROs drift apart and flip PUF bits.

use rand::Rng;

use crate::params::TechParams;
use crate::rng::lognormal_multiplier;
use crate::units::{celsius_to_kelvin, BOLTZMANN_EV};

/// One contiguous interval of (possibly duty-cycled) gate stress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressInterval {
    /// Wall-clock length of the interval in seconds.
    pub duration_s: f64,
    /// Die temperature during the interval in °C.
    pub temp_celsius: f64,
    /// Gate-stress voltage magnitude in volts (|Vgs| while stressed).
    pub vgs: f64,
    /// Fraction of the interval the device is actually under stress
    /// (1.0 = static DC stress, 0.5 = square-wave oscillation, 0 = idle).
    pub duty: f64,
}

impl StressInterval {
    /// Continuous DC stress — the idle state of a conventional RO stage.
    ///
    /// # Panics
    /// Panics if `duration_s` is negative.
    #[must_use]
    pub fn static_dc(duration_s: f64, temp_celsius: f64, vgs: f64) -> Self {
        Self::duty_cycled(duration_s, temp_celsius, vgs, 1.0)
    }

    /// Duty-cycled stress with recovery in the off phase.
    ///
    /// # Panics
    /// Panics if `duration_s` is negative or `duty` is outside `[0, 1]`.
    #[must_use]
    pub fn duty_cycled(duration_s: f64, temp_celsius: f64, vgs: f64, duty: f64) -> Self {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
        Self {
            duration_s,
            temp_celsius,
            vgs,
            duty,
        }
    }

    /// The AC stress a device sees while its ring oscillates: square wave,
    /// 50 % duty at the full supply.
    #[must_use]
    pub fn oscillating(duration_s: f64, temp_celsius: f64, vdd: f64) -> Self {
        Self::duty_cycled(duration_s, temp_celsius, vdd, 0.5)
    }
}

/// Long-term BTI power-law model `ΔVth = K(T, Vgs) · sqrt(duty) · t^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct BtiModel {
    prefactor_v: f64,
    time_exp: f64,
    ea_ev: f64,
    vgs_exp: f64,
    vdd_ref: f64,
    t_ref_kelvin: f64,
}

impl BtiModel {
    /// NBTI model (PMOS under negative gate bias) for a technology.
    #[must_use]
    pub fn nbti(tech: &TechParams) -> Self {
        Self {
            prefactor_v: tech.nbti_a,
            time_exp: tech.bti_time_exp,
            ea_ev: tech.bti_ea_ev,
            vgs_exp: tech.bti_vgs_exp,
            vdd_ref: tech.vdd_nominal,
            t_ref_kelvin: tech.t_ref_kelvin,
        }
    }

    /// PBTI model (NMOS under positive gate bias) for a technology.
    #[must_use]
    pub fn pbti(tech: &TechParams) -> Self {
        Self {
            prefactor_v: tech.pbti_a,
            ..Self::nbti(tech)
        }
    }

    /// Temperature- and voltage-accelerated prefactor `K` in volts per
    /// second^n. Normalized so `K = A` at the reference temperature and
    /// nominal supply.
    #[must_use]
    pub fn prefactor(&self, temp_celsius: f64, vgs: f64) -> f64 {
        if vgs <= 0.0 {
            return 0.0;
        }
        let t_k = celsius_to_kelvin(temp_celsius);
        let arrhenius = (self.ea_ev / BOLTZMANN_EV * (1.0 / self.t_ref_kelvin - 1.0 / t_k)).exp();
        let voltage = (vgs / self.vdd_ref).powf(self.vgs_exp);
        self.prefactor_v * arrhenius * voltage
    }

    /// Threshold shift after `t_s` seconds of *static* stress at the given
    /// conditions, in volts.
    #[must_use]
    pub fn dvth_static(&self, t_s: f64, temp_celsius: f64, vgs: f64) -> f64 {
        self.prefactor(temp_celsius, vgs) * t_s.max(0.0).powf(self.time_exp)
    }

    /// Effective accelerated prefactor of an interval, `K(T, Vgs)·sqrt(duty)`
    /// in volts per second^n. It depends only on the interval's conditions —
    /// never on device state — so stress loops hoist it once per interval
    /// instead of paying its `exp`/`powf` per transistor (see
    /// [`TransistorAging::apply_bti_prefactored`]).
    #[must_use]
    pub fn k_eff(&self, interval: &StressInterval) -> f64 {
        self.prefactor(interval.temp_celsius, interval.vgs) * interval.duty.sqrt()
    }

    /// The time exponent `n`.
    #[must_use]
    pub fn time_exp(&self) -> f64 {
        self.time_exp
    }
}

/// HCI wear-out model `ΔVth = B · (Vdd/Vdd_ref)^k · (N/1e9)^m`.
#[derive(Debug, Clone, PartialEq)]
pub struct HciModel {
    prefactor_v: f64,
    vdd_exp: f64,
    cycle_exp: f64,
    vdd_ref: f64,
}

/// Reference cycle count for the HCI prefactor (one billion transitions).
const HCI_REF_CYCLES: f64 = 1e9;

impl HciModel {
    /// HCI model for a technology.
    #[must_use]
    pub fn new(tech: &TechParams) -> Self {
        Self {
            prefactor_v: tech.hci_b,
            vdd_exp: tech.hci_vdd_exp,
            cycle_exp: tech.hci_cycle_exp,
            vdd_ref: tech.vdd_nominal,
        }
    }

    /// Threshold shift in volts after `cycles` switching transitions at
    /// supply `vdd`.
    #[must_use]
    pub fn dvth(&self, cycles: f64, vdd: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        // At the reference supply the acceleration is pow(1, k) = 1 exactly
        // (IEEE 754), so skipping the powf cannot change a single bit — and
        // the readout path always evaluates at vdd_ref.
        let accel = if vdd == self.vdd_ref {
            1.0
        } else {
            (vdd / self.vdd_ref).powf(self.vdd_exp)
        };
        self.prefactor_v * accel * (cycles / HCI_REF_CYCLES).powf(self.cycle_exp)
    }

    /// Conversion factor from transitions at supply `vdd` to
    /// reference-condition equivalent cycles. Depends only on the supply,
    /// so stress loops hoist it once per interval (see
    /// [`TransistorAging::apply_hci_equivalent`]).
    #[must_use]
    pub fn equivalent_cycle_factor(&self, vdd: f64) -> f64 {
        let accel = (vdd / self.vdd_ref).powf(self.vdd_exp);
        accel.powf(1.0 / self.cycle_exp)
    }

    /// The cycle exponent `m`.
    #[must_use]
    pub fn cycle_exp(&self) -> f64 {
        self.cycle_exp
    }
}

/// The mutable wear accumulators of one transistor, detached from its
/// fabrication-time variability multipliers: exactly the state that a
/// stress history writes and an aged-state snapshot must capture. Both
/// fields are pure functions of the stress-interval sequence applied so
/// far, so saving and restoring them is bitwise-exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearLevel {
    /// Raw (multiplier-free) accumulated BTI threshold shift in volts.
    pub bti_dvth: f64,
    /// Accumulated HCI wear in reference-condition equivalent cycles.
    pub hci_eq_cycles: f64,
}

/// Accumulated wear-out state of one transistor.
///
/// Tracks BTI and HCI separately (they have different time laws) and carries
/// the device's fabrication-time aging-variability multipliers.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorAging {
    bti_dvth: f64,
    hci_eq_cycles: f64,
    bti_multiplier: f64,
    hci_multiplier: f64,
}

impl Default for TransistorAging {
    fn default() -> Self {
        Self::new()
    }
}

impl TransistorAging {
    /// A fresh transistor with no wear and nominal (unit) aging
    /// variability.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bti_dvth: 0.0,
            hci_eq_cycles: 0.0,
            bti_multiplier: 1.0,
            hci_multiplier: 1.0,
        }
    }

    /// A fresh transistor with log-normal aging-variability multipliers of
    /// relative sigma `sigma_rel` sampled from `rng` (done once, at
    /// "fabrication").
    #[must_use]
    pub fn with_variability<R: Rng + ?Sized>(rng: &mut R, sigma_rel: f64) -> Self {
        Self {
            bti_dvth: 0.0,
            hci_eq_cycles: 0.0,
            bti_multiplier: lognormal_multiplier(rng, sigma_rel),
            hci_multiplier: lognormal_multiplier(rng, sigma_rel),
        }
    }

    /// Applies one BTI stress interval using equivalent-time accumulation,
    /// so heterogeneous histories (different temperature / duty / Vgs per
    /// interval) compose correctly.
    pub fn apply_bti(&mut self, model: &BtiModel, interval: &StressInterval) {
        if self.apply_bti_prefactored(model.time_exp(), model.k_eff(interval), interval.duration_s)
        {
            aro_obs::counter("device.bti_applies", 1);
        }
    }

    /// [`TransistorAging::apply_bti`] with the interval's accelerated
    /// prefactor already computed ([`BtiModel::k_eff`]). A ring applies one
    /// interval to every device it owns; hoisting the prefactor turns ten
    /// Arrhenius evaluations per ring into one.
    ///
    /// Returns whether the stress was applied (false for the degenerate
    /// zero-duration / zero-prefactor cases), so bulk callers can report
    /// one aggregated `device.bti_applies` increment per interval instead
    /// of paying the metrics registry per transistor.
    pub fn apply_bti_prefactored(&mut self, time_exp: f64, k_eff: f64, duration_s: f64) -> bool {
        if k_eff <= 0.0 || duration_s <= 0.0 {
            return false;
        }
        // Fresh device: (0/k)^(1/n) is exactly +0.0, skip the powf.
        let t_equivalent = if self.bti_dvth == 0.0 {
            0.0
        } else {
            (self.bti_dvth / k_eff).powf(1.0 / time_exp)
        };
        self.bti_dvth = k_eff * (t_equivalent + duration_s).powf(time_exp);
        true
    }

    /// Applies HCI wear for `cycles` transitions at supply `vdd`,
    /// accumulating equivalent cycles so that varying supplies compose.
    pub fn apply_hci(&mut self, model: &HciModel, cycles: f64, vdd: f64) {
        if self.apply_hci_equivalent(cycles, model.equivalent_cycle_factor(vdd)) {
            aro_obs::counter("device.hci_applies", 1);
        }
    }

    /// [`TransistorAging::apply_hci`] with the supply-to-reference
    /// conversion already computed ([`HciModel::equivalent_cycle_factor`]),
    /// so stress loops pay its two `powf`s once per interval instead of per
    /// device.
    ///
    /// Returns whether wear was accumulated, for the same aggregated
    /// `device.hci_applies` accounting as
    /// [`TransistorAging::apply_bti_prefactored`].
    pub fn apply_hci_equivalent(&mut self, cycles: f64, factor: f64) -> bool {
        if cycles <= 0.0 {
            return false;
        }
        self.hci_eq_cycles += cycles * factor;
        true
    }

    /// BTI component of the threshold shift, in volts (includes this
    /// device's variability multiplier).
    #[must_use]
    pub fn dvth_bti(&self) -> f64 {
        self.bti_dvth * self.bti_multiplier
    }

    /// [`TransistorAging::dvth_hci_with`] routed through a caller-held
    /// *(equivalent cycles → raw shift)* memo. Every device of a ring
    /// accumulates the same equivalent cycles (variability enters only
    /// through the per-device multiplier applied afterwards), so one
    /// `powf` evaluation serves the whole ring; equal inputs to the pure
    /// model give bitwise-equal outputs, so the memo cannot change a bit.
    #[must_use]
    pub fn dvth_hci_memoized(&self, model: &HciModel, memo: &mut Option<(f64, f64)>) -> f64 {
        let raw = match *memo {
            Some((cycles, raw)) if cycles == self.hci_eq_cycles => raw,
            _ => {
                let raw = model.dvth(self.hci_eq_cycles, model.vdd_ref);
                *memo = Some((self.hci_eq_cycles, raw));
                raw
            }
        };
        raw * self.hci_multiplier
    }

    /// HCI component of the threshold shift for a given model, in volts
    /// (includes this device's variability multiplier).
    #[must_use]
    pub fn dvth_hci_with(&self, model: &HciModel) -> f64 {
        model.dvth(self.hci_eq_cycles, model.vdd_ref) * self.hci_multiplier
    }

    /// Total threshold shift in volts, using the HCI model the cycles were
    /// accumulated against.
    #[must_use]
    pub fn total_dvth_with(&self, hci: &HciModel) -> f64 {
        self.dvth_bti() + self.dvth_hci_with(hci)
    }

    /// Total threshold shift in volts counting only BTI. Convenient where
    /// the HCI model is not at hand; HCI is added by the circuit layer.
    #[must_use]
    pub fn total_dvth(&self) -> f64 {
        self.dvth_bti()
    }

    /// Clears accumulated wear (not the variability multipliers): the
    /// "fresh silicon" state for what-if re-runs.
    pub fn reset_wear(&mut self) {
        self.bti_dvth = 0.0;
        self.hci_eq_cycles = 0.0;
    }

    /// The wear accumulators alone (no multipliers), for aged-state
    /// snapshots.
    #[must_use]
    pub fn wear(&self) -> WearLevel {
        WearLevel {
            bti_dvth: self.bti_dvth,
            hci_eq_cycles: self.hci_eq_cycles,
        }
    }

    /// Restores wear accumulators captured by [`TransistorAging::wear`].
    /// The variability multipliers are untouched, so restoring onto the
    /// same fabricated device reproduces its aged state bitwise.
    pub fn set_wear(&mut self, wear: WearLevel) {
        self.bti_dvth = wear.bti_dvth;
        self.hci_eq_cycles = wear.hci_eq_cycles;
    }

    /// This device's BTI variability multiplier.
    #[must_use]
    pub fn bti_multiplier(&self) -> f64 {
        self.bti_multiplier
    }
}

/// One BTI stress interval applied to a *batch* of devices, with the
/// state transition memoized.
///
/// The accumulated `bti_dvth` of a device is a pure function of its stress
/// history alone — per-device variability enters only through the read-time
/// multiplier — so every device that has lived through the same interval
/// sequence carries bitwise-identical state. A chip ages all of its rings
/// through the same intervals, which makes that the common case by far:
/// one `powf` pair per *distinct incoming state* serves thousands of
/// devices, and replaying a memoized transition is exact (equal inputs to
/// a pure function, equal outputs).
#[derive(Debug, Clone)]
pub struct BtiBatch {
    time_exp: f64,
    k_eff: f64,
    duration_s: f64,
    /// Observed `(incoming bti_dvth, outgoing bti_dvth)` transitions. Two
    /// slots: a conventional ring's devices split into two stress-history
    /// groups (stages idling high vs low), and an active interval walks
    /// both groups interleaved — a single slot would thrash.
    memo: [Option<(f64, f64)>; 2],
    /// Index of the most recently hit/filled memo slot.
    mru: usize,
}

impl BtiBatch {
    /// A batch for one interval: the model's time exponent, the interval's
    /// effective prefactor ([`BtiModel::k_eff`]) and its duration.
    #[must_use]
    pub fn new(time_exp: f64, k_eff: f64, duration_s: f64) -> Self {
        Self {
            time_exp,
            k_eff,
            duration_s,
            memo: [None; 2],
            mru: 0,
        }
    }

    /// Applies the interval to one device; returns whether stress was
    /// applied (same contract as
    /// [`TransistorAging::apply_bti_prefactored`]).
    pub fn apply(&mut self, aging: &mut TransistorAging) -> bool {
        if self.k_eff <= 0.0 || self.duration_s <= 0.0 {
            return false;
        }
        let input = aging.bti_dvth;
        for slot in [self.mru, 1 - self.mru] {
            if let Some((seen, output)) = self.memo[slot] {
                if seen == input {
                    aging.bti_dvth = output;
                    self.mru = slot;
                    return true;
                }
            }
        }
        let applied = aging.apply_bti_prefactored(self.time_exp, self.k_eff, self.duration_s);
        let slot = 1 - self.mru;
        self.memo[slot] = Some((input, aging.bti_dvth));
        self.mru = slot;
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::YEAR;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn ten_year_static_nbti_is_around_100_mv() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let dvth = model.dvth_static(10.0 * YEAR, 25.0, t.vdd_nominal);
        assert!(dvth > 0.05 && dvth < 0.20, "dvth = {dvth}");
    }

    #[test]
    fn bti_follows_power_law_in_time() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let d1 = model.dvth_static(1.0 * YEAR, 25.0, t.vdd_nominal);
        let d64 = model.dvth_static(64.0 * YEAR, 25.0, t.vdd_nominal);
        // 64^(1/6) = 2, so sixty-four times the stress only doubles ΔVth.
        assert!((d64 / d1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bti_accelerates_with_temperature_and_voltage() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let cool = model.dvth_static(YEAR, 25.0, t.vdd_nominal);
        let hot = model.dvth_static(YEAR, 105.0, t.vdd_nominal);
        assert!(hot > 1.5 * cool, "hot {hot} vs cool {cool}");
        let low_v = model.dvth_static(YEAR, 25.0, 0.9 * t.vdd_nominal);
        assert!(low_v < cool);
    }

    #[test]
    fn pbti_is_weaker_than_nbti() {
        let t = tech();
        let n = BtiModel::nbti(&t).dvth_static(YEAR, 25.0, t.vdd_nominal);
        let p = BtiModel::pbti(&t).dvth_static(YEAR, 25.0, t.vdd_nominal);
        assert!(p < n);
    }

    #[test]
    fn zero_or_negative_vgs_causes_no_bti() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        assert_eq!(model.dvth_static(YEAR, 25.0, 0.0), 0.0);
        assert_eq!(model.dvth_static(YEAR, 25.0, -1.0), 0.0);
    }

    #[test]
    fn equivalent_time_accumulation_matches_single_shot() {
        // Splitting a homogeneous stress into many intervals must give the
        // same answer as applying it in one shot (the power law is not
        // additive, the equivalent-time method is what fixes that).
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut split = TransistorAging::new();
        for _ in 0..100 {
            split.apply_bti(
                &model,
                &StressInterval::static_dc(YEAR / 10.0, 25.0, t.vdd_nominal),
            );
        }
        let mut single = TransistorAging::new();
        single.apply_bti(
            &model,
            &StressInterval::static_dc(10.0 * YEAR, 25.0, t.vdd_nominal),
        );
        let rel = (split.dvth_bti() - single.dvth_bti()).abs() / single.dvth_bti();
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn duty_cycling_recovers_as_sqrt_duty() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut dc = TransistorAging::new();
        dc.apply_bti(
            &model,
            &StressInterval::static_dc(YEAR, 25.0, t.vdd_nominal),
        );
        let mut quarter = TransistorAging::new();
        quarter.apply_bti(
            &model,
            &StressInterval::duty_cycled(YEAR, 25.0, t.vdd_nominal, 0.25),
        );
        assert!((quarter.dvth_bti() / dc.dvth_bti() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aro_style_idle_ages_far_less_than_conventional_idle() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut conventional = TransistorAging::new();
        conventional.apply_bti(
            &model,
            &StressInterval::static_dc(10.0 * YEAR, 25.0, t.vdd_nominal),
        );
        let mut aro = TransistorAging::new();
        aro.apply_bti(
            &model,
            &StressInterval::duty_cycled(
                10.0 * YEAR,
                25.0,
                t.vdd_nominal,
                t.aro_idle_stress_fraction,
            ),
        );
        assert!(
            aro.dvth_bti() < 0.15 * conventional.dvth_bti(),
            "aro {} vs conventional {}",
            aro.dvth_bti(),
            conventional.dvth_bti()
        );
    }

    #[test]
    fn hci_grows_with_cycles_and_supply() {
        let t = tech();
        let model = HciModel::new(&t);
        assert_eq!(model.dvth(0.0, t.vdd_nominal), 0.0);
        let d1 = model.dvth(1e9, t.vdd_nominal);
        let d4 = model.dvth(4e9, t.vdd_nominal);
        assert!((d4 / d1 - 2.0).abs() < 1e-9, "sqrt law in cycles");
        assert!(model.dvth(1e9, 1.1 * t.vdd_nominal) > d1);
    }

    #[test]
    fn hci_equivalent_cycle_accumulation_composes() {
        let t = tech();
        let model = HciModel::new(&t);
        let mut split = TransistorAging::new();
        split.apply_hci(&model, 5e8, t.vdd_nominal);
        split.apply_hci(&model, 5e8, t.vdd_nominal);
        let mut single = TransistorAging::new();
        single.apply_hci(&model, 1e9, t.vdd_nominal);
        let rel = (split.dvth_hci_with(&model) - single.dvth_hci_with(&model)).abs()
            / single.dvth_hci_with(&model);
        assert!(rel < 1e-9);
    }

    #[test]
    fn variability_multipliers_disperse_devices() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut rng = StdRng::seed_from_u64(5);
        let stress = StressInterval::static_dc(10.0 * YEAR, 25.0, t.vdd_nominal);
        let shifts: Vec<f64> = (0..2000)
            .map(|_| {
                let mut a = TransistorAging::with_variability(&mut rng, t.sigma_aging_rel);
                a.apply_bti(&model, &stress);
                a.dvth_bti()
            })
            .collect();
        let mean = shifts.iter().sum::<f64>() / shifts.len() as f64;
        let sd = (shifts.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (shifts.len() - 1) as f64)
            .sqrt();
        assert!(sd / mean > 0.3, "coefficient of variation {}", sd / mean);
        assert!(shifts.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn reset_wear_keeps_multipliers() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = TransistorAging::with_variability(&mut rng, 0.5);
        let mult = a.bti_multiplier();
        a.apply_bti(&model, &StressInterval::static_dc(YEAR, 25.0, 1.2));
        assert!(a.dvth_bti() > 0.0);
        a.reset_wear();
        assert_eq!(a.dvth_bti(), 0.0);
        assert_eq!(a.bti_multiplier(), mult);
    }

    #[test]
    #[should_panic(expected = "duty must be in [0, 1]")]
    fn invalid_duty_panics() {
        let _ = StressInterval::duty_cycled(1.0, 25.0, 1.2, 1.5);
    }

    #[test]
    fn bti_batch_replays_transitions_bitwise() {
        // Devices in two distinct stress-history groups, visited
        // interleaved (the conventional-ring active pattern): the two-slot
        // memo must reproduce the direct path bitwise for every device.
        let t = tech();
        let model = BtiModel::nbti(&t);
        let interval = StressInterval::static_dc(YEAR, 45.0, t.vdd_nominal);
        let k_eff = model.k_eff(&interval);

        let mut direct: Vec<TransistorAging> = (0..8).map(|_| TransistorAging::new()).collect();
        // Group A gets a head start so the two groups diverge.
        for (i, aging) in direct.iter_mut().enumerate() {
            if i % 2 == 0 {
                aging.apply_bti(&model, &interval);
            }
        }
        let mut batched = direct.clone();

        for aging in &mut direct {
            assert!(aging.apply_bti_prefactored(model.time_exp(), k_eff, YEAR));
        }
        let mut batch = BtiBatch::new(model.time_exp(), k_eff, YEAR);
        for aging in &mut batched {
            assert!(batch.apply(aging));
        }
        for (a, b) in direct.iter().zip(&batched) {
            assert_eq!(
                a.dvth_bti().to_bits(),
                b.dvth_bti().to_bits(),
                "memoized transition must be bitwise equal"
            );
        }
    }

    #[test]
    fn bti_batch_honors_no_stress_guards() {
        let mut aging = TransistorAging::new();
        assert!(!BtiBatch::new(6.0, 0.0, YEAR).apply(&mut aging));
        assert!(!BtiBatch::new(6.0, 1e-3, 0.0).apply(&mut aging));
        assert_eq!(aging.dvth_bti(), 0.0);
    }

    #[test]
    fn memoized_hci_readout_matches_direct() {
        let t = tech();
        let model = HciModel::new(&t);
        let mut rng = StdRng::seed_from_u64(7);
        // Same cycle count, distinct per-device multipliers — the memo
        // caches the raw power law only, so each device still reads its
        // own dispersed shift.
        let mut devices: Vec<TransistorAging> = (0..6)
            .map(|_| TransistorAging::with_variability(&mut rng, t.sigma_aging_rel))
            .collect();
        for aging in &mut devices {
            aging.apply_hci(&model, 1e12, t.vdd_nominal);
        }
        let mut memo = None;
        for aging in &devices {
            assert_eq!(
                aging.dvth_hci_with(&model).to_bits(),
                aging.dvth_hci_memoized(&model, &mut memo).to_bits()
            );
        }
        // The fresh-device case (cycles back to zero) must refresh the memo.
        let fresh = TransistorAging::new();
        assert_eq!(
            fresh.dvth_hci_with(&model).to_bits(),
            fresh.dvth_hci_memoized(&model, &mut memo).to_bits()
        );
    }
}
