//! Transistor wear-out: NBTI, PBTI, and HCI.
//!
//! **Bias Temperature Instability** (negative for PMOS, positive for NMOS)
//! is the dominant aging mechanism for a PUF, because an *idle* conventional
//! ring oscillator holds static DC levels: alternating stages keep a PMOS
//! (input low) or an NMOS (input high) under continuous gate stress for the
//! product's whole lifetime. We use the long-term reaction–diffusion power
//! law `ΔVth = K(T, Vgs) · t^n` with `n ≈ 1/6`, Arrhenius temperature
//! acceleration, and gate-overdrive voltage acceleration.
//!
//! **Recovery**: BTI partially heals when the stress is removed. Under a
//! duty-cycled stress with duty factor `α`, the long-term envelope is well
//! approximated by `ΔVth_dyn(t) ≈ sqrt(α) · ΔVth_static(t)` — this square
//! root is exactly the lever the ARO-PUF pulls: its gated cell reduces the
//! idle duty factor from 1.0 to nearly 0.
//!
//! **Hot Carrier Injection** accrues only while a ring actually oscillates
//! (it needs drain current during switching) and grows with the number of
//! transitions, `ΔVth ∝ N_cycles^0.5`.
//!
//! **Heterogeneous stress histories** (different temperatures/duties per
//! interval) are accumulated with the standard *equivalent-time* method: the
//! current ΔVth is converted into the time that would have produced it under
//! the new interval's conditions, the interval is appended, and the power
//! law is re-evaluated.
//!
//! **Aging variability**: silicon shows device-to-device dispersion of the
//! BTI/HCI prefactor; each transistor carries log-normal multipliers sampled
//! at fabrication. This dispersion — not the mean shift — is what makes the
//! frequencies of two paired ROs drift apart and flip PUF bits.

use rand::Rng;

use crate::params::TechParams;
use crate::rng::lognormal_multiplier;
use crate::units::{celsius_to_kelvin, BOLTZMANN_EV};

/// One contiguous interval of (possibly duty-cycled) gate stress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressInterval {
    /// Wall-clock length of the interval in seconds.
    pub duration_s: f64,
    /// Die temperature during the interval in °C.
    pub temp_celsius: f64,
    /// Gate-stress voltage magnitude in volts (|Vgs| while stressed).
    pub vgs: f64,
    /// Fraction of the interval the device is actually under stress
    /// (1.0 = static DC stress, 0.5 = square-wave oscillation, 0 = idle).
    pub duty: f64,
}

impl StressInterval {
    /// Continuous DC stress — the idle state of a conventional RO stage.
    ///
    /// # Panics
    /// Panics if `duration_s` is negative.
    #[must_use]
    pub fn static_dc(duration_s: f64, temp_celsius: f64, vgs: f64) -> Self {
        Self::duty_cycled(duration_s, temp_celsius, vgs, 1.0)
    }

    /// Duty-cycled stress with recovery in the off phase.
    ///
    /// # Panics
    /// Panics if `duration_s` is negative or `duty` is outside `[0, 1]`.
    #[must_use]
    pub fn duty_cycled(duration_s: f64, temp_celsius: f64, vgs: f64, duty: f64) -> Self {
        assert!(duration_s >= 0.0, "duration must be non-negative");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
        Self {
            duration_s,
            temp_celsius,
            vgs,
            duty,
        }
    }

    /// The AC stress a device sees while its ring oscillates: square wave,
    /// 50 % duty at the full supply.
    #[must_use]
    pub fn oscillating(duration_s: f64, temp_celsius: f64, vdd: f64) -> Self {
        Self::duty_cycled(duration_s, temp_celsius, vdd, 0.5)
    }
}

/// Long-term BTI power-law model `ΔVth = K(T, Vgs) · sqrt(duty) · t^n`.
#[derive(Debug, Clone, PartialEq)]
pub struct BtiModel {
    prefactor_v: f64,
    time_exp: f64,
    ea_ev: f64,
    vgs_exp: f64,
    vdd_ref: f64,
    t_ref_kelvin: f64,
}

impl BtiModel {
    /// NBTI model (PMOS under negative gate bias) for a technology.
    #[must_use]
    pub fn nbti(tech: &TechParams) -> Self {
        Self {
            prefactor_v: tech.nbti_a,
            time_exp: tech.bti_time_exp,
            ea_ev: tech.bti_ea_ev,
            vgs_exp: tech.bti_vgs_exp,
            vdd_ref: tech.vdd_nominal,
            t_ref_kelvin: tech.t_ref_kelvin,
        }
    }

    /// PBTI model (NMOS under positive gate bias) for a technology.
    #[must_use]
    pub fn pbti(tech: &TechParams) -> Self {
        Self {
            prefactor_v: tech.pbti_a,
            ..Self::nbti(tech)
        }
    }

    /// Temperature- and voltage-accelerated prefactor `K` in volts per
    /// second^n. Normalized so `K = A` at the reference temperature and
    /// nominal supply.
    #[must_use]
    pub fn prefactor(&self, temp_celsius: f64, vgs: f64) -> f64 {
        if vgs <= 0.0 {
            return 0.0;
        }
        let t_k = celsius_to_kelvin(temp_celsius);
        let arrhenius = (self.ea_ev / BOLTZMANN_EV * (1.0 / self.t_ref_kelvin - 1.0 / t_k)).exp();
        let voltage = (vgs / self.vdd_ref).powf(self.vgs_exp);
        self.prefactor_v * arrhenius * voltage
    }

    /// Threshold shift after `t_s` seconds of *static* stress at the given
    /// conditions, in volts.
    #[must_use]
    pub fn dvth_static(&self, t_s: f64, temp_celsius: f64, vgs: f64) -> f64 {
        self.prefactor(temp_celsius, vgs) * t_s.max(0.0).powf(self.time_exp)
    }

    /// The time exponent `n`.
    #[must_use]
    pub fn time_exp(&self) -> f64 {
        self.time_exp
    }
}

/// HCI wear-out model `ΔVth = B · (Vdd/Vdd_ref)^k · (N/1e9)^m`.
#[derive(Debug, Clone, PartialEq)]
pub struct HciModel {
    prefactor_v: f64,
    vdd_exp: f64,
    cycle_exp: f64,
    vdd_ref: f64,
}

/// Reference cycle count for the HCI prefactor (one billion transitions).
const HCI_REF_CYCLES: f64 = 1e9;

impl HciModel {
    /// HCI model for a technology.
    #[must_use]
    pub fn new(tech: &TechParams) -> Self {
        Self {
            prefactor_v: tech.hci_b,
            vdd_exp: tech.hci_vdd_exp,
            cycle_exp: tech.hci_cycle_exp,
            vdd_ref: tech.vdd_nominal,
        }
    }

    /// Threshold shift in volts after `cycles` switching transitions at
    /// supply `vdd`.
    #[must_use]
    pub fn dvth(&self, cycles: f64, vdd: f64) -> f64 {
        if cycles <= 0.0 {
            return 0.0;
        }
        let accel = (vdd / self.vdd_ref).powf(self.vdd_exp);
        self.prefactor_v * accel * (cycles / HCI_REF_CYCLES).powf(self.cycle_exp)
    }

    /// The cycle exponent `m`.
    #[must_use]
    pub fn cycle_exp(&self) -> f64 {
        self.cycle_exp
    }
}

/// Accumulated wear-out state of one transistor.
///
/// Tracks BTI and HCI separately (they have different time laws) and carries
/// the device's fabrication-time aging-variability multipliers.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorAging {
    bti_dvth: f64,
    hci_eq_cycles: f64,
    bti_multiplier: f64,
    hci_multiplier: f64,
}

impl Default for TransistorAging {
    fn default() -> Self {
        Self::new()
    }
}

impl TransistorAging {
    /// A fresh transistor with no wear and nominal (unit) aging
    /// variability.
    #[must_use]
    pub fn new() -> Self {
        Self {
            bti_dvth: 0.0,
            hci_eq_cycles: 0.0,
            bti_multiplier: 1.0,
            hci_multiplier: 1.0,
        }
    }

    /// A fresh transistor with log-normal aging-variability multipliers of
    /// relative sigma `sigma_rel` sampled from `rng` (done once, at
    /// "fabrication").
    #[must_use]
    pub fn with_variability<R: Rng + ?Sized>(rng: &mut R, sigma_rel: f64) -> Self {
        Self {
            bti_dvth: 0.0,
            hci_eq_cycles: 0.0,
            bti_multiplier: lognormal_multiplier(rng, sigma_rel),
            hci_multiplier: lognormal_multiplier(rng, sigma_rel),
        }
    }

    /// Applies one BTI stress interval using equivalent-time accumulation,
    /// so heterogeneous histories (different temperature / duty / Vgs per
    /// interval) compose correctly.
    pub fn apply_bti(&mut self, model: &BtiModel, interval: &StressInterval) {
        let k_eff = model.prefactor(interval.temp_celsius, interval.vgs) * interval.duty.sqrt();
        if k_eff <= 0.0 || interval.duration_s <= 0.0 {
            return;
        }
        let n = model.time_exp();
        let t_equivalent = (self.bti_dvth / k_eff).powf(1.0 / n);
        self.bti_dvth = k_eff * (t_equivalent + interval.duration_s).powf(n);
        aro_obs::counter("device.bti_applies", 1);
    }

    /// Applies HCI wear for `cycles` transitions at supply `vdd`,
    /// accumulating equivalent cycles so that varying supplies compose.
    pub fn apply_hci(&mut self, model: &HciModel, cycles: f64, vdd: f64) {
        if cycles <= 0.0 {
            return;
        }
        // Convert the new stretch into reference-condition cycles.
        let accel = (vdd / model.vdd_ref).powf(model.vdd_exp);
        self.hci_eq_cycles += cycles * accel.powf(1.0 / model.cycle_exp);
        aro_obs::counter("device.hci_applies", 1);
    }

    /// BTI component of the threshold shift, in volts (includes this
    /// device's variability multiplier).
    #[must_use]
    pub fn dvth_bti(&self) -> f64 {
        self.bti_dvth * self.bti_multiplier
    }

    /// HCI component of the threshold shift for a given model, in volts
    /// (includes this device's variability multiplier).
    #[must_use]
    pub fn dvth_hci_with(&self, model: &HciModel) -> f64 {
        model.dvth(self.hci_eq_cycles, model.vdd_ref) * self.hci_multiplier
    }

    /// Total threshold shift in volts, using the HCI model the cycles were
    /// accumulated against.
    #[must_use]
    pub fn total_dvth_with(&self, hci: &HciModel) -> f64 {
        self.dvth_bti() + self.dvth_hci_with(hci)
    }

    /// Total threshold shift in volts counting only BTI. Convenient where
    /// the HCI model is not at hand; HCI is added by the circuit layer.
    #[must_use]
    pub fn total_dvth(&self) -> f64 {
        self.dvth_bti()
    }

    /// Clears accumulated wear (not the variability multipliers): the
    /// "fresh silicon" state for what-if re-runs.
    pub fn reset_wear(&mut self) {
        self.bti_dvth = 0.0;
        self.hci_eq_cycles = 0.0;
    }

    /// This device's BTI variability multiplier.
    #[must_use]
    pub fn bti_multiplier(&self) -> f64 {
        self.bti_multiplier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::YEAR;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tech() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn ten_year_static_nbti_is_around_100_mv() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let dvth = model.dvth_static(10.0 * YEAR, 25.0, t.vdd_nominal);
        assert!(dvth > 0.05 && dvth < 0.20, "dvth = {dvth}");
    }

    #[test]
    fn bti_follows_power_law_in_time() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let d1 = model.dvth_static(1.0 * YEAR, 25.0, t.vdd_nominal);
        let d64 = model.dvth_static(64.0 * YEAR, 25.0, t.vdd_nominal);
        // 64^(1/6) = 2, so sixty-four times the stress only doubles ΔVth.
        assert!((d64 / d1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bti_accelerates_with_temperature_and_voltage() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let cool = model.dvth_static(YEAR, 25.0, t.vdd_nominal);
        let hot = model.dvth_static(YEAR, 105.0, t.vdd_nominal);
        assert!(hot > 1.5 * cool, "hot {hot} vs cool {cool}");
        let low_v = model.dvth_static(YEAR, 25.0, 0.9 * t.vdd_nominal);
        assert!(low_v < cool);
    }

    #[test]
    fn pbti_is_weaker_than_nbti() {
        let t = tech();
        let n = BtiModel::nbti(&t).dvth_static(YEAR, 25.0, t.vdd_nominal);
        let p = BtiModel::pbti(&t).dvth_static(YEAR, 25.0, t.vdd_nominal);
        assert!(p < n);
    }

    #[test]
    fn zero_or_negative_vgs_causes_no_bti() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        assert_eq!(model.dvth_static(YEAR, 25.0, 0.0), 0.0);
        assert_eq!(model.dvth_static(YEAR, 25.0, -1.0), 0.0);
    }

    #[test]
    fn equivalent_time_accumulation_matches_single_shot() {
        // Splitting a homogeneous stress into many intervals must give the
        // same answer as applying it in one shot (the power law is not
        // additive, the equivalent-time method is what fixes that).
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut split = TransistorAging::new();
        for _ in 0..100 {
            split.apply_bti(
                &model,
                &StressInterval::static_dc(YEAR / 10.0, 25.0, t.vdd_nominal),
            );
        }
        let mut single = TransistorAging::new();
        single.apply_bti(
            &model,
            &StressInterval::static_dc(10.0 * YEAR, 25.0, t.vdd_nominal),
        );
        let rel = (split.dvth_bti() - single.dvth_bti()).abs() / single.dvth_bti();
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn duty_cycling_recovers_as_sqrt_duty() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut dc = TransistorAging::new();
        dc.apply_bti(
            &model,
            &StressInterval::static_dc(YEAR, 25.0, t.vdd_nominal),
        );
        let mut quarter = TransistorAging::new();
        quarter.apply_bti(
            &model,
            &StressInterval::duty_cycled(YEAR, 25.0, t.vdd_nominal, 0.25),
        );
        assert!((quarter.dvth_bti() / dc.dvth_bti() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn aro_style_idle_ages_far_less_than_conventional_idle() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut conventional = TransistorAging::new();
        conventional.apply_bti(
            &model,
            &StressInterval::static_dc(10.0 * YEAR, 25.0, t.vdd_nominal),
        );
        let mut aro = TransistorAging::new();
        aro.apply_bti(
            &model,
            &StressInterval::duty_cycled(
                10.0 * YEAR,
                25.0,
                t.vdd_nominal,
                t.aro_idle_stress_fraction,
            ),
        );
        assert!(
            aro.dvth_bti() < 0.15 * conventional.dvth_bti(),
            "aro {} vs conventional {}",
            aro.dvth_bti(),
            conventional.dvth_bti()
        );
    }

    #[test]
    fn hci_grows_with_cycles_and_supply() {
        let t = tech();
        let model = HciModel::new(&t);
        assert_eq!(model.dvth(0.0, t.vdd_nominal), 0.0);
        let d1 = model.dvth(1e9, t.vdd_nominal);
        let d4 = model.dvth(4e9, t.vdd_nominal);
        assert!((d4 / d1 - 2.0).abs() < 1e-9, "sqrt law in cycles");
        assert!(model.dvth(1e9, 1.1 * t.vdd_nominal) > d1);
    }

    #[test]
    fn hci_equivalent_cycle_accumulation_composes() {
        let t = tech();
        let model = HciModel::new(&t);
        let mut split = TransistorAging::new();
        split.apply_hci(&model, 5e8, t.vdd_nominal);
        split.apply_hci(&model, 5e8, t.vdd_nominal);
        let mut single = TransistorAging::new();
        single.apply_hci(&model, 1e9, t.vdd_nominal);
        let rel = (split.dvth_hci_with(&model) - single.dvth_hci_with(&model)).abs()
            / single.dvth_hci_with(&model);
        assert!(rel < 1e-9);
    }

    #[test]
    fn variability_multipliers_disperse_devices() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut rng = StdRng::seed_from_u64(5);
        let stress = StressInterval::static_dc(10.0 * YEAR, 25.0, t.vdd_nominal);
        let shifts: Vec<f64> = (0..2000)
            .map(|_| {
                let mut a = TransistorAging::with_variability(&mut rng, t.sigma_aging_rel);
                a.apply_bti(&model, &stress);
                a.dvth_bti()
            })
            .collect();
        let mean = shifts.iter().sum::<f64>() / shifts.len() as f64;
        let sd = (shifts.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (shifts.len() - 1) as f64)
            .sqrt();
        assert!(sd / mean > 0.3, "coefficient of variation {}", sd / mean);
        assert!(shifts.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn reset_wear_keeps_multipliers() {
        let t = tech();
        let model = BtiModel::nbti(&t);
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = TransistorAging::with_variability(&mut rng, 0.5);
        let mult = a.bti_multiplier();
        a.apply_bti(&model, &StressInterval::static_dc(YEAR, 25.0, 1.2));
        assert!(a.dvth_bti() > 0.0);
        a.reset_wear();
        assert_eq!(a.dvth_bti(), 0.0);
        assert_eq!(a.bti_multiplier(), mult);
    }

    #[test]
    #[should_panic(expected = "duty must be in [0, 1]")]
    fn invalid_duty_panics() {
        let _ = StressInterval::duty_cycled(1.0, 25.0, 1.2, 1.5);
    }
}
