//! The Sakurai–Newton **alpha-power-law** MOSFET model.
//!
//! A ring oscillator's frequency depends on its stage delays, and a stage
//! delay depends on how hard each transistor can pull its load:
//! `I_d = beta · (Vdd − Vth)^alpha`. This is the classic short-channel
//! saturation-current model; `alpha ≈ 1.3` captures velocity saturation.
//! Everything the PUF cares about — process variation, aging, temperature,
//! supply droop — enters through `beta` and `Vth`.

use crate::environment::Environment;
use crate::params::TechParams;

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device: pulls the output low; ages by PBTI (gate high) and
    /// HCI (while switching).
    Nmos,
    /// P-channel device: pulls the output high; ages by NBTI (gate low) and
    /// HCI (while switching).
    Pmos,
}

impl MosType {
    /// Returns the opposite polarity.
    #[must_use]
    pub fn complement(self) -> Self {
        match self {
            Self::Nmos => Self::Pmos,
            Self::Pmos => Self::Nmos,
        }
    }
}

/// Drawn device geometry in nanometres.
///
/// The geometry sets the Pelgrom random-mismatch sigma
/// (`sigma_Vth = A_VT / sqrt(W·L)`): larger devices match better but burn
/// area — exactly the PUF designer's trade-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Drawn gate width in nanometres.
    pub w_nm: f64,
    /// Drawn gate length in nanometres.
    pub l_nm: f64,
}

impl Geometry {
    /// Creates a geometry.
    ///
    /// # Panics
    /// Panics if either dimension is not strictly positive.
    #[must_use]
    pub fn new(w_nm: f64, l_nm: f64) -> Self {
        assert!(w_nm > 0.0 && l_nm > 0.0, "geometry must be positive");
        Self { w_nm, l_nm }
    }

    /// Gate area in square metres.
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        (self.w_nm * 1e-9) * (self.l_nm * 1e-9)
    }

    /// Pelgrom random threshold-voltage sigma for this geometry, in volts.
    #[must_use]
    pub fn pelgrom_sigma_vth(&self, tech: &TechParams) -> f64 {
        tech.a_vt / self.area_m2().sqrt()
    }
}

impl Default for Geometry {
    /// The reference RO inverter device: W = 400 nm, L = 100 nm.
    fn default() -> Self {
        Self {
            w_nm: 400.0,
            l_nm: 100.0,
        }
    }
}

/// A MOSFET instance: polarity, geometry, and nominal electrical point.
///
/// `Mosfet` is the *nominal* device; per-instance randomness (mismatch,
/// aging) is carried separately by the circuit layer and passed into
/// [`Mosfet::drive_current`] as a threshold shift, so one `Mosfet` value can
/// serve a whole array.
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    mos_type: MosType,
    geometry: Geometry,
    vth0: f64,
    beta0: f64,
}

impl Mosfet {
    /// Creates the nominal device of the given polarity and geometry in the
    /// given technology. Drive strength scales with W/L relative to the
    /// reference geometry.
    #[must_use]
    pub fn new(mos_type: MosType, geometry: Geometry, tech: &TechParams) -> Self {
        let reference = Geometry::default();
        let size_ratio = (geometry.w_nm / geometry.l_nm) / (reference.w_nm / reference.l_nm);
        let (vth0, beta_ref) = match mos_type {
            MosType::Nmos => (tech.vth0_n, tech.beta_n),
            MosType::Pmos => (tech.vth0_p, tech.beta_p),
        };
        Self {
            mos_type,
            geometry,
            vth0,
            beta0: beta_ref * size_ratio,
        }
    }

    /// Device polarity.
    #[must_use]
    pub fn mos_type(&self) -> MosType {
        self.mos_type
    }

    /// Drawn geometry.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Nominal threshold-voltage magnitude in volts.
    #[must_use]
    pub fn vth0(&self) -> f64 {
        self.vth0
    }

    /// Nominal drive factor in A/V^alpha.
    #[must_use]
    pub fn beta0(&self) -> f64 {
        self.beta0
    }

    /// Effective threshold magnitude under environment `env` with an extra
    /// shift `dvth` (process mismatch + aging), in volts.
    ///
    /// Temperature lowers the threshold (`vth_temp_coeff` < 0); mismatch and
    /// aging raise or lower it per device.
    #[must_use]
    pub fn vth_effective(&self, tech: &TechParams, env: &Environment, dvth: f64) -> f64 {
        self.vth0 + tech.vth_temp_coeff * (env.temp_kelvin() - tech.t_ref_kelvin) + dvth
    }

    /// Saturation drive current in amperes under environment `env` with
    /// threshold shift `dvth` and relative drive mismatch `dbeta_rel`.
    ///
    /// `I_d = beta·(1+dbeta_rel)·mob(T) · (Vdd − Vth_eff)^alpha`, clamped so
    /// a heavily aged device still conducts a trickle (the ring slows but
    /// never divides by zero).
    #[must_use]
    pub fn drive_current_with_mismatch(
        &self,
        tech: &TechParams,
        env: &Environment,
        dvth: f64,
        dbeta_rel: f64,
    ) -> f64 {
        let vth = self.vth_effective(tech, env, dvth);
        let overdrive = tech.overdrive(env.vdd(), vth);
        let beta = self.beta0 * (1.0 + dbeta_rel) * env.mobility_factor(tech);
        beta * overdrive.powf(tech.alpha)
    }

    /// Saturation drive current with only a threshold shift (no drive
    /// mismatch); see [`Self::drive_current_with_mismatch`].
    #[must_use]
    pub fn drive_current(&self, tech: &TechParams, env: &Environment, dvth: f64) -> f64 {
        self.drive_current_with_mismatch(tech, env, dvth, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechParams, Environment) {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        (tech, env)
    }

    #[test]
    fn complement_flips_polarity() {
        assert_eq!(MosType::Nmos.complement(), MosType::Pmos);
        assert_eq!(MosType::Pmos.complement(), MosType::Nmos);
    }

    #[test]
    #[should_panic(expected = "geometry must be positive")]
    fn zero_width_geometry_panics() {
        let _ = Geometry::new(0.0, 100.0);
    }

    #[test]
    fn pelgrom_sigma_shrinks_with_device_area() {
        let tech = TechParams::default();
        let small = Geometry::new(200.0, 100.0).pelgrom_sigma_vth(&tech);
        let large = Geometry::new(800.0, 100.0).pelgrom_sigma_vth(&tech);
        assert!(large < small);
        assert!((small / large - 2.0).abs() < 1e-9, "sigma ∝ 1/sqrt(area)");
    }

    #[test]
    fn drive_current_decreases_with_aging() {
        let (tech, env) = setup();
        let dev = Mosfet::new(MosType::Nmos, Geometry::default(), &tech);
        let fresh = dev.drive_current(&tech, &env, 0.0);
        let aged = dev.drive_current(&tech, &env, 0.050);
        assert!(aged < fresh);
        // First-order sensitivity check: dI/I ≈ −alpha·dVth/overdrive.
        let expected = -tech.alpha * 0.050 / (tech.vdd_nominal - tech.vth0_n);
        let actual = aged / fresh - 1.0;
        assert!(
            (actual - expected).abs() < 0.01,
            "actual {actual}, expected {expected}"
        );
    }

    #[test]
    fn drive_current_increases_with_supply() {
        let (tech, mut env) = setup();
        let dev = Mosfet::new(MosType::Pmos, Geometry::default(), &tech);
        let nominal = dev.drive_current(&tech, &env, 0.0);
        env.set_vdd(1.32);
        assert!(dev.drive_current(&tech, &env, 0.0) > nominal);
    }

    #[test]
    fn hot_device_is_slower_at_nominal_vdd() {
        // At high overdrive, mobility loss dominates the Vth drop, so the
        // current falls with temperature (the usual regime above the
        // zero-temperature-coefficient point).
        let (tech, _) = setup();
        let dev = Mosfet::new(MosType::Nmos, Geometry::default(), &tech);
        let cold = dev.drive_current(&tech, &Environment::new(25.0, tech.vdd_nominal), 0.0);
        let hot = dev.drive_current(&tech, &Environment::new(85.0, tech.vdd_nominal), 0.0);
        assert!(hot < cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn wider_device_drives_proportionally_more() {
        let (tech, env) = setup();
        let narrow = Mosfet::new(MosType::Nmos, Geometry::new(400.0, 100.0), &tech);
        let wide = Mosfet::new(MosType::Nmos, Geometry::new(800.0, 100.0), &tech);
        let ratio = wide.drive_current(&tech, &env, 0.0) / narrow.drive_current(&tech, &env, 0.0);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn beta_mismatch_scales_current_linearly() {
        let (tech, env) = setup();
        let dev = Mosfet::new(MosType::Nmos, Geometry::default(), &tech);
        let base = dev.drive_current(&tech, &env, 0.0);
        let plus = dev.drive_current_with_mismatch(&tech, &env, 0.0, 0.05);
        assert!((plus / base - 1.05).abs() < 1e-12);
    }

    #[test]
    fn aged_to_death_device_still_conducts() {
        let (tech, env) = setup();
        let dev = Mosfet::new(MosType::Nmos, Geometry::default(), &tech);
        let i = dev.drive_current(&tech, &env, 5.0);
        assert!(i > 0.0, "clamped overdrive keeps the ring alive");
    }
}
