//! Deterministic random sampling for reproducible Monte Carlo.
//!
//! Every experiment in this repository is seeded, and every sub-system
//! (chip, transistor, measurement) derives its own independent stream from a
//! master seed via [`SeedDomain`], so adding a new consumer of randomness
//! never perturbs existing results ("seed stability").
//!
//! Gaussian variates are generated in-house with the Marsaglia polar method
//! instead of pulling in `rand_distr` (the offline registry pairs
//! `rand_distr` with a different `rand` major version; 25 lines of polar
//! method beat a version-skew hazard).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard-normal variate (mean 0, sigma 1) using the Marsaglia
/// polar method.
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = aro_device::rng::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
/// Panics in debug builds if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * standard_normal(rng)
}

/// Draws a log-normal multiplier with median 1 whose underlying normal has
/// standard deviation `sigma_rel`.
///
/// Used for per-device aging variability: multiplying a deterministic
/// degradation by `lognormal_multiplier(rng, s)` yields a strictly positive,
/// right-skewed device-to-device spread, as observed in silicon BTI data.
pub fn lognormal_multiplier<R: Rng + ?Sized>(rng: &mut R, sigma_rel: f64) -> f64 {
    (sigma_rel * standard_normal(rng)).exp()
}

/// Hierarchical seed derivation: a named domain of a master seed.
///
/// `SeedDomain` hashes `(master, label, index)` with SplitMix64 so that e.g.
/// chip 17's transistor mismatch stream is independent of chip 18's and of
/// every measurement-noise stream, yet fully determined by the master seed.
///
/// # Example
/// ```
/// use aro_device::rng::SeedDomain;
/// let root = SeedDomain::new(42);
/// let chips = root.child("chips");
/// let rng_a = chips.rng(17);
/// let rng_b = chips.rng(17);
/// // Same path, same stream:
/// assert_eq!(format!("{rng_a:?}").len(), format!("{rng_b:?}").len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedDomain {
    state: u64,
}

impl SeedDomain {
    /// Creates the root domain from a master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Self {
            state: splitmix64(master_seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Derives a sub-domain named by `label` (e.g. `"chips"`, `"readout"`).
    ///
    /// The label length is mixed in as a terminator so that
    /// `child("a").child("b")` and `child("ab")` yield distinct domains.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        let mut state = self.state;
        for byte in label.as_bytes() {
            state = splitmix64(state ^ u64::from(*byte));
        }
        state = splitmix64(state ^ (label.len() as u64) ^ 0x5b5b_0000_c0de_0001);
        Self { state }
    }

    /// Derives the `index`-th seed within this domain.
    #[must_use]
    pub fn seed(&self, index: u64) -> u64 {
        splitmix64(self.state ^ splitmix64(index.wrapping_add(0xabcd_ef01)))
    }

    /// Builds a deterministic [`StdRng`] for the `index`-th member of this
    /// domain.
    #[must_use]
    pub fn rng(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed(index))
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixing function.
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    fn sample_stats(n: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
        let xs: Vec<f64> = (0..n).map(|_| f()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mean, sd) = sample_stats(200_000, || standard_normal(&mut rng));
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((sd - 1.0).abs() < 0.01, "sd = {sd}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mean, sd) = sample_stats(100_000, || normal(&mut rng, 5.0, 0.5));
        assert!((mean - 5.0).abs() < 0.01);
        assert!((sd - 0.5).abs() < 0.01);
    }

    #[test]
    fn lognormal_multiplier_is_positive_with_median_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<f64> = (0..100_001)
            .map(|_| lognormal_multiplier(&mut rng, 0.5))
            .collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.02, "median = {median}");
    }

    #[test]
    fn lognormal_with_zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(lognormal_multiplier(&mut rng, 0.0), 1.0);
    }

    #[test]
    fn seed_domain_is_deterministic() {
        let a = SeedDomain::new(99).child("chips").seed(5);
        let b = SeedDomain::new(99).child("chips").seed(5);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_domain_children_are_independent() {
        let root = SeedDomain::new(99);
        assert_ne!(root.child("chips").seed(0), root.child("readout").seed(0));
        assert_ne!(root.child("chips").seed(0), root.child("chips").seed(1));
        assert_ne!(SeedDomain::new(1).seed(0), SeedDomain::new(2).seed(0));
    }

    #[test]
    fn seed_domain_rngs_reproduce_streams() {
        let dom = SeedDomain::new(7).child("x");
        let mut r1 = dom.rng(3);
        let mut r2 = dom.rng(3);
        for _ in 0..16 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn nested_children_differ_from_flat_labels() {
        let root = SeedDomain::new(0);
        assert_ne!(
            root.child("a").child("b").seed(0),
            root.child("ab").seed(0),
            "path separator must matter"
        );
    }
}
