//! Manufacturing process variation.
//!
//! Variation is decomposed the way silicon data is usually fitted:
//!
//! 1. **Inter-die** (chip-to-chip): one common-mode shift per chip. Nearly
//!    cancels in an RO pair, but moves absolute frequency.
//! 2. **Intra-die systematic**: a smooth gradient + bowl across the die,
//!    with per-chip random direction and amplitude. Nearby ROs are
//!    correlated — this is why *neighbour* pairing beats pairing distant
//!    ROs.
//! 3. **Intra-die random (Pelgrom mismatch)**: per-device white noise with
//!    `sigma_Vth = A_VT / sqrt(W·L)`. This is the entropy source of the
//!    PUF.
//! 4. **Per-position layout bias** ([`PositionBias`]): a *deterministic*
//!    frequency offset per array slot that is identical on every chip of
//!    the design (asymmetric routing to the readout mux, systematic IR
//!    drop). It biases each response bit the same way on all chips and is
//!    what drags a conventional RO-PUF's inter-chip Hamming distance below
//!    the ideal 50 %. The ARO cell's symmetric layout suppresses it.

use rand::Rng;

use crate::mosfet::Geometry;
use crate::params::TechParams;
use crate::rng::{normal, standard_normal};

/// Normalized die coordinates in `[0, 1] × [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiePosition {
    /// Horizontal position, 0 = left edge, 1 = right edge.
    pub x: f64,
    /// Vertical position, 0 = bottom edge, 1 = top edge.
    pub y: f64,
}

impl DiePosition {
    /// Creates a position, clamping into the unit square.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }

    /// Lays out `n` sites in a near-square grid, returned row-major.
    #[must_use]
    pub fn grid(n: usize) -> Vec<Self> {
        if n == 0 {
            return Vec::new();
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        (0..n)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                Self::new(
                    (c as f64 + 0.5) / cols as f64,
                    (r as f64 + 0.5) / rows.max(1) as f64,
                )
            })
            .collect()
    }
}

/// The chip-level (shared) part of the process realization, sampled once
/// per die at "fabrication".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipProcess {
    dvth_interdie_n: f64,
    dvth_interdie_p: f64,
    dbeta_interdie_rel: f64,
    gradient_x: f64,
    gradient_y: f64,
    bowl: f64,
}

impl ChipProcess {
    /// Samples a die's common-mode shifts and systematic-variation surface.
    pub fn sample<R: Rng + ?Sized>(tech: &TechParams, rng: &mut R) -> Self {
        // Random gradient direction, amplitude scaled so the peak-to-peak
        // systematic swing across the die matches `sys_gradient_vpp`.
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let amplitude = normal(rng, tech.sys_gradient_vpp, tech.sys_gradient_vpp * 0.3).abs();
        Self {
            dvth_interdie_n: normal(rng, 0.0, tech.sigma_vth_interdie),
            dvth_interdie_p: normal(rng, 0.0, tech.sigma_vth_interdie),
            dbeta_interdie_rel: normal(rng, 0.0, tech.sigma_beta_rel),
            gradient_x: amplitude * angle.cos(),
            gradient_y: amplitude * angle.sin(),
            bowl: normal(rng, 0.0, tech.sys_gradient_vpp * 0.25),
        }
    }

    /// A perfectly typical die (no variation) — useful for nominal-corner
    /// tests.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            dvth_interdie_n: 0.0,
            dvth_interdie_p: 0.0,
            dbeta_interdie_rel: 0.0,
            gradient_x: 0.0,
            gradient_y: 0.0,
            bowl: 0.0,
        }
    }

    /// Common-mode NMOS threshold shift of this die, in volts.
    #[must_use]
    pub fn dvth_interdie_n(&self) -> f64 {
        self.dvth_interdie_n
    }

    /// Common-mode PMOS threshold shift of this die, in volts.
    #[must_use]
    pub fn dvth_interdie_p(&self) -> f64 {
        self.dvth_interdie_p
    }

    /// Common-mode relative drive-factor shift of this die.
    #[must_use]
    pub fn dbeta_interdie_rel(&self) -> f64 {
        self.dbeta_interdie_rel
    }

    /// Systematic threshold offset at a die position (applies to both
    /// polarities), in volts: linear gradient plus a centred bowl.
    #[must_use]
    pub fn systematic_dvth(&self, pos: DiePosition) -> f64 {
        let linear = self.gradient_x * (pos.x - 0.5) + self.gradient_y * (pos.y - 0.5);
        let r2 = (pos.x - 0.5).powi(2) + (pos.y - 0.5).powi(2);
        linear + self.bowl * (r2 - 0.25)
    }
}

/// Per-device random variation, sampled once per transistor at fabrication.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceVariation {
    /// Random threshold-voltage offset in volts (Pelgrom mismatch).
    pub dvth: f64,
    /// Random relative drive-factor offset.
    pub dbeta_rel: f64,
}

impl DeviceVariation {
    /// Samples mismatch for a device of the given geometry.
    pub fn sample<R: Rng + ?Sized>(tech: &TechParams, geometry: Geometry, rng: &mut R) -> Self {
        Self {
            dvth: geometry.pelgrom_sigma_vth(tech) * standard_normal(rng),
            dbeta_rel: tech.sigma_beta_rel * standard_normal(rng),
        }
    }
}

/// Deterministic per-array-slot relative frequency offsets shared by every
/// chip of a design (layout-induced bias).
#[derive(Debug, Clone, PartialEq)]
pub struct PositionBias {
    offsets_rel: Vec<f64>,
}

impl PositionBias {
    /// Samples a design's layout bias for `n_positions` array slots with
    /// relative sigma `sigma_rel`. Use the *design* seed domain, not a chip
    /// seed: the whole point is that this is common to all chips.
    pub fn sample<R: Rng + ?Sized>(n_positions: usize, sigma_rel: f64, rng: &mut R) -> Self {
        Self {
            offsets_rel: (0..n_positions)
                .map(|_| sigma_rel * standard_normal(rng))
                .collect(),
        }
    }

    /// A bias-free design (ideal symmetric layout) with `n_positions`
    /// slots.
    #[must_use]
    pub fn none(n_positions: usize) -> Self {
        Self {
            offsets_rel: vec![0.0; n_positions],
        }
    }

    /// Relative frequency offset of array slot `position`.
    ///
    /// # Panics
    /// Panics if `position` is out of range.
    #[must_use]
    pub fn offset_rel(&self, position: usize) -> f64 {
        self.offsets_rel[position]
    }

    /// Number of array slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets_rel.len()
    }

    /// Whether the design has zero slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.offsets_rel.is_empty()
    }
}

/// Convenience facade bundling a technology with its samplers, for callers
/// that build whole populations.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationModel {
    tech: TechParams,
}

impl VariationModel {
    /// Creates a variation model over a technology.
    #[must_use]
    pub fn new(tech: TechParams) -> Self {
        Self { tech }
    }

    /// The underlying technology parameters.
    #[must_use]
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Samples one die's shared process realization.
    pub fn sample_chip<R: Rng + ?Sized>(&self, rng: &mut R) -> ChipProcess {
        ChipProcess::sample(&self.tech, rng)
    }

    /// Samples one transistor's random mismatch.
    pub fn sample_device<R: Rng + ?Sized>(
        &self,
        geometry: Geometry,
        rng: &mut R,
    ) -> DeviceVariation {
        DeviceVariation::sample(&self.tech, geometry, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_layout_covers_unit_square() {
        let sites = DiePosition::grid(64);
        assert_eq!(sites.len(), 64);
        assert!(sites
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y)));
        // All sites distinct.
        for (i, a) in sites.iter().enumerate() {
            for b in &sites[i + 1..] {
                assert!(a != b);
            }
        }
    }

    #[test]
    fn grid_of_zero_is_empty() {
        assert!(DiePosition::grid(0).is_empty());
    }

    #[test]
    fn grid_handles_non_square_counts() {
        for n in [1, 2, 3, 5, 7, 12, 100, 128] {
            assert_eq!(DiePosition::grid(n).len(), n);
        }
    }

    #[test]
    fn typical_chip_has_no_systematic_offset_at_center() {
        let chip = ChipProcess::typical();
        assert_eq!(chip.systematic_dvth(DiePosition::new(0.5, 0.5)), 0.0);
    }

    #[test]
    fn systematic_surface_is_smooth_and_bounded() {
        let tech = TechParams::default();
        let mut rng = StdRng::seed_from_u64(11);
        let chip = ChipProcess::sample(&tech, &mut rng);
        let corners = [
            DiePosition::new(0.0, 0.0),
            DiePosition::new(1.0, 0.0),
            DiePosition::new(0.0, 1.0),
            DiePosition::new(1.0, 1.0),
        ];
        for c in corners {
            assert!(chip.systematic_dvth(c).abs() < 0.1, "bounded by ~100 mV");
        }
        // Midpoint value lies between adjacent samples (linearity dominates).
        let a = chip.systematic_dvth(DiePosition::new(0.0, 0.5));
        let b = chip.systematic_dvth(DiePosition::new(1.0, 0.5));
        let mid = chip.systematic_dvth(DiePosition::new(0.5, 0.5));
        assert!(mid >= a.min(b) - 0.05 && mid <= a.max(b) + 0.05);
    }

    #[test]
    fn interdie_spread_matches_sigma() {
        let tech = TechParams::default();
        let mut rng = StdRng::seed_from_u64(12);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| ChipProcess::sample(&tech, &mut rng).dvth_interdie_n())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64)
            .sqrt();
        assert!(mean.abs() < 0.001);
        assert!((sd - tech.sigma_vth_interdie).abs() < 0.001, "sd = {sd}");
    }

    #[test]
    fn device_mismatch_scales_with_geometry() {
        let tech = TechParams::default();
        let mut rng = StdRng::seed_from_u64(13);
        let mut spread = |w: f64| {
            let g = Geometry::new(w, 100.0);
            let xs: Vec<f64> = (0..20_000)
                .map(|_| DeviceVariation::sample(&tech, g, &mut rng).dvth)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
        };
        let narrow = spread(200.0);
        let wide = spread(800.0);
        assert!(
            (narrow / wide - 2.0).abs() < 0.1,
            "Pelgrom scaling, got {}",
            narrow / wide
        );
    }

    #[test]
    fn position_bias_is_deterministic_per_design() {
        let mut rng_a = StdRng::seed_from_u64(14);
        let mut rng_b = StdRng::seed_from_u64(14);
        let a = PositionBias::sample(32, 0.007, &mut rng_a);
        let b = PositionBias::sample(32, 0.007, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(!a.is_empty());
    }

    #[test]
    fn position_bias_none_is_all_zero() {
        let bias = PositionBias::none(8);
        assert!((0..8).all(|i| bias.offset_rel(i) == 0.0));
        assert!(PositionBias::none(0).is_empty());
    }

    #[test]
    fn variation_model_facade_round_trips_tech() {
        let tech = TechParams::default();
        let model = VariationModel::new(tech.clone());
        assert_eq!(model.tech(), &tech);
        let mut rng = StdRng::seed_from_u64(15);
        let chip = model.sample_chip(&mut rng);
        let dev = model.sample_device(Geometry::default(), &mut rng);
        assert!(chip.dvth_interdie_n().is_finite());
        assert!(dev.dvth.is_finite());
    }
}
