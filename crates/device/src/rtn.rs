//! Random Telegraph Noise (RTN): discrete trap-induced threshold
//! fluctuation.
//!
//! Individual oxide traps capture and emit channel carriers, making a
//! small transistor's threshold hop between discrete levels on
//! millisecond-to-second timescales. For a PUF this is the *other*
//! measurement-noise source besides jitter: two reads separated by
//! seconds can see different trap occupancies, so close RO pairs flip
//! even with long gate times that average jitter away.
//!
//! Model (standard compact form):
//! * trap count per device ~ Poisson(density × gate area),
//! * trap amplitude ~ Exponential, with mean ∝ 1/(W·L) (charge sharing),
//! * occupancy per read ~ Bernoulli(p) with p uniform per trap.
//!
//! [`RtnTraps`] is the per-device trap set (sampled at fabrication);
//! [`frequency_sigma_rel`] aggregates the population statistics into the
//! relative frequency sigma a ring's readout sees, which
//! `aro_circuit::readout::ReadoutConfig` can fold into its noise floor.

use rand::Rng;

use crate::mosfet::Geometry;
use crate::params::TechParams;

/// Trap density per µm² of gate area. *Published*: one to a few traps in
/// a deep-submicron minimum device.
pub const TRAP_DENSITY_PER_UM2: f64 = 25.0;

/// Mean single-trap amplitude coefficient in V·µm²: the mean amplitude
/// of one trap in a device of area A is `COEFF / A`.
pub const TRAP_AMPLITUDE_COEFF_V_UM2: f64 = 1.0e-4;

/// The sampled trap set of one transistor.
#[derive(Debug, Clone, PartialEq)]
pub struct RtnTraps {
    amplitudes_v: Vec<f64>,
    occupancy_prob: Vec<f64>,
}

impl RtnTraps {
    /// Samples a device's traps at fabrication.
    pub fn sample<R: Rng + ?Sized>(geometry: Geometry, rng: &mut R) -> Self {
        let area_um2 = geometry.area_m2() * 1e12;
        let expected = TRAP_DENSITY_PER_UM2 * area_um2;
        let count = poisson(expected, rng);
        let mean_amp = TRAP_AMPLITUDE_COEFF_V_UM2 / area_um2;
        let amplitudes_v = (0..count)
            .map(|_| {
                // Exponential via inverse CDF.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean_amp * u.ln()
            })
            .collect();
        let occupancy_prob = (0..count).map(|_| rng.gen_range(0.05..0.95)).collect();
        Self {
            amplitudes_v,
            occupancy_prob,
        }
    }

    /// Number of traps in this device.
    #[must_use]
    pub fn count(&self) -> usize {
        self.amplitudes_v.len()
    }

    /// Mean threshold offset contributed by the traps, in volts
    /// (Σ aᵢ·pᵢ — the DC part, absorbed into the device's mismatch).
    #[must_use]
    pub fn mean_dvth(&self) -> f64 {
        self.amplitudes_v
            .iter()
            .zip(&self.occupancy_prob)
            .map(|(a, p)| a * p)
            .sum()
    }

    /// Standard deviation of the instantaneous threshold around its mean,
    /// in volts (`sqrt(Σ aᵢ²·pᵢ·(1−pᵢ))`).
    #[must_use]
    pub fn sigma_dvth(&self) -> f64 {
        self.amplitudes_v
            .iter()
            .zip(&self.occupancy_prob)
            .map(|(a, p)| a * a * p * (1.0 - p))
            .sum::<f64>()
            .sqrt()
    }

    /// Draws one read's instantaneous threshold offset relative to the
    /// mean, in volts (fresh occupancy per trap).
    pub fn instantaneous_dvth<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.amplitudes_v
            .iter()
            .zip(&self.occupancy_prob)
            .map(|(a, p)| {
                if rng.gen_range(0.0..1.0) < *p {
                    a * (1.0 - p)
                } else {
                    -a * p
                }
            })
            .sum()
    }
}

/// Expected relative frequency sigma of an `n_transistors`-device ring
/// from RTN, for devices of the given geometry: per-device threshold
/// sigma mapped through the alpha-power sensitivity and averaged over the
/// ring.
#[must_use]
pub fn frequency_sigma_rel(tech: &TechParams, geometry: Geometry, n_transistors: usize) -> f64 {
    let area_um2 = geometry.area_m2() * 1e12;
    let expected_traps = TRAP_DENSITY_PER_UM2 * area_um2;
    let mean_amp = TRAP_AMPLITUDE_COEFF_V_UM2 / area_um2;
    // Var per trap with p ~ U(0.05, 0.95), a ~ Exp(mean_amp):
    // E[a²] = 2·mean² ; E[p(1−p)] ≈ 0.216 over that window.
    let var_per_trap = 2.0 * mean_amp * mean_amp * 0.216;
    let sigma_vth = (expected_traps * var_per_trap).sqrt();
    let overdrive = tech.vdd_nominal - tech.vth0_n;
    // Ring frequency averages the stages, so the per-device sigma shrinks
    // by sqrt(n).
    tech.alpha * sigma_vth / overdrive / (n_transistors as f64).sqrt()
}

/// Poisson sampling (Knuth's method — fine for small means).
fn poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let threshold = (-mean).exp();
    let mut count = 0usize;
    let mut product: f64 = rng.gen_range(0.0..1.0);
    while product > threshold {
        count += 1;
        product *= rng.gen_range(0.0..1.0_f64);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedDomain;

    #[test]
    fn trap_count_scales_with_area() {
        let mut rng = SeedDomain::new(61).rng(0);
        let small = Geometry::new(200.0, 100.0);
        let large = Geometry::new(2000.0, 400.0);
        let mean_count = |g: Geometry, rng: &mut rand::rngs::StdRng| {
            (0..2000)
                .map(|_| RtnTraps::sample(g, rng).count())
                .sum::<usize>() as f64
                / 2000.0
        };
        let small_mean = mean_count(small, &mut rng);
        let large_mean = mean_count(large, &mut rng);
        let area_ratio = large.area_m2() / small.area_m2();
        assert!(
            (large_mean / small_mean - area_ratio).abs() / area_ratio < 0.2,
            "counts {small_mean} vs {large_mean}, area ratio {area_ratio}"
        );
    }

    #[test]
    fn small_devices_fluctuate_more() {
        // Amplitude ∝ 1/area beats count ∝ area: the population-RMS
        // threshold fluctuation scales as 1/sqrt(area).
        let mut rng = SeedDomain::new(62).rng(0);
        let rms_of = |g: Geometry, rng: &mut rand::rngs::StdRng| {
            ((0..4000)
                .map(|_| RtnTraps::sample(g, rng).sigma_dvth().powi(2))
                .sum::<f64>()
                / 4000.0)
                .sqrt()
        };
        let small = rms_of(Geometry::new(200.0, 100.0), &mut rng);
        let large = rms_of(Geometry::new(800.0, 200.0), &mut rng);
        // Area ratio 8 → RMS ratio sqrt(8) ≈ 2.83.
        assert!(
            (small / large - 8f64.sqrt()).abs() < 0.6,
            "RMS ratio {} vs expected {}",
            small / large,
            8f64.sqrt()
        );
    }

    #[test]
    fn instantaneous_offsets_are_zero_mean_with_matching_sigma() {
        let mut rng = SeedDomain::new(63).rng(0);
        // A device with a decent trap population.
        let traps = loop {
            let t = RtnTraps::sample(Geometry::default(), &mut rng);
            if t.count() >= 2 {
                break t;
            }
        };
        let samples: Vec<f64> = (0..20_000)
            .map(|_| traps.instantaneous_dvth(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64)
            .sqrt();
        assert!(mean.abs() < 0.2 * traps.sigma_dvth() + 1e-7, "mean {mean}");
        assert!(
            (sd / traps.sigma_dvth() - 1.0).abs() < 0.1,
            "sd {sd} vs {}",
            traps.sigma_dvth()
        );
    }

    #[test]
    fn aggregate_frequency_sigma_is_small_but_nonzero() {
        let tech = TechParams::default();
        let sigma = frequency_sigma_rel(&tech, Geometry::default(), 10);
        assert!(sigma > 1e-6 && sigma < 1e-2, "RTN frequency sigma {sigma}");
        // Bigger devices → less RTN.
        let big = frequency_sigma_rel(&tech, Geometry::new(1600.0, 200.0), 10);
        assert!(big < sigma);
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut rng = SeedDomain::new(64).rng(0);
        let mean_hat = (0..20_000).map(|_| poisson(3.0, &mut rng)).sum::<usize>() as f64 / 20_000.0;
        assert!((mean_hat - 3.0).abs() < 0.1, "{mean_hat}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }
}
