//! Transistor-level substrate for the ARO-PUF (DATE 2014) reproduction.
//!
//! The original paper evaluates its aging-resistant ring-oscillator PUF with
//! HSPICE on a commercial PDK. No such ecosystem exists in Rust, so this crate
//! implements the closest analytic equivalent that exercises the same code
//! paths (see `DESIGN.md` at the repository root for the substitution
//! rationale):
//!
//! * [`mosfet`] — the Sakurai–Newton **alpha-power-law** MOSFET drive model,
//!   which captures exactly the dependency that matters for a ring
//!   oscillator: stage delay as a function of threshold voltage, supply
//!   voltage, and temperature.
//! * [`process`] — manufacturing **process variation**: inter-die shifts,
//!   systematic within-die gradients, Pelgrom random mismatch, and the
//!   deterministic per-position layout bias that limits the uniqueness of a
//!   conventional RO-PUF array.
//! * [`aging`] — long-term **NBTI/PBTI** (reaction–diffusion power law with
//!   duty-cycle-dependent recovery) and **HCI** wear-out, including
//!   per-device aging variability — the mechanism that flips PUF bits.
//! * [`environment`] — operating temperature and supply voltage and their
//!   effect on threshold voltage and carrier mobility.
//! * [`rng`] — deterministic, reproducible random sampling (Gaussian and
//!   log-normal variates, seed derivation) used by every Monte Carlo sweep.
//! * [`params`] — all physical constants in one place, each documented with
//!   its provenance (published 90 nm-class values, or `CALIBRATED` against
//!   the paper's headline numbers).
//!
//! # Example
//!
//! Compute how much a statically stressed PMOS transistor degrades over ten
//! years, and what that does to its drive current:
//!
//! ```
//! use aro_device::aging::{BtiModel, StressInterval, TransistorAging};
//! use aro_device::environment::Environment;
//! use aro_device::mosfet::{Geometry, MosType, Mosfet};
//! use aro_device::params::TechParams;
//! use aro_device::units::YEAR;
//!
//! let tech = TechParams::default();
//! let nbti = BtiModel::nbti(&tech);
//! let mut aging = TransistorAging::new();
//!
//! // Ten years of continuous DC stress at 25 C and nominal Vdd — the fate of
//! // a PMOS inside an idle *conventional* RO.
//! let stress = StressInterval::static_dc(10.0 * YEAR, 25.0, tech.vdd_nominal);
//! aging.apply_bti(&nbti, &stress);
//! assert!(aging.total_dvth() > 0.01, "ten-year NBTI should exceed 10 mV");
//!
//! let env = Environment::nominal(&tech);
//! let pmos = Mosfet::new(MosType::Pmos, Geometry::default(), &tech);
//! let fresh = pmos.drive_current(&tech, &env, 0.0);
//! let aged = pmos.drive_current(&tech, &env, aging.total_dvth());
//! assert!(aged < fresh, "aging reduces drive current");
//! ```

pub mod aging;
pub mod environment;
pub mod mosfet;
pub mod params;
pub mod process;
pub mod rng;
pub mod rtn;
pub mod spatial;
pub mod units;

pub use aging::{BtiModel, HciModel, StressInterval, TransistorAging};
pub use environment::Environment;
pub use mosfet::{Geometry, MosType, Mosfet};
pub use params::TechParams;
pub use process::{ChipProcess, DeviceVariation, DiePosition, PositionBias, VariationModel};
pub use rng::SeedDomain;
pub use spatial::CorrelatedField;
