//! Spatially correlated intra-die variation.
//!
//! Beyond the smooth gradient/bowl surface in [`crate::process`], real
//! dies show *mid-range* correlated variation: nearby devices share
//! lithography and stress conditions, so their parameters co-vary with a
//! correlation that decays with distance. The standard model is a
//! zero-mean Gaussian field with an exponential kernel
//! `cov(a, b) = sigma² · exp(−d(a,b)/L)`.
//!
//! [`CorrelatedField`] factors the covariance matrix of a fixed site list
//! once (Cholesky) and then draws per-chip realizations cheaply. The
//! EXP-11 ablation uses it to show why *neighbour* pairing is the right
//! choice: close pairs share the correlated component, so it cancels in
//! the comparison, while distant pairs absorb it into their margins.

use rand::Rng;

use crate::process::DiePosition;
use crate::rng::standard_normal;

/// A sampler for a zero-mean Gaussian field with exponential covariance
/// over a fixed list of die sites.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedField {
    /// Lower-triangular Cholesky factor, row-major packed.
    chol: Vec<f64>,
    n: usize,
    sigma: f64,
}

impl CorrelatedField {
    /// Builds the field for `sites` with standard deviation `sigma` and
    /// correlation length `length` (in normalized die units; the die is
    /// the unit square).
    ///
    /// # Panics
    /// Panics if `sites` is empty, `sigma` is negative, or `length` is
    /// not strictly positive.
    #[must_use]
    pub fn build(sites: &[DiePosition], sigma: f64, length: f64) -> Self {
        assert!(!sites.is_empty(), "field needs at least one site");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(length > 0.0, "correlation length must be positive");
        let n = sites.len();
        // Covariance matrix (unit variance; sigma applied at sampling).
        let mut cov = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let dx = sites[i].x - sites[j].x;
                let dy = sites[i].y - sites[j].y;
                let d = (dx * dx + dy * dy).sqrt();
                let c = (-d / length).exp();
                cov[i * n + j] = c;
                cov[j * n + i] = c;
            }
        }
        // Cholesky with a small jitter on the diagonal for numerical
        // robustness (the exponential kernel is positive definite, but
        // coincident sites would make it singular).
        let mut chol = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = cov[i * n + j];
                for k in 0..j {
                    sum -= chol[i * n + k] * chol[j * n + k];
                }
                if i == j {
                    chol[i * n + i] = (sum + 1e-12).max(1e-12).sqrt();
                } else {
                    chol[i * n + j] = sum / chol[j * n + j];
                }
            }
        }
        Self { chol, n, sigma }
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the field covers zero sites (never true after `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The field's standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one chip's realization: a correlated offset per site.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let z: Vec<f64> = (0..self.n).map(|_| standard_normal(rng)).collect();
        (0..self.n)
            .map(|i| {
                let mut acc = 0.0;
                for (k, zk) in z.iter().enumerate().take(i + 1) {
                    acc += self.chol[i * self.n + k] * zk;
                }
                self.sigma * acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_field(n: usize, sigma: f64, length: f64) -> (CorrelatedField, Vec<DiePosition>) {
        let sites = DiePosition::grid(n);
        (CorrelatedField::build(&sites, sigma, length), sites)
    }

    fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        let sx = (xs.iter().map(|x| (x - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (ys.iter().map(|y| (y - my).powi(2)).sum::<f64>() / n).sqrt();
        cov / (sx * sy)
    }

    #[test]
    fn marginal_sigma_matches() {
        let (field, _) = grid_field(16, 0.01, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut site0 = Vec::new();
        for _ in 0..5000 {
            site0.push(field.sample(&mut rng)[0]);
        }
        let mean = site0.iter().sum::<f64>() / site0.len() as f64;
        let sd = (site0.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (site0.len() - 1) as f64)
            .sqrt();
        assert!(mean.abs() < 5e-4, "mean {mean}");
        assert!((sd - 0.01).abs() < 5e-4, "sd {sd}");
    }

    #[test]
    fn nearby_sites_correlate_more_than_distant_ones() {
        let (field, sites) = grid_field(64, 1.0, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        // Pick a reference site, its nearest neighbour, and the farthest.
        let reference = 0usize;
        let dist = |i: usize| {
            let dx = sites[i].x - sites[reference].x;
            let dy = sites[i].y - sites[reference].y;
            (dx * dx + dy * dy).sqrt()
        };
        let near = (1..64)
            .min_by(|&a, &b| dist(a).partial_cmp(&dist(b)).unwrap())
            .unwrap();
        let far = (1..64)
            .max_by(|&a, &b| dist(a).partial_cmp(&dist(b)).unwrap())
            .unwrap();
        let mut ref_vals = Vec::new();
        let mut near_vals = Vec::new();
        let mut far_vals = Vec::new();
        for _ in 0..3000 {
            let s = field.sample(&mut rng);
            ref_vals.push(s[reference]);
            near_vals.push(s[near]);
            far_vals.push(s[far]);
        }
        let c_near = correlation(&ref_vals, &near_vals);
        let c_far = correlation(&ref_vals, &far_vals);
        assert!(c_near > 0.5, "nearest-neighbour correlation {c_near}");
        assert!(c_far < c_near - 0.2, "far {c_far} vs near {c_near}");
        // And the near correlation matches the kernel within sampling
        // error.
        let expected = (-dist(near) / 0.2f64).exp();
        assert!(
            (c_near - expected).abs() < 0.1,
            "{c_near} vs kernel {expected}"
        );
    }

    #[test]
    fn zero_sigma_field_is_identically_zero() {
        let (field, _) = grid_field(9, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(field.sample(&mut rng).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sample_length_matches_sites() {
        let (field, _) = grid_field(23, 0.01, 0.4);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(field.sample(&mut rng).len(), 23);
        assert_eq!(field.len(), 23);
        assert!(!field.is_empty());
    }

    #[test]
    fn single_site_field_works() {
        let (field, _) = grid_field(1, 0.02, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let v = field.sample(&mut rng)[0];
        assert!(v.is_finite());
    }

    #[test]
    #[should_panic(expected = "correlation length must be positive")]
    fn zero_length_panics() {
        let sites = DiePosition::grid(4);
        let _ = CorrelatedField::build(&sites, 0.01, 0.0);
    }
}
