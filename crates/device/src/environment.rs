//! Operating environment: die temperature and supply voltage.
//!
//! PUF responses must survive environmental excursions; the paper's
//! evaluation (like all RO-PUF work following Suh & Devadas) sweeps
//! temperature and supply. `Environment` is deliberately a small value type
//! passed by reference into every delay/current computation.

use crate::params::TechParams;
use crate::units::celsius_to_kelvin;

/// An operating point: die temperature and supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    temp_celsius: f64,
    vdd: f64,
}

impl Environment {
    /// Creates an operating point from a temperature in °C and a supply in
    /// volts.
    ///
    /// # Panics
    /// Panics if `vdd` is not strictly positive or the temperature is below
    /// absolute zero.
    #[must_use]
    pub fn new(temp_celsius: f64, vdd: f64) -> Self {
        assert!(vdd > 0.0, "supply voltage must be positive");
        assert!(temp_celsius > -273.15, "temperature below absolute zero");
        Self { temp_celsius, vdd }
    }

    /// The nominal operating point of a technology: 25 °C, nominal Vdd.
    #[must_use]
    pub fn nominal(tech: &TechParams) -> Self {
        Self::new(25.0, tech.vdd_nominal)
    }

    /// Die temperature in degrees Celsius.
    #[must_use]
    pub fn temp_celsius(&self) -> f64 {
        self.temp_celsius
    }

    /// Die temperature in kelvin.
    #[must_use]
    pub fn temp_kelvin(&self) -> f64 {
        celsius_to_kelvin(self.temp_celsius)
    }

    /// Supply voltage in volts.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Sets the supply voltage in volts.
    ///
    /// # Panics
    /// Panics if `vdd` is not strictly positive.
    pub fn set_vdd(&mut self, vdd: f64) {
        assert!(vdd > 0.0, "supply voltage must be positive");
        self.vdd = vdd;
    }

    /// Sets the die temperature in degrees Celsius.
    ///
    /// # Panics
    /// Panics if the temperature is below absolute zero.
    pub fn set_temp_celsius(&mut self, temp_celsius: f64) {
        assert!(temp_celsius > -273.15, "temperature below absolute zero");
        self.temp_celsius = temp_celsius;
    }

    /// Returns a copy of this operating point with a different temperature.
    #[must_use]
    pub fn with_temp_celsius(mut self, temp_celsius: f64) -> Self {
        self.set_temp_celsius(temp_celsius);
        self
    }

    /// Returns a copy of this operating point with a different supply.
    #[must_use]
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.set_vdd(vdd);
        self
    }

    /// Returns a copy of this operating point shifted by a transient
    /// excursion of `d_temp_c` degrees and `d_vdd` volts — the
    /// fault-injection hook for supply droops and temperature spikes
    /// (`aro-faults`). Unlike the panicking setters, the result is clamped
    /// into the physically representable range (supply floored at
    /// [`Environment::MIN_FAULT_VDD`], temperature floored just above
    /// absolute zero), so an arbitrarily violent injected excursion still
    /// yields a valid operating point instead of aborting the simulation.
    #[must_use]
    pub fn perturbed(&self, d_temp_c: f64, d_vdd: f64) -> Self {
        Self {
            temp_celsius: (self.temp_celsius + d_temp_c).max(-273.0),
            vdd: (self.vdd + d_vdd).max(Self::MIN_FAULT_VDD),
        }
    }

    /// Lowest supply voltage an injected droop can reach: deep enough to
    /// corrupt every comparison, but still a valid operating point for the
    /// alpha-power delay model.
    pub const MIN_FAULT_VDD: f64 = 0.05;

    /// Carrier-mobility scaling factor relative to the reference
    /// temperature: `(T/T_ref)^(−k)`. Below 1 when hot, above 1 when cold.
    #[must_use]
    pub fn mobility_factor(&self, tech: &TechParams) -> f64 {
        (self.temp_kelvin() / tech.t_ref_kelvin).powf(-tech.mobility_temp_exp)
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0} C / {:.2} V", self.temp_celsius, self.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_matches_tech() {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        assert_eq!(env.temp_celsius(), 25.0);
        assert_eq!(env.vdd(), tech.vdd_nominal);
        assert!((env.temp_kelvin() - 298.15).abs() < 1e-12);
    }

    #[test]
    fn mobility_factor_is_one_at_reference() {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech);
        assert!((env.mobility_factor(&tech) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mobility_drops_when_hot_rises_when_cold() {
        let tech = TechParams::default();
        let hot = Environment::new(85.0, tech.vdd_nominal);
        let cold = Environment::new(-20.0, tech.vdd_nominal);
        assert!(hot.mobility_factor(&tech) < 1.0);
        assert!(cold.mobility_factor(&tech) > 1.0);
    }

    #[test]
    fn builder_style_updates() {
        let tech = TechParams::default();
        let env = Environment::nominal(&tech)
            .with_temp_celsius(85.0)
            .with_vdd(1.08);
        assert_eq!(env.temp_celsius(), 85.0);
        assert_eq!(env.vdd(), 1.08);
    }

    #[test]
    #[should_panic(expected = "supply voltage must be positive")]
    fn zero_vdd_panics() {
        let _ = Environment::new(25.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "temperature below absolute zero")]
    fn sub_absolute_zero_panics() {
        let _ = Environment::new(-300.0, 1.2);
    }

    #[test]
    fn perturbed_applies_excursions() {
        let env = Environment::new(25.0, 1.20);
        let hot_droop = env.perturbed(60.0, -0.3);
        assert_eq!(hot_droop.temp_celsius(), 85.0);
        assert!((hot_droop.vdd() - 0.9).abs() < 1e-12);
        // The original is untouched.
        assert_eq!(env.vdd(), 1.20);
    }

    #[test]
    fn perturbed_clamps_instead_of_panicking() {
        let env = Environment::new(25.0, 1.20);
        let violent = env.perturbed(-1000.0, -10.0);
        assert_eq!(violent.temp_celsius(), -273.0);
        assert_eq!(violent.vdd(), Environment::MIN_FAULT_VDD);
    }

    #[test]
    fn zero_perturbation_is_identity() {
        let env = Environment::new(45.0, 1.08);
        assert_eq!(env.perturbed(0.0, 0.0), env);
    }

    #[test]
    fn display_is_human_readable() {
        let env = Environment::new(85.0, 1.08);
        assert_eq!(env.to_string(), "85 C / 1.08 V");
    }
}
