//! Time and temperature units used throughout the simulator.
//!
//! All internal time is in **seconds** (`f64`), all internal temperature in
//! **kelvin** unless a function name says otherwise. The constants here keep
//! mission-profile code readable (`10.0 * YEAR` instead of `3.15e8`).

/// One second, the base time unit.
pub const SECOND: f64 = 1.0;
/// One minute in seconds.
pub const MINUTE: f64 = 60.0;
/// One hour in seconds.
pub const HOUR: f64 = 3_600.0;
/// One day in seconds.
pub const DAY: f64 = 86_400.0;
/// One (Julian) year in seconds.
pub const YEAR: f64 = 365.25 * DAY;
/// One month (1/12 year) in seconds.
pub const MONTH: f64 = YEAR / 12.0;

/// Boltzmann constant in eV/K, used by Arrhenius temperature acceleration.
pub const BOLTZMANN_EV: f64 = 8.617_333_262e-5;

/// Absolute zero offset: 0 °C in kelvin.
pub const KELVIN_AT_0C: f64 = 273.15;

/// Converts a temperature in degrees Celsius to kelvin.
///
/// # Example
/// ```
/// use aro_device::units::celsius_to_kelvin;
/// assert_eq!(celsius_to_kelvin(25.0), 298.15);
/// ```
#[must_use]
pub fn celsius_to_kelvin(celsius: f64) -> f64 {
    celsius + KELVIN_AT_0C
}

/// Converts a temperature in kelvin to degrees Celsius.
///
/// # Example
/// ```
/// use aro_device::units::kelvin_to_celsius;
/// assert!((kelvin_to_celsius(298.15) - 25.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn kelvin_to_celsius(kelvin: f64) -> f64 {
    kelvin - KELVIN_AT_0C
}

/// Formats a duration in seconds as a short human-readable string
/// (`"3.0 y"`, `"6.0 mo"`, `"12 h"`, …) for experiment tables.
///
/// # Example
/// ```
/// use aro_device::units::{format_duration, YEAR};
/// assert_eq!(format_duration(10.0 * YEAR), "10.0 y");
/// ```
#[must_use]
pub fn format_duration(seconds: f64) -> String {
    if seconds == 0.0 {
        "0".to_string()
    } else if seconds >= YEAR {
        format!("{:.1} y", seconds / YEAR)
    } else if seconds >= MONTH {
        format!("{:.1} mo", seconds / MONTH)
    } else if seconds >= DAY {
        format!("{:.1} d", seconds / DAY)
    } else if seconds >= HOUR {
        format!("{:.1} h", seconds / HOUR)
    } else if seconds >= 1.0 {
        format!("{seconds:.1} s")
    } else if seconds >= 1e-3 {
        format!("{:.1} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.1} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn year_is_consistent_with_day() {
        assert!((YEAR / DAY - 365.25).abs() < 1e-9);
    }

    #[test]
    fn month_is_a_twelfth_of_a_year() {
        assert!((12.0 * MONTH - YEAR).abs() < 1e-6);
    }

    #[test]
    fn celsius_kelvin_roundtrip() {
        for c in [-40.0, 0.0, 25.0, 85.0, 125.0] {
            let back = kelvin_to_celsius(celsius_to_kelvin(c));
            assert!((back - c).abs() < 1e-12);
        }
    }

    #[test]
    fn format_duration_picks_sensible_units() {
        assert_eq!(format_duration(2.0 * YEAR), "2.0 y");
        assert_eq!(format_duration(MONTH), "1.0 mo");
        assert_eq!(format_duration(2.0 * DAY), "2.0 d");
        assert_eq!(format_duration(3.0 * HOUR), "3.0 h");
        assert_eq!(format_duration(1.5), "1.5 s");
        assert_eq!(format_duration(2e-3), "2.0 ms");
        assert_eq!(format_duration(3e-6), "3.0 us");
        assert_eq!(format_duration(5e-9), "5.0 ns");
    }

    #[test]
    fn boltzmann_constant_matches_codata() {
        assert!((BOLTZMANN_EV - 8.617e-5).abs() < 1e-8);
    }
}
