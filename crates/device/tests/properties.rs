//! Property-based tests for the device substrate: physical invariants that
//! must hold for *any* valid input, not just the calibrated operating point.

use aro_device::aging::{BtiModel, HciModel, StressInterval, TransistorAging};
use aro_device::environment::Environment;
use aro_device::mosfet::{Geometry, MosType, Mosfet};
use aro_device::params::TechParams;
use aro_device::process::{ChipProcess, DiePosition, PositionBias};
use aro_device::rng::SeedDomain;
use aro_device::units::YEAR;
use proptest::prelude::*;

prop_compose! {
    fn arb_env()(temp in -40.0..125.0f64, vdd in 0.9..1.5f64) -> Environment {
        Environment::new(temp, vdd)
    }
}

prop_compose! {
    fn arb_geometry()(w in 120.0..2000.0f64, l in 80.0..400.0f64) -> Geometry {
        Geometry::new(w, l)
    }
}

proptest! {
    /// Drive current is strictly positive and finite over the whole valid
    /// envelope, including heavy aging.
    #[test]
    fn drive_current_positive_finite(env in arb_env(), g in arb_geometry(),
                                     dvth in -0.1..0.5f64) {
        let tech = TechParams::default();
        for mos in [MosType::Nmos, MosType::Pmos] {
            let dev = Mosfet::new(mos, g, &tech);
            let i = dev.drive_current(&tech, &env, dvth);
            prop_assert!(i.is_finite() && i > 0.0);
        }
    }

    /// Monotonicity: more threshold shift never increases drive current.
    #[test]
    fn drive_current_monotone_in_aging(env in arb_env(),
                                       d1 in 0.0..0.3f64, d2 in 0.0..0.3f64) {
        let tech = TechParams::default();
        let dev = Mosfet::new(MosType::Nmos, Geometry::default(), &tech);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(dev.drive_current(&tech, &env, hi) <= dev.drive_current(&tech, &env, lo));
    }

    /// BTI is monotone in stress time under any fixed conditions.
    #[test]
    fn bti_monotone_in_time(t1 in 1.0..3.2e8f64, t2 in 1.0..3.2e8f64,
                            temp in -20.0..110.0f64, vgs in 0.8..1.4f64) {
        let tech = TechParams::default();
        let model = BtiModel::nbti(&tech);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(model.dvth_static(hi, temp, vgs) >= model.dvth_static(lo, temp, vgs));
    }

    /// Equivalent-time accumulation is order-insensitive for homogeneous
    /// conditions and never loses wear.
    #[test]
    fn bti_accumulation_never_decreases(chunks in prop::collection::vec(1e3..1e7f64, 1..20),
                                        temp in 0.0..100.0f64) {
        let tech = TechParams::default();
        let model = BtiModel::nbti(&tech);
        let mut aging = TransistorAging::new();
        let mut last = 0.0;
        for dt in chunks {
            aging.apply_bti(&model, &StressInterval::static_dc(dt, temp, tech.vdd_nominal));
            prop_assert!(aging.dvth_bti() >= last);
            last = aging.dvth_bti();
        }
    }

    /// Splitting a stress into two chunks equals one combined chunk
    /// (equivalent-time consistency), for arbitrary chunk sizes.
    #[test]
    fn bti_split_equals_combined(a in 1e3..1e8f64, b in 1e3..1e8f64,
                                 temp in 0.0..100.0f64, duty in 0.01..1.0f64) {
        let tech = TechParams::default();
        let model = BtiModel::nbti(&tech);
        let mut split = TransistorAging::new();
        split.apply_bti(&model, &StressInterval::duty_cycled(a, temp, 1.2, duty));
        split.apply_bti(&model, &StressInterval::duty_cycled(b, temp, 1.2, duty));
        let mut combined = TransistorAging::new();
        combined.apply_bti(&model, &StressInterval::duty_cycled(a + b, temp, 1.2, duty));
        let rel = (split.dvth_bti() - combined.dvth_bti()).abs() / combined.dvth_bti().max(1e-18);
        prop_assert!(rel < 1e-6, "relative error {rel}");
    }

    /// Lower duty never ages more, all else equal.
    #[test]
    fn bti_monotone_in_duty(d1 in 0.0..1.0f64, d2 in 0.0..1.0f64) {
        let tech = TechParams::default();
        let model = BtiModel::nbti(&tech);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let run = |duty: f64| {
            let mut a = TransistorAging::new();
            a.apply_bti(&model, &StressInterval::duty_cycled(YEAR, 25.0, 1.2, duty));
            a.dvth_bti()
        };
        prop_assert!(run(lo) <= run(hi));
    }

    /// HCI accumulation is monotone and split-consistent.
    #[test]
    fn hci_split_equals_combined(a in 1e6..1e12f64, b in 1e6..1e12f64, vdd in 1.0..1.4f64) {
        let tech = TechParams::default();
        let model = HciModel::new(&tech);
        let mut split = TransistorAging::new();
        split.apply_hci(&model, a, vdd);
        split.apply_hci(&model, b, vdd);
        let mut combined = TransistorAging::new();
        combined.apply_hci(&model, a + b, vdd);
        let rel = (split.dvth_hci_with(&model) - combined.dvth_hci_with(&model)).abs()
            / combined.dvth_hci_with(&model).max(1e-18);
        prop_assert!(rel < 1e-6);
    }

    /// Systematic surface is always finite and within physically sane
    /// bounds over the unit square, for any sampled chip.
    #[test]
    fn systematic_surface_bounded(seed in any::<u64>(), x in 0.0..1.0f64, y in 0.0..1.0f64) {
        let tech = TechParams::default();
        let mut rng = SeedDomain::new(seed).rng(0);
        let chip = ChipProcess::sample(&tech, &mut rng);
        let v = chip.systematic_dvth(DiePosition::new(x, y));
        prop_assert!(v.is_finite());
        prop_assert!(v.abs() < 0.2, "systematic offset {v} V is unphysical");
    }

    /// Seed domains: distinct indices give distinct seeds (no collisions in
    /// small ranges), same index same seed.
    #[test]
    fn seed_domain_injective_in_small_ranges(seed in any::<u64>(), i in 0u64..1000, j in 0u64..1000) {
        let dom = SeedDomain::new(seed).child("prop");
        if i == j {
            prop_assert_eq!(dom.seed(i), dom.seed(j));
        } else {
            prop_assert_ne!(dom.seed(i), dom.seed(j));
        }
    }

    /// Position bias sampling: length is exact and values scale with sigma.
    #[test]
    fn position_bias_scales(seed in any::<u64>(), n in 1usize..256, sigma in 0.0..0.1f64) {
        let mut rng = SeedDomain::new(seed).rng(1);
        let bias = PositionBias::sample(n, sigma, &mut rng);
        prop_assert_eq!(bias.len(), n);
        for k in 0..n {
            prop_assert!(bias.offset_rel(k).abs() <= sigma * 6.0 + 1e-12);
        }
    }
}
