//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the Criterion API its benches use: [`Criterion`] with
//! `sample_size` / `bench_function` / `benchmark_group`, [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Like real Criterion, a bench binary run without `--bench` (i.e. under
//! `cargo test`) executes each benchmark body exactly once as a smoke test;
//! under `cargo bench` it times `sample_size` samples and prints the median
//! per-sample wall time.

use std::time::{Duration, Instant};

/// Returns true when cargo invoked the binary as a real benchmark run.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Times one benchmark body.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each sample (once in smoke mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let runs = if self.bench_mode { self.sample_size } else { 1 };
        for _ in 0..runs {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_one(id: &str, bench_mode: bool, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        bench_mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    match b.median() {
        Some(med) if bench_mode => {
            println!("{id:<40} median {med:>12.3?} over {} samples", b.samples.len());
        }
        Some(_) => println!("{id:<40} ok (smoke)"),
        None => println!("{id:<40} no samples recorded"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            bench_mode: bench_mode(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Defines a benchmark with the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.bench_mode, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Defines a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.parent.bench_mode, self.parent.sample_size, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group: a function that runs each target against a
/// configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut criterion = Criterion::default().sample_size(50);
        criterion.bench_mode = false;
        let mut calls = 0u32;
        criterion.bench_function("counted", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_runs_sample_size_iterations() {
        let mut criterion = Criterion::default().sample_size(7);
        criterion.bench_mode = true;
        let mut calls = 0u32;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 7);
    }
}
