//! Per-request pipeline policy: bounded retries, per-attempt timeouts,
//! and deterministic backoff.
//!
//! This is the PR 3 harness discipline (panic isolation aside) scaled
//! down to a single authentication request: every attempt gets a
//! simulated latency budget; blowing it counts as a timeout and costs a
//! backoff before the next try. All randomness — latency jitter and
//! backoff jitter — is drawn from seed-derived streams keyed by
//! `(device, event)`, so a rerun of the same request schedule is
//! byte-identical while the fleet still never retries in lockstep.
//!
//! Latency is *simulated* (integer microseconds), never wall-clock:
//! that is what lets `serve-bench` report p50/p99 and auths/sec that are
//! byte-identical at any `--threads N`.

use rand::Rng;

/// Bounded-retry policy for one verification request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per request (device reads) before giving up.
    pub max_attempts: u32,
    /// Simulated per-attempt latency budget; an attempt that would run
    /// longer is abandoned as a timeout.
    pub attempt_timeout_us: u64,
    /// Base of the exponential backoff between attempts.
    pub backoff_base_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            attempt_timeout_us: 400,
            backoff_base_us: 50,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff charged before retry number `attempt`
    /// (1-based): exponential in the attempt with seed-derived jitter in
    /// `[0, base)`.
    pub fn backoff_us(&self, attempt: u32, rng: &mut impl Rng) -> u64 {
        let base = self.backoff_base_us.max(1);
        (base << attempt.min(6)) + rng.gen_range(0..base)
    }
}

/// Simulated service-side latency of one verification attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed verifier overhead (store lookup, comparison, bookkeeping).
    pub base_us: u64,
    /// Device read cost per response bit.
    pub per_bit_ns: u64,
    /// Extra cost when the read ran under an environment excursion
    /// (brownout/thermal events stall the device-side counters). Sized
    /// to blow the default attempt timeout: excursions surface as
    /// timeouts, exactly how a fielded verifier experiences them.
    pub excursion_penalty_us: u64,
    /// Uniform jitter bound added to every attempt.
    pub jitter_us: u64,
    /// Extra cost per replica hop when the quorum read falls past the
    /// home replica (replica `k` costs `k` hops). Kept well under
    /// `base_us`: fallback reads are slower, never timeouts.
    pub replica_hop_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            base_us: 60,
            per_bit_ns: 800,
            excursion_penalty_us: 600,
            jitter_us: 25,
            replica_hop_us: 15,
        }
    }
}

impl LatencyModel {
    /// Simulated cost of one attempt reading `bits` response bits.
    pub fn attempt_us(&self, bits: usize, excursion: bool, rng: &mut impl Rng) -> u64 {
        let read_ns = self.per_bit_ns * bits as u64;
        let mut us = self.base_us + read_ns.div_ceil(1000) + rng.gen_range(0..=self.jitter_us);
        if excursion {
            us += self.excursion_penalty_us;
        }
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_device::rng::SeedDomain;

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let policy = RetryPolicy::default();
        let draw = |attempt: u32| {
            let mut rng = SeedDomain::new(9).child("t").rng(attempt.into());
            policy.backoff_us(attempt, &mut rng)
        };
        assert!(draw(2) > draw(1), "backoff must grow with the attempt");
        assert_eq!(draw(1), draw(1), "same seed, same backoff");
    }

    #[test]
    fn excursions_blow_the_default_timeout() {
        let policy = RetryPolicy::default();
        let latency = LatencyModel::default();
        let mut rng = SeedDomain::new(4).child("t").rng(0);
        let clean = latency.attempt_us(32, false, &mut rng);
        let slow = latency.attempt_us(32, true, &mut rng);
        assert!(clean <= policy.attempt_timeout_us, "clean read fits: {clean}");
        assert!(slow > policy.attempt_timeout_us, "excursion times out: {slow}");
    }
}
