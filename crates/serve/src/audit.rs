//! Request-scoped audit trail: the forensic record of *why* the service
//! answered the way it did.
//!
//! Counters say the fleet had 12 timeouts; the audit trail says request
//! `a91f03c2…` against device 3 read its record intact from shard 1,
//! blew the 400 µs budget twice under an environment excursion, measured
//! a 0.31 fractional distance on the third attempt, was rejected, and
//! pushed the device into quarantine — which is what an incident review
//! actually needs. Every verification request gets a **seed-derived
//! request id** and emits its full causal chain as structured JSONL
//! events (`"event":"audit"`) to the `aro-obs` telemetry sink:
//!
//! ```text
//! scope        → one fleet trial begins (cell style, age, fault plan)
//! request      → request id, device, target record, traffic kind
//! store_read   → Intact/Corrupt/Missing, shard + replica served, group damage
//! attempt      → simulated latency, timeout/backoff, which faults hit
//! verdict      → the decision, distance, quarantine routing, sim clock
//! shed         → deterministic load-control rejections
//! health       → healthy → degraded → read-only transitions
//! store_health → replica-group health transitions after a scrub pass
//! scrub        → anti-entropy read-repairs and unrecoverable groups
//! reenroll     → continuity-gate outcome + new repair generation
//! ```
//!
//! **Determinism.** Attempt-level facts are *captured* inside
//! [`crate::AuthService::probe`] (worker threads, pure per device) and
//! carried on the [`crate::RequestOutcome`]; all *emission* happens in
//! the sequential admit/maintenance path, in device-index order — the
//! same plan-parallel-fold discipline as the rest of the repo — so the
//! audit stream is byte-identical at any `--threads N`. No line carries
//! a wall-clock timestamp: time is the simulated-µs service clock.
//!
//! **Cost.** Off by default. Disabled, every capture site pays one
//! relaxed atomic load; enabled, capture allocates one small record per
//! request and emission is one sink write per admitted request
//! (measured ≤ 10 % on serve-bench wall time — see
//! `docs/OBSERVABILITY.md`, "Serve audit trail & incident forensics").

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use aro_obs::json;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic line sequence (resets when audit is (re-)enabled).
static SEQ: AtomicU64 = AtomicU64::new(0);
/// Monotonic trial (scope) counter; 0 = outside any scope.
static TRIAL: AtomicU64 = AtomicU64::new(0);

/// Turns the audit trail on or off process-wide. Enabling resets the
/// line sequence and trial counter so separate runs emit identical
/// streams. Events only reach disk while `aro-obs` instrumentation and
/// a telemetry sink are also live (`repro --audit` requires
/// `--telemetry`).
pub fn set_enabled(on: bool) {
    if on {
        SEQ.store(0, Ordering::Relaxed);
        TRIAL.store(0, Ordering::Relaxed);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when audit capture is live — the one relaxed load every capture
/// site checks first.
#[inline]
#[must_use]
pub fn capturing() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// True when emitted lines can actually reach the telemetry file.
#[inline]
fn emitting() -> bool {
    capturing() && aro_obs::enabled() && aro_obs::sink::installed()
}

fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

fn trial() -> u64 {
    TRIAL.load(Ordering::Relaxed)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut hash: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The seed-derived request id: a pure function of `(trial, device,
/// target, event_base)`, so the same request in a rerun — at any thread
/// count — gets the same id, and ids never collide within a trial
/// (event bases are unique per request).
#[must_use]
pub fn request_id(trial: u64, device: u64, target: u64, event_base: u64) -> u64 {
    let mut hash = fnv_u64(FNV_OFFSET, trial);
    hash = fnv_u64(hash, device);
    hash = fnv_u64(hash, target);
    fnv_u64(hash, event_base)
}

/// Which faults the injector landed on one verification attempt —
/// captured at the fire site so the audit line links the decision to
/// its cause without re-deriving injector draws.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptFaults {
    /// The measurement ran under an environment excursion
    /// (brownout/thermal event).
    pub excursion: bool,
    /// A readout noise burst was active.
    pub burst: bool,
    /// Response bits flipped by counter glitches.
    pub glitches: u64,
}

impl AttemptFaults {
    /// Whether any fault fired on this attempt.
    #[must_use]
    pub fn any(&self) -> bool {
        self.excursion || self.burst || self.glitches > 0
    }
}

/// One attempt's audit facts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptAudit {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Simulated cost charged for this attempt (timeout charge when
    /// `timed_out`).
    pub latency_us: u64,
    /// The attempt blew its latency budget.
    pub timed_out: bool,
    /// Backoff charged after this attempt (0 when none).
    pub backoff_us: u64,
    /// Fractional HD measured, when the read completed.
    pub distance: Option<f64>,
    /// Injected faults that hit this attempt.
    pub faults: AttemptFaults,
}

/// What the store read found, audit-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAudit {
    /// Some replica's checksum held.
    Intact {
        /// Shard index of the replica that served the read.
        shard: usize,
        /// Replica index that served (0 = home copy; higher = the home
        /// copy was damaged and a sibling served).
        replica: u32,
        /// Sibling replicas that were corrupt or wiped (redundancy lost).
        lost: u32,
    },
    /// Every surviving replica failed its checksum; the media flagged
    /// `flagged` helper bits on the served copy.
    Corrupt {
        /// Shard index of the replica served to recovery.
        shard: usize,
        /// Helper positions the storage media flagged as lost.
        flagged: usize,
        /// Sibling replicas wiped outright.
        wiped: u32,
    },
    /// No replica holds a record for the id. `wiped` distinguishes a
    /// group lost to replica wipes/shard losses from an id that was
    /// never enrolled.
    Missing {
        /// Enrolled-then-wiped replicas the read saw.
        wiped: u32,
    },
}

impl StoreAudit {
    fn label(self) -> &'static str {
        match self {
            Self::Intact { .. } => "intact",
            Self::Corrupt { .. } => "corrupt",
            Self::Missing { .. } => "missing",
        }
    }
}

/// The per-request audit record assembled inside `probe` (worker
/// threads) and emitted by the sequential admit path.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestAudit {
    /// The chip that answered.
    pub probe_id: u64,
    /// Event-id base of the request (unique per request per trial).
    pub event_base: u64,
    /// Store read outcome.
    pub store: StoreAudit,
    /// Per-attempt facts, in attempt order.
    pub attempts: Vec<AttemptAudit>,
}

fn write_head(line: &mut String, stage: &str) {
    let _ = write!(
        line,
        "{{\"event\":\"audit\",\"stage\":\"{stage}\",\"seq\":{},\"trial\":{}",
        next_seq(),
        trial()
    );
}

fn write_req(line: &mut String, req: u64) {
    let _ = write!(line, ",\"req\":\"{req:016x}\"");
}

/// Opens a new audit scope (one fleet trial): bumps the trial counter
/// and, when emitting, writes the scope line. Returns the trial id —
/// callers thread it into [`request_id`]. Scope ids advance even while
/// emission is off so request ids stay stable relative to the trial
/// structure of the run.
pub fn scope_begin(label: &str) -> u64 {
    let t = TRIAL.fetch_add(1, Ordering::Relaxed) + 1;
    if emitting() {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"event\":\"audit\",\"stage\":\"scope\",\"seq\":{},\"trial\":{t},\"label\":",
            next_seq()
        );
        json::escape_into(&mut line, label);
        line.push('}');
        aro_obs::sink::write_line(&line);
    }
    t
}

/// Emits the full causal block for one admitted request: the `request`
/// line, the `store_read` line, one `attempt` line per attempt, and the
/// `verdict` line. Called sequentially from the admit path.
#[allow(clippy::too_many_arguments)]
pub fn emit_request(
    audit: &RequestAudit,
    target: u64,
    kind: &str,
    verdict: &str,
    distance: Option<f64>,
    quarantined: bool,
    latency_us: u64,
    at_us: u64,
) {
    if !emitting() {
        return;
    }
    let req = request_id(trial(), audit.probe_id, target, audit.event_base);
    let mut lines: Vec<String> = Vec::with_capacity(3 + audit.attempts.len());

    let mut line = String::with_capacity(160);
    write_head(&mut line, "request");
    write_req(&mut line, req);
    let _ = write!(
        line,
        ",\"device\":{},\"target\":{target},\"kind\":\"{kind}\",\"event_base\":{}}}",
        audit.probe_id, audit.event_base
    );
    lines.push(line);

    let mut line = String::with_capacity(120);
    write_head(&mut line, "store_read");
    write_req(&mut line, req);
    let _ = write!(line, ",\"outcome\":\"{}\"", audit.store.label());
    match audit.store {
        StoreAudit::Intact {
            shard,
            replica,
            lost,
        } => {
            let _ = write!(
                line,
                ",\"shard\":{shard},\"replica\":{replica},\"replicas_lost\":{lost}"
            );
        }
        StoreAudit::Corrupt {
            shard,
            flagged,
            wiped,
        } => {
            let _ = write!(
                line,
                ",\"shard\":{shard},\"flagged\":{flagged},\"replicas_wiped\":{wiped}"
            );
        }
        StoreAudit::Missing { wiped } => {
            let _ = write!(line, ",\"replicas_wiped\":{wiped}");
        }
    }
    line.push('}');
    lines.push(line);

    for a in &audit.attempts {
        let mut line = String::with_capacity(200);
        write_head(&mut line, "attempt");
        write_req(&mut line, req);
        let _ = write!(
            line,
            ",\"attempt\":{},\"latency_us\":{},\"timeout\":{},\"backoff_us\":{}",
            a.attempt, a.latency_us, a.timed_out, a.backoff_us
        );
        if let Some(d) = a.distance {
            line.push_str(",\"distance\":");
            json::number_into(&mut line, d);
        }
        let _ = write!(
            line,
            ",\"excursion\":{},\"burst\":{},\"glitches\":{}}}",
            a.faults.excursion, a.faults.burst, a.faults.glitches
        );
        lines.push(line);
    }

    let mut line = String::with_capacity(160);
    write_head(&mut line, "verdict");
    write_req(&mut line, req);
    let _ = write!(line, ",\"device\":{},\"verdict\":\"{verdict}\"", audit.probe_id);
    if let Some(d) = distance {
        line.push_str(",\"distance\":");
        json::number_into(&mut line, d);
    }
    let _ = write!(
        line,
        ",\"attempts\":{},\"latency_us\":{latency_us},\"quarantined\":{quarantined},\"at_us\":{at_us}}}",
        audit.attempts.len().max(1)
    );
    lines.push(line);

    aro_obs::sink::write_lines(&lines);
}

/// Emits one load-shedding decision.
pub fn emit_shed(device: u64, retry_after_us: u64, at_us: u64) {
    if !emitting() {
        return;
    }
    let mut line = String::with_capacity(96);
    write_head(&mut line, "shed");
    let _ = write!(
        line,
        ",\"device\":{device},\"retry_after_us\":{retry_after_us},\"at_us\":{at_us}}}"
    );
    aro_obs::sink::write_line(&line);
}

/// Emits one health-machine state transition.
pub fn emit_health(from: &str, to: &str, error_rate: f64, at_us: u64) {
    if !emitting() {
        return;
    }
    let mut line = String::with_capacity(120);
    write_head(&mut line, "health");
    let _ = write!(line, ",\"from\":\"{from}\",\"to\":\"{to}\",\"error_rate\":");
    json::number_into(&mut line, error_rate);
    let _ = write!(line, ",\"at_us\":{at_us}}}");
    aro_obs::sink::write_line(&line);
}

/// Emits one maintenance (re-enrollment) outcome. `outcome` is one of
/// `readmitted`, `gate_failed`, `refused_read_only`, `missing`.
/// `generation` is the fresh repair generation stamped on the group
/// when readmitted (0 otherwise) — the field that separates a new
/// enrollment lineage from a scrub read-repair in forensics.
pub fn emit_reenroll(
    device: u64,
    event_base: u64,
    outcome: &str,
    attempts: u64,
    generation: u64,
    at_us: u64,
) {
    if !emitting() {
        return;
    }
    let req = request_id(trial(), device, device, event_base);
    let mut line = String::with_capacity(160);
    write_head(&mut line, "reenroll");
    write_req(&mut line, req);
    let _ = write!(
        line,
        ",\"device\":{device},\"outcome\":\"{outcome}\",\"attempts\":{attempts},\"generation\":{generation},\"at_us\":{at_us}}}"
    );
    aro_obs::sink::write_line(&line);
}

/// Emits one anti-entropy scrub finding. `outcome` is `read_repair`
/// (the replica was rewritten from an intact sibling of `generation`)
/// or `unrecoverable` (no intact replica survives; only re-enrollment
/// can help).
pub fn emit_scrub(device: u64, replica: u32, generation: u64, outcome: &str, at_us: u64) {
    if !emitting() {
        return;
    }
    let mut line = String::with_capacity(140);
    write_head(&mut line, "scrub");
    let _ = write!(
        line,
        ",\"device\":{device},\"replica\":{replica},\"generation\":{generation},\"outcome\":\"{outcome}\",\"at_us\":{at_us}}}"
    );
    aro_obs::sink::write_line(&line);
}

/// Emits one replica-group health transition (observed by the scrub
/// pass): `intact` → `replica-degraded` → `quorum-critical` and back.
pub fn emit_store_health(from: &str, to: &str, unrecoverable: u64, at_us: u64) {
    if !emitting() {
        return;
    }
    let mut line = String::with_capacity(140);
    write_head(&mut line, "store_health");
    let _ = write!(
        line,
        ",\"from\":\"{from}\",\"to\":\"{to}\",\"unrecoverable\":{unrecoverable},\"at_us\":{at_us}}}"
    );
    aro_obs::sink::write_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_deterministic_and_distinct() {
        let a = request_id(1, 3, 3, 80);
        assert_eq!(a, request_id(1, 3, 3, 80), "pure function of its inputs");
        assert_ne!(a, request_id(1, 3, 3, 88), "event base separates requests");
        assert_ne!(a, request_id(2, 3, 3, 80), "trial separates sweeps");
        assert_ne!(a, request_id(1, 3, 4, 80), "impostor targets differ");
    }

    #[test]
    fn disabled_capture_is_off_and_scope_still_counts_trials() {
        set_enabled(false);
        assert!(!capturing());
        let t1 = scope_begin("quiet");
        let t2 = scope_begin("quiet");
        assert_eq!(t2, t1 + 1, "trial ids advance even while off");
        set_enabled(true);
        assert_eq!(scope_begin("fresh"), 1, "enabling resets the counters");
        set_enabled(false);
    }

    #[test]
    fn attempt_faults_any() {
        assert!(!AttemptFaults::default().any());
        assert!(AttemptFaults { excursion: true, ..Default::default() }.any());
        assert!(AttemptFaults { glitches: 2, ..Default::default() }.any());
    }
}
