//! Round-based fleet benchmark driver.
//!
//! Traffic is organized in **rounds** over the fleet: each round plans a
//! deterministic action per device (probe, shed, or skip-quarantined),
//! fans the probes out through `aro-par` (each probe is `&service` +
//! `&mut` its own chip, pure per device), then admits outcomes
//! **sequentially in device-index order** — the same
//! plan-parallel-fold-in-index-order discipline that keeps every other
//! sweep in this repo byte-identical at any `--threads N`. A
//! maintenance pass after each genuine round routes quarantined devices
//! through re-enrollment, with exponential backoff on devices whose
//! re-enrollment keeps failing: a broken device is retried after 2,
//! then 4, then 8… rounds instead of every round, so an unhealable
//! fleet costs logarithmically many maintenance reads, not one full
//! re-enrollment attempt per device per round. Each maintenance pass
//! ends with one anti-entropy scrub of the replicated store, so replica
//! damage is healed within a round of being inflicted.
//!
//! Impostor rounds make device `i` answer record `i+1 (mod n)`: the
//! false-accept side of the ROC, with its failures kept out of the
//! quarantine/health plumbing (an impostor must not push a genuine
//! device's record into maintenance).
//!
//! Reported wall time is *simulated*: requests are charged to their
//! record's store shard, shards run in parallel, a round costs its
//! slowest shard. p50/p99 are exact order statistics over all request
//! latencies. Everything is integer µs — byte-stable in reports.

use std::collections::BTreeMap;

use aro_device::environment::Environment;
use aro_ecc::keygen::KeyGenerator;
use aro_faults::FaultInjector;
use aro_puf::{Chip, PufDesign};

use crate::service::{AuthService, HealthState, RequestOutcome, StoreHealth, Tallies};

/// Event-id strides/bases keeping probe, impostor, and re-enrollment
/// measurement events disjoint per injector.
const EVENT_STRIDE: u64 = 8;
const IMPOSTOR_EVENT_BASE: u64 = 1 << 33;
const REENROLL_EVENT_BASE: u64 = 1 << 34;

/// The fleet-shared context a benchmark runs against.
#[derive(Debug, Clone, Copy)]
pub struct FleetContext<'a> {
    /// The PUF design every fleet device instantiates.
    pub design: &'a PufDesign,
    /// Nominal verification environment.
    pub env: &'a Environment,
    /// The provisioned key generator (re-enrollment path).
    pub generator: &'a KeyGenerator,
    /// The key-enrollment pair set (shared across the fleet).
    pub key_pairs: &'a [(usize, usize)],
}

/// How much traffic to run.
#[derive(Debug, Clone, Copy)]
pub struct BenchPlan {
    /// Rounds where every admitted device answers its own record.
    pub genuine_rounds: u32,
    /// Rounds where device `i` answers record `i+1 (mod n)`.
    pub impostor_rounds: u32,
}

/// What a fleet benchmark measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Final service counters.
    pub tallies: Tallies,
    /// Genuine requests that reached an answer.
    pub genuine_served: u64,
    /// Genuine requests denied (any non-accept verdict) — FRR numerator.
    pub genuine_denied: u64,
    /// Impostor requests that reached an answer.
    pub impostor_served: u64,
    /// Impostor requests accepted — FAR numerator (must stay zero).
    pub impostor_accepted: u64,
    /// Median request latency, simulated µs.
    pub p50_us: u64,
    /// 99th-percentile request latency, simulated µs.
    pub p99_us: u64,
    /// Simulated wall time of the whole run (shard-parallel), µs.
    pub wall_us: u64,
    /// Final health state of the service.
    pub final_state: HealthState,
    /// Final replica-health axis of the store.
    pub final_store_health: StoreHealth,
    /// Replicas rewritten by the maintenance cycle's anti-entropy scrub.
    pub scrub_repairs: u64,
    /// Record groups some scrub pass found with no intact replica left.
    pub scrub_unrecoverable: u64,
}

impl BenchStats {
    /// False-accept rate over impostor traffic.
    #[must_use]
    pub fn far(&self) -> f64 {
        self.impostor_accepted as f64 / self.impostor_served.max(1) as f64
    }

    /// False-reject rate over genuine traffic.
    #[must_use]
    pub fn frr(&self) -> f64 {
        self.genuine_denied as f64 / self.genuine_served.max(1) as f64
    }

    /// Served authentications per simulated second.
    #[must_use]
    pub fn auths_per_sec(&self) -> f64 {
        let served = self.genuine_served + self.impostor_served;
        served as f64 * 1.0e6 / self.wall_us.max(1) as f64
    }
}

enum Action {
    Probe(u64),
    Shed(u64),
    Skip,
}

fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as u64 * p / 100) as usize]
}

/// Runs the benchmark: `plan.genuine_rounds` rounds of own-record
/// traffic with maintenance between rounds, then `plan.impostor_rounds`
/// rounds of cross-record traffic. Device `i` of `fleet` owns record id
/// `i`. Deterministic in its arguments at any thread count.
pub fn run_bench(
    service: &mut AuthService,
    fleet: &mut [Chip],
    ctx: &FleetContext<'_>,
    plan: &BenchPlan,
    inj: Option<&FaultInjector>,
) -> BenchStats {
    let n = fleet.len();
    let mut latencies: Vec<u64> = Vec::new();
    let mut wall_us = 0u64;
    let mut genuine_served = 0u64;
    let mut genuine_denied = 0u64;
    let mut impostor_served = 0u64;
    let mut impostor_accepted = 0u64;
    // Maintenance backoff ledger: device id → (next eligible round,
    // consecutive failures). Deterministic — a pure function of the
    // device's failure history, independent of thread count.
    let mut retry_after: BTreeMap<u64, (u64, u32)> = BTreeMap::new();

    // Folds one round's outcomes in index order. `genuine` flips the
    // meaning of the `negative` tally: denials for genuine traffic,
    // accepts for impostor traffic.
    let admit_round = |service: &mut AuthService,
                           actions: &[Action],
                           outcomes: &[Option<RequestOutcome>],
                           latencies: &mut Vec<u64>,
                           genuine: bool| {
        let mut shard_us = vec![0u64; service.store().n_shards()];
        let mut served = 0u64;
        let mut negative = 0u64;
        for (device, (action, outcome)) in actions.iter().zip(outcomes).enumerate() {
            match (action, outcome) {
                (Action::Shed(after), _) => service.admit_shed(device as u64, *after),
                (_, Some(outcome)) => {
                    served += 1;
                    if genuine != outcome.verdict.is_accept() {
                        negative += 1;
                    }
                    latencies.push(outcome.latency_us);
                    shard_us[service.store().shard_of(outcome.target_id)] +=
                        outcome.latency_us;
                    service.admit(outcome, genuine);
                }
                _ => {}
            }
        }
        (served, negative, shard_us.into_iter().max().unwrap_or(0))
    };

    for round in 0..u64::from(plan.genuine_rounds) {
        let actions: Vec<Action> = (0..n)
            .map(|i| {
                let order = round * n as u64 + i as u64;
                if service.is_quarantined(i as u64) {
                    Action::Skip
                } else if let Some(after) = service.should_shed(order) {
                    Action::Shed(after)
                } else {
                    Action::Probe(order * EVENT_STRIDE)
                }
            })
            .collect();
        let svc: &AuthService = service;
        let outcomes: Vec<Option<RequestOutcome>> = aro_par::par_map_mut(fleet, |i, chip| {
            match actions[i] {
                Action::Probe(event_base) => Some(svc.probe(
                    chip,
                    i as u64,
                    i as u64,
                    event_base,
                    ctx.design,
                    ctx.env,
                    inj,
                )),
                _ => None,
            }
        });
        let (served, denied, round_wall) =
            admit_round(service, &actions, &outcomes, &mut latencies, true);
        genuine_served += served;
        genuine_denied += denied;
        wall_us += round_wall;
        // Maintenance: quarantined devices come in for re-enrollment,
        // skipping any still inside their failure backoff window.
        for id in service.quarantined_ids() {
            if retry_after.get(&id).is_some_and(|&(next, _)| round < next) {
                continue;
            }
            let Some(chip) = fleet.get_mut(id as usize) else {
                continue;
            };
            let event_base = REENROLL_EVENT_BASE + (round * n as u64 + id) * EVENT_STRIDE;
            if service.reenroll(
                chip,
                id,
                id,
                ctx.key_pairs,
                ctx.generator,
                ctx.design,
                ctx.env,
                inj,
                event_base,
            ) {
                retry_after.remove(&id);
            } else {
                let failures = retry_after.get(&id).map_or(0, |&(_, f)| f) + 1;
                retry_after.insert(id, (round + (1u64 << failures.min(16)), failures));
            }
        }
        // Anti-entropy scrub closes the maintenance pass: any replica
        // this round's faults corrupted or wiped is rewritten from an
        // intact sibling before the next round's traffic reads it.
        service.scrub();
    }

    if n >= 2 {
        for round in 0..u64::from(plan.impostor_rounds) {
            let actions: Vec<Action> = (0..n)
                .map(|i| {
                    let order = round * n as u64 + i as u64;
                    match service.should_shed(order) {
                        Some(after) => Action::Shed(after),
                        None => Action::Probe(IMPOSTOR_EVENT_BASE + order * EVENT_STRIDE),
                    }
                })
                .collect();
            let svc: &AuthService = service;
            let outcomes: Vec<Option<RequestOutcome>> = aro_par::par_map_mut(fleet, |i, chip| {
                match actions[i] {
                    Action::Probe(event_base) => Some(svc.probe(
                        chip,
                        i as u64,
                        ((i + 1) % n) as u64,
                        event_base,
                        ctx.design,
                        ctx.env,
                        inj,
                    )),
                    _ => None,
                }
            });
            let (served, accepted, round_wall) =
                admit_round(service, &actions, &outcomes, &mut latencies, false);
            impostor_served += served;
            impostor_accepted += accepted;
            wall_us += round_wall;
        }
    }

    latencies.sort_unstable();
    BenchStats {
        tallies: *service.tallies(),
        genuine_served,
        genuine_denied,
        impostor_served,
        impostor_accepted,
        p50_us: percentile(&latencies, 50),
        p99_us: percentile(&latencies, 99),
        wall_us,
        final_state: service.state(),
        final_store_health: service.store_health(),
        scrub_repairs: service.tallies().scrub_repairs,
        scrub_unrecoverable: service.tallies().scrub_unrecoverable,
    }
}
