//! The sharded, replicated, crash-safe enrollment/helper-data store.
//!
//! A verifier backend keeps one record per enrolled device: the CRP
//! reference material, the key generator's public helper data, and the
//! verifier's copy of the current key (the re-enrollment continuity
//! anchor). Helper data is public but **unauthenticated** by the fuzzy
//! extractor itself — a flipped stored bit silently corrupts the
//! recovered key — so every record is sealed with a checksum at write
//! time and re-verified on every read. A mismatch is routed to recovery
//! ([`ReadOutcome::Corrupt`]), never panicked on and never served.
//!
//! Records live in **fixed-index shards**: the home shard of a device is
//! `device_id / ceil(fleet_capacity / n_shards)` — the same
//! `div_ceil`-chunk discipline `aro-par` uses to split work across
//! threads, so the store layout is a pure function of `(capacity,
//! shards, replicas)` and identical no matter what order records arrive
//! or which thread asks.
//!
//! On top of the shards sit **N-way replica groups**: replica `k` of a
//! device lives in shard `(home + k) mod n_shards`, so each copy sits in
//! a different failure domain. A read serves the lowest-indexed intact
//! replica and fails closed only when *every* replica is corrupt or
//! wiped; the deterministic [`ShardedStore::scrub`] anti-entropy pass
//! copies an intact replica over its damaged siblings (seal-mismatch
//! read-repair), and [`ShardedStore::repair`] — the re-enrollment path —
//! stamps a fresh **repair generation** on the group so forensics can
//! tell a new enrollment lineage from a scrub copy of the old one.
//!
//! Store corruption is injected with the *same* `aro-faults` machinery
//! the device-side NVM uses ([`ShardedStore::erode`]): helper bits erode
//! per `(device, window, replica)` in a window id space offset by
//! [`STORE_WINDOW_BASE`] (replica 0 draws the exact coordinates the
//! pre-replication store drew), whole replicas are wiped per `(device,
//! window)` and whole shards lost per `(shard, window)` — independent
//! streams, all byte-deterministic under one injector.

use aro_ecc::fuzzy::HelperData;
use aro_faults::FaultInjector;
use aro_metrics::bits::BitString;

/// Window-id base for store-side erosion draws, keeping the verifier's
/// NVM fault coordinates disjoint from every device-side helper window
/// (device lifecycles count mission windows from zero and stay far below
/// this).
pub const STORE_WINDOW_BASE: u64 = 1 << 40;

/// Window-id stride separating the erosion streams of sibling replicas:
/// replica `k` of a group erodes at `STORE_WINDOW_BASE + window + k ·
/// REPLICA_WINDOW_STRIDE`, so each copy takes independent damage while
/// replica 0 reproduces the pre-replication store byte-for-byte.
pub const REPLICA_WINDOW_STRIDE: u64 = 1 << 20;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, value: u64) -> u64 {
    fnv(hash, &value.to_le_bytes())
}

/// One device's verifier-side enrollment, integrity-sealed.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    device_id: u64,
    challenge_pairs: Vec<(usize, usize)>,
    reference: BitString,
    helper: HelperData,
    key: BitString,
    /// Media-level erasure flags: `(block, bit)` helper positions the
    /// storage layer knows it lost (an NVM controller reports these on
    /// read). Recovery feeds them to the erasure-aware decoder.
    flagged: Vec<(usize, usize)>,
    /// Enrollment lineage: 0 at factory enrollment, bumped by every
    /// re-enrollment [`ShardedStore::repair`]. Scrub read-repairs copy
    /// the source replica's generation unchanged — anti-entropy
    /// propagates a lineage, re-enrollment starts one.
    repair_generation: u64,
    checksum: u64,
}

impl StoredRecord {
    /// Seals a fresh enrollment record (checksum computed here,
    /// repair generation 0).
    #[must_use]
    pub fn new(
        device_id: u64,
        challenge_pairs: Vec<(usize, usize)>,
        reference: BitString,
        helper: HelperData,
        key: BitString,
    ) -> Self {
        let mut record = Self {
            device_id,
            challenge_pairs,
            reference,
            helper,
            key,
            flagged: Vec::new(),
            repair_generation: 0,
            checksum: 0,
        };
        record.checksum = record.digest();
        record
    }

    fn digest(&self) -> u64 {
        let mut hash = fnv_u64(FNV_OFFSET, self.device_id);
        for &(a, b) in &self.challenge_pairs {
            hash = fnv_u64(hash, a as u64);
            hash = fnv_u64(hash, b as u64);
        }
        hash = fnv_u64(hash, self.reference.len() as u64);
        hash = fnv(hash, &self.reference.to_bytes());
        hash = fnv_u64(hash, self.helper.digest());
        hash = fnv_u64(hash, self.key.len() as u64);
        hash = fnv(hash, &self.key.to_bytes());
        fnv_u64(hash, self.repair_generation)
    }

    /// Whether the stored bytes still match the checksum sealed at
    /// enrollment.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        self.digest() == self.checksum
    }

    /// The enrolled device id.
    #[must_use]
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    /// The device's challenge pair set.
    #[must_use]
    pub fn challenge_pairs(&self) -> &[(usize, usize)] {
        &self.challenge_pairs
    }

    /// The enrolled CRP reference response.
    #[must_use]
    pub fn reference(&self) -> &BitString {
        &self.reference
    }

    /// The stored (possibly eroded) helper data.
    #[must_use]
    pub fn helper(&self) -> &HelperData {
        &self.helper
    }

    /// The verifier's copy of the device's current key.
    #[must_use]
    pub fn key(&self) -> &BitString {
        &self.key
    }

    /// Helper positions the storage media has flagged as lost.
    #[must_use]
    pub fn flagged(&self) -> &[(usize, usize)] {
        &self.flagged
    }

    /// The enrollment lineage this record belongs to (0 = factory).
    #[must_use]
    pub fn repair_generation(&self) -> u64 {
        self.repair_generation
    }

    /// This record re-sealed under a new repair generation (the
    /// re-enrollment path; scrub copies never call this).
    #[must_use]
    pub fn with_repair_generation(mut self, generation: u64) -> Self {
        self.repair_generation = generation;
        self.checksum = self.digest();
        self
    }
}

/// What a store read found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadOutcome<'a> {
    /// No replica holds a record for this device id (never enrolled, or
    /// every copy wiped).
    Missing,
    /// At least one replica is present and its checksum holds.
    Intact(&'a StoredRecord),
    /// Every surviving replica fails its checksum: the group was
    /// corrupted in place. Served to *recovery* only, never to a verify
    /// decision.
    Corrupt(&'a StoredRecord),
}

/// Per-replica-group health observed by a read: how many copies were
/// intact / seal-broken / wiped, and which replica served the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaSummary {
    /// Replicas whose seal held.
    pub intact: u32,
    /// Replicas present but failing their checksum.
    pub corrupt: u32,
    /// Replicas enrolled but since wiped (replica wipe or shard loss).
    pub wiped: u32,
    /// The replica index the returned record came from, if any.
    pub served: Option<u32>,
}

impl ReplicaSummary {
    /// Whether the group has lost redundancy but can still serve.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.intact > 0 && (self.corrupt > 0 || self.wiped > 0)
    }
}

/// One scrub read-repair: `replica` of `device_id` was overwritten from
/// an intact sibling carrying `generation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubRepair {
    /// The repaired device group.
    pub device_id: u64,
    /// The replica index rewritten.
    pub replica: u32,
    /// The repair generation of the intact source replica (propagated,
    /// not bumped — scrub copies a lineage, re-enrollment starts one).
    pub generation: u64,
}

/// The outcome of one deterministic anti-entropy pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Replica groups scanned.
    pub groups: u64,
    /// Read-repairs applied, in ascending (device, replica) order.
    pub repairs: Vec<ScrubRepair>,
    /// Devices with zero intact replicas — scrub cannot help them; only
    /// re-enrollment can.
    pub unrecoverable: Vec<u64>,
}

impl ScrubReport {
    /// Whether the pass changed nothing and found nothing unrecoverable.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.repairs.is_empty() && self.unrecoverable.is_empty()
    }
}

/// One stored copy of a device's record. The slot outlives its record:
/// a wiped replica keeps its `(device, replica)` address so scrub knows
/// what to rebuild.
#[derive(Debug, Clone)]
struct ReplicaSlot {
    device_id: u64,
    replica: u32,
    record: Option<StoredRecord>,
}

/// Fixed-index sharded record store with N-way replica groups.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<Vec<ReplicaSlot>>,
    chunk: usize,
    n_replicas: u32,
}

impl ShardedStore {
    /// An unreplicated store laid out for `capacity` devices across
    /// `n_shards` fixed index chunks (`aro-par`'s `div_ceil` discipline).
    /// Ids at or past `capacity` clamp to the last shard.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    #[must_use]
    pub fn for_fleet(capacity: usize, n_shards: usize) -> Self {
        Self::for_fleet_replicated(capacity, n_shards, 1)
    }

    /// A store keeping `n_replicas` copies of every record, replica `k`
    /// of a device placed in shard `(home + k) mod n_shards` so each
    /// copy sits in a different failure domain.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero, `n_replicas` is zero, or
    /// `n_replicas` exceeds `n_shards` (there are only `n_shards`
    /// failure domains to spread copies across).
    #[must_use]
    pub fn for_fleet_replicated(capacity: usize, n_shards: usize, n_replicas: usize) -> Self {
        assert!(n_shards > 0, "a store needs at least one shard");
        assert!(n_replicas > 0, "a record needs at least one replica");
        assert!(
            n_replicas <= n_shards,
            "replicas ({n_replicas}) cannot outnumber shards ({n_shards})"
        );
        Self {
            shards: (0..n_shards).map(|_| Vec::new()).collect(),
            chunk: capacity.max(1).div_ceil(n_shards),
            n_replicas: n_replicas as u32,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Copies kept of every record.
    #[must_use]
    pub fn n_replicas(&self) -> usize {
        self.n_replicas as usize
    }

    /// The fixed home shard index of a device id (where replica 0 lives).
    #[must_use]
    pub fn shard_of(&self, device_id: u64) -> usize {
        ((device_id as usize) / self.chunk).min(self.shards.len() - 1)
    }

    /// The shard hosting replica `replica` of a device.
    #[must_use]
    pub fn replica_shard(&self, device_id: u64, replica: u32) -> usize {
        (self.shard_of(device_id) + replica as usize) % self.shards.len()
    }

    /// Enrolled device groups (a group survives even with every copy
    /// wiped — the addresses remain for scrub and forensics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .filter(|slot| slot.replica == 0)
            .count()
    }

    /// Whether the store holds no groups.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, device_id: u64, replica: u32) -> Option<&ReplicaSlot> {
        let shard = &self.shards[self.replica_shard(device_id, replica)];
        shard
            .binary_search_by_key(&(device_id, replica), |s| (s.device_id, s.replica))
            .ok()
            .map(|at| &shard[at])
    }

    fn put_slot(&mut self, device_id: u64, replica: u32, record: Option<StoredRecord>) {
        let idx = self.replica_shard(device_id, replica);
        let shard = &mut self.shards[idx];
        match shard.binary_search_by_key(&(device_id, replica), |s| (s.device_id, s.replica)) {
            Ok(at) => shard[at].record = record,
            Err(at) => shard.insert(
                at,
                ReplicaSlot {
                    device_id,
                    replica,
                    record,
                },
            ),
        }
    }

    /// All enrolled device ids, ascending.
    fn device_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flatten()
            .filter(|slot| slot.replica == 0)
            .map(|slot| slot.device_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Inserts (or replaces) a record, writing every replica of its
    /// group, each to its fixed shard, keeping shards `(id, replica)`-
    /// sorted so the layout is insertion-order independent.
    pub fn insert(&mut self, record: StoredRecord) {
        aro_obs::counter("serve.store_writes", 1);
        let device_id = record.device_id;
        for replica in (1..self.n_replicas).rev() {
            self.put_slot(device_id, replica, Some(record.clone()));
        }
        self.put_slot(device_id, 0, Some(record));
    }

    /// Reads a record, verifying seals replica by replica: the lowest-
    /// indexed intact copy serves; the group fails closed only when
    /// every copy is corrupt or wiped. Corruption is *detected*,
    /// counted, and reported — never panicked on.
    #[must_use]
    pub fn read(&self, device_id: u64) -> ReadOutcome<'_> {
        self.read_with_replicas(device_id).0
    }

    /// [`ShardedStore::read`] plus the per-replica health the read saw —
    /// the audit trail records both.
    #[must_use]
    pub fn read_with_replicas(&self, device_id: u64) -> (ReadOutcome<'_>, ReplicaSummary) {
        let mut summary = ReplicaSummary::default();
        let mut intact: Option<(u32, &StoredRecord)> = None;
        let mut corrupt: Option<(u32, &StoredRecord)> = None;
        for replica in 0..self.n_replicas {
            let Some(slot) = self.slot(device_id, replica) else {
                continue;
            };
            match &slot.record {
                None => summary.wiped += 1,
                Some(record) if record.is_intact() => {
                    summary.intact += 1;
                    if intact.is_none() {
                        intact = Some((replica, record));
                    }
                }
                Some(record) => {
                    summary.corrupt += 1;
                    if corrupt.is_none() {
                        corrupt = Some((replica, record));
                    }
                }
            }
        }
        if let Some((replica, record)) = intact {
            if replica > 0 {
                aro_obs::counter("serve.store_replica_fallbacks", 1);
            }
            summary.served = Some(replica);
            (ReadOutcome::Intact(record), summary)
        } else if let Some((replica, record)) = corrupt {
            aro_obs::counter("serve.store_corrupt_reads", 1);
            summary.served = Some(replica);
            (ReadOutcome::Corrupt(record), summary)
        } else {
            (ReadOutcome::Missing, summary)
        }
    }

    /// The replica health of a group without serving a read (no
    /// counters; pure observation for health reporting).
    #[must_use]
    pub fn replica_summary(&self, device_id: u64) -> ReplicaSummary {
        let mut summary = ReplicaSummary::default();
        for replica in 0..self.n_replicas {
            match self.slot(device_id, replica).map(|slot| &slot.record) {
                None => {}
                Some(None) => summary.wiped += 1,
                Some(Some(record)) if record.is_intact() => summary.intact += 1,
                Some(Some(_)) => summary.corrupt += 1,
            }
        }
        summary
    }

    /// Erodes the store in place with the fault plan's storage
    /// machinery, all of it coordinate-addressed and byte-deterministic:
    ///
    /// * helper bits flip per `(device, window, replica)` — replica `k`
    ///   draws window `window + k · `[`REPLICA_WINDOW_STRIDE`], so
    ///   sibling copies take independent damage. Flipped positions are
    ///   flagged on the record (the media knows what it lost) but the
    ///   checksum is *not* resealed — the next read detects the damage;
    /// * whole replicas are wiped per `(device, window)`
    ///   ([`FaultInjector::replica_wipes`]);
    /// * whole shards are lost per `(shard, window)`
    ///   ([`FaultInjector::shard_loss`]), costing every group hosted
    ///   there one replica.
    ///
    /// Returns the number of helper bits flipped.
    pub fn erode(&mut self, inj: &FaultInjector, window: u64, fraction: f64) -> usize {
        let mut eroded = 0;
        for shard in &mut self.shards {
            for slot in shard.iter_mut() {
                let Some(record) = slot.record.as_mut() else {
                    continue;
                };
                let positions = inj.helper_erasures_during(
                    record.device_id,
                    STORE_WINDOW_BASE + window + u64::from(slot.replica) * REPLICA_WINDOW_STRIDE,
                    fraction,
                    &record.helper.block_lens(),
                );
                if positions.is_empty() {
                    continue;
                }
                record.helper = record.helper.with_flipped_bits(&positions);
                record.flagged.extend_from_slice(&positions);
                record.flagged.sort_unstable();
                record.flagged.dedup();
                eroded += positions.len();
            }
        }
        if eroded > 0 {
            aro_obs::counter("serve.store_bits_eroded", eroded as u64);
        }
        let mut wiped = 0u64;
        for device_id in self.device_ids() {
            for replica in
                inj.replica_wipes(device_id, STORE_WINDOW_BASE + window, self.n_replicas as usize)
            {
                let replica = replica as u32;
                if self.slot(device_id, replica).is_some_and(|s| s.record.is_some()) {
                    self.put_slot(device_id, replica, None);
                    wiped += 1;
                }
            }
        }
        if wiped > 0 {
            aro_obs::counter("serve.store_replicas_wiped", wiped);
        }
        let mut lost = 0u64;
        for shard in 0..self.shards.len() {
            if !inj.shard_loss(shard as u64, STORE_WINDOW_BASE + window) {
                continue;
            }
            for slot in &mut self.shards[shard] {
                if slot.record.take().is_some() {
                    lost += 1;
                }
            }
        }
        if lost > 0 {
            aro_obs::counter("serve.store_shard_losses", 1);
            aro_obs::counter("serve.store_replicas_lost_to_shards", lost);
        }
        eroded
    }

    /// One deterministic anti-entropy pass: every group is scanned in
    /// ascending device order; any replica that differs from the lowest-
    /// indexed intact copy — seal-broken, wiped, or divergent — is
    /// overwritten with it (seal-mismatch read-repair). The source's
    /// repair generation propagates unchanged. Groups with zero intact
    /// replicas are reported unrecoverable; only re-enrollment
    /// ([`ShardedStore::repair`]) can bring them back.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for device_id in self.device_ids() {
            report.groups += 1;
            let source = (0..self.n_replicas).find_map(|replica| {
                self.slot(device_id, replica)
                    .and_then(|slot| slot.record.as_ref())
                    .filter(|record| record.is_intact())
                    .cloned()
            });
            let Some(source) = source else {
                report.unrecoverable.push(device_id);
                continue;
            };
            for replica in 0..self.n_replicas {
                let healthy = self
                    .slot(device_id, replica)
                    .is_some_and(|slot| slot.record.as_ref() == Some(&source));
                if healthy {
                    continue;
                }
                self.put_slot(device_id, replica, Some(source.clone()));
                report.repairs.push(ScrubRepair {
                    device_id,
                    replica,
                    generation: source.repair_generation(),
                });
            }
        }
        if !report.repairs.is_empty() {
            aro_obs::counter("serve.store_scrub_repairs", report.repairs.len() as u64);
        }
        if !report.unrecoverable.is_empty() {
            aro_obs::counter(
                "serve.store_scrub_unrecoverable",
                report.unrecoverable.len() as u64,
            );
        }
        report
    }

    /// Writes a freshly re-enrolled record over a damaged group,
    /// stamping it one repair generation past the group's highest
    /// surviving lineage (1 if nothing survives). Every replica is
    /// rewritten. Returns the stamped generation — the audit trail
    /// carries it so forensics can tell re-enrollment repairs from
    /// scrub read-repairs.
    pub fn repair(&mut self, record: StoredRecord) -> u64 {
        aro_obs::counter("serve.store_repairs", 1);
        let prior = (0..self.n_replicas)
            .filter_map(|replica| {
                self.slot(record.device_id(), replica)
                    .and_then(|slot| slot.record.as_ref())
                    .map(StoredRecord::repair_generation)
            })
            .max();
        let generation = prior.map_or(1, |g| g + 1);
        self.insert(record.with_repair_generation(generation));
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_ecc::keygen::KeyGenerator;
    use aro_faults::FaultPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn record(id: u64) -> StoredRecord {
        let generator = KeyGenerator::for_bit_error_rate(
            0.05,
            32,
            1e-6,
            &aro_ecc::area::PufAreaParams {
                ro_cell_ge: 3.0,
                readout_fixed_ge: 120.0,
                readout_per_ro_ge: 3.0,
                ros_per_bit: 2.0,
            },
        )
        .expect("feasible");
        let mut rng = StdRng::seed_from_u64(id);
        let response =
            BitString::from_fn(generator.response_bits(), |i| (i + id as usize).is_multiple_of(3));
        let (key, helper) = generator.enroll(&response, &mut rng);
        let reference = BitString::from_fn(16, |i| i.is_multiple_of(2));
        StoredRecord::new(id, vec![(0, 1), (2, 3)], reference, helper, key)
    }

    #[test]
    fn fresh_records_read_back_intact() {
        let mut store = ShardedStore::for_fleet(8, 3);
        for id in 0..8 {
            store.insert(record(id));
        }
        assert_eq!(store.len(), 8);
        for id in 0..8 {
            assert!(matches!(store.read(id), ReadOutcome::Intact(r) if r.device_id() == id));
        }
        assert!(matches!(store.read(99), ReadOutcome::Missing));
    }

    #[test]
    fn sharding_follows_the_div_ceil_chunk_discipline() {
        let store = ShardedStore::for_fleet(10, 4);
        // chunk = ceil(10 / 4) = 3: ids 0..3 -> shard 0, 3..6 -> 1, ...
        assert_eq!(store.shard_of(0), 0);
        assert_eq!(store.shard_of(2), 0);
        assert_eq!(store.shard_of(3), 1);
        assert_eq!(store.shard_of(9), 3);
        assert_eq!(store.shard_of(1000), 3, "out-of-range ids clamp");
    }

    #[test]
    fn replicas_rotate_across_failure_domains() {
        let store = ShardedStore::for_fleet_replicated(10, 4, 3);
        // Home shard of id 4 is 1; replicas 0..3 land in shards 1, 2, 3.
        assert_eq!(store.replica_shard(4, 0), 1);
        assert_eq!(store.replica_shard(4, 1), 2);
        assert_eq!(store.replica_shard(4, 2), 3);
        // The rotation wraps: id 9 is home on the last shard.
        assert_eq!(store.replica_shard(9, 0), 3);
        assert_eq!(store.replica_shard(9, 1), 0);
    }

    #[test]
    #[should_panic(expected = "replicas")]
    fn replicas_cannot_outnumber_shards() {
        let _ = ShardedStore::for_fleet_replicated(8, 2, 3);
    }

    #[test]
    fn erosion_is_detected_on_read_and_flagged() {
        let mut store = ShardedStore::for_fleet(4, 2);
        for id in 0..4 {
            store.insert(record(id));
        }
        let inj = FaultInjector::new(FaultPlan::storm(), 7);
        let eroded = store.erode(&inj, 0, 1.0);
        assert!(eroded > 0, "a full-window storm must erode something");
        let mut failed_closed = 0;
        for id in 0..4 {
            match store.read(id) {
                ReadOutcome::Corrupt(r) => {
                    failed_closed += 1;
                    assert!(!r.flagged().is_empty(), "media flags must accompany damage");
                }
                ReadOutcome::Intact(r) => assert!(r.flagged().is_empty()),
                ReadOutcome::Missing => {} // a storm window may wipe a whole group
            }
        }
        let any_damage = (0..4).any(|id| {
            let s = store.replica_summary(id);
            s.corrupt + s.wiped > 0
        });
        assert!(
            failed_closed > 0 || any_damage,
            "eroded records must fail their checksum"
        );
    }

    #[test]
    fn erosion_is_deterministic() {
        let build = || {
            let mut store = ShardedStore::for_fleet_replicated(4, 2, 2);
            for id in 0..4 {
                store.insert(record(id));
            }
            let inj = FaultInjector::new(FaultPlan::storm().scaled(0.5), 11);
            store.erode(&inj, 3, 0.7);
            store
        };
        let (a, b) = (build(), build());
        for id in 0..4 {
            assert_eq!(a.read(id), b.read(id), "device {id}");
            assert_eq!(a.replica_summary(id), b.replica_summary(id), "device {id}");
        }
    }

    #[test]
    fn sibling_replicas_take_independent_damage() {
        let mut store = ShardedStore::for_fleet_replicated(4, 4, 3);
        for id in 0..4 {
            store.insert(record(id));
        }
        let inj = FaultInjector::new(FaultPlan::storm(), 9);
        store.erode(&inj, 0, 1.0);
        // Across four devices and three replicas each, at least one group
        // must be partially damaged (degraded, not uniformly dead): that
        // is what independent per-replica erosion streams buy.
        let degraded = (0..4).any(|id| store.replica_summary(id).is_degraded());
        assert!(degraded, "independent erosion must leave mixed groups");
    }

    #[test]
    fn quorum_read_serves_any_intact_replica_and_fails_closed_on_none() {
        let mut store = ShardedStore::for_fleet_replicated(4, 3, 3);
        store.insert(record(1));
        // Wipe replica 0: the read falls back to replica 1.
        store.put_slot(1, 0, None);
        let (outcome, summary) = store.read_with_replicas(1);
        assert!(matches!(outcome, ReadOutcome::Intact(r) if r.device_id() == 1));
        assert_eq!(summary.served, Some(1));
        assert_eq!((summary.intact, summary.corrupt, summary.wiped), (2, 0, 1));
        assert!(summary.is_degraded());
        // Wipe every replica: the group reads Missing.
        store.put_slot(1, 1, None);
        store.put_slot(1, 2, None);
        assert!(matches!(store.read(1), ReadOutcome::Missing));
        assert_eq!(store.len(), 1, "a fully wiped group keeps its address");
    }

    #[test]
    fn scrub_read_repairs_from_any_intact_replica() {
        let mut store = ShardedStore::for_fleet_replicated(6, 3, 3);
        for id in 0..6 {
            store.insert(record(id));
        }
        // Device 2 loses replicas 0 and 2; device 4 loses nothing.
        store.put_slot(2, 0, None);
        store.put_slot(2, 2, None);
        let report = store.scrub();
        assert_eq!(report.groups, 6);
        assert_eq!(report.unrecoverable, Vec::<u64>::new());
        assert_eq!(report.repairs.len(), 2);
        for repair in &report.repairs {
            assert_eq!(repair.device_id, 2);
            assert_eq!(repair.generation, 0, "scrub propagates the lineage");
        }
        // Convergence: all replicas byte-identical and intact.
        let summary = store.replica_summary(2);
        assert_eq!((summary.intact, summary.corrupt, summary.wiped), (3, 0, 0));
        assert!(store.scrub().is_clean(), "a second pass finds nothing");
    }

    #[test]
    fn scrub_reports_groups_with_no_intact_replica_as_unrecoverable() {
        let mut store = ShardedStore::for_fleet_replicated(4, 2, 2);
        store.insert(record(0));
        store.insert(record(1));
        store.put_slot(0, 0, None);
        store.put_slot(0, 1, None);
        let report = store.scrub();
        assert_eq!(report.unrecoverable, vec![0]);
        assert!(report.repairs.is_empty());
        assert!(matches!(store.read(0), ReadOutcome::Missing));
    }

    #[test]
    fn repair_reseals_the_record_and_bumps_the_generation() {
        let mut store = ShardedStore::for_fleet(2, 1);
        store.insert(record(0));
        let inj = FaultInjector::new(FaultPlan::storm(), 3);
        let mut window = 0;
        while store.erode(&inj, window, 1.0) == 0 {
            window += 1;
        }
        // At least one read must now be corrupt; repair with a fresh seal.
        let generation = store.repair(record(0));
        assert_eq!(generation, 1, "factory lineage 0 repairs to 1");
        match store.read(0) {
            ReadOutcome::Intact(r) => assert_eq!(r.repair_generation(), 1),
            other => panic!("repaired record must read intact: {other:?}"),
        }
        // A second re-enrollment keeps counting.
        assert_eq!(store.repair(record(0)), 2);
    }

    #[test]
    fn repair_restarts_a_fully_wiped_group() {
        let mut store = ShardedStore::for_fleet_replicated(2, 2, 2);
        store.insert(record(0));
        store.put_slot(0, 0, None);
        store.put_slot(0, 1, None);
        assert_eq!(store.repair(record(0)), 1, "no surviving lineage restarts at 1");
        let summary = store.replica_summary(0);
        assert_eq!((summary.intact, summary.corrupt, summary.wiped), (2, 0, 0));
    }
}
