//! The sharded, crash-safe enrollment/helper-data store.
//!
//! A verifier backend keeps one record per enrolled device: the CRP
//! reference material, the key generator's public helper data, and the
//! verifier's copy of the current key (the re-enrollment continuity
//! anchor). Helper data is public but **unauthenticated** by the fuzzy
//! extractor itself — a flipped stored bit silently corrupts the
//! recovered key — so every record is sealed with a checksum at write
//! time and re-verified on every read. A mismatch is routed to recovery
//! ([`ReadOutcome::Corrupt`]), never panicked on and never served.
//!
//! Records live in **fixed-index shards**: the shard of a device is
//! `device_id / ceil(fleet_capacity / n_shards)` — the same
//! `div_ceil`-chunk discipline `aro-par` uses to split work across
//! threads, so the store layout is a pure function of `(capacity,
//! shards)` and identical no matter what order records arrive or which
//! thread asks.
//!
//! Store corruption is injected with the *same* `aro-faults`
//! helper-erasure machinery the device-side NVM uses
//! ([`ShardedStore::erode`]): coordinates are drawn per `(device,
//! window)` in a window id space offset by [`STORE_WINDOW_BASE`], so
//! store damage and device damage are independent but both byte-
//! deterministic under one injector.

use aro_ecc::fuzzy::HelperData;
use aro_faults::FaultInjector;
use aro_metrics::bits::BitString;

/// Window-id base for store-side erosion draws, keeping the verifier's
/// NVM fault coordinates disjoint from every device-side helper window
/// (device lifecycles count mission windows from zero and stay far below
/// this).
pub const STORE_WINDOW_BASE: u64 = 1 << 40;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv_u64(hash: u64, value: u64) -> u64 {
    fnv(hash, &value.to_le_bytes())
}

/// One device's verifier-side enrollment, integrity-sealed.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRecord {
    device_id: u64,
    challenge_pairs: Vec<(usize, usize)>,
    reference: BitString,
    helper: HelperData,
    key: BitString,
    /// Media-level erasure flags: `(block, bit)` helper positions the
    /// storage layer knows it lost (an NVM controller reports these on
    /// read). Recovery feeds them to the erasure-aware decoder.
    flagged: Vec<(usize, usize)>,
    checksum: u64,
}

impl StoredRecord {
    /// Seals a fresh enrollment record (checksum computed here).
    #[must_use]
    pub fn new(
        device_id: u64,
        challenge_pairs: Vec<(usize, usize)>,
        reference: BitString,
        helper: HelperData,
        key: BitString,
    ) -> Self {
        let mut record = Self {
            device_id,
            challenge_pairs,
            reference,
            helper,
            key,
            flagged: Vec::new(),
            checksum: 0,
        };
        record.checksum = record.digest();
        record
    }

    fn digest(&self) -> u64 {
        let mut hash = fnv_u64(FNV_OFFSET, self.device_id);
        for &(a, b) in &self.challenge_pairs {
            hash = fnv_u64(hash, a as u64);
            hash = fnv_u64(hash, b as u64);
        }
        hash = fnv_u64(hash, self.reference.len() as u64);
        hash = fnv(hash, &self.reference.to_bytes());
        hash = fnv_u64(hash, self.helper.digest());
        hash = fnv_u64(hash, self.key.len() as u64);
        fnv(hash, &self.key.to_bytes())
    }

    /// Whether the stored bytes still match the checksum sealed at
    /// enrollment.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        self.digest() == self.checksum
    }

    /// The enrolled device id.
    #[must_use]
    pub fn device_id(&self) -> u64 {
        self.device_id
    }

    /// The device's challenge pair set.
    #[must_use]
    pub fn challenge_pairs(&self) -> &[(usize, usize)] {
        &self.challenge_pairs
    }

    /// The enrolled CRP reference response.
    #[must_use]
    pub fn reference(&self) -> &BitString {
        &self.reference
    }

    /// The stored (possibly eroded) helper data.
    #[must_use]
    pub fn helper(&self) -> &HelperData {
        &self.helper
    }

    /// The verifier's copy of the device's current key.
    #[must_use]
    pub fn key(&self) -> &BitString {
        &self.key
    }

    /// Helper positions the storage media has flagged as lost.
    #[must_use]
    pub fn flagged(&self) -> &[(usize, usize)] {
        &self.flagged
    }
}

/// What a store read found.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadOutcome<'a> {
    /// No record for this device id.
    Missing,
    /// Record present and its checksum holds.
    Intact(&'a StoredRecord),
    /// Record present but the checksum fails: the stored bytes were
    /// corrupted in place. Served to *recovery* only, never to a verify
    /// decision.
    Corrupt(&'a StoredRecord),
}

/// Fixed-index sharded record store.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Vec<Vec<StoredRecord>>,
    chunk: usize,
}

impl ShardedStore {
    /// A store laid out for `capacity` devices across `n_shards` fixed
    /// index chunks (`aro-par`'s `div_ceil` discipline). Ids at or past
    /// `capacity` clamp to the last shard.
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    #[must_use]
    pub fn for_fleet(capacity: usize, n_shards: usize) -> Self {
        assert!(n_shards > 0, "a store needs at least one shard");
        Self {
            shards: (0..n_shards).map(|_| Vec::new()).collect(),
            chunk: capacity.max(1).div_ceil(n_shards),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The fixed shard index of a device id.
    #[must_use]
    pub fn shard_of(&self, device_id: u64) -> usize {
        ((device_id as usize) / self.chunk).min(self.shards.len() - 1)
    }

    /// Total records across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Vec::is_empty)
    }

    /// Inserts (or replaces) a record at its fixed shard, keeping each
    /// shard id-sorted so the layout is insertion-order independent.
    pub fn insert(&mut self, record: StoredRecord) {
        aro_obs::counter("serve.store_writes", 1);
        let at_shard = self.shard_of(record.device_id);
        let shard = &mut self.shards[at_shard];
        match shard.binary_search_by_key(&record.device_id, |r| r.device_id) {
            Ok(at) => shard[at] = record,
            Err(at) => shard.insert(at, record),
        }
    }

    /// Reads a record, verifying its checksum. Corruption is *detected*,
    /// counted, and reported — never panicked on.
    #[must_use]
    pub fn read(&self, device_id: u64) -> ReadOutcome<'_> {
        let shard = &self.shards[self.shard_of(device_id)];
        match shard.binary_search_by_key(&device_id, |r| r.device_id) {
            Err(_) => ReadOutcome::Missing,
            Ok(at) => {
                let record = &shard[at];
                if record.is_intact() {
                    ReadOutcome::Intact(record)
                } else {
                    aro_obs::counter("serve.store_corrupt_reads", 1);
                    ReadOutcome::Corrupt(record)
                }
            }
        }
    }

    /// Erodes the store in place with the fault plan's helper-erasure
    /// machinery: each record's helper block draws its own `(device,
    /// window)` coordinates, scaled by `fraction` of the mission like any
    /// other storage window. Flipped positions are flagged on the record
    /// (the media knows what it lost) but the checksum is *not* resealed
    /// — the next read detects the damage. Returns the number of bits
    /// flipped.
    pub fn erode(&mut self, inj: &FaultInjector, window: u64, fraction: f64) -> usize {
        let mut eroded = 0;
        for shard in &mut self.shards {
            for record in shard.iter_mut() {
                let positions = inj.helper_erasures_during(
                    record.device_id,
                    STORE_WINDOW_BASE + window,
                    fraction,
                    &record.helper.block_lens(),
                );
                if positions.is_empty() {
                    continue;
                }
                record.helper = record.helper.with_flipped_bits(&positions);
                record.flagged.extend_from_slice(&positions);
                record.flagged.sort_unstable();
                record.flagged.dedup();
                eroded += positions.len();
            }
        }
        if eroded > 0 {
            aro_obs::counter("serve.store_bits_eroded", eroded as u64);
        }
        eroded
    }

    /// Writes a freshly re-enrolled record over a damaged one.
    pub fn repair(&mut self, record: StoredRecord) {
        aro_obs::counter("serve.store_repairs", 1);
        self.insert(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_ecc::keygen::KeyGenerator;
    use aro_faults::FaultPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn record(id: u64) -> StoredRecord {
        let generator = KeyGenerator::for_bit_error_rate(
            0.05,
            32,
            1e-6,
            &aro_ecc::area::PufAreaParams {
                ro_cell_ge: 3.0,
                readout_fixed_ge: 120.0,
                readout_per_ro_ge: 3.0,
                ros_per_bit: 2.0,
            },
        )
        .expect("feasible");
        let mut rng = StdRng::seed_from_u64(id);
        let response =
            BitString::from_fn(generator.response_bits(), |i| (i + id as usize).is_multiple_of(3));
        let (key, helper) = generator.enroll(&response, &mut rng);
        let reference = BitString::from_fn(16, |i| i.is_multiple_of(2));
        StoredRecord::new(id, vec![(0, 1), (2, 3)], reference, helper, key)
    }

    #[test]
    fn fresh_records_read_back_intact() {
        let mut store = ShardedStore::for_fleet(8, 3);
        for id in 0..8 {
            store.insert(record(id));
        }
        assert_eq!(store.len(), 8);
        for id in 0..8 {
            assert!(matches!(store.read(id), ReadOutcome::Intact(r) if r.device_id() == id));
        }
        assert!(matches!(store.read(99), ReadOutcome::Missing));
    }

    #[test]
    fn sharding_follows_the_div_ceil_chunk_discipline() {
        let store = ShardedStore::for_fleet(10, 4);
        // chunk = ceil(10 / 4) = 3: ids 0..3 -> shard 0, 3..6 -> 1, ...
        assert_eq!(store.shard_of(0), 0);
        assert_eq!(store.shard_of(2), 0);
        assert_eq!(store.shard_of(3), 1);
        assert_eq!(store.shard_of(9), 3);
        assert_eq!(store.shard_of(1000), 3, "out-of-range ids clamp");
    }

    #[test]
    fn erosion_is_detected_on_read_and_flagged() {
        let mut store = ShardedStore::for_fleet(4, 2);
        for id in 0..4 {
            store.insert(record(id));
        }
        let inj = FaultInjector::new(FaultPlan::storm(), 7);
        let eroded = store.erode(&inj, 0, 1.0);
        assert!(eroded > 0, "a full-window storm must erode something");
        let mut corrupt = 0;
        for id in 0..4 {
            match store.read(id) {
                ReadOutcome::Corrupt(r) => {
                    corrupt += 1;
                    assert!(!r.flagged().is_empty(), "media flags must accompany damage");
                }
                ReadOutcome::Intact(r) => assert!(r.flagged().is_empty()),
                ReadOutcome::Missing => panic!("record vanished"),
            }
        }
        assert!(corrupt > 0, "eroded records must fail their checksum");
    }

    #[test]
    fn erosion_is_deterministic() {
        let build = || {
            let mut store = ShardedStore::for_fleet(4, 2);
            for id in 0..4 {
                store.insert(record(id));
            }
            let inj = FaultInjector::new(FaultPlan::storm().scaled(0.5), 11);
            store.erode(&inj, 3, 0.7);
            store
        };
        let (a, b) = (build(), build());
        for id in 0..4 {
            assert_eq!(a.read(id), b.read(id), "device {id}");
        }
    }

    #[test]
    fn repair_reseals_the_record() {
        let mut store = ShardedStore::for_fleet(2, 1);
        store.insert(record(0));
        let inj = FaultInjector::new(FaultPlan::storm(), 3);
        let mut window = 0;
        while store.erode(&inj, window, 1.0) == 0 {
            window += 1;
        }
        // At least one read must now be corrupt; repair with a fresh seal.
        store.repair(record(0));
        assert!(matches!(store.read(0), ReadOutcome::Intact(_)));
    }
}
