//! The authentication service: health state machine, verification
//! pipeline, load shedding, and the quarantine → re-enrollment path.
//!
//! Design rules, in order of precedence:
//!
//! 1. **Never a wrong answer.** Corrupt records, malformed responses,
//!    and timed-out reads all *fail closed* — they reject (or shed with
//!    retry-after), they never accept and never panic.
//! 2. **Deterministic under threads.** [`AuthService::probe`] is `&self`
//!    and pure per device (every random draw comes from a seed-derived
//!    stream keyed by `(device, event)`), so a round of probes can fan
//!    out through `aro-par`; all state mutation happens in
//!    [`AuthService::admit`], called sequentially in device-index order.
//! 3. **Degrade, don't die.** A windowed operational-error rate drives
//!    healthy → degraded → read-only transitions (with hysteresis on the
//!    way back). Degraded sheds a deterministic quarter of traffic with
//!    retry-after; read-only sheds half and refuses re-enrollment
//!    writes.
//! 4. **Auditable.** When the [`crate::audit`] trail is on, `probe`
//!    captures each request's causal chain (store read, per-attempt
//!    faults/latency/timeouts, decode margin) on the outcome, and the
//!    sequential admit path emits it — plus shed/health/re-enrollment
//!    events and a structured `serve_fail` event at every fail-closed
//!    site — in device-index order on the simulated service clock.

use std::collections::{BTreeSet, VecDeque};

use aro_device::environment::Environment;
use aro_device::rng::SeedDomain;
use aro_ecc::keygen::KeyGenerator;
use aro_ecc::refresh::continuity_gate;
use aro_ecc::soft::{Erasures, SoftBit};
use aro_faults::FaultInjector;
use aro_metrics::quality::fractional_hd;
use aro_puf::{Chip, PufDesign};

use crate::audit::{self, AttemptAudit, AttemptFaults, RequestAudit, StoreAudit};
use crate::pipeline::{LatencyModel, RetryPolicy};
use crate::store::{ReadOutcome, ScrubReport, ShardedStore, StoredRecord};

/// The service's health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Full service.
    Healthy,
    /// Sheds a quarter of verification traffic (reject with retry-after).
    Degraded,
    /// Sheds half the traffic and refuses re-enrollment writes.
    ReadOnly,
}

impl HealthState {
    /// Stable lowercase label (report/table cell).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Degraded => "degraded",
            Self::ReadOnly => "read-only",
        }
    }

    // Per-state sketch names must be `'static` literals for the obs
    // hot path, hence one match per family instead of format!.
    fn latency_sketch(self) -> &'static str {
        match self {
            Self::Healthy => "serve.latency_us.healthy",
            Self::Degraded => "serve.latency_us.degraded",
            Self::ReadOnly => "serve.latency_us.read_only",
        }
    }

    fn retries_sketch(self) -> &'static str {
        match self {
            Self::Healthy => "serve.retries.healthy",
            Self::Degraded => "serve.retries.degraded",
            Self::ReadOnly => "serve.retries.read_only",
        }
    }

    fn margin_sketch(self) -> &'static str {
        match self {
            Self::Healthy => "serve.decode_margin.healthy",
            Self::Degraded => "serve.decode_margin.degraded",
            Self::ReadOnly => "serve.decode_margin.read_only",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The replica-group health axis of the health machine, observed by the
/// anti-entropy scrub pass. Orthogonal to [`HealthState`]: a service can
/// be `Healthy` on the traffic axis while its store has lost redundancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHealth {
    /// Every replica group is fully intact.
    Intact,
    /// Some groups lost redundancy this scrub pass (read-repaired —
    /// damage seen, self-healed).
    ReplicaDegraded,
    /// At least one group has zero intact replicas: scrub cannot help,
    /// only re-enrollment can.
    QuorumCritical,
}

impl StoreHealth {
    /// Stable lowercase label (audit `store_health` field, report cells).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Intact => "intact",
            Self::ReplicaDegraded => "replica-degraded",
            Self::QuorumCritical => "quorum-critical",
        }
    }
}

impl std::fmt::Display for StoreHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServicePolicy {
    /// Accept iff fractional HD to the reference is at or below this.
    pub accept_threshold: f64,
    /// Accepted devices whose distance exceeds this margin watermark are
    /// quarantined for re-enrollment (they still authenticated — but
    /// their margin is eroding toward the threshold).
    pub quarantine_watermark: f64,
    /// Retry/timeout/backoff policy per request.
    pub retry: RetryPolicy,
    /// Simulated latency model per attempt.
    pub latency: LatencyModel,
    /// Sliding window (events) behind the health state machine.
    pub health_window: usize,
    /// Windowed error rate at which the service enters `Degraded`
    /// (recovery at half this rate).
    pub degraded_watermark: f64,
    /// Windowed error rate at which the service enters `ReadOnly`
    /// (fallback to `Degraded` at half this rate).
    pub read_only_watermark: f64,
    /// Copies kept of every enrollment record, spread across shards
    /// (clamped to `[1, n_shards]` at service construction).
    pub replicas: usize,
}

impl Default for ServicePolicy {
    fn default() -> Self {
        Self {
            accept_threshold: 0.25,
            quarantine_watermark: 0.15,
            retry: RetryPolicy::default(),
            latency: LatencyModel::default(),
            health_window: 64,
            degraded_watermark: 0.25,
            read_only_watermark: 0.50,
            replicas: 1,
        }
    }
}

/// Monotonic service counters (also mirrored into `aro-obs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tallies {
    /// Requests that reached an answer (accepted or denied).
    pub served: u64,
    /// Requests accepted.
    pub accepted: u64,
    /// Requests rejected on distance.
    pub rejected: u64,
    /// Requests shed with retry-after (degraded/read-only load control).
    pub shed: u64,
    /// Individual attempts abandoned at the timeout.
    pub attempt_timeouts: u64,
    /// Requests whose every attempt timed out.
    pub timed_out: u64,
    /// Requests that hit a checksum-failing record.
    pub corrupt_reads: u64,
    /// Requests for unknown device ids.
    pub missing: u64,
    /// Requests whose answer had the wrong bit length (failed closed).
    pub malformed: u64,
    /// Devices placed in quarantine.
    pub quarantines: u64,
    /// Successful re-enrollments (device re-admitted).
    pub reenrolled: u64,
    /// Re-enrollment attempts whose continuity gate never passed.
    pub reenroll_failures: u64,
    /// Re-enrollments refused because the service was read-only.
    pub reenroll_refusals: u64,
    /// Requests served from a fallback replica (home copy damaged).
    pub replica_fallbacks: u64,
    /// Replicas rewritten by anti-entropy scrub read-repair.
    pub scrub_repairs: u64,
    /// Groups a scrub pass found with zero intact replicas.
    pub scrub_unrecoverable: u64,
}

/// What one verification request concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Distance within threshold.
    Accepted {
        /// Fractional HD to the enrolled reference.
        distance: f64,
    },
    /// Distance past threshold on every completed attempt.
    Rejected {
        /// Last measured fractional HD.
        distance: f64,
    },
    /// Every attempt blew its latency budget.
    TimedOut,
    /// The stored record failed its checksum (routed to recovery).
    CorruptRecord,
    /// No record for this device id.
    Missing,
    /// Answer bit length mismatched the reference (failed closed).
    Malformed,
}

impl Verdict {
    /// Whether this verdict authenticated the device.
    #[must_use]
    pub fn is_accept(self) -> bool {
        matches!(self, Self::Accepted { .. })
    }

    /// The measured fractional HD, when one exists for this verdict.
    #[must_use]
    pub fn distance(self) -> Option<f64> {
        match self {
            Self::Accepted { distance } | Self::Rejected { distance } => Some(distance),
            _ => None,
        }
    }

    /// Stable lowercase label (audit `verdict` field, report cells).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Accepted { .. } => "accepted",
            Self::Rejected { .. } => "rejected",
            Self::TimedOut => "timed_out",
            Self::CorruptRecord => "corrupt_record",
            Self::Missing => "missing",
            Self::Malformed => "malformed",
        }
    }
}

/// One request's full outcome (probe result, admitted sequentially).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The record the request targeted.
    pub target_id: u64,
    /// The decision.
    pub verdict: Verdict,
    /// Attempts consumed.
    pub attempts: u32,
    /// Attempts abandoned at the timeout.
    pub attempt_timeouts: u32,
    /// Total simulated request latency (attempts + backoffs), µs.
    pub latency_us: u64,
    /// Replica index that served the store read, when one did (`Some(k)`
    /// with `k > 0` means the home copy was damaged and a sibling
    /// served).
    pub served_replica: Option<u32>,
    /// Sibling replicas the read found corrupt or wiped.
    pub replicas_lost: u32,
    /// The request's audit record — captured in `probe` (worker
    /// threads), emitted by `admit` (sequential). `None` while the
    /// audit trail is off.
    pub audit: Option<Box<RequestAudit>>,
}

/// The simulated verifier backend.
#[derive(Debug, Clone)]
pub struct AuthService {
    policy: ServicePolicy,
    store: ShardedStore,
    state: HealthState,
    store_health: StoreHealth,
    window: VecDeque<bool>,
    window_errors: usize,
    quarantine: BTreeSet<u64>,
    tallies: Tallies,
    domain: SeedDomain,
    /// Simulated service clock, µs: advances by each admitted request's
    /// latency, in admit order. Audit events are stamped with it — never
    /// with wall time.
    clock_us: u64,
}

/// Mixes a device id and an event id into one seed-stream index.
fn slot(device: u64, event: u64) -> u64 {
    device
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(31)
        .wrapping_add(event)
}

/// One (possibly faulted) hard read: environment excursion, noise burst,
/// and response glitches applied exactly as the device-side experiments
/// apply them. Returns the answer and which faults fired — the audit
/// trail's link from a verdict back to its injected causes.
fn faulted_response(
    chip: &mut Chip,
    design: &PufDesign,
    env: &Environment,
    pairs: &[(usize, usize)],
    inj: Option<&FaultInjector>,
    chip_id: u64,
    event: u64,
) -> (aro_metrics::bits::BitString, AttemptFaults) {
    let Some(inj) = inj else {
        return (chip.response(design, env, pairs), AttemptFaults::default());
    };
    let meas_env = inj.measurement_env(chip_id, event, env);
    let excursion = meas_env != *env;
    let burst = inj.noise_burst(chip_id, event);
    let burst_design =
        burst.map(|factor| design.with_readout(design.readout().with_noise_burst(factor)));
    let meas_design = burst_design.as_ref().unwrap_or(design);
    let mut answer = chip.response(meas_design, &meas_env, pairs);
    let glitches = inj.response_glitches(chip_id, event, answer.len());
    for &bit in &glitches {
        answer.flip(bit);
    }
    let faults = AttemptFaults {
        excursion,
        burst: burst.is_some(),
        glitches: glitches.len() as u64,
    };
    (answer, faults)
}

/// One (possibly faulted) soft read for the re-enrollment gate — the
/// same excursion/burst/glitch plumbing as the lifecycle experiments.
fn faulted_soft_response(
    chip: &mut Chip,
    design: &PufDesign,
    env: &Environment,
    pairs: &[(usize, usize)],
    inj: Option<&FaultInjector>,
    chip_id: u64,
    event: u64,
) -> Vec<SoftBit> {
    let read = |chip: &mut Chip, design: &PufDesign, env: &Environment| -> Vec<SoftBit> {
        chip.response_soft(design, env, pairs)
            .into_iter()
            .map(|(bit, confidence)| SoftBit::new(bit, confidence))
            .collect()
    };
    let Some(inj) = inj else {
        return read(chip, design, env);
    };
    let meas_env = inj.measurement_env(chip_id, event, env);
    let burst_design = inj
        .noise_burst(chip_id, event)
        .map(|factor| design.with_readout(design.readout().with_noise_burst(factor)));
    let meas_design = burst_design.as_ref().unwrap_or(design);
    let mut soft = read(chip, meas_design, &meas_env);
    for bit in inj.response_glitches(chip_id, event, soft.len()) {
        soft[bit].value = !soft[bit].value;
    }
    soft
}

impl AuthService {
    /// A fresh service for a fleet of up to `capacity` devices across
    /// `n_shards` store shards, keeping `policy.replicas` copies of
    /// every record (clamped to `[1, n_shards]`). `seed` roots every
    /// service-side jitter stream (latency, backoff, re-enrollment
    /// salts).
    #[must_use]
    pub fn new(policy: ServicePolicy, capacity: usize, n_shards: usize, seed: u64) -> Self {
        let replicas = policy.replicas.clamp(1, n_shards);
        Self {
            policy,
            store: ShardedStore::for_fleet_replicated(capacity, n_shards, replicas),
            state: HealthState::Healthy,
            store_health: StoreHealth::Intact,
            window: VecDeque::new(),
            window_errors: 0,
            quarantine: BTreeSet::new(),
            tallies: Tallies::default(),
            domain: SeedDomain::new(seed).child("serve"),
            clock_us: 0,
        }
    }

    /// Current health state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Replica-group health as of the last scrub pass.
    #[must_use]
    pub fn store_health(&self) -> StoreHealth {
        self.store_health
    }

    /// The simulated service clock, µs (sum of admitted request
    /// latencies, in admit order).
    #[must_use]
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// The service counters.
    #[must_use]
    pub fn tallies(&self) -> &Tallies {
        &self.tallies
    }

    /// The record store.
    #[must_use]
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Mutable store access (setup and fault-injection hooks).
    pub fn store_mut(&mut self) -> &mut ShardedStore {
        &mut self.store
    }

    /// Enrolls a device record (factory-time write).
    pub fn enroll(&mut self, record: StoredRecord) {
        self.store.insert(record);
    }

    /// Whether a device is currently quarantined.
    #[must_use]
    pub fn is_quarantined(&self, device_id: u64) -> bool {
        self.quarantine.contains(&device_id)
    }

    /// Currently quarantined device ids, ascending.
    #[must_use]
    pub fn quarantined_ids(&self) -> Vec<u64> {
        self.quarantine.iter().copied().collect()
    }

    /// Load-shedding decision for the request at deterministic arrival
    /// order `order`. Returns the retry-after hint (µs) when shed: in
    /// degraded state every 4th request is shed, in read-only every 2nd
    /// — a pure function of `(state, order)`, so reruns shed the exact
    /// same requests.
    #[must_use]
    pub fn should_shed(&self, order: u64) -> Option<u64> {
        let shed = match self.state {
            HealthState::Healthy => false,
            HealthState::Degraded => order % 4 == 3,
            HealthState::ReadOnly => order % 2 == 1,
        };
        shed.then(|| {
            let mut rng = self.domain.child("shed").rng(order);
            self.policy.retry.backoff_us(2, &mut rng)
        })
    }

    /// Runs one verification request against record `target_id`,
    /// answering with reads of `chip` (fault coordinates keyed by
    /// `probe_id`). Pure per device given the event base: `&self`, safe
    /// to fan out across `aro-par` workers.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn probe(
        &self,
        chip: &mut Chip,
        probe_id: u64,
        target_id: u64,
        event_base: u64,
        design: &PufDesign,
        env: &Environment,
        inj: Option<&FaultInjector>,
    ) -> RequestOutcome {
        // Audit capture is one relaxed load when off; when on, the chain
        // is *built* here (worker threads) and *emitted* by the
        // sequential admit path — never from a worker.
        let capture = audit::capturing();
        let (read, summary) = self.store.read_with_replicas(target_id);
        let outcome = |verdict,
                       attempts,
                       attempt_timeouts,
                       latency_us,
                       store: StoreAudit,
                       trail: Vec<AttemptAudit>| RequestOutcome {
            target_id,
            verdict,
            attempts,
            attempt_timeouts,
            latency_us,
            served_replica: summary.served,
            replicas_lost: summary.corrupt + summary.wiped,
            audit: capture.then(|| {
                Box::new(RequestAudit {
                    probe_id,
                    event_base,
                    store,
                    attempts: trail,
                })
            }),
        };
        // The replica that served (home shard for Missing); consulting
        // damaged siblings before it costs one store hop each.
        let served = summary.served.unwrap_or(0);
        let shard = self.store.replica_shard(target_id, served);
        let read_latency_us = self.policy.latency.base_us
            + u64::from(served) * self.policy.latency.replica_hop_us;
        let record = match read {
            ReadOutcome::Missing => {
                return outcome(
                    Verdict::Missing,
                    0,
                    0,
                    read_latency_us,
                    StoreAudit::Missing {
                        wiped: summary.wiped,
                    },
                    Vec::new(),
                )
            }
            ReadOutcome::Corrupt(record) => {
                // Fail closed: a group whose every replica fails its seal
                // never backs an accept. The admit step routes the device
                // to recovery.
                return outcome(
                    Verdict::CorruptRecord,
                    0,
                    0,
                    read_latency_us,
                    StoreAudit::Corrupt {
                        shard,
                        flagged: record.flagged().len(),
                        wiped: summary.wiped,
                    },
                    Vec::new(),
                )
            }
            ReadOutcome::Intact(record) => record,
        };
        let store_audit = StoreAudit::Intact {
            shard,
            replica: served,
            lost: summary.corrupt + summary.wiped,
        };
        let reference = record.reference();
        // Extra store hops past the home replica are charged up front;
        // a replica-0 serve keeps the pre-replication latency bytes.
        let mut latency_us = u64::from(served) * self.policy.latency.replica_hop_us;
        let mut attempt_timeouts = 0;
        let mut last_distance = None;
        let mut trail: Vec<AttemptAudit> = Vec::new();
        for attempt in 0..self.policy.retry.max_attempts {
            let event = event_base + u64::from(attempt);
            let mut rng = self.domain.child("request").rng(slot(target_id, event));
            let (answer, faults) =
                faulted_response(chip, design, env, record.challenge_pairs(), inj, probe_id, event);
            let cost = self
                .policy
                .latency
                .attempt_us(reference.len(), faults.excursion, &mut rng);
            if cost > self.policy.retry.attempt_timeout_us {
                attempt_timeouts += 1;
                let backoff = self.policy.retry.backoff_us(attempt + 1, &mut rng);
                latency_us += self.policy.retry.attempt_timeout_us + backoff;
                if capture {
                    trail.push(AttemptAudit {
                        attempt: attempt + 1,
                        latency_us: self.policy.retry.attempt_timeout_us,
                        timed_out: true,
                        backoff_us: backoff,
                        distance: None,
                        faults,
                    });
                }
                continue;
            }
            latency_us += cost;
            if answer.len() != reference.len() {
                // Fail closed on malformed input: no distance is ever
                // computed against a length-mismatched answer. (The
                // `serve.malformed` counter and its `serve_fail` event
                // are emitted by the sequential admit step.)
                if capture {
                    trail.push(AttemptAudit {
                        attempt: attempt + 1,
                        latency_us: cost,
                        timed_out: false,
                        backoff_us: 0,
                        distance: None,
                        faults,
                    });
                }
                return outcome(
                    Verdict::Malformed,
                    attempt + 1,
                    attempt_timeouts,
                    latency_us,
                    store_audit,
                    trail,
                );
            }
            let distance = fractional_hd(reference, &answer);
            last_distance = Some(distance);
            if distance <= self.policy.accept_threshold {
                if capture {
                    trail.push(AttemptAudit {
                        attempt: attempt + 1,
                        latency_us: cost,
                        timed_out: false,
                        backoff_us: 0,
                        distance: Some(distance),
                        faults,
                    });
                }
                return outcome(
                    Verdict::Accepted { distance },
                    attempt + 1,
                    attempt_timeouts,
                    latency_us,
                    store_audit,
                    trail,
                );
            }
            // The mismatch may be a transient (burst/glitch): back off
            // and retry within the attempt budget.
            let backoff = self.policy.retry.backoff_us(attempt + 1, &mut rng);
            latency_us += backoff;
            if capture {
                trail.push(AttemptAudit {
                    attempt: attempt + 1,
                    latency_us: cost,
                    timed_out: false,
                    backoff_us: backoff,
                    distance: Some(distance),
                    faults,
                });
            }
        }
        let attempts = self.policy.retry.max_attempts;
        let store = store_audit;
        match last_distance {
            Some(distance) => outcome(
                Verdict::Rejected { distance },
                attempts,
                attempt_timeouts,
                latency_us,
                store,
                trail,
            ),
            None => outcome(
                Verdict::TimedOut,
                attempts,
                attempt_timeouts,
                latency_us,
                store,
                trail,
            ),
        }
    }

    /// Admits one probe outcome into the service state: tallies, obs
    /// counters/sketches, the health window, and quarantine routing.
    /// Call sequentially in a deterministic request order.
    /// `maintenance_eligible` marks traffic whose failures should route
    /// the *record* to quarantine (a fleet's own devices — not impostor
    /// probes in a bench, which must only feed the FAR tally).
    pub fn admit(&mut self, outcome: &RequestOutcome, maintenance_eligible: bool) {
        self.clock_us += outcome.latency_us;
        self.tallies.served += 1;
        aro_obs::counter("serve.requests", 1);
        aro_obs::sketch("serve.latency_us", outcome.latency_us as f64);
        // Per-state sketch families: keyed by the health state the
        // request was served under (before this outcome moves it).
        aro_obs::sketch(self.state.latency_sketch(), outcome.latency_us as f64);
        aro_obs::sketch("serve.retries", f64::from(outcome.attempts));
        aro_obs::sketch(self.state.retries_sketch(), f64::from(outcome.attempts));
        if let Some(distance) = outcome.verdict.distance() {
            let margin = self.policy.accept_threshold - distance;
            aro_obs::sketch("serve.decode_margin", margin);
            aro_obs::sketch(self.state.margin_sketch(), margin);
        }
        self.tallies.attempt_timeouts += u64::from(outcome.attempt_timeouts);
        if outcome.attempt_timeouts > 0 {
            aro_obs::counter("serve.attempt_timeouts", u64::from(outcome.attempt_timeouts));
        }
        if outcome.served_replica.is_some_and(|replica| replica > 0) {
            self.tallies.replica_fallbacks += 1;
            aro_obs::counter("serve.replica_fallbacks", 1);
        }
        let at_us = self.clock_us as f64;
        let attempts = f64::from(outcome.attempts);
        let mut quarantine = false;
        match outcome.verdict {
            Verdict::Accepted { distance } => {
                self.tallies.accepted += 1;
                aro_obs::counter("serve.accepted", 1);
                aro_obs::sketch("serve.distance", distance);
                quarantine = distance > self.policy.quarantine_watermark;
            }
            Verdict::Rejected { distance } => {
                self.tallies.rejected += 1;
                aro_obs::counter("serve.rejected", 1);
                aro_obs::sketch("serve.distance", distance);
                quarantine = true;
            }
            Verdict::TimedOut => {
                self.tallies.timed_out += 1;
                aro_obs::counter("serve.timeouts", 1);
                aro_obs::serve_fail_event(
                    "timeout",
                    outcome.target_id,
                    &[("attempts", attempts), ("at_us", at_us)],
                );
            }
            Verdict::CorruptRecord => {
                self.tallies.corrupt_reads += 1;
                aro_obs::counter("serve.corrupt_reads", 1);
                aro_obs::serve_fail_event("corrupt_record", outcome.target_id, &[("at_us", at_us)]);
                quarantine = true;
            }
            Verdict::Missing => {
                self.tallies.missing += 1;
                aro_obs::counter("serve.missing", 1);
                aro_obs::serve_fail_event("missing", outcome.target_id, &[("at_us", at_us)]);
            }
            Verdict::Malformed => {
                self.tallies.malformed += 1;
                aro_obs::counter("serve.malformed", 1);
                aro_obs::serve_fail_event(
                    "malformed",
                    outcome.target_id,
                    &[("attempts", attempts), ("at_us", at_us)],
                );
                quarantine = true;
            }
        }
        let routed = quarantine && maintenance_eligible;
        if let Some(trail) = outcome.audit.as_deref() {
            audit::emit_request(
                trail,
                outcome.target_id,
                if maintenance_eligible { "genuine" } else { "impostor" },
                outcome.verdict.label(),
                outcome.verdict.distance(),
                routed,
                outcome.latency_us,
                self.clock_us,
            );
        }
        if routed {
            self.quarantine(outcome.target_id);
        }
        // Health events: one per timed-out attempt, one for the verdict.
        // Rejects are *decisions*, not operational errors — only reads
        // the service could not complete (timeouts) or could not trust
        // (corrupt/malformed/missing records) count against health.
        for _ in 0..outcome.attempt_timeouts {
            self.push_health(true);
        }
        let error = matches!(
            outcome.verdict,
            Verdict::TimedOut | Verdict::CorruptRecord | Verdict::Malformed | Verdict::Missing
        );
        self.push_health(error);
    }

    /// One deterministic anti-entropy pass over the store (the
    /// maintenance cycle's scrub step): seal-mismatched, wiped, and
    /// divergent replicas are rewritten from an intact sibling, the
    /// replica-health axis of the health machine is updated, and every
    /// read-repair / unrecoverable group / health transition is emitted
    /// to the audit trail on the simulated clock. Call sequentially.
    pub fn scrub(&mut self) -> ScrubReport {
        let report = self.store.scrub();
        self.tallies.scrub_repairs += report.repairs.len() as u64;
        self.tallies.scrub_unrecoverable += report.unrecoverable.len() as u64;
        if !report.repairs.is_empty() {
            aro_obs::counter("serve.scrub_repairs", report.repairs.len() as u64);
        }
        if !report.unrecoverable.is_empty() {
            aro_obs::counter(
                "serve.scrub_unrecoverable",
                report.unrecoverable.len() as u64,
            );
        }
        for repair in &report.repairs {
            audit::emit_scrub(
                repair.device_id,
                repair.replica,
                repair.generation,
                "read_repair",
                self.clock_us,
            );
        }
        for &device in &report.unrecoverable {
            audit::emit_scrub(device, 0, 0, "unrecoverable", self.clock_us);
        }
        let next = if !report.unrecoverable.is_empty() {
            StoreHealth::QuorumCritical
        } else if !report.repairs.is_empty() {
            StoreHealth::ReplicaDegraded
        } else {
            StoreHealth::Intact
        };
        if next != self.store_health {
            audit::emit_store_health(
                self.store_health.label(),
                next.label(),
                report.unrecoverable.len() as u64,
                self.clock_us,
            );
            self.store_health = next;
            aro_obs::counter(
                match next {
                    StoreHealth::Intact => "serve.store_health_intact",
                    StoreHealth::ReplicaDegraded => "serve.store_health_degraded",
                    StoreHealth::QuorumCritical => "serve.store_health_critical",
                },
                1,
            );
        }
        report
    }

    /// Admits a load-shedding decision (reject-with-retry-after) for
    /// `device`.
    pub fn admit_shed(&mut self, device: u64, retry_after_us: u64) {
        self.tallies.shed += 1;
        aro_obs::counter("serve.shed", 1);
        audit::emit_shed(device, retry_after_us, self.clock_us);
    }

    fn quarantine(&mut self, device_id: u64) {
        if self.quarantine.insert(device_id) {
            self.tallies.quarantines += 1;
            aro_obs::counter("serve.quarantines", 1);
        }
    }

    fn push_health(&mut self, error: bool) {
        if self.window.len() == self.policy.health_window
            && self.window.pop_front() == Some(true)
        {
            self.window_errors -= 1;
        }
        self.window.push_back(error);
        if error {
            self.window_errors += 1;
        }
        let len = self.window.len();
        if len < self.policy.health_window / 2 {
            return;
        }
        let rate = self.window_errors as f64 / len as f64;
        aro_obs::sketch("serve.error_rate", rate);
        let next = if rate >= self.policy.read_only_watermark {
            HealthState::ReadOnly
        } else {
            match self.state {
                HealthState::ReadOnly if rate >= self.policy.read_only_watermark / 2.0 => {
                    HealthState::ReadOnly
                }
                _ if rate >= self.policy.degraded_watermark => HealthState::Degraded,
                HealthState::Healthy => HealthState::Healthy,
                _ if rate < self.policy.degraded_watermark / 2.0 => HealthState::Healthy,
                _ => HealthState::Degraded,
            }
        };
        if next != self.state {
            audit::emit_health(self.state.label(), next.label(), rate, self.clock_us);
            self.state = next;
            aro_obs::counter(
                match next {
                    HealthState::Healthy => "serve.recovered_healthy",
                    HealthState::Degraded => "serve.entered_degraded",
                    HealthState::ReadOnly => "serve.entered_read_only",
                },
                1,
            );
        }
    }

    /// The quarantine → re-enrollment → re-admission path: reconstruct
    /// the device's current key erasure-aware from the (damaged) stored
    /// record — `ecc::refresh`'s continuity gate — then re-anchor the
    /// whole enrollment (helper data *and* CRP reference) on today's
    /// silicon and reseal the record. Returns whether the device was
    /// re-admitted. Refused outright in read-only state: re-enrollment
    /// is a store write.
    #[allow(clippy::too_many_arguments)]
    pub fn reenroll(
        &mut self,
        chip: &mut Chip,
        probe_id: u64,
        target_id: u64,
        key_pairs: &[(usize, usize)],
        generator: &KeyGenerator,
        design: &PufDesign,
        env: &Environment,
        inj: Option<&FaultInjector>,
        event_base: u64,
    ) -> bool {
        if self.state == HealthState::ReadOnly {
            self.tallies.reenroll_refusals += 1;
            aro_obs::counter("serve.reenroll_refused", 1);
            audit::emit_reenroll(target_id, event_base, "refused_read_only", 0, 0, self.clock_us);
            return false;
        }
        let _span = aro_obs::span("serve.reenroll");
        let (challenge_pairs, helper, key, flagged) = match self.store.read(target_id) {
            ReadOutcome::Missing => {
                audit::emit_reenroll(target_id, event_base, "missing", 0, 0, self.clock_us);
                return false;
            }
            // Recovery reads the record even when its checksum fails —
            // that is the whole point of the erasure flags.
            ReadOutcome::Intact(r) | ReadOutcome::Corrupt(r) => (
                r.challenge_pairs().to_vec(),
                r.helper().clone(),
                r.key().clone(),
                r.flagged().to_vec(),
            ),
        };
        // Device-side BIST: response bits backed by a dead/stuck ring
        // are erasures for the gate's decoder.
        let bist: Vec<usize> = key_pairs
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| {
                !chip.ros()[a].health().is_healthy() || !chip.ros()[b].health().is_healthy()
            })
            .map(|(bit, _)| bit)
            .collect();
        let known = Erasures {
            helper: flagged,
            response: bist,
        };
        let mut rng = self.domain.child("reenroll").rng(slot(target_id, event_base));
        for attempt in 0..u64::from(self.policy.retry.max_attempts) {
            let event = event_base + attempt;
            let soft = faulted_soft_response(chip, design, env, key_pairs, inj, probe_id, event);
            // Gate first: the multi-vote anchor and reference reads below
            // are the expensive half of maintenance, so they only happen
            // once the continuity gate has passed — a broken chain costs
            // one soft read per attempt, nothing more.
            if !continuity_gate(generator, &soft, &helper, &known, &key) {
                continue;
            }
            // Maintenance reads are careful: 5-vote majority anchors at
            // nominal conditions (the device is on the bench, not in the
            // field).
            let anchor = chip.response_voted(design, env, key_pairs, 5);
            let (new_key, new_helper) = generator.enroll(&anchor, &mut rng);
            let reference = chip.response_voted(design, env, &challenge_pairs, 5);
            let generation = self.store.repair(StoredRecord::new(
                target_id,
                challenge_pairs,
                reference,
                new_helper,
                new_key,
            ));
            self.quarantine.remove(&target_id);
            self.tallies.reenrolled += 1;
            aro_obs::counter("serve.reenrolled", 1);
            audit::emit_reenroll(
                target_id,
                event_base,
                "readmitted",
                attempt + 1,
                generation,
                self.clock_us,
            );
            return true;
        }
        self.tallies.reenroll_failures += 1;
        aro_obs::counter("serve.reenroll_failures", 1);
        audit::emit_reenroll(
            target_id,
            event_base,
            "gate_failed",
            u64::from(self.policy.retry.max_attempts),
            0,
            self.clock_us,
        );
        false
    }
}
