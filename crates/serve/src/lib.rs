//! `aro-serve` — a simulated fleet-authentication verifier backend,
//! hardened the way a production service would be.
//!
//! The repo's device-side stack keeps one chip's key alive for ten
//! years; this crate asks what happens when a *fleet* of aging, faulted
//! devices hits a verifier that itself can fail. Four pieces:
//!
//! * [`store`] — a sharded, N-way replicated enrollment/helper-data
//!   store with per-record checksums. Helper data is public but
//!   integrity-checked; corruption (injected with `aro-faults`' own
//!   helper-erasure machinery, replica wipes, and whole-shard losses)
//!   is detected on read, served from any intact sibling replica, and
//!   healed by the maintenance cycle's anti-entropy scrub — the store
//!   fails closed only when *every* replica of a record is gone.
//! * [`pipeline`] — bounded retries, per-attempt timeouts, and
//!   deterministic seed-derived backoff per request. Latency is
//!   simulated integer µs, which is what keeps serve-bench reports
//!   byte-identical at any thread count.
//! * [`service`] — the verification pipeline plus a health state
//!   machine (healthy → degraded → read-only) driven by a windowed
//!   operational-error rate; deterministic load shedding
//!   (reject-with-retry-after, never wrong answers); and the
//!   quarantine → `ecc::refresh` continuity-gated re-enrollment →
//!   re-admission path for devices whose distance margin degrades past
//!   the watermark.
//! * [`bench`] — the round-based fleet driver behind EXP-18 and
//!   `repro serve-bench`: plan a round deterministically, fan probes
//!   out through `aro-par`, fold outcomes in device-index order.
//! * [`audit`] — the request-scoped audit trail: a seed-derived request
//!   id per verification, its full causal chain (store read → attempts
//!   with fault linkage → verdict → quarantine/health/re-enrollment)
//!   emitted as structured JSONL on the simulated service clock.
//!   Consumed by `repro report incidents` / `report slo`.
//!
//! Everything is observable through `aro-obs` `serve.*` counters and
//! sketches. See `docs/ROBUSTNESS.md` ("Fleet authentication service")
//! and `docs/OBSERVABILITY.md` ("Serve audit trail & incident
//! forensics").

pub mod audit;
pub mod bench;
pub mod pipeline;
pub mod service;
pub mod store;

pub use audit::{AttemptAudit, AttemptFaults, RequestAudit, StoreAudit};
pub use bench::{run_bench, BenchPlan, BenchStats, FleetContext};
pub use pipeline::{LatencyModel, RetryPolicy};
pub use service::{
    AuthService, HealthState, RequestOutcome, ServicePolicy, StoreHealth, Tallies, Verdict,
};
pub use store::{
    ReadOutcome, ReplicaSummary, ScrubRepair, ScrubReport, ShardedStore, StoredRecord,
    REPLICA_WINDOW_STRIDE, STORE_WINDOW_BASE,
};
