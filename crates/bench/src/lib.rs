//! Shared helpers for the ARO-PUF benchmark harness.
//!
//! The real deliverables live next door: the [`repro`
//! binary](../src/bin/repro.rs) regenerates every table and figure of the
//! paper (`cargo run --release -p aro-bench --bin repro`), and the
//! Criterion benches (`cargo bench -p aro-bench`) time each experiment's
//! kernel at a reduced scale — one bench target per paper table/figure,
//! plus microbenches of the hot kernels.

pub mod report_cli;

use aro_sim::SimConfig;

/// The configuration benches run at: quick scale, so `cargo bench`
/// completes in minutes while still executing the full physics.
#[must_use]
pub fn bench_config() -> SimConfig {
    SimConfig::quick()
}

/// The configuration the `repro` binary runs at: paper scale.
#[must_use]
pub fn paper_config() -> SimConfig {
    SimConfig::paper()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_quick() {
        assert!(bench_config().n_chips < paper_config().n_chips);
    }
}
