//! `repro report` — offline analysis over the artefacts a run leaves
//! behind: telemetry JSONL captures, run ledgers, and `BENCH_*.json`
//! wall-time dumps.
//!
//! ```text
//! repro report profile run.jsonl [--top K]
//! repro report diff OLD NEW [--threshold F]
//! repro report trajectory DIR
//! repro report health PATH...
//! repro report trace run.jsonl
//! repro report incidents run.jsonl
//! repro report slo run.jsonl [--window N] [--availability-slo F] [--latency-slo-us N]
//! ```
//!
//! `diff` is the regression gate: it exits 5 when any experiment's wall
//! time regressed past the threshold (default +20 %), which is what
//! `scripts/bench_check.sh` keys on. Either side may be a bench JSON or a
//! ledger; ledger sides additionally contribute per-experiment metric
//! drift to the output, and health drift when both carry summaries
//! (degradations warn on stderr — the exit code stays wall-time-driven).
//!
//! `health` folds telemetry captures and/or ledgers into the fleet-health
//! tables (streaming percentiles, per-experiment summaries, cache hit
//! rates); the output is deterministic at any `--threads N`. `trace`
//! exports a capture's spans, fault events, and serve audit verdicts as
//! Chrome-trace JSON for `chrome://tracing` / Perfetto.
//!
//! `incidents` and `slo` consume a serve audit capture (`repro --audit
//! --telemetry FILE exp18`): `incidents` reconstructs per-device causal
//! timelines, top root causes, and quarantine post-mortems; `slo` scores
//! windowed availability and simulated-latency burn rates. Both are
//! byte-identical at any `--threads N` because the audit stream is
//! emitted sequentially in admission order.

use std::path::{Path, PathBuf};

use aro_ledger::{diff, health, incidents, profile, slo, trace, trajectory};

/// Exit code `repro report diff` uses for "regression past threshold".
pub const EXIT_REGRESSION: i32 = 5;

fn usage() -> String {
    "usage: repro report <SUBCOMMAND>\n\
     \n\
     subcommands:\n\
     \x20 profile PATH [--top K]        span-tree profile of a telemetry\n\
     \x20                               JSONL capture: per-phase wall time,\n\
     \x20                               self vs child time, top-K hot spans\n\
     \x20                               (default K = 10)\n\
     \x20 diff OLD NEW [--threshold F]  per-experiment wall-time and metric\n\
     \x20                               deltas between two runs; OLD/NEW are\n\
     \x20                               BENCH_*.json dumps or run ledgers.\n\
     \x20                               Exits 5 when any experiment's wall\n\
     \x20                               time exceeds OLD * (1 + F)\n\
     \x20                               (default F = 0.2)\n\
     \x20 trajectory DIR                fold the BENCH_*.json captures in\n\
     \x20                               DIR into a perf time-series table\n\
     \x20 health PATH...                deterministic fleet-health tables\n\
     \x20                               (BER / decode-margin / HD\n\
     \x20                               percentiles, cache hit rates) from\n\
     \x20                               telemetry captures and/or ledgers;\n\
     \x20                               byte-identical at any --threads N\n\
     \x20 trace PATH                    export a telemetry capture's spans,\n\
     \x20                               fault events, and serve audit\n\
     \x20                               verdicts as Chrome-trace JSON\n\
     \x20                               (chrome://tracing, Perfetto)\n\
     \x20 incidents PATH                forensics over a serve audit capture\n\
     \x20                               (repro --audit --telemetry FILE):\n\
     \x20                               per-device causal timelines, top\n\
     \x20                               root causes, quarantine post-mortems\n\
     \x20 slo PATH [--window N]         windowed availability and simulated-\n\
     \x20     [--availability-slo F]    latency burn rates over a serve\n\
     \x20     [--latency-slo-us N]      audit capture (defaults: window 64,\n\
     \x20                               availability 0.99, p99 1250 us)\n\
     \n\
     exit codes:\n\
     \x20 0  analysis completed (no regression, for diff)\n\
     \x20 1  unreadable or unparseable input\n\
     \x20 2  usage error\n\
     \x20 5  diff found a wall-time regression past the threshold\n\
     \x20 141 output pipe closed by the consumer"
        .to_string()
}

/// Prints one line to stdout, exiting with the conventional SIGPIPE
/// status when the consumer closed the pipe (mirrors the run-mode `emit`).
fn emit(text: impl std::fmt::Display) {
    use std::io::Write as _;
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(141);
    }
}

fn fail_usage(msg: &str) -> i32 {
    eprintln!("repro report: {msg}\n\n{}", usage());
    2
}

/// Runs `repro report <args>`; returns the process exit code.
#[must_use]
pub fn run(args: &[String]) -> i32 {
    let Some(sub) = args.first() else {
        return fail_usage("missing subcommand");
    };
    match sub.as_str() {
        "profile" => run_profile(&args[1..]),
        "diff" => run_diff(&args[1..]),
        "trajectory" => run_trajectory(&args[1..]),
        "health" => run_health(&args[1..]),
        "trace" => run_trace(&args[1..]),
        "incidents" => run_incidents(&args[1..]),
        "slo" => run_slo(&args[1..]),
        "--help" | "-h" => {
            emit(usage());
            0
        }
        other => fail_usage(&format!("unknown subcommand `{other}`")),
    }
}

fn run_profile(args: &[String]) -> i32 {
    let mut path: Option<PathBuf> = None;
    let mut top = 10usize;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                let Some(value) = args.next() else {
                    return fail_usage("--top expects a count");
                };
                match value.parse() {
                    Ok(k) if k > 0 => top = k,
                    _ => return fail_usage(&format!("--top expects a positive integer, got `{value}`")),
                }
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return fail_usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return fail_usage("profile expects a telemetry JSONL path");
    };
    match profile::profile_file(&path) {
        Ok(profile) => {
            emit(profile.to_markdown(top));
            0
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}

fn run_diff(args: &[String]) -> i32 {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut threshold = 0.2f64;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(value) = args.next() else {
                    return fail_usage("--threshold expects a fraction");
                };
                match value.parse::<f64>() {
                    Ok(f) if f.is_finite() && f >= 0.0 => threshold = f,
                    _ => {
                        return fail_usage(&format!(
                            "--threshold expects a non-negative fraction, got `{value}`"
                        ))
                    }
                }
            }
            other if !other.starts_with('-') && paths.len() < 2 => {
                paths.push(PathBuf::from(other));
            }
            other => return fail_usage(&format!("unexpected argument `{other}`")),
        }
    }
    let [old, new] = paths.as_slice() else {
        return fail_usage("diff expects exactly two inputs: OLD NEW");
    };
    match diff::diff_files(old, new, threshold) {
        Ok(report) => {
            emit(report.to_markdown());
            // Health degradations are advisory: warn loudly, exit cleanly.
            // A noisy BER percentile must never fail CI on its own.
            for delta in report.health_degradations() {
                eprintln!("repro report: health DEGRADED — {}", delta.describe());
            }
            if report.has_regression() {
                eprintln!(
                    "repro report: wall-time regression past +{:.0} % in: {}",
                    threshold * 100.0,
                    report.regressed_ids().join(", ")
                );
                EXIT_REGRESSION
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}

fn run_health(args: &[String]) -> i32 {
    if args.is_empty() || args.iter().any(|a| a.starts_with('-')) {
        return fail_usage("health expects one or more telemetry/ledger paths");
    }
    let paths: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
    match health::health_files(&paths) {
        Ok(report) => {
            emit(report.to_markdown());
            0
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}

fn run_trace(args: &[String]) -> i32 {
    let [path] = args else {
        return fail_usage("trace expects exactly one telemetry JSONL path");
    };
    if path.starts_with('-') {
        return fail_usage(&format!("unexpected argument `{path}`"));
    }
    match trace::trace_file(Path::new(path)) {
        Ok(trace) => {
            emit(trace.to_chrome_json());
            0
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}

fn run_incidents(args: &[String]) -> i32 {
    let [path] = args else {
        return fail_usage("incidents expects exactly one telemetry JSONL path");
    };
    if path.starts_with('-') {
        return fail_usage(&format!("unexpected argument `{path}`"));
    }
    match incidents::incidents_file(Path::new(path)) {
        Ok(report) => {
            emit(report.to_markdown());
            0
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}

fn run_slo(args: &[String]) -> i32 {
    let mut path: Option<PathBuf> = None;
    let mut policy = slo::SloPolicy::default();
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--window" => {
                let Some(value) = args.next() else {
                    return fail_usage("--window expects a request count");
                };
                match value.parse() {
                    Ok(n) if n > 0 => policy.window = n,
                    _ => {
                        return fail_usage(&format!(
                            "--window expects a positive integer, got `{value}`"
                        ))
                    }
                }
            }
            "--availability-slo" => {
                let Some(value) = args.next() else {
                    return fail_usage("--availability-slo expects a fraction");
                };
                match value.parse::<f64>() {
                    Ok(f) if f > 0.0 && f < 1.0 => policy.availability = f,
                    _ => {
                        return fail_usage(&format!(
                            "--availability-slo expects a fraction in (0, 1), got `{value}`"
                        ))
                    }
                }
            }
            "--latency-slo-us" => {
                let Some(value) = args.next() else {
                    return fail_usage("--latency-slo-us expects a duration in µs");
                };
                match value.parse() {
                    Ok(us) if us > 0 => policy.latency_p99_us = us,
                    _ => {
                        return fail_usage(&format!(
                            "--latency-slo-us expects a positive integer, got `{value}`"
                        ))
                    }
                }
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return fail_usage(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(path) = path else {
        return fail_usage("slo expects a telemetry JSONL path");
    };
    match slo::slo_file(&path) {
        Ok(report) => {
            emit(report.to_markdown(&policy));
            0
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}

fn run_trajectory(args: &[String]) -> i32 {
    let [dir] = args else {
        return fail_usage("trajectory expects exactly one directory");
    };
    match trajectory::scan_dir(Path::new(dir)) {
        Ok(trajectory) => {
            emit(trajectory.to_markdown());
            0
        }
        Err(e) => {
            eprintln!("repro report: {e}");
            1
        }
    }
}
