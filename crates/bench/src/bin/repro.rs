//! `repro` — regenerates every table and figure of the ARO-PUF paper.
//!
//! ```text
//! repro                 # all experiments at paper scale (100 chips)
//! repro exp2 exp5       # a subset
//! repro --quick         # all experiments at smoke-test scale
//! repro --seed 7 exp3   # a different Monte Carlo seed
//! repro --csv out/      # additionally dump every table as CSV
//! repro --list          # what is available
//! ```
//!
//! Output is markdown: tables render as pipe tables, figures as data
//! listings (x column + one y column per series).

use aro_sim::experiments::{run_all, run_by_id};
use aro_sim::{Report, SimConfig};
use std::path::PathBuf;

const EXPERIMENTS: [(&str, &str); 14] = [
    ("exp1", "RO frequency degradation vs. time"),
    (
        "exp2",
        "Percentage of flipped bits vs. time (paper: 32 % vs 7.7 %)",
    ),
    (
        "exp3",
        "Inter-chip Hamming distance (paper: ~45 % vs 49.67 %)",
    ),
    ("exp4", "Randomness and environmental reliability"),
    ("exp5", "PUF + ECC area for a 128-bit key (paper: ~24x)"),
    ("exp6", "Ablation: stress duty and temperature sweep"),
    ("exp7", "Ablation: pairing / masking strategies"),
    ("exp8", "End-to-end key generation over ten years"),
    (
        "exp9",
        "Ablation: temporal majority voting vs. the aging floor",
    ),
    ("exp10", "Ablation: margin-threshold masking trade-off"),
    (
        "exp11",
        "Ablation: spatially correlated variation vs. pairing distance",
    ),
    ("exp12", "Authentication FAR/FRR after ten years"),
    ("exp13", "Seed robustness of the headline claims"),
    ("exp14", "Soft-decision decoding gain"),
];

fn usage() -> ! {
    eprintln!("usage: repro [--quick] [--seed N] [--csv DIR] [--list] [exp1 .. exp11]");
    std::process::exit(2);
}

/// Writes every table of a report as `DIR/<exp>_<index>.csv`.
fn dump_csv(report: &Report, dir: &PathBuf) {
    std::fs::create_dir_all(dir).expect("create csv directory");
    for (i, table) in report.tables().iter().enumerate() {
        let name = format!("{}_{i}.csv", report.id().to_lowercase().replace('-', ""));
        let path = dir.join(name);
        std::fs::write(&path, table.to_csv())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
}

fn emit(report: &Report, csv_dir: Option<&PathBuf>) {
    println!("{report}");
    if let Some(dir) = csv_dir {
        dump_csv(report, dir);
    }
}

fn main() {
    let mut cfg = SimConfig::paper();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = SimConfig::quick(),
            "--seed" => {
                let Some(seed) = args.next().and_then(|s| s.parse().ok()) else {
                    usage()
                };
                cfg = cfg.with_seed(seed);
            }
            "--csv" => {
                let Some(dir) = args.next() else { usage() };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--list" => {
                for (id, title) in EXPERIMENTS {
                    println!("{id}  {title}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            id if id.starts_with("exp") => ids.push(id.to_string()),
            _ => usage(),
        }
    }

    println!(
        "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
        cfg.n_chips, cfg.n_ros, cfg.seed
    );

    if ids.is_empty() {
        for report in run_all(&cfg) {
            emit(&report, csv_dir.as_ref());
        }
    } else {
        for id in ids {
            match run_by_id(&id, &cfg) {
                Some(report) => emit(&report, csv_dir.as_ref()),
                None => {
                    eprintln!("unknown experiment `{id}` (try --list)");
                    std::process::exit(2);
                }
            }
        }
    }
}
