//! `repro` — regenerates every table and figure of the ARO-PUF paper.
//!
//! ```text
//! repro                          # all experiments at paper scale (100 chips)
//! repro exp2 exp5                # a subset
//! repro --quick                  # all experiments at smoke-test scale
//! repro --seed 7 exp3            # a different Monte Carlo seed
//! repro --csv out/               # additionally dump every table as CSV
//! repro --telemetry run.jsonl    # JSON-lines span/metric telemetry
//! repro --audit --telemetry run.jsonl exp18  # request-scoped serve audit trail
//! repro --metrics                # print the instrumented run summary
//! repro --bench-json BENCH_run.json  # per-experiment wall-time dump
//! repro --threads 4              # force the worker-thread count
//! repro --replicas 3             # store replication factor (serve modes)
//! repro --faults smoke           # run under an injected-fault plan
//! repro --max-retries 2          # retry failed experiments (reseeding
//!                                # only the flaky-tolerant ones)
//! repro --watchdog 600           # abandon any experiment past 600 s
//! repro --fail exp3              # force exp3 to panic (chaos testing)
//! repro --quiet                  # suppress report output (for timing runs)
//! repro --ledger run.ledger      # journal every experiment outcome
//! repro --resume run.ledger      # resume: replay completed experiments
//!                                # from the journal, run only the rest
//! repro report profile run.jsonl # span-tree profile of a telemetry file
//! repro report diff OLD NEW      # wall-time/metric deltas, exit 5 on
//!                                # regression past --threshold
//! repro report trajectory DIR    # fold BENCH_*.json into a time series
//! repro report incidents run.jsonl  # serve-audit forensics (root causes,
//!                                # quarantine post-mortems, timelines)
//! repro report slo run.jsonl     # windowed availability & latency burn
//! repro serve-bench              # fleet auth service benchmark (exits 3
//!                                # if the service ended degraded)
//! repro --list                   # what is available
//! ```
//!
//! Output is markdown: tables render as pipe tables, figures as data
//! listings (x column + one y column per series). A run where some — but
//! not all — experiments fail still prints every surviving report plus a
//! failure table (degraded mode). Exit codes: 0 success, 1 runtime/I-O
//! failure, 2 usage error, 3 partial failure (degraded report emitted),
//! 4 total failure (no experiment completed), 141 closed output pipe.

use aro_faults::{FaultInjector, FaultPlan};
use aro_ledger::Ledger;
use aro_sim::experiments::ALL_IDS;
use aro_sim::harness::{self, HarnessOptions};
use aro_sim::SimConfig;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const EXPERIMENTS: [(&str, &str); 19] = [
    ("exp1", "RO frequency degradation vs. time"),
    (
        "exp2",
        "Percentage of flipped bits vs. time (paper: 32 % vs 7.7 %)",
    ),
    (
        "exp3",
        "Inter-chip Hamming distance (paper: ~45 % vs 49.67 %)",
    ),
    ("exp4", "Randomness and environmental reliability"),
    ("exp5", "PUF + ECC area for a 128-bit key (paper: ~24x)"),
    ("exp6", "Ablation: stress duty and temperature sweep"),
    ("exp7", "Ablation: pairing / masking strategies"),
    ("exp8", "End-to-end key generation over ten years"),
    (
        "exp9",
        "Ablation: temporal majority voting vs. the aging floor",
    ),
    ("exp10", "Ablation: margin-threshold masking trade-off"),
    (
        "exp11",
        "Ablation: spatially correlated variation vs. pairing distance",
    ),
    ("exp12", "Authentication FAR/FRR after ten years"),
    ("exp13", "Seed robustness of the headline claims"),
    ("exp14", "Soft-decision decoding gain"),
    ("exp15", "Key recovery under injected faults (chaos sweep)"),
    ("exp16", "Self-healing helper-data refresh (interval sweep)"),
    ("exp17", "Fault-aware provisioning envelope"),
    ("exp18", "Fleet authentication service under fault storms"),
    (
        "exp19",
        "Full-storm survival: cheapest (area, refresh, replication) triple",
    ),
];

/// Run modes that are not paper experiments (never part of a bare
/// `repro` run; only run when named on the command line).
const MODES: [(&str, &str); 1] = [(
    "serve-bench",
    "Fleet authentication service benchmark (auths/sec, p50/p99, FAR/FRR; exits 3 if the service ended degraded)",
)];

/// Everything that can go wrong, with the exit code it maps to.
#[derive(Debug)]
enum CliError {
    /// Malformed command line (exit 2).
    Usage(String),
    /// An experiment id that does not exist (exit 2).
    UnknownExperiment(String),
    /// A filesystem operation failed (exit 1).
    Io {
        what: &'static str,
        path: PathBuf,
        source: std::io::Error,
    },
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::UnknownExperiment(_) => 2,
            CliError::Io { .. } => 1,
        }
    }

    fn io<'a>(
        what: &'static str,
        path: &'a Path,
    ) -> impl FnOnce(std::io::Error) -> CliError + 'a {
        move |source| CliError::Io {
            what,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (try --list)")
            }
            CliError::Io { what, path, source } => {
                write!(f, "cannot {what} `{}`: {source}", path.display())
            }
        }
    }
}

fn usage() -> String {
    let ids = ALL_IDS.join(" | ");
    format!(
        "usage: repro [OPTIONS] [{ids} | serve-bench]...\n\
         \n\
         modes (run only when named; never part of a bare `repro` run):\n\
         \x20 serve-bench          fleet authentication service benchmark:\n\
         \x20                      auths/sec, p50/p99 simulated latency, and\n\
         \x20                      FAR/FRR vs. fleet age under the --faults\n\
         \x20                      plan; exits 3 if the service ended a sweep\n\
         \x20                      point degraded/read-only\n\
         \n\
         options:\n\
         \x20 --quick              smoke-test scale (10 chips x 64 ROs)\n\
         \x20 --seed N             override the Monte Carlo seed\n\
         \x20 --csv DIR            additionally dump every table as CSV\n\
         \x20 --telemetry PATH     write span/metric telemetry as JSON lines\n\
         \x20 --audit              capture the request-scoped serve audit\n\
         \x20                      trail (exp18 / serve-bench) into the\n\
         \x20                      --telemetry file: one causal JSONL chain\n\
         \x20                      per verification, byte-identical at any\n\
         \x20                      --threads N; requires --telemetry\n\
         \x20 --metrics            print the instrumented run summary tables\n\
         \x20 --bench-json PATH    write per-experiment wall times as JSON\n\
         \x20 --threads N          force N worker threads (1 = sequential,\n\
         \x20                      results are bit-identical at any count)\n\
         \x20 --replicas N         enrollment-store replication factor for\n\
         \x20                      exp18/serve-bench (1..=4; default 2); a\n\
         \x20                      record survives any damage that leaves\n\
         \x20                      one replica intact\n\
         \x20 --faults PLAN        inject deterministic faults; PLAN is\n\
         \x20                      off | smoke | storm, optionally scaled\n\
         \x20                      as PLAN@INTENSITY (e.g. storm@0.5)\n\
         \x20 --max-retries N      retry a failed experiment up to N times\n\
         \x20                      (flaky-tolerant experiments reseed,\n\
         \x20                      headline ones keep their seed)\n\
         \x20 --watchdog SECS      abandon any experiment attempt that is\n\
         \x20                      still running after SECS seconds\n\
         \x20 --fail ID            force experiment ID to panic (repeatable;\n\
         \x20                      exercises degraded mode end to end)\n\
         \x20 --ledger PATH        start a fresh run ledger at PATH: every\n\
         \x20                      experiment outcome is journalled (JSONL,\n\
         \x20                      flushed per experiment, crash-safe)\n\
         \x20 --resume PATH        resume from the ledger at PATH: completed\n\
         \x20                      experiments whose config+faults+seed\n\
         \x20                      fingerprint matches are replayed byte-\n\
         \x20                      identically, the rest run and extend it\n\
         \x20 --quiet              suppress report output\n\
         \x20 --list               list every experiment with its title\n\
         \x20 --help               this message\n\
         \n\
         analysis (see `repro report --help`):\n\
         \x20 report profile PATH [--top K]     span-tree telemetry profile\n\
         \x20 report diff OLD NEW [--threshold F]  wall-time/metric deltas\n\
         \x20 report trajectory DIR             BENCH_*.json time series\n\
         \x20 report health PATH...             deterministic fleet-health\n\
         \x20                                   tables (BER / decode-margin /\n\
         \x20                                   HD percentiles, cache rates)\n\
         \x20 report trace PATH                 Chrome-trace JSON export\n\
         \x20 report incidents PATH             serve-audit forensics: causal\n\
         \x20                                   timelines, top root causes,\n\
         \x20                                   quarantine post-mortems\n\
         \x20 report slo PATH                   windowed availability and\n\
         \x20                                   simulated-latency burn rates\n\
         \n\
         exit codes:\n\
         \x20 0  every requested experiment completed\n\
         \x20 1  runtime/I-O failure\n\
         \x20 2  usage error\n\
         \x20 3  partial failure: some experiments failed, the rest were\n\
         \x20    reported together with a failure table (degraded mode);\n\
         \x20    also: `serve-bench` ended with the service degraded\n\
         \x20 4  total failure: no requested experiment completed\n\
         \x20 5  `report diff` found a wall-time regression\n\
         \x20 141 output pipe closed by the consumer"
    )
}

#[derive(Debug)]
struct Options {
    cfg: SimConfig,
    ids: Vec<String>,
    csv_dir: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    audit: bool,
    bench_json: Option<PathBuf>,
    threads: Option<usize>,
    replicas: Option<usize>,
    faults: Option<FaultPlan>,
    fault_spec: Option<String>,
    max_retries: usize,
    watchdog: Option<Duration>,
    forced_panics: Vec<String>,
    ledger: Option<PathBuf>,
    resume: Option<PathBuf>,
    metrics: bool,
    quiet: bool,
    quick: bool,
}

enum Parsed {
    Run(Box<Options>),
    List,
    Help,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Parsed, CliError> {
    let mut opts = Options {
        cfg: SimConfig::paper(),
        ids: Vec::new(),
        csv_dir: None,
        telemetry: None,
        audit: false,
        bench_json: None,
        threads: None,
        replicas: None,
        faults: None,
        fault_spec: None,
        max_retries: 0,
        watchdog: None,
        forced_panics: Vec::new(),
        ledger: None,
        resume: None,
        metrics: false,
        quiet: false,
        quick: false,
    };
    let mut seed: Option<u64> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed expects a value".into()))?;
                seed = Some(value.parse().map_err(|_| {
                    CliError::Usage(format!("--seed expects an integer, got `{value}`"))
                })?);
            }
            "--csv" => {
                let dir = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--csv expects a directory".into()))?;
                opts.csv_dir = Some(PathBuf::from(dir));
            }
            "--telemetry" => {
                let path = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--telemetry expects a path".into()))?;
                opts.telemetry = Some(PathBuf::from(path));
            }
            "--audit" => opts.audit = true,
            "--bench-json" => {
                let path = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--bench-json expects a path".into()))?;
                opts.bench_json = Some(PathBuf::from(path));
            }
            "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads expects a value".into()))?;
                let threads: usize = value.parse().map_err(|_| {
                    CliError::Usage(format!("--threads expects an integer, got `{value}`"))
                })?;
                if threads == 0 {
                    return Err(CliError::Usage(
                        "--threads expects a positive count (omit the flag for automatic sizing)"
                            .into(),
                    ));
                }
                opts.threads = Some(threads);
            }
            "--replicas" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--replicas expects a value".into()))?;
                let replicas: usize = value.parse().map_err(|_| {
                    CliError::Usage(format!("--replicas expects an integer, got `{value}`"))
                })?;
                if replicas == 0 {
                    return Err(CliError::Usage(
                        "--replicas expects a positive count (a record needs at least one copy)"
                            .into(),
                    ));
                }
                if replicas > aro_sim::servefleet::N_SHARDS {
                    return Err(CliError::Usage(format!(
                        "--replicas expects at most {} (replicas cannot outnumber store shards)",
                        aro_sim::servefleet::N_SHARDS
                    )));
                }
                opts.replicas = Some(replicas);
            }
            "--faults" => {
                let spec = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--faults expects a plan".into()))?;
                let plan = FaultPlan::parse(&spec).map_err(|e| CliError::Usage(e.to_string()))?;
                opts.faults = Some(plan);
                opts.fault_spec = Some(spec);
            }
            "--max-retries" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--max-retries expects a value".into()))?;
                opts.max_retries = value.parse().map_err(|_| {
                    CliError::Usage(format!("--max-retries expects an integer, got `{value}`"))
                })?;
            }
            "--watchdog" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--watchdog expects seconds".into()))?;
                let secs: f64 = value.parse().map_err(|_| {
                    CliError::Usage(format!("--watchdog expects seconds, got `{value}`"))
                })?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(CliError::Usage(
                        "--watchdog expects a positive number of seconds".into(),
                    ));
                }
                opts.watchdog = Some(Duration::from_secs_f64(secs));
            }
            "--fail" => {
                let id = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--fail expects an experiment id".into()))?;
                if !ALL_IDS.contains(&id.as_str()) {
                    return Err(CliError::UnknownExperiment(id));
                }
                opts.forced_panics.push(id);
            }
            "--ledger" => {
                let path = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--ledger expects a path".into()))?;
                opts.ledger = Some(PathBuf::from(path));
            }
            "--resume" => {
                let path = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--resume expects a path".into()))?;
                opts.resume = Some(PathBuf::from(path));
            }
            "--metrics" => opts.metrics = true,
            "--quiet" => opts.quiet = true,
            "--list" => return Ok(Parsed::List),
            "--help" | "-h" => return Ok(Parsed::Help),
            id if !id.starts_with('-') => {
                let known =
                    ALL_IDS.contains(&id) || MODES.iter().any(|&(mode, _)| mode == id);
                if !known {
                    return Err(CliError::UnknownExperiment(id.to_string()));
                }
                opts.ids.push(id.to_string());
            }
            flag => return Err(CliError::Usage(format!("unknown option `{flag}`"))),
        }
    }
    if opts.audit && opts.telemetry.is_none() {
        return Err(CliError::Usage(
            "--audit needs somewhere to write the trail: pass --telemetry PATH too".into(),
        ));
    }
    if opts.ledger.is_some() && opts.resume.is_some() {
        return Err(CliError::Usage(
            "--ledger and --resume are mutually exclusive (--resume appends to an existing ledger)"
                .into(),
        ));
    }
    if opts.quick {
        opts.cfg = SimConfig::quick();
    }
    if let Some(seed) = seed {
        opts.cfg = opts.cfg.with_seed(seed);
    }
    Ok(Parsed::Run(Box::new(opts)))
}

/// Writes a report's CSV table dumps as `DIR/<exp>_<index>.csv`. Takes
/// the rendered CSV strings rather than the report so replayed
/// experiments (which carry no live `Report`) dump the same files a
/// fresh run would — `id` is the harness id (`"exp1"`), which matches
/// the lowercased, dash-stripped report id the old naming used.
fn dump_csv(id: &str, tables: &[String], dir: &Path) -> Result<(), CliError> {
    std::fs::create_dir_all(dir).map_err(CliError::io("create directory", dir))?;
    for (i, table) in tables.iter().enumerate() {
        let path = dir.join(format!("{id}_{i}.csv"));
        std::fs::write(&path, table).map_err(CliError::io("write", &path))?;
    }
    Ok(())
}

/// The `ledger_open` header event: enough context to identify which run a
/// journal belongs to when it is read post-mortem.
fn ledger_header(cfg: &SimConfig, quick: bool, fault_spec: Option<&str>) -> String {
    format!(
        "{{\"event\":\"ledger_open\",\"schema\":\"aro-ledger-v1\",\"chips\":{},\"ros\":{},\"seed\":{},\"quick\":{},\"faults\":{}}}",
        cfg.n_chips,
        cfg.n_ros,
        cfg.seed,
        quick,
        aro_obs::json::escape(fault_spec.unwrap_or("off"))
    )
}

/// The `BENCH_*.json` perf-trajectory dump: schema tag, configuration,
/// per-experiment wall times in nanoseconds, and derived cache hit rates
/// (consumers tolerate unknown keys, so `derived` is schema-compatible).
fn bench_json(
    cfg: &SimConfig,
    quick: bool,
    wall: &[(String, u128)],
    registry: &aro_obs::Registry,
) -> String {
    let mut out = String::from("{\n  \"schema\": \"aro-bench-v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"chips\": {}, \"ros\": {}, \"seed\": {}, \"quick\": {}}},\n",
        cfg.n_chips, cfg.n_ros, cfg.seed, quick
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (id, ns)) in wall.iter().enumerate() {
        let comma = if i + 1 == wall.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": {}, \"wall_ns\": {ns}}}{comma}\n",
            aro_obs::json::escape(id)
        ));
    }
    let total: u128 = wall.iter().map(|(_, ns)| ns).sum();
    out.push_str(&format!("  ],\n  \"total_wall_ns\": {total}"));
    let rates: Vec<(&str, String)> = [
        ("popcache_hit_rate", "sim.popcache_hits", "sim.popcache_misses"),
        (
            "popcache_timeline_hit_rate",
            "sim.popcache_timeline_hits",
            "sim.popcache_timeline_misses",
        ),
        ("provision_hit_rate", "sim.provision_hits", "sim.provision_misses"),
        ("snapshot_hit_rate", "sim.snapshot_hits", "sim.snapshot_misses"),
    ]
    .into_iter()
    .filter_map(|(key, hits_name, misses_name)| {
        let hits = registry.counter(hits_name);
        let misses = registry.counter(misses_name);
        #[allow(clippy::cast_precision_loss)]
        ((hits + misses) > 0)
            .then(|| (key, format!("{:.4}", hits as f64 / (hits + misses) as f64)))
    })
    .collect();
    if !rates.is_empty() {
        out.push_str(",\n  \"derived\": {");
        for (i, (key, rate)) in rates.iter().enumerate() {
            let comma = if i + 1 == rates.len() { "" } else { "," };
            out.push_str(&format!("\n    \"{key}\": {rate}{comma}"));
        }
        out.push_str("\n  }");
    }
    // serve-bench sweep points publish `serve.bench.*` gauges (auths/sec,
    // exact p50/p99 simulated µs, quarantine/re-admit tallies); surfacing
    // them here lets `report diff` / `report trajectory` track service
    // throughput alongside wall times. Name-sorted for byte-stable dumps.
    let mut serve: Vec<(&str, f64)> = registry
        .gauges()
        .filter(|(name, _)| name.starts_with("serve.bench."))
        .collect();
    serve.sort_by(|a, b| a.0.cmp(b.0));
    if !serve.is_empty() {
        out.push_str(",\n  \"serve\": {");
        for (i, (name, value)) in serve.iter().enumerate() {
            let comma = if i + 1 == serve.len() { "" } else { "," };
            out.push_str(&format!("\n    \"{name}\": {value}{comma}"));
        }
        out.push_str("\n  }");
    }
    out.push_str("\n}\n");
    out
}

/// Prints one line to stdout, exiting quietly with the conventional
/// SIGPIPE status when a downstream consumer (e.g. `| head`) has closed
/// the pipe — `println!` would panic instead.
fn emit(text: impl std::fmt::Display) {
    use std::io::Write;
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(141);
    }
}

fn run(opts: &Options) -> Result<i32, CliError> {
    opts.cfg
        .validate()
        .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    if let Some(threads) = opts.threads {
        aro_sim::parallel::set_thread_override(threads);
    }
    if let Some(replicas) = opts.replicas {
        aro_sim::servefleet::set_replica_override(replicas);
    }
    // A ledger needs obs enabled so records carry the per-experiment
    // counter deltas (incl. the faults.* tallies); stdout is unchanged —
    // the run summary still only prints under --metrics/--telemetry.
    let mut ledger = match (&opts.ledger, &opts.resume) {
        (Some(path), None) => Some(Ledger::create(path).map_err(CliError::io("create ledger", path))?),
        (None, Some(path)) => Some(Ledger::open(path).map_err(CliError::io("open ledger", path))?),
        _ => None,
    };
    let instrumented = opts.telemetry.is_some()
        || opts.bench_json.is_some()
        || opts.metrics
        || ledger.is_some();
    if instrumented {
        aro_obs::set_enabled(true);
        aro_obs::reset();
    }
    if let Some(path) = &opts.telemetry {
        aro_obs::sink::install_file(path).map_err(CliError::io("open telemetry file", path))?;
    }
    // Audit capture piggybacks on the telemetry sink (parse_args already
    // rejected --audit without --telemetry). With the flag off the serve
    // path never builds an audit trail, so fixtures stay byte-identical.
    aro_serve::audit::set_enabled(opts.audit);
    if let Some(ledger) = &mut ledger {
        if ledger.skipped_lines() > 0 {
            eprintln!(
                "repro: ledger {}: tolerating {} corrupt/truncated line(s) from a previous crash",
                ledger.path().display(),
                ledger.skipped_lines()
            );
        }
        let fault_spec = opts.fault_spec.as_deref();
        let header = ledger_header(&opts.cfg, opts.quick, fault_spec);
        let path = ledger.path().to_path_buf();
        ledger
            .append_raw_event(&header)
            .map_err(CliError::io("write ledger header", &path))?;
    }

    if !opts.quiet {
        emit(format_args!(
            "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
            opts.cfg.n_chips, opts.cfg.n_ros, opts.cfg.seed
        ));
        // A live fault plan changes the bytes anyway, so it may announce
        // itself; a zero-intensity plan must stay byte-identical to a run
        // with no --faults at all, so it stays silent.
        if let (Some(plan), Some(spec)) = (&opts.faults, &opts.fault_spec) {
            if !plan.is_off() {
                emit(format_args!("> fault plan: {spec}\n"));
            }
        }
    }

    let ids: Vec<&str> = if opts.ids.is_empty() {
        ALL_IDS.to_vec()
    } else {
        opts.ids.iter().map(String::as_str).collect()
    };

    let harness_opts = HarnessOptions {
        max_retries: opts.max_retries,
        watchdog: opts.watchdog,
        forced_panics: opts.forced_panics.clone(),
    };
    let injector = opts
        .faults
        .map(|plan| Arc::new(FaultInjector::new(plan, opts.cfg.seed)));

    // One population cache for the whole invocation: experiments sharing
    // a (design, chip count) fabricate it once and clone thereafter. The
    // fault context (if any) wraps the same scope; the harness isolates
    // each experiment and collects whatever survives.
    let outcome = aro_sim::popcache::scoped(|| {
        let _run_span = aro_obs::span("run");
        aro_sim::faultctx::scoped(injector, || {
            harness::run_experiments_ledgered(&opts.cfg, &ids, &harness_opts, ledger.as_mut())
        })
    });

    if let Some(ledger) = &mut ledger {
        let replayed = outcome
            .successes
            .iter()
            .filter(|s| s.report.is_replayed())
            .count();
        let summary = format!(
            "{{\"event\":\"run_summary\",\"requested\":{},\"succeeded\":{},\"replayed\":{replayed},\"failed\":{}}}",
            ids.len(),
            outcome.successes.len(),
            outcome.failures.len()
        );
        if let Err(e) = ledger.append_raw_event(&summary) {
            eprintln!("repro: ledger {}: {e}", ledger.path().display());
        }
    }
    for error in &outcome.ledger_errors {
        eprintln!("repro: ledger append failed (run unaffected): {error}");
    }

    let mut wall: Vec<(String, u128)> = Vec::with_capacity(outcome.successes.len());
    // `serve-bench` reports carry a marker note when the service finished
    // a sweep point outside its healthy state; that maps to exit 3
    // (degraded-but-served) for fresh and ledger-replayed runs alike.
    let mut serve_degraded = false;
    for success in &outcome.successes {
        wall.push((success.id.clone(), success.wall.as_nanos()));
        if success.id == "serve-bench"
            && success
                .report
                .to_string()
                .contains(aro_sim::experiments::serve_bench::DEGRADED_MARKER)
        {
            serve_degraded = true;
        }
        if !opts.quiet {
            emit(&success.report);
        }
        if let Some(dir) = &opts.csv_dir {
            dump_csv(&success.id, &success.report.csv_tables(), dir)?;
        }
    }
    for failure in &outcome.failures {
        eprintln!(
            "repro: {} failed after {} attempt(s): {}",
            failure.id, failure.attempts, failure.error
        );
    }
    if let Some(table) = outcome.failure_table() {
        if !opts.quiet {
            emit(format_args!(
                "## FAILURES — degraded run\n\n{}",
                table.to_markdown()
            ));
        }
    }

    if instrumented {
        let registry = aro_obs::snapshot();
        aro_obs::flush_metrics_to_sink(&registry);
        aro_obs::sink::close();
        if (opts.metrics || opts.telemetry.is_some()) && !opts.quiet {
            let summary =
                aro_sim::summary::render_run_summary(&registry, &aro_obs::timing_snapshot());
            if !summary.is_empty() {
                emit(&summary);
            }
        }
    }

    if let Some(path) = &opts.bench_json {
        // Scratch is still populated: the flush above copies, not drains.
        let json = bench_json(&opts.cfg, opts.quick, &wall, &aro_obs::snapshot());
        std::fs::write(path, json).map_err(CliError::io("write bench json", path))?;
    }
    Ok(if outcome.is_total_failure() {
        4
    } else if outcome.is_degraded() || serve_degraded {
        3
    } else {
        0
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `repro report …` is a separate, run-free mode: offline analysis
    // over ledgers, telemetry captures, and bench dumps.
    if args.first().map(String::as_str) == Some("report") {
        std::process::exit(aro_bench::report_cli::run(&args[1..]));
    }
    match parse_args(args.into_iter()) {
        Ok(Parsed::List) => {
            for (id, title) in EXPERIMENTS.into_iter().chain(MODES) {
                emit(format_args!("{id}  {title}"));
            }
        }
        Ok(Parsed::Help) => emit(usage()),
        Ok(Parsed::Run(opts)) => match run(&opts) {
            Ok(0) => {}
            Ok(code) => std::process::exit(code),
            Err(e) => {
                eprintln!("repro: {e}");
                std::process::exit(e.exit_code());
            }
        },
        Err(e) => {
            eprintln!("repro: {e}");
            if e.exit_code() == 2 {
                eprintln!("\n{}", usage());
            }
            std::process::exit(e.exit_code());
        }
    }
}
