//! `repro` — regenerates every table and figure of the ARO-PUF paper.
//!
//! ```text
//! repro                          # all experiments at paper scale (100 chips)
//! repro exp2 exp5                # a subset
//! repro --quick                  # all experiments at smoke-test scale
//! repro --seed 7 exp3            # a different Monte Carlo seed
//! repro --csv out/               # additionally dump every table as CSV
//! repro --telemetry run.jsonl    # JSON-lines span/metric telemetry
//! repro --metrics                # print the instrumented run summary
//! repro --bench-json BENCH_run.json  # per-experiment wall-time dump
//! repro --threads 4              # force the worker-thread count
//! repro --quiet                  # suppress report output (for timing runs)
//! repro --list                   # what is available
//! ```
//!
//! Output is markdown: tables render as pipe tables, figures as data
//! listings (x column + one y column per series). Exit codes: 0 success,
//! 1 runtime/I-O failure, 2 usage error.

use aro_sim::experiments::{run_by_id, ALL_IDS};
use aro_sim::{Report, SimConfig};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

const EXPERIMENTS: [(&str, &str); 14] = [
    ("exp1", "RO frequency degradation vs. time"),
    (
        "exp2",
        "Percentage of flipped bits vs. time (paper: 32 % vs 7.7 %)",
    ),
    (
        "exp3",
        "Inter-chip Hamming distance (paper: ~45 % vs 49.67 %)",
    ),
    ("exp4", "Randomness and environmental reliability"),
    ("exp5", "PUF + ECC area for a 128-bit key (paper: ~24x)"),
    ("exp6", "Ablation: stress duty and temperature sweep"),
    ("exp7", "Ablation: pairing / masking strategies"),
    ("exp8", "End-to-end key generation over ten years"),
    (
        "exp9",
        "Ablation: temporal majority voting vs. the aging floor",
    ),
    ("exp10", "Ablation: margin-threshold masking trade-off"),
    (
        "exp11",
        "Ablation: spatially correlated variation vs. pairing distance",
    ),
    ("exp12", "Authentication FAR/FRR after ten years"),
    ("exp13", "Seed robustness of the headline claims"),
    ("exp14", "Soft-decision decoding gain"),
];

/// Everything that can go wrong, with the exit code it maps to.
#[derive(Debug)]
enum CliError {
    /// Malformed command line (exit 2).
    Usage(String),
    /// An experiment id that does not exist (exit 2).
    UnknownExperiment(String),
    /// A filesystem operation failed (exit 1).
    Io {
        what: &'static str,
        path: PathBuf,
        source: std::io::Error,
    },
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) | CliError::UnknownExperiment(_) => 2,
            CliError::Io { .. } => 1,
        }
    }

    fn io<'a>(
        what: &'static str,
        path: &'a Path,
    ) -> impl FnOnce(std::io::Error) -> CliError + 'a {
        move |source| CliError::Io {
            what,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::UnknownExperiment(id) => {
                write!(f, "unknown experiment `{id}` (try --list)")
            }
            CliError::Io { what, path, source } => {
                write!(f, "cannot {what} `{}`: {source}", path.display())
            }
        }
    }
}

fn usage() -> String {
    let ids = ALL_IDS.join(" | ");
    format!(
        "usage: repro [OPTIONS] [{ids}]...\n\
         \n\
         options:\n\
         \x20 --quick              smoke-test scale (10 chips x 64 ROs)\n\
         \x20 --seed N             override the Monte Carlo seed\n\
         \x20 --csv DIR            additionally dump every table as CSV\n\
         \x20 --telemetry PATH     write span/metric telemetry as JSON lines\n\
         \x20 --metrics            print the instrumented run summary tables\n\
         \x20 --bench-json PATH    write per-experiment wall times as JSON\n\
         \x20 --threads N          force N worker threads (1 = sequential,\n\
         \x20                      results are bit-identical at any count)\n\
         \x20 --quiet              suppress report output\n\
         \x20 --list               list every experiment with its title\n\
         \x20 --help               this message"
    )
}

#[derive(Debug)]
struct Options {
    cfg: SimConfig,
    ids: Vec<String>,
    csv_dir: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    bench_json: Option<PathBuf>,
    threads: Option<usize>,
    metrics: bool,
    quiet: bool,
    quick: bool,
}

enum Parsed {
    Run(Box<Options>),
    List,
    Help,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Parsed, CliError> {
    let mut opts = Options {
        cfg: SimConfig::paper(),
        ids: Vec::new(),
        csv_dir: None,
        telemetry: None,
        bench_json: None,
        threads: None,
        metrics: false,
        quiet: false,
        quick: false,
    };
    let mut seed: Option<u64> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed expects a value".into()))?;
                seed = Some(value.parse().map_err(|_| {
                    CliError::Usage(format!("--seed expects an integer, got `{value}`"))
                })?);
            }
            "--csv" => {
                let dir = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--csv expects a directory".into()))?;
                opts.csv_dir = Some(PathBuf::from(dir));
            }
            "--telemetry" => {
                let path = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--telemetry expects a path".into()))?;
                opts.telemetry = Some(PathBuf::from(path));
            }
            "--bench-json" => {
                let path = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--bench-json expects a path".into()))?;
                opts.bench_json = Some(PathBuf::from(path));
            }
            "--threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::Usage("--threads expects a value".into()))?;
                let threads: usize = value.parse().map_err(|_| {
                    CliError::Usage(format!("--threads expects an integer, got `{value}`"))
                })?;
                if threads == 0 {
                    return Err(CliError::Usage(
                        "--threads expects a positive count (omit the flag for automatic sizing)"
                            .into(),
                    ));
                }
                opts.threads = Some(threads);
            }
            "--metrics" => opts.metrics = true,
            "--quiet" => opts.quiet = true,
            "--list" => return Ok(Parsed::List),
            "--help" | "-h" => return Ok(Parsed::Help),
            id if !id.starts_with('-') => {
                if !ALL_IDS.contains(&id) {
                    return Err(CliError::UnknownExperiment(id.to_string()));
                }
                opts.ids.push(id.to_string());
            }
            flag => return Err(CliError::Usage(format!("unknown option `{flag}`"))),
        }
    }
    if opts.quick {
        opts.cfg = SimConfig::quick();
    }
    if let Some(seed) = seed {
        opts.cfg = opts.cfg.with_seed(seed);
    }
    Ok(Parsed::Run(Box::new(opts)))
}

/// Writes every table of a report as `DIR/<exp>_<index>.csv`.
fn dump_csv(report: &Report, dir: &Path) -> Result<(), CliError> {
    std::fs::create_dir_all(dir).map_err(CliError::io("create directory", dir))?;
    for (i, table) in report.tables().iter().enumerate() {
        let name = format!("{}_{i}.csv", report.id().to_lowercase().replace('-', ""));
        let path = dir.join(name);
        std::fs::write(&path, table.to_csv()).map_err(CliError::io("write", &path))?;
    }
    Ok(())
}

/// The `BENCH_*.json` perf-trajectory dump: schema tag, configuration, and
/// per-experiment wall times in nanoseconds.
fn bench_json(cfg: &SimConfig, quick: bool, wall: &[(String, u128)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"aro-bench-v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"chips\": {}, \"ros\": {}, \"seed\": {}, \"quick\": {}}},\n",
        cfg.n_chips, cfg.n_ros, cfg.seed, quick
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (id, ns)) in wall.iter().enumerate() {
        let comma = if i + 1 == wall.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": {}, \"wall_ns\": {ns}}}{comma}\n",
            aro_obs::json::escape(id)
        ));
    }
    let total: u128 = wall.iter().map(|(_, ns)| ns).sum();
    out.push_str(&format!("  ],\n  \"total_wall_ns\": {total}\n}}\n"));
    out
}

/// Prints one line to stdout, exiting quietly with the conventional
/// SIGPIPE status when a downstream consumer (e.g. `| head`) has closed
/// the pipe — `println!` would panic instead.
fn emit(text: impl std::fmt::Display) {
    use std::io::Write;
    if writeln!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(141);
    }
}

fn run(opts: &Options) -> Result<(), CliError> {
    if let Some(threads) = opts.threads {
        aro_sim::parallel::set_thread_override(threads);
    }
    let instrumented = opts.telemetry.is_some() || opts.bench_json.is_some() || opts.metrics;
    if instrumented {
        aro_obs::set_enabled(true);
        aro_obs::reset();
    }
    if let Some(path) = &opts.telemetry {
        aro_obs::sink::install_file(path).map_err(CliError::io("open telemetry file", path))?;
    }

    if !opts.quiet {
        emit(format_args!(
            "# ARO-PUF (DATE 2014) reproduction — {} chips x {} ROs, seed {}\n",
            opts.cfg.n_chips, opts.cfg.n_ros, opts.cfg.seed
        ));
    }

    let ids: Vec<&str> = if opts.ids.is_empty() {
        ALL_IDS.to_vec()
    } else {
        opts.ids.iter().map(String::as_str).collect()
    };

    let mut wall: Vec<(String, u128)> = Vec::with_capacity(ids.len());
    // One population cache for the whole invocation: experiments sharing
    // a (design, chip count) fabricate it once and clone thereafter.
    aro_sim::popcache::scoped(|| -> Result<(), CliError> {
        let _run_span = aro_obs::span("run");
        for id in ids {
            let started = Instant::now();
            let report = run_by_id(id, &opts.cfg).ok_or_else(|| {
                // Unreachable for ALL_IDS entries; user ids were validated
                // at parse time, but keep the error path total.
                CliError::UnknownExperiment(id.to_string())
            })?;
            wall.push((id.to_string(), started.elapsed().as_nanos()));
            if !opts.quiet {
                emit(&report);
            }
            if let Some(dir) = &opts.csv_dir {
                dump_csv(&report, dir)?;
            }
        }
        Ok(())
    })?;

    if instrumented {
        let registry = aro_obs::snapshot();
        aro_obs::flush_metrics_to_sink(&registry);
        aro_obs::sink::close();
        if (opts.metrics || opts.telemetry.is_some()) && !opts.quiet {
            let summary =
                aro_sim::summary::render_run_summary(&registry, &aro_obs::timing_snapshot());
            if !summary.is_empty() {
                emit(&summary);
            }
        }
    }

    if let Some(path) = &opts.bench_json {
        let json = bench_json(&opts.cfg, opts.quick, &wall);
        std::fs::write(path, json).map_err(CliError::io("write bench json", path))?;
    }
    Ok(())
}

fn main() {
    match parse_args(std::env::args().skip(1)) {
        Ok(Parsed::List) => {
            for (id, title) in EXPERIMENTS {
                emit(format_args!("{id}  {title}"));
            }
        }
        Ok(Parsed::Help) => emit(usage()),
        Ok(Parsed::Run(opts)) => {
            if let Err(e) = run(&opts) {
                eprintln!("repro: {e}");
                std::process::exit(e.exit_code());
            }
        }
        Err(e) => {
            eprintln!("repro: {e}");
            if e.exit_code() == 2 {
                eprintln!("\n{}", usage());
            }
            std::process::exit(e.exit_code());
        }
    }
}
