//! EXP-12 bench: regenerates the authentication distance distributions
//! (reduced scale) and times one style's genuine+impostor sampling.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp12;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp12_distance_samples", |b| {
        b.iter(|| {
            black_box(exp12::distance_samples(
                black_box(&cfg),
                RoStyle::AgingResistant,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
