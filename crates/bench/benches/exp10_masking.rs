//! EXP-10 bench: regenerates the masking trade-off sweep (reduced scale)
//! and times it.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp10;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp10_masking_sweep", |b| {
        b.iter(|| black_box(exp10::masking_sweep(black_box(&cfg), RoStyle::Conventional)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
