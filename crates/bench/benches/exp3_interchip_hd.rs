//! EXP-3 bench: regenerates the inter-chip HD distribution (reduced
//! scale) and times the population-response + pairwise-HD kernel.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp3;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("exp3_interchip_hd");
    for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
        group.bench_function(style.label(), |b| {
            b.iter(|| black_box(exp3::interchip_sample(black_box(&cfg), style)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
