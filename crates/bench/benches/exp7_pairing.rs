//! EXP-7 bench: regenerates the pairing/masking trade-off for the two
//! extreme strategies and times them.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_puf::PairingStrategy;
use aro_sim::experiments::exp7;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("exp7_pairing");
    for strategy in [
        PairingStrategy::Neighbor,
        PairingStrategy::SortedOneOutOfK { k: 8 },
    ] {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                black_box(exp7::evaluate(
                    black_box(&cfg),
                    RoStyle::Conventional,
                    strategy,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
