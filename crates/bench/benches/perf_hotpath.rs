//! Microbenches pinning the three hot paths the performance work targets:
//! the precomputed frequency kernel (cached query vs forced rebuild),
//! parallel population fabrication, and one aging-timeline checkpoint.
//!
//! Compare against `BENCH_baseline.json` at the workspace root with
//! `scripts/bench_check.sh`; the end-to-end numbers live in
//! `docs/PERFORMANCE.md`.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_device::units::YEAR;
use aro_puf::{Chip, MissionProfile, Population, PufDesign};
use aro_sim::runner::measure_flip_timeline;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let design = PufDesign::standard(RoStyle::AgingResistant, 7);
    let tech = design.tech();
    let nominal = Environment::nominal(tech);
    // A second environment forces a kernel identity mismatch on every
    // other query, so alternating between the two measures the full
    // rebuild, not the cache hit.
    let hot = Environment::new(85.0, tech.vdd_nominal);
    let chip = Chip::fabricate(&design, 0);

    c.bench_function("freq_kernel_cached_query", |b| {
        // Steady state: the kernel is valid, every call is a cache hit.
        black_box(chip.frequency(&design, &nominal, 0));
        b.iter(|| black_box(chip.frequency(&design, &nominal, black_box(0))))
    });

    c.bench_function("freq_kernel_rebuild", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let env = if flip { &hot } else { &nominal };
            black_box(chip.frequency(&design, env, black_box(0)))
        })
    });

    c.bench_function("population_fabricate_8_chips", |b| {
        b.iter(|| black_box(Population::fabricate(black_box(&design), 8)))
    });

    c.bench_function("flip_timeline_one_checkpoint", |b| {
        let pristine = Population::fabricate(&design, 4);
        let profile = MissionProfile::typical(design.tech());
        b.iter(|| {
            let mut population = pristine.clone();
            black_box(measure_flip_timeline(
                &mut population,
                &profile,
                &[10.0 * YEAR],
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
