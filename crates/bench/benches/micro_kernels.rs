//! Microbenches of the hot kernels under every experiment: ring frequency
//! evaluation, chip fabrication, BCH encode/decode, Hamming distance, and
//! SHA-256.

use aro_circuit::ring::RoStyle;
use aro_device::environment::Environment;
use aro_ecc::bch::BchCode;
use aro_ecc::code::Code;
use aro_ecc::hash::sha256;
use aro_metrics::bits::BitString;
use aro_puf::{Chip, PufDesign};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let design = PufDesign::standard(RoStyle::Conventional, 1);
    let env = Environment::nominal(design.tech());
    let chip = Chip::fabricate(&design, 0);

    c.bench_function("ro_frequency_eval", |b| {
        b.iter(|| black_box(chip.frequency(&design, &env, black_box(0))))
    });

    c.bench_function("chip_fabricate_256_ros", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            black_box(Chip::fabricate(&design, id))
        })
    });

    let code = BchCode::new(8, 16);
    let message: BitString = (0..code.k()).map(|i| i % 3 == 0).collect();
    let codeword = code.encode(&message);
    let mut corrupted = codeword.clone();
    for i in 0..16 {
        corrupted.flip(i * 14 + 3);
    }
    c.bench_function("bch_255_encode", |b| {
        b.iter(|| black_box(code.encode(black_box(&message))))
    });
    c.bench_function("bch_255_decode_16_errors", |b| {
        b.iter(|| black_box(code.decode(black_box(&corrupted))))
    });

    let a = BitString::from_fn(4096, |i| i % 7 == 0);
    let bstr = BitString::from_fn(4096, |i| i % 5 == 0);
    c.bench_function("hamming_4096_bits", |b| {
        b.iter(|| black_box(a.hamming_distance(black_box(&bstr))))
    });

    let data = vec![0xabu8; 1024];
    c.bench_function("sha256_1_kib", |b| {
        b.iter(|| black_box(sha256(black_box(&data))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
