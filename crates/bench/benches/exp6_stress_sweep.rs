//! EXP-6 bench: regenerates one point of each ablation sweep (duty and
//! temperature) and times it.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp6;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp6_duty_point", |b| {
        b.iter(|| black_box(exp6::flip_rate_at_duty(black_box(&cfg), 0.01)))
    });
    c.bench_function("exp6_temp_point", |b| {
        b.iter(|| {
            black_box(exp6::flip_rate_at_temp(
                black_box(&cfg),
                RoStyle::Conventional,
                85.0,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
