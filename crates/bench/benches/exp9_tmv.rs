//! EXP-9 bench: regenerates the TMV-vs-aging-floor curves (reduced
//! scale) and times one style's sweep.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp9;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp9_tmv_curves", |b| {
        b.iter(|| black_box(exp9::tmv_curves(black_box(&cfg), RoStyle::AgingResistant)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
