//! EXP-4 bench: regenerates the randomness/reliability tables (reduced
//! scale) and times the NIST-lite battery on a PUF-sized bit stream.

use aro_bench::bench_config;
use aro_metrics::bits::BitString;
use aro_metrics::nist;
use aro_sim::experiments::exp4;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp4_randomness_full", |b| {
        b.iter(|| black_box(exp4::run(black_box(&cfg))))
    });

    // The battery alone on a 100-chip x 128-bit stream.
    let mut state = 0x1234_5678_9abc_def0u64;
    let bits = BitString::from_fn(12_800, |_| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 63) & 1 == 1
    });
    c.bench_function("nist_battery_12800_bits", |b| {
        b.iter(|| black_box(nist::battery(black_box(&bits))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
