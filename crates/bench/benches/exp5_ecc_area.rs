//! EXP-5 bench: regenerates the area table's design-space search at the
//! paper's two headline BERs and times it.

use aro_ecc::area::{search_design, PufAreaParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn params() -> PufAreaParams {
    PufAreaParams {
        ro_cell_ge: 3.0,
        readout_fixed_ge: 136.0,
        readout_per_ro_ge: 3.0,
        ros_per_bit: 2.0,
    }
}

fn bench(c: &mut Criterion) {
    let puf = params();
    let mut group = c.benchmark_group("exp5_ecc_area");
    for (label, ber) in [("conventional_ber_0.40", 0.40), ("aro_ber_0.11", 0.11)] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(search_design(black_box(ber), 128, 1e-6, &puf)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
