//! EXP-13 bench: regenerates one seed's headline pair (reduced scale)
//! and times it — the unit of the robustness sweep.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp13;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp13_headline_one_seed", |b| {
        b.iter(|| black_box(exp13::headline(black_box(&cfg), RoStyle::Conventional, 42)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
