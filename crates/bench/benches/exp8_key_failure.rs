//! EXP-8 bench: regenerates the end-to-end key flow for one chip batch
//! (small key to keep the array tractable at bench cadence) and times it.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_ecc::keygen::KeyGenerator;
use aro_sim::experiments::exp8;
use aro_sim::runner::puf_area_params;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut cfg = bench_config();
    cfg.key_bits = 32;
    let params = puf_area_params(RoStyle::AgingResistant, 5);
    let generator =
        KeyGenerator::for_bit_error_rate(0.10, cfg.key_bits, cfg.key_fail_target, &params)
            .expect("feasible design point");
    c.bench_function("exp8_key_trial_2_chips", |b| {
        b.iter(|| {
            black_box(exp8::run_trial(
                black_box(&cfg),
                RoStyle::AgingResistant,
                &generator,
                2,
                1,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
