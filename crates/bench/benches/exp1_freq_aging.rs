//! EXP-1 bench: regenerates the frequency-degradation figure (reduced
//! scale) and times its kernel — a single chip aged through the full
//! checkpoint schedule.

use aro_bench::bench_config;
use aro_sim::experiments::exp1;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp1_freq_aging", |b| {
        b.iter(|| black_box(exp1::run(black_box(&cfg))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
