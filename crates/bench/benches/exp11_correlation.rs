//! EXP-11 bench: regenerates one correlated-field design point
//! (includes the per-design Cholesky factorization) and times it.

use aro_bench::bench_config;
use aro_puf::PairingStrategy;
use aro_sim::experiments::exp11;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("exp11_correlated_point", |b| {
        b.iter(|| {
            black_box(exp11::evaluate(
                black_box(&cfg),
                0.02,
                &PairingStrategy::Neighbor,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
