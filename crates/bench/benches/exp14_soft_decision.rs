//! EXP-14 bench: regenerates the soft-vs-hard key trial (reduced scale)
//! and times it.

use aro_bench::bench_config;
use aro_sim::experiments::exp14;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut cfg = bench_config();
    cfg.key_bits = 32;
    c.bench_function("exp14_soft_gain_trial", |b| {
        b.iter(|| black_box(exp14::measure(black_box(&cfg), 2, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
