//! EXP-2 bench: regenerates the flipped-bits-vs-time series (reduced
//! scale) and times the enrollment + aging + re-read pipeline per style.

use aro_bench::bench_config;
use aro_circuit::ring::RoStyle;
use aro_sim::experiments::exp2;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("exp2_bitflips");
    for style in [RoStyle::Conventional, RoStyle::AgingResistant] {
        group.bench_function(style.label(), |b| {
            b.iter(|| black_box(exp2::flip_timeline(black_box(&cfg), style)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
