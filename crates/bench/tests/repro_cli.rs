//! End-to-end tests for the `repro` binary: exit codes, usage output, and
//! the telemetry / bench-json artifacts.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("repro_cli_{}_{name}", std::process::id()));
    p
}

#[test]
fn unknown_option_exits_2_with_usage() {
    let out = repro(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown option `--bogus`"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
    assert!(err.contains("exp17"), "usage must list exp1..exp17: {err}");
}

#[test]
fn unknown_experiment_exits_2() {
    let out = repro(&["exp99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment `exp99`"), "{err}");
}

#[test]
fn bad_seed_exits_2() {
    let out = repro(&["--seed", "pi"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--seed expects an integer"), "{err}");
}

#[test]
fn missing_flag_value_exits_2() {
    let out = repro(&["--telemetry"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--telemetry expects a path"), "{err}");
}

#[test]
fn unwritable_telemetry_path_exits_1() {
    let out = repro(&["--quick", "exp1", "--telemetry", "/nonexistent-dir/t.jsonl"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot open telemetry file"), "{err}");
}

#[test]
fn list_names_every_experiment() {
    let out = repro(&["--list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for i in 1..=17 {
        assert!(
            stdout.lines().any(|l| l.starts_with(&format!("exp{i} "))),
            "missing exp{i} in --list output"
        );
    }
}

#[test]
fn quick_run_emits_telemetry_and_bench_json() {
    let telemetry = temp_path("t.jsonl");
    let bench = temp_path("bench.json");
    let out = repro(&[
        "--quick",
        "exp1",
        "--telemetry",
        telemetry.to_str().unwrap(),
        "--bench-json",
        bench.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stdout.is_empty(), "--quiet must silence the report");

    let jsonl = std::fs::read_to_string(&telemetry).expect("telemetry written");
    assert!(jsonl.lines().count() > 2);
    for line in jsonl.lines() {
        aro_obs::json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
    }

    let bench_text = std::fs::read_to_string(&bench).expect("bench json written");
    let doc = aro_obs::json::parse(&bench_text).expect("bench json parses");
    assert_eq!(
        doc.get("schema").and_then(aro_obs::json::Value::as_str),
        Some("aro-bench-v1")
    );
    assert!(doc.get("total_wall_ns").is_some());

    let _ = std::fs::remove_file(telemetry);
    let _ = std::fs::remove_file(bench);
}
