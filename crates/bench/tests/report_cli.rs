//! End-to-end tests for `repro report health` and `repro report trace`:
//! the fleet-health table must be byte-identical at any `--threads N`
//! and across reruns, and the trace export must be valid Chrome-trace
//! JSON.

use std::path::PathBuf;
use std::process::{Command, Output};

use aro_obs::json::{self, Value};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

/// A per-test scratch directory. File *basenames* inside it are fixed so
/// the health report label (built from basenames) is identical across
/// thread counts.
fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("repro_report_cli_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create scratch dir");
    p
}

/// Runs `--quick exp2` with a telemetry capture and a ledger under the
/// given thread count, then returns `report health` stdout bytes.
fn health_output(dir: &std::path::Path, threads: &str) -> Vec<u8> {
    let telemetry = dir.join("t.jsonl");
    let ledger = dir.join("l.jsonl");
    let run = repro(&[
        "--quick",
        "exp2",
        "--threads",
        threads,
        "--telemetry",
        telemetry.to_str().unwrap(),
        "--ledger",
        ledger.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(
        run.status.code(),
        Some(0),
        "run failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let report = repro(&[
        "report",
        "health",
        telemetry.to_str().unwrap(),
        ledger.to_str().unwrap(),
    ]);
    assert_eq!(
        report.status.code(),
        Some(0),
        "report health failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    report.stdout
}

#[test]
fn report_health_is_byte_identical_across_thread_counts_and_reruns() {
    let dir1 = scratch_dir("threads1");
    let dir2 = scratch_dir("threads2");
    let dir8 = scratch_dir("threads8");
    let at1 = health_output(&dir1, "1");
    let at2 = health_output(&dir2, "2");
    let at8 = health_output(&dir8, "8");

    let text = String::from_utf8_lossy(&at1);
    assert!(
        text.contains("Fleet health — streaming percentiles"),
        "expected the fleet table:\n{text}"
    );
    assert!(
        text.contains("Per-experiment health"),
        "ledger records must contribute per-experiment stats:\n{text}"
    );
    assert!(text.contains("puf.ber"), "exp2 must feed the BER sketch:\n{text}");

    assert_eq!(at1, at2, "--threads 1 vs 2 must render identical health");
    assert_eq!(at2, at8, "--threads 2 vs 8 must render identical health");

    // Rerun over the same capture: same bytes again.
    let telemetry = dir1.join("t.jsonl");
    let ledger = dir1.join("l.jsonl");
    let again = repro(&[
        "report",
        "health",
        telemetry.to_str().unwrap(),
        ledger.to_str().unwrap(),
    ]);
    assert_eq!(again.status.code(), Some(0));
    assert_eq!(again.stdout, at1, "a rerun must render identical health");

    for dir in [dir1, dir2, dir8] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn report_trace_exports_valid_chrome_trace_json() {
    let dir = scratch_dir("trace");
    let telemetry = dir.join("t.jsonl");
    let run = repro(&[
        "--quick",
        "exp1",
        "--telemetry",
        telemetry.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(
        run.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let out = repro(&["report", "trace", telemetry.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "report trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let doc = json::parse(text.trim()).expect("trace output must be valid JSON");
    let Some(Value::Array(events)) = doc.get("traceEvents") else {
        panic!("missing traceEvents array in:\n{text}");
    };
    assert!(!events.is_empty(), "a quick run must produce span events");
    for event in events {
        let ph = event.get("ph").and_then(Value::as_str).expect("event phase");
        assert!(matches!(ph, "X" | "i"), "unexpected phase {ph}");
        assert!(event.get("name").and_then(Value::as_str).is_some());
        assert!(event.get("ts").and_then(Value::as_f64).is_some());
        if ph == "X" {
            assert!(event.get("dur").and_then(Value::as_f64).is_some());
        }
    }
    // The run span itself must be among the complete events.
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("run")
                && e.get("ph").and_then(Value::as_str) == Some("X")
        }),
        "expected the top-level run span in:\n{text}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

/// Captures exp18 under a quarter storm with the audit trail on, at the
/// given thread count, and returns the telemetry path.
fn audited_capture(dir: &std::path::Path, threads: &str) -> PathBuf {
    let telemetry = dir.join("t.jsonl");
    let run = repro(&[
        "--quick",
        "exp18",
        "--faults",
        "storm@0.25",
        "--audit",
        "--threads",
        threads,
        "--telemetry",
        telemetry.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        matches!(run.status.code(), Some(0 | 3)),
        "audited exp18 failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    telemetry
}

#[test]
fn report_incidents_and_slo_are_byte_identical_across_thread_counts() {
    let dir1 = scratch_dir("audit1");
    let dir4 = scratch_dir("audit4");
    let t1 = audited_capture(&dir1, "1");
    let t4 = audited_capture(&dir4, "4");

    let inc1 = repro(&["report", "incidents", t1.to_str().unwrap()]);
    let inc4 = repro(&["report", "incidents", t4.to_str().unwrap()]);
    assert_eq!(
        inc1.status.code(),
        Some(0),
        "report incidents failed: {}",
        String::from_utf8_lossy(&inc1.stderr)
    );
    assert_eq!(inc1.stdout, inc4.stdout, "incidents must not depend on --threads");
    let text = String::from_utf8_lossy(&inc1.stdout);
    assert!(text.contains("Incident report"), "{text}");
    assert!(text.contains("Top root causes"), "{text}");
    assert!(
        text.contains("Quarantine post-mortem"),
        "a quarter storm must quarantine someone:\n{text}"
    );

    let slo1 = repro(&["report", "slo", t1.to_str().unwrap()]);
    let slo4 = repro(&["report", "slo", t4.to_str().unwrap()]);
    assert_eq!(
        slo1.status.code(),
        Some(0),
        "report slo failed: {}",
        String::from_utf8_lossy(&slo1.stderr)
    );
    assert_eq!(slo1.stdout, slo4.stdout, "slo must not depend on --threads");
    let text = String::from_utf8_lossy(&slo1.stdout);
    assert!(text.contains("SLO report"), "{text}");
    assert!(text.contains("burn"), "{text}");

    // Tightening the objectives via flags must change the verdicts line.
    let tight = repro(&[
        "report",
        "slo",
        t1.to_str().unwrap(),
        "--window",
        "16",
        "--availability-slo",
        "0.999",
        "--latency-slo-us",
        "200",
    ]);
    assert_eq!(tight.status.code(), Some(0));
    let tight_text = String::from_utf8_lossy(&tight.stdout);
    assert!(tight_text.contains("availability ≥ 99.90 %"), "{tight_text}");
    assert!(tight_text.contains("p99 ≤ 200 µs"), "{tight_text}");

    for dir in [dir1, dir4] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn audit_flag_requires_telemetry() {
    let out = repro(&["--quick", "--audit", "exp18"]);
    assert_eq!(out.status.code(), Some(2), "--audit without --telemetry is a usage error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--telemetry"), "{err}");
}

#[test]
fn report_health_and_trace_reject_bad_inputs() {
    let dir = scratch_dir("bad_inputs");
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "not json\n").unwrap();

    let out = repro(&["report", "health", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no sketch/counter events"), "{err}");

    let out = repro(&["report", "trace", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no span or fault events"), "{err}");

    let out = repro(&["report", "incidents", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no audit events"), "{err}");

    let out = repro(&["report", "slo", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no audit verdict events"), "{err}");

    let out = repro(&["report", "health"]);
    assert_eq!(out.status.code(), Some(2), "missing paths is a usage error");
    let out = repro(&["report", "trace", "a", "b"]);
    assert_eq!(out.status.code(), Some(2), "trace takes exactly one path");
    let out = repro(&["report", "incidents", "a", "b"]);
    assert_eq!(out.status.code(), Some(2), "incidents takes exactly one path");
    let out = repro(&["report", "slo", "a", "--window", "0"]);
    assert_eq!(out.status.code(), Some(2), "--window 0 is a usage error");
    let _ = std::fs::remove_dir_all(dir);
}
