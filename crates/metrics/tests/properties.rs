//! Property-based tests for the metrics substrate: metric axioms that must
//! hold for arbitrary bit strings.

use aro_metrics::bits::BitString;
use aro_metrics::special::{erfc, gamma_p, gamma_q, normal_cdf};
use aro_metrics::stats::{quantile, Histogram, Summary};
use aro_metrics::{bit_aliasing, fractional_hd, nist, quality, uniformity};
use proptest::prelude::*;

fn arb_bits(len: std::ops::Range<usize>) -> impl Strategy<Value = BitString> {
    prop::collection::vec(any::<bool>(), len).prop_map(|v| BitString::from_bools(&v))
}

proptest! {
    /// Hamming distance is a metric: identity, symmetry, triangle
    /// inequality.
    #[test]
    fn hamming_is_a_metric(v in prop::collection::vec(any::<(bool, bool, bool)>(), 1..300)) {
        let a: BitString = v.iter().map(|t| t.0).collect();
        let b: BitString = v.iter().map(|t| t.1).collect();
        let c: BitString = v.iter().map(|t| t.2).collect();
        prop_assert_eq!(a.hamming_distance(&a), 0);
        prop_assert_eq!(a.hamming_distance(&b), b.hamming_distance(&a));
        prop_assert!(a.hamming_distance(&c) <= a.hamming_distance(&b) + b.hamming_distance(&c));
    }

    /// XOR count equals Hamming distance; flipping one bit changes HD by
    /// exactly one.
    #[test]
    fn flip_changes_hd_by_one(bits in arb_bits(1..300), idx in any::<prop::sample::Index>()) {
        let other = bits.clone();
        let mut flipped = bits.clone();
        let i = idx.index(bits.len());
        flipped.flip(i);
        prop_assert_eq!(other.hamming_distance(&flipped), 1);
        prop_assert_eq!(flipped.xor(&other).count_ones(), 1);
    }

    /// Uniformity and bit-aliasing are always in [0, 1] and consistent:
    /// the mean of the aliasing vector equals the mean uniformity.
    #[test]
    fn aliasing_consistent_with_uniformity(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 64), 2..20)
    ) {
        let responses: Vec<BitString> = rows.iter().map(|r| BitString::from_bools(r)).collect();
        let aliasing = bit_aliasing(&responses);
        prop_assert!(aliasing.iter().all(|p| (0.0..=1.0).contains(p)));
        let mean_aliasing: f64 = aliasing.iter().sum::<f64>() / aliasing.len() as f64;
        let mean_uniformity: f64 =
            responses.iter().map(uniformity).sum::<f64>() / responses.len() as f64;
        prop_assert!((mean_aliasing - mean_uniformity).abs() < 1e-12);
    }

    /// Fractional HD is bounded and complementation gives exactly 1.
    #[test]
    fn fractional_hd_bounds(bits in arb_bits(1..300)) {
        let complement = BitString::from_fn(bits.len(), |i| !bits.get(i));
        prop_assert_eq!(fractional_hd(&bits, &complement), 1.0);
        prop_assert_eq!(fractional_hd(&bits, &bits), 0.0);
    }

    /// Summary invariants: min <= mean <= max, sd >= 0.
    #[test]
    fn summary_invariants(xs in prop::collection::vec(-1e6..1e6f64, 1..200)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.std_dev() >= 0.0);
        prop_assert_eq!(s.n(), xs.len());
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..100),
                          q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
        prop_assert!(quantile(&xs, 0.0) <= quantile(&xs, lo) + 1e-9);
        prop_assert!(quantile(&xs, hi) <= quantile(&xs, 1.0) + 1e-9);
    }

    /// Histogram conservation: every sample lands in exactly one bucket.
    #[test]
    fn histogram_conserves_samples(xs in prop::collection::vec(-2.0..2.0f64, 0..200)) {
        let mut h = Histogram::new(0.0, 1.0, 7);
        h.add_all(&xs);
        let binned: usize = h.counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), xs.len());
        prop_assert_eq!(h.total(), xs.len());
    }

    /// Special functions: gamma_p + gamma_q = 1, erfc in [0, 2], CDF
    /// monotone.
    #[test]
    fn special_function_identities(a in 0.1..50.0f64, x in 0.0..100.0f64) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-8);
        let e = erfc(x / 10.0 - 5.0);
        prop_assert!((0.0..=2.0).contains(&e));
    }

    #[test]
    fn normal_cdf_monotone(x1 in -8.0..8.0f64, x2 in -8.0..8.0f64) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
    }

    /// Every NIST p-value is a probability for arbitrary input.
    #[test]
    fn nist_p_values_are_probabilities(bits in arb_bits(128..1024)) {
        for r in nist::battery(&bits) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "{}: {}", r.name, r.p_value);
            prop_assert_eq!(r.pass, r.p_value >= nist::ALPHA);
        }
    }

    /// Worst-case intra HD dominates the mean intra HD.
    #[test]
    fn worst_case_dominates_mean(reference in arb_bits(32..64),
                                 flips in prop::collection::vec(any::<prop::sample::Index>(), 1..5)) {
        let resamples: Vec<BitString> = flips
            .iter()
            .map(|idx| {
                let mut r = reference.clone();
                r.flip(idx.index(reference.len()));
                r
            })
            .collect();
        let mean = quality::intra_chip_hd(&reference, &resamples).mean();
        let worst = quality::worst_case_intra_hd(&reference, &resamples);
        prop_assert!(worst >= mean - 1e-12);
    }
}
