//! Radix-2 complex FFT, implemented in-house for the NIST spectral test.
//!
//! The discrete Fourier transform test (SP 800-22 §2.6) needs the
//! magnitude spectrum of the ±1-mapped sequence. No FFT crate is in the
//! offline allowlist; an iterative radix-2 Cooley–Tukey fits in a page
//! and is exact enough (f64) for p-values.

use std::f64::consts::PI;

/// One complex sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// A complex number.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude `sqrt(re² + im²)`.
    #[must_use]
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, other: Self) -> Self {
        Self::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn add(self, other: Self) -> Self {
        Self::new(self.re + other.re, self.im + other.im)
    }

    fn sub(self, other: Self) -> Self {
        Self::new(self.re - other.re, self.im - other.im)
    }
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * PI / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for chunk in data.chunks_exact_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let t = w.mul(*b);
                *b = a.sub(t);
                *a = a.add(t);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
}

/// Magnitudes of the first `n/2` DFT bins of a real ±1 sequence derived
/// from bits (true → +1, false → −1), zero-padded to a power of two.
#[must_use]
pub fn real_half_spectrum(bits: impl Iterator<Item = bool>, n: usize) -> Vec<f64> {
    let padded = n.next_power_of_two();
    let mut data = vec![Complex::default(); padded];
    for (slot, bit) in data.iter_mut().zip(bits) {
        slot.re = if bit { 1.0 } else { -1.0 };
    }
    fft(&mut data);
    data.iter().take(n / 2).map(Complex::abs).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for c in &data {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_in_dc() {
        let mut data = vec![Complex::new(1.0, 0.0); 16];
        fft(&mut data);
        assert!((data[0].abs() - 16.0).abs() < 1e-9);
        for c in &data[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_of_single_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let phase = 2.0 * PI * k as f64 * i as f64 / n as f64;
                Complex::new(phase.cos(), 0.0)
            })
            .collect();
        fft(&mut data);
        // A real cosine splits between bins k and n−k.
        assert!((data[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((data[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, c) in data.iter().enumerate() {
            if i != k && i != n - k {
                assert!(c.abs() < 1e-9, "leak at bin {i}");
            }
        }
    }

    #[test]
    fn fft_matches_direct_dft_on_random_input() {
        let n = 32;
        let input: Vec<Complex> = (0..n)
            .map(|i| {
                // Deterministic pseudo-random values.
                let x = ((i * 2654435761_usize) % 1000) as f64 / 1000.0 - 0.5;
                let y = ((i * 40503_usize) % 1000) as f64 / 1000.0 - 0.5;
                Complex::new(x, y)
            })
            .collect();
        let mut fast = input.clone();
        fft(&mut fast);
        for (k, fast_bin) in fast.iter().enumerate() {
            let mut direct = Complex::default();
            for (i, x) in input.iter().enumerate() {
                let angle = -2.0 * PI * (k * i) as f64 / n as f64;
                direct = direct.add(x.mul(Complex::new(angle.cos(), angle.sin())));
            }
            assert!(
                (fast_bin.re - direct.re).abs() < 1e-9 && (fast_bin.im - direct.im).abs() < 1e-9,
                "bin {k}"
            );
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 128;
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i * 7919) % 17) as f64 - 8.0, 0.0))
            .collect();
        let time_energy: f64 = input.iter().map(|c| c.abs().powi(2)).sum();
        let mut data = input;
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.abs().powi(2)).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn half_spectrum_length_and_padding() {
        let bits = (0..100).map(|i| i % 2 == 0);
        let spectrum = real_half_spectrum(bits, 100);
        assert_eq!(spectrum.len(), 50);
        assert!(spectrum.iter().all(|m| m.is_finite() && *m >= 0.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::default(); 12];
        fft(&mut data);
    }
}
