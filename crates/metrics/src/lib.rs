//! PUF quality metrics for the ARO-PUF (DATE 2014) reproduction.
//!
//! The paper evaluates its design with the standard PUF figure-of-merit
//! suite introduced by Suh & Devadas and formalized by Maiti et al.:
//!
//! * [`bits`] — a compact, packed [`bits::BitString`] response type with
//!   fast Hamming distance.
//! * [`stats`] — summary statistics and histograms used by every figure.
//! * [`quality`] — **uniqueness** (inter-chip HD, ideal 50 %),
//!   **reliability** (intra-chip HD across environments/time, ideal 0 %),
//!   **uniformity** (fraction of 1s, ideal 50 %), **bit-aliasing**
//!   (per-position bias across chips, ideal 50 %), and aging **flip rate**.
//! * [`entropy`] — Shannon and min-entropy estimators for key-strength
//!   accounting.
//! * [`special`] — the special functions (`erfc`, regularized incomplete
//!   gamma) behind real p-values.
//! * [`nist`] — a NIST SP 800-22-lite randomness battery (monobit, block
//!   frequency, runs, longest-run, serial, approximate entropy, cumulative
//!   sums), used for the paper's "keys are random" claim.
//!
//! # Example
//!
//! ```
//! use aro_metrics::bits::BitString;
//! use aro_metrics::quality;
//!
//! let a = BitString::from_bools(&[true, false, true, true]);
//! let b = BitString::from_bools(&[true, true, true, false]);
//! assert_eq!(a.hamming_distance(&b), 2);
//! assert_eq!(quality::fractional_hd(&a, &b), 0.5);
//! ```

pub mod bits;
pub mod entropy;
pub mod fft;
pub mod nist;
pub mod quality;
pub mod special;
pub mod stats;

pub use bits::BitString;
pub use quality::{bit_aliasing, fractional_hd, inter_chip_hd, intra_chip_hd, uniformity};
pub use stats::{Histogram, Summary};
