//! Special functions behind real p-values: `erfc` and the regularized
//! incomplete gamma function.
//!
//! Implemented in-house (standard Lanczos / continued-fraction forms,
//! Numerical-Recipes style) because no math crate is in the offline
//! allowlist; accuracy is ~1e-7 relative, far beyond what a pass/fail at
//! p = 0.01 needs.

/// Natural log of the gamma function, via the Lanczos approximation.
///
/// # Panics
/// Panics if `x` is not strictly positive.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)` —
/// the chi-squared tail probability used by several NIST tests.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
#[must_use]
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid incomplete gamma arguments");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Complementary error function, rational Chebyshev approximation
/// (relative error < 1.2e-7 everywhere).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(11.0) - 3_628_800.0f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_half_is_ln_sqrt_pi() {
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_and_q_are_complementary() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0), (3.0, 12.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x}: p+q = {}", p + q);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_of_exponential_is_known() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn gamma_q_boundaries() {
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!(gamma_q(2.0, 100.0) < 1e-30);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        // erfc(1) = 0.157299...
        assert!((erfc(1.0) - 0.157_299_207).abs() < 1e-6);
        // Symmetry: erfc(-x) = 2 - erfc(x).
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
