//! Entropy estimators for key-strength accounting.
//!
//! A 128-bit key needs 128 bits of *min*-entropy at the fuzzy-extractor
//! input (minus the helper-data leakage). These estimators quantify how
//! much a biased or aliased PUF response actually delivers.

use crate::bits::BitString;

/// Binary Shannon entropy `H(p)` in bits.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binary_shannon(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Binary min-entropy `−log2(max(p, 1−p))` in bits.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binary_min_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    -p.max(1.0 - p).log2()
}

/// Total min-entropy of a response vector, estimated from the per-position
/// one-probabilities (bit-aliasing vector): independent-bit model, the
/// standard estimate for RO-PUF responses.
#[must_use]
pub fn min_entropy_from_aliasing(aliasing: &[f64]) -> f64 {
    aliasing.iter().map(|&p| binary_min_entropy(p)).sum()
}

/// Total Shannon entropy from the aliasing vector (independent-bit model).
#[must_use]
pub fn shannon_entropy_from_aliasing(aliasing: &[f64]) -> f64 {
    aliasing.iter().map(|&p| binary_shannon(p)).sum()
}

/// Empirical per-bit entropy rate of one long bit string using the
/// plug-in estimator over `block_len`-bit blocks, in bits per bit.
///
/// # Panics
/// Panics if `block_len` is 0, greater than 24, or longer than the string.
#[must_use]
pub fn block_entropy_rate(bits: &BitString, block_len: usize) -> f64 {
    assert!(
        block_len > 0 && block_len <= 24,
        "block length out of range"
    );
    assert!(bits.len() >= block_len, "string shorter than one block");
    let n_blocks = bits.len() / block_len;
    let mut counts = std::collections::HashMap::new();
    for b in 0..n_blocks {
        let mut value = 0usize;
        for i in 0..block_len {
            value = (value << 1) | usize::from(bits.get(b * block_len + i));
        }
        *counts.entry(value).or_insert(0usize) += 1;
    }
    let h: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n_blocks as f64;
            -p * p.log2()
        })
        .sum();
    h / block_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shannon_peaks_at_half() {
        assert_eq!(binary_shannon(0.5), 1.0);
        assert_eq!(binary_shannon(0.0), 0.0);
        assert_eq!(binary_shannon(1.0), 0.0);
        assert!(binary_shannon(0.3) < 1.0);
        assert!(
            (binary_shannon(0.3) - binary_shannon(0.7)).abs() < 1e-12,
            "symmetry"
        );
    }

    #[test]
    fn min_entropy_is_below_shannon() {
        for p in [0.1, 0.3, 0.45, 0.6, 0.9] {
            assert!(binary_min_entropy(p) <= binary_shannon(p) + 1e-12);
        }
        assert_eq!(binary_min_entropy(0.5), 1.0);
        assert_eq!(binary_min_entropy(1.0), 0.0);
    }

    #[test]
    fn aliasing_entropy_sums_positions() {
        let aliasing = vec![0.5, 0.5, 1.0, 0.0];
        assert_eq!(min_entropy_from_aliasing(&aliasing), 2.0);
        assert_eq!(shannon_entropy_from_aliasing(&aliasing), 2.0);
    }

    #[test]
    fn biased_positions_cost_min_entropy() {
        let ideal = vec![0.5; 128];
        let biased = vec![0.342; 128]; // the conventional RO-PUF's ~45 % HD bias level
        assert_eq!(min_entropy_from_aliasing(&ideal), 128.0);
        let b = min_entropy_from_aliasing(&biased);
        assert!(b < 128.0 && b > 64.0, "biased entropy = {b}");
    }

    #[test]
    fn block_entropy_of_constant_string_is_zero() {
        let bits = BitString::zeros(256);
        assert_eq!(block_entropy_rate(&bits, 4), 0.0);
    }

    #[test]
    fn block_entropy_of_alternating_string_is_low() {
        let bits = BitString::from_fn(256, |i| i % 2 == 0);
        // Only two distinct 4-bit blocks appear... actually one: 1010.
        assert!(block_entropy_rate(&bits, 4) < 0.3);
    }

    #[test]
    fn block_entropy_of_counter_pattern_is_high() {
        // 8-bit counter values 0..=255 laid out bit by bit: every 8-bit
        // block distinct → plug-in entropy = 8 bits per block = 1 per bit.
        let bits = BitString::from_fn(2048, |i| (i / 8) >> (7 - i % 8) & 1 == 1);
        assert!((block_entropy_rate(&bits, 8) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn shannon_rejects_bad_probability() {
        let _ = binary_shannon(1.5);
    }
}
