//! Packed bit strings: the PUF response type.
//!
//! Responses are hundreds of bits and Hamming distance is computed
//! millions of times per experiment, so bits are packed into `u64` words
//! and HD is a word-wise `xor` + `count_ones`.

use std::fmt;

/// A fixed-length string of bits, packed LSB-first into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BitString {
    words: Vec<u64>,
    len: usize,
}

impl BitString {
    /// An all-zero string of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a string from a slice of booleans.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        bits.iter().copied().collect()
    }

    /// Builds a string of `len` bits from a generator function.
    #[must_use]
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> bool) -> Self {
        (0..len).map(f).collect()
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let (w, b) = (index / 64, index % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len`.
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] ^= 1 << (index % 64);
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn hamming_distance(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in Hamming distance");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Bitwise XOR, the core of the code-offset fuzzy extractor.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            len: self.len,
        }
    }

    /// Iterates the bits from index 0 upward.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copies the bits out as booleans.
    #[must_use]
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// The sub-string `[start, start + len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the string.
    #[must_use]
    pub fn slice(&self, start: usize, len: usize) -> Self {
        assert!(start + len <= self.len, "slice out of range");
        Self::from_fn(len, |i| self.get(start + i))
    }

    /// Concatenates two strings.
    #[must_use]
    pub fn concat(&self, other: &Self) -> Self {
        self.iter().chain(other.iter()).collect()
    }

    /// Packs the bits into bytes, LSB-first within each byte, zero-padded.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        bytes
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut s = Self::default();
        s.extend(iter);
        s
    }
}

impl Extend<bool> for BitString {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            if self.len.is_multiple_of(64) {
                self.words.push(0);
            }
            if bit {
                self.words[self.len / 64] |= 1 << (self.len % 64);
            }
            self.len += 1;
        }
    }
}

impl fmt::Display for BitString {
    /// Renders as `0`/`1` characters, bit 0 first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_empty_of_ones() {
        let z = BitString::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(!z.is_empty());
        assert!(BitString::zeros(0).is_empty());
    }

    #[test]
    fn set_get_flip_roundtrip_across_word_boundaries() {
        let mut s = BitString::zeros(200);
        for i in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(!s.get(i));
            s.set(i, true);
            assert!(s.get(i));
            s.flip(i);
            assert!(!s.get(i));
        }
    }

    #[test]
    fn from_bools_and_to_bools_roundtrip() {
        let pattern: Vec<bool> = (0..150).map(|i| i % 3 == 0).collect();
        let s = BitString::from_bools(&pattern);
        assert_eq!(s.to_bools(), pattern);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = BitString::from_fn(100, |i| i % 2 == 0);
        let b = BitString::from_fn(100, |i| i % 2 == 1);
        assert_eq!(a.hamming_distance(&b), 100);
        assert_eq!(a.hamming_distance(&a), 0);
        let mut c = a.clone();
        c.flip(17);
        assert_eq!(a.hamming_distance(&c), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_distance_length_mismatch_panics() {
        let _ = BitString::zeros(10).hamming_distance(&BitString::zeros(11));
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = BitString::from_fn(90, |i| (i * 7) % 5 < 2);
        let b = BitString::from_fn(90, |i| (i * 3) % 4 == 1);
        assert_eq!(a.xor(&b).xor(&b), a);
        assert_eq!(a.xor(&a), BitString::zeros(90));
        assert_eq!(a.xor(&b).count_ones(), a.hamming_distance(&b));
    }

    #[test]
    fn slice_and_concat_are_inverses() {
        let s = BitString::from_fn(77, |i| i % 2 == 0);
        let left = s.slice(0, 30);
        let right = s.slice(30, 47);
        assert_eq!(left.concat(&right), s);
    }

    #[test]
    fn to_bytes_packs_lsb_first() {
        let s =
            BitString::from_bools(&[true, false, false, false, false, false, false, false, true]);
        assert_eq!(s.to_bytes(), vec![0b0000_0001, 0b0000_0001]);
    }

    #[test]
    fn display_renders_bits_in_order() {
        let s = BitString::from_bools(&[true, false, true]);
        assert_eq!(s.to_string(), "101");
    }

    #[test]
    fn collect_from_iterator() {
        let s: BitString = (0..130).map(|i| i == 129).collect();
        assert_eq!(s.len(), 130);
        assert_eq!(s.count_ones(), 1);
        assert!(s.get(129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let _ = BitString::zeros(5).get(5);
    }
}
