//! The standard PUF figures of merit (Maiti et al. formulation).
//!
//! | Metric | Ideal | What it detects |
//! |---|---|---|
//! | inter-chip HD (uniqueness) | 50 % | correlated / biased responses across chips |
//! | intra-chip HD (reliability) | 0 % | noise, environment, **aging** |
//! | uniformity | 50 % | biased 0/1 balance within one response |
//! | bit-aliasing | 50 % per bit | positions stuck the same way on every chip |

use crate::bits::BitString;
use crate::stats::Summary;

/// Fractional Hamming distance between two equal-length responses.
///
/// # Panics
/// Panics if lengths differ or are zero.
#[must_use]
pub fn fractional_hd(a: &BitString, b: &BitString) -> f64 {
    assert!(!a.is_empty(), "empty response");
    a.hamming_distance(b) as f64 / a.len() as f64
}

/// All pairwise fractional HDs between the responses of distinct chips —
/// the **uniqueness** distribution (`n·(n−1)/2` values).
///
/// # Panics
/// Panics if fewer than two responses are given.
#[must_use]
pub fn pairwise_hds(responses: &[BitString]) -> Vec<f64> {
    assert!(responses.len() >= 2, "uniqueness needs at least two chips");
    let mut hds = Vec::with_capacity(responses.len() * (responses.len() - 1) / 2);
    for (i, a) in responses.iter().enumerate() {
        for b in &responses[i + 1..] {
            let hd = fractional_hd(a, b);
            // Uniqueness stream for the fleet-health sketches: a p1
            // collapsing toward 0 means chip pairs are becoming clones.
            aro_obs::sketch("quality.interchip_hd", hd);
            hds.push(hd);
        }
    }
    hds
}

/// Summary of the inter-chip HD distribution (mean is the paper's
/// "average inter-chip HD"; ideal 0.5).
#[must_use]
pub fn inter_chip_hd(responses: &[BitString]) -> Summary {
    Summary::of(&pairwise_hds(responses))
}

/// Summary of the intra-chip HD of `resamples` against the enrollment
/// `reference` (reliability / aging error; ideal 0).
///
/// # Panics
/// Panics if `resamples` is empty.
#[must_use]
pub fn intra_chip_hd(reference: &BitString, resamples: &[BitString]) -> Summary {
    assert!(
        !resamples.is_empty(),
        "reliability needs at least one resample"
    );
    let hds: Vec<f64> = resamples
        .iter()
        .map(|r| {
            let hd = fractional_hd(reference, r);
            // Reliability stream: p99 creeping up is noise/aging error
            // approaching the ECC provisioning line.
            aro_obs::sketch("quality.intrachip_hd", hd);
            hd
        })
        .collect();
    Summary::of(&hds)
}

/// Fraction of 1s in one response (**uniformity**; ideal 0.5).
///
/// # Panics
/// Panics if the response is empty.
#[must_use]
pub fn uniformity(response: &BitString) -> f64 {
    assert!(!response.is_empty(), "empty response");
    response.count_ones() as f64 / response.len() as f64
}

/// Per-bit-position fraction of chips answering 1 (**bit-aliasing**;
/// ideal 0.5 at every position).
///
/// # Panics
/// Panics if `responses` is empty or lengths differ.
#[must_use]
pub fn bit_aliasing(responses: &[BitString]) -> Vec<f64> {
    assert!(
        !responses.is_empty(),
        "bit-aliasing needs at least one chip"
    );
    let len = responses[0].len();
    assert!(
        responses.iter().all(|r| r.len() == len),
        "response lengths differ"
    );
    (0..len)
        .map(|i| responses.iter().filter(|r| r.get(i)).count() as f64 / responses.len() as f64)
        .collect()
}

/// Fraction of bits of `aged` that differ from the enrollment `reference`
/// — the paper's "percentage of flipped bits".
#[must_use]
pub fn flip_rate(reference: &BitString, aged: &BitString) -> f64 {
    fractional_hd(reference, aged)
}

/// Normalized autocorrelation of one response at lag `lag`:
/// the correlation between `bit[i]` and `bit[i+lag]` mapped to ±1
/// (ideal 0 everywhere except lag 0). Detects sequential structure —
/// e.g. the correlated bits of chained (sequential) pairing.
///
/// # Panics
/// Panics if `lag == 0` or fewer than two overlapping bits remain.
#[must_use]
pub fn autocorrelation(response: &BitString, lag: usize) -> f64 {
    assert!(lag >= 1, "lag must be at least 1");
    let n = response.len();
    assert!(n > lag + 1, "response too short for this lag");
    let overlap = n - lag;
    let to_pm = |b: bool| if b { 1.0 } else { -1.0 };
    let mean: f64 = response.iter().map(to_pm).sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        let x = to_pm(response.get(i)) - mean;
        den += x * x;
        if i < overlap {
            num += x * (to_pm(response.get(i + lag)) - mean);
        }
    }
    if den == 0.0 {
        return 1.0; // constant sequence: perfectly self-similar
    }
    num / den
}

/// Worst-case (maximum) intra-chip HD across a set of resamples, the
/// number an ECC must be provisioned for.
///
/// # Panics
/// Panics if `resamples` is empty.
#[must_use]
pub fn worst_case_intra_hd(reference: &BitString, resamples: &[BitString]) -> f64 {
    assert!(!resamples.is_empty(), "needs at least one resample");
    resamples
        .iter()
        .map(|r| fractional_hd(reference, r))
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(pattern: &str) -> BitString {
        pattern.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn fractional_hd_of_complement_is_one() {
        let a = bs("0101");
        let b = bs("1010");
        assert_eq!(fractional_hd(&a, &b), 1.0);
        assert_eq!(fractional_hd(&a, &a), 0.0);
    }

    #[test]
    fn pairwise_hds_count_is_n_choose_2() {
        let responses = vec![bs("0000"), bs("1111"), bs("0101"), bs("0011")];
        let hds = pairwise_hds(&responses);
        assert_eq!(hds.len(), 6);
        assert!(hds.iter().all(|&h| (0.0..=1.0).contains(&h)));
    }

    #[test]
    fn inter_chip_hd_of_identical_chips_is_zero() {
        let responses = vec![bs("0110"); 5];
        assert_eq!(inter_chip_hd(&responses).mean(), 0.0);
    }

    #[test]
    fn inter_chip_hd_of_mixed_chips_matches_hand_count() {
        // Pairwise HDs: two complementary pairs at 1.0, four pairs at 0.5.
        let responses = vec![bs("0101"), bs("1010"), bs("0110"), bs("1001")];
        let s = inter_chip_hd(&responses);
        assert!((s.mean() - (2.0 * 1.0 + 4.0 * 0.5) / 6.0).abs() < 1e-12);
        assert_eq!(s.n(), 6);
    }

    #[test]
    fn intra_chip_hd_measures_noise() {
        let reference = bs("00000000");
        let resamples = vec![bs("00000001"), bs("00000011"), bs("00000000")];
        let s = intra_chip_hd(&reference, &resamples);
        assert!((s.mean() - (1.0 + 2.0 + 0.0) / 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(worst_case_intra_hd(&reference, &resamples), 0.25);
    }

    #[test]
    fn uniformity_counts_ones() {
        assert_eq!(uniformity(&bs("1100")), 0.5);
        assert_eq!(uniformity(&bs("1111")), 1.0);
        assert_eq!(uniformity(&bs("0000")), 0.0);
    }

    #[test]
    fn bit_aliasing_detects_stuck_positions() {
        let responses = vec![bs("10"), bs("11"), bs("10"), bs("11")];
        let aliasing = bit_aliasing(&responses);
        assert_eq!(aliasing, vec![1.0, 0.5]);
    }

    #[test]
    fn flip_rate_is_fractional_hd() {
        let enrolled = bs("11110000");
        let aged = bs("11010001");
        assert_eq!(flip_rate(&enrolled, &aged), 0.25);
    }

    #[test]
    #[should_panic(expected = "at least two chips")]
    fn uniqueness_of_one_chip_panics() {
        let _ = pairwise_hds(&[bs("01")]);
    }

    #[test]
    fn autocorrelation_of_alternation_is_minus_one_at_lag_one() {
        let alternating = BitString::from_fn(200, |i| i % 2 == 0);
        let r1 = autocorrelation(&alternating, 1);
        assert!((r1 + 1.0).abs() < 0.05, "lag-1 autocorrelation {r1}");
        let r2 = autocorrelation(&alternating, 2);
        assert!(r2 > 0.9, "lag-2 autocorrelation {r2}");
    }

    #[test]
    fn autocorrelation_of_pseudorandom_is_near_zero() {
        let mut state = 0x1357_9bdf_u64;
        let bits = BitString::from_fn(4096, |_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 62) & 1 == 1
        });
        for lag in [1, 2, 7, 32] {
            let r = autocorrelation(&bits, lag);
            assert!(r.abs() < 0.06, "lag {lag}: {r}");
        }
    }

    #[test]
    fn autocorrelation_of_constant_is_one() {
        assert_eq!(autocorrelation(&BitString::zeros(64), 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "lag must be at least 1")]
    fn zero_lag_panics() {
        let _ = autocorrelation(&BitString::zeros(16), 0);
    }
}
