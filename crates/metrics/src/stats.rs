//! Summary statistics and histograms for experiment tables and figures.

/// Five-number summary plus moments of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics if the sample is empty or contains a non-finite value.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Sample size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (n−1 denominator).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation.
///
/// # Panics
/// Panics if the sample is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(
        !samples.is_empty(),
        "cannot take a quantile of an empty sample"
    );
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A fixed-range histogram (for the paper's HD distribution figures).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
    underflow: usize,
    overflow: usize,
}

impl Histogram {
    /// An empty histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n_bins = self.counts.len();
            let bin = ((x - self.lo) / (self.hi - self.lo) * n_bins as f64) as usize;
            self.counts[bin.min(n_bins - 1)] += 1;
        }
    }

    /// Adds every sample of a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total samples added (including out-of-range).
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Samples below the range.
    #[must_use]
    pub fn underflow(&self) -> usize {
        self.underflow
    }

    /// Samples at or above the range.
    #[must_use]
    pub fn overflow(&self) -> usize {
        self.overflow
    }

    /// The centre of bin `i`.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Renders `(bin centre, fraction)` pairs — the series the paper's
    /// distribution figures plot.
    #[must_use]
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        let denom = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 / denom))
            .collect()
    }

    /// A simple ASCII bar rendering (for `repro`'s figure output).
    #[must_use]
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let bar = "#".repeat(c * width / max);
                format!("{:>8.3} | {:<width$} {}\n", self.bin_center(i), bar, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.std_dev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_of_single_sample_has_zero_sd() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_of_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.25), 1.0);
        assert!((quantile(&xs, 0.1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add_all(&[-0.1, 0.0, 0.1, 0.3, 0.6, 0.99, 1.0, 2.0]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn histogram_normalized_sums_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[1.0, 2.0, 3.0, 4.0]);
        let total: f64 = h.normalized().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_ascii_contains_a_row_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        h.add_all(&[0.1, 0.1, 0.5]);
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), 5);
        assert!(art.contains('#'));
    }
}
