//! NIST SP 800-22-lite randomness battery.
//!
//! The subset of the NIST statistical test suite that is meaningful at PUF
//! response sizes (a few hundred to a few hundred thousand bits): monobit
//! frequency, block frequency, runs, longest run of ones, serial,
//! approximate entropy, and cumulative sums. Each test returns a true
//! p-value (via [`crate::special`]); a sequence passes a test at the NIST
//! significance level `alpha = 0.01`.
//!
//! The battery backs the paper's claim that ARO-PUF keys are "unique and
//! random": concatenated chip responses should pass, and a deliberately
//! biased source should fail.

use crate::bits::BitString;
use crate::fft::real_half_spectrum;
use crate::special::{erfc, gamma_q, normal_cdf};

/// NIST significance level: a p-value below this fails the test.
pub const ALPHA: f64 = 0.01;

/// Outcome of one statistical test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test name, e.g. `"monobit"`.
    pub name: &'static str,
    /// The p-value (probability a perfect RNG looks at least this extreme).
    pub p_value: f64,
    /// `p_value >= ALPHA`.
    pub pass: bool,
}

impl TestResult {
    fn new(name: &'static str, p_value: f64) -> Self {
        let p = p_value.clamp(0.0, 1.0);
        let pass = p >= ALPHA;
        aro_obs::counter(if pass { "nist.pass" } else { "nist.fail" }, 1);
        Self {
            name,
            p_value: p,
            pass,
        }
    }
}

/// Frequency (monobit) test.
///
/// # Panics
/// Panics if the sequence is empty.
#[must_use]
pub fn monobit(bits: &BitString) -> TestResult {
    assert!(!bits.is_empty(), "empty sequence");
    let n = bits.len() as f64;
    let sum: f64 = bits.iter().map(|b| if b { 1.0 } else { -1.0 }).sum();
    let s_obs = sum.abs() / n.sqrt();
    TestResult::new("monobit", erfc(s_obs / std::f64::consts::SQRT_2))
}

/// Block-frequency test with block length `m`.
///
/// # Panics
/// Panics if fewer than one full block fits.
#[must_use]
pub fn block_frequency(bits: &BitString, m: usize) -> TestResult {
    assert!(m > 0 && bits.len() >= m, "sequence shorter than one block");
    let n_blocks = bits.len() / m;
    let chi2: f64 = (0..n_blocks)
        .map(|b| {
            let ones = (0..m).filter(|&i| bits.get(b * m + i)).count();
            let pi = ones as f64 / m as f64;
            (pi - 0.5).powi(2)
        })
        .sum::<f64>()
        * 4.0
        * m as f64;
    TestResult::new(
        "block_frequency",
        gamma_q(n_blocks as f64 / 2.0, chi2 / 2.0),
    )
}

/// Runs test (number of maximal same-bit runs).
///
/// # Panics
/// Panics if the sequence is empty.
#[must_use]
pub fn runs(bits: &BitString) -> TestResult {
    assert!(!bits.is_empty(), "empty sequence");
    let n = bits.len() as f64;
    let pi = bits.count_ones() as f64 / n;
    // NIST pre-test: a heavily biased sequence auto-fails.
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return TestResult::new("runs", 0.0);
    }
    let v_obs = 1
        + (1..bits.len())
            .filter(|&i| bits.get(i) != bits.get(i - 1))
            .count();
    let num = (v_obs as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    TestResult::new("runs", erfc(num / den))
}

/// Longest-run-of-ones test (NIST parameterization for 128 ≤ n < 6272:
/// 8-bit blocks, categories {≤1, 2, 3, ≥4}).
///
/// # Panics
/// Panics if the sequence is shorter than 128 bits.
#[must_use]
pub fn longest_run_of_ones(bits: &BitString) -> TestResult {
    assert!(
        bits.len() >= 128,
        "longest-run test needs at least 128 bits"
    );
    const M: usize = 8;
    const PI: [f64; 4] = [0.2148, 0.3672, 0.2305, 0.1875];
    let n_blocks = bits.len() / M;
    let mut v = [0usize; 4];
    for b in 0..n_blocks {
        let mut longest = 0usize;
        let mut current = 0usize;
        for i in 0..M {
            if bits.get(b * M + i) {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        let category = match longest {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            _ => 3,
        };
        v[category] += 1;
    }
    let n = n_blocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(PI.iter())
        .map(|(&obs, &pi)| (obs as f64 - n * pi).powi(2) / (n * pi))
        .sum();
    TestResult::new("longest_run", gamma_q(1.5, chi2 / 2.0))
}

/// Counts overlapping `m`-bit patterns with wrap-around and returns the
/// NIST `psi²_m` statistic (0 for `m == 0`).
fn psi_squared(bits: &BitString, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0usize; 1 << m];
    for i in 0..n {
        let mut pattern = 0usize;
        for j in 0..m {
            pattern = (pattern << 1) | usize::from(bits.get((i + j) % n));
        }
        counts[pattern] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64).powi(2)).sum();
    (1 << m) as f64 / n as f64 * sum_sq - n as f64
}

/// Serial test with pattern length `m`; returns the first of the two NIST
/// p-values (`∇ψ²`).
///
/// # Panics
/// Panics if `m < 2` or the sequence is shorter than `m + 2` bits.
#[must_use]
pub fn serial(bits: &BitString, m: usize) -> TestResult {
    assert!(m >= 2, "serial test needs m >= 2");
    assert!(bits.len() > m + 1, "sequence too short for serial test");
    let d1 = psi_squared(bits, m) - psi_squared(bits, m - 1);
    TestResult::new("serial", gamma_q(2f64.powi(m as i32 - 2), d1 / 2.0))
}

/// Approximate-entropy test with block length `m`.
///
/// # Panics
/// Panics if the sequence is shorter than `m + 2` bits.
#[must_use]
pub fn approximate_entropy(bits: &BitString, m: usize) -> TestResult {
    assert!(
        bits.len() > m + 1,
        "sequence too short for approximate entropy"
    );
    let n = bits.len() as f64;
    let phi = |m: usize| -> f64 {
        if m == 0 {
            return 0.0;
        }
        let mut counts = vec![0usize; 1 << m];
        for i in 0..bits.len() {
            let mut pattern = 0usize;
            for j in 0..m {
                pattern = (pattern << 1) | usize::from(bits.get((i + j) % bits.len()));
            }
            counts[pattern] += 1;
        }
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                p * p.ln()
            })
            .sum()
    };
    let ap_en = phi(m) - phi(m + 1);
    let chi2 = 2.0 * n * (std::f64::consts::LN_2 - ap_en);
    TestResult::new(
        "approximate_entropy",
        gamma_q(2f64.powi(m as i32 - 1), chi2.max(0.0) / 2.0),
    )
}

/// Cumulative-sums (forward) test.
///
/// # Panics
/// Panics if the sequence is empty.
#[must_use]
pub fn cumulative_sums(bits: &BitString) -> TestResult {
    assert!(!bits.is_empty(), "empty sequence");
    let n = bits.len() as f64;
    let mut s = 0i64;
    let mut z = 0i64;
    for b in bits.iter() {
        s += if b { 1 } else { -1 };
        z = z.max(s.abs());
    }
    let z = z as f64;
    if z == 0.0 {
        return TestResult::new("cumulative_sums", 0.0);
    }
    let sqrt_n = n.sqrt();
    let mut p = 1.0;
    let k_lo = ((-(n / z) + 1.0) / 4.0).ceil() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p -= normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo = ((-(n / z) - 3.0) / 4.0).ceil() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    TestResult::new("cumulative_sums", p)
}

/// Discrete-Fourier-transform (spectral) test.
///
/// Detects periodic features: too many high-magnitude spectral peaks
/// reject randomness. Deviation from SP 800-22: the sequence is
/// **truncated to the largest power of two** so the radix-2 FFT applies
/// exactly (zero-padding would distort the peak statistics); the
/// truncated length is what enters the thresholds.
///
/// # Panics
/// Panics if the sequence is shorter than 64 bits.
#[must_use]
pub fn spectral(bits: &BitString) -> TestResult {
    assert!(bits.len() >= 64, "spectral test needs at least 64 bits");
    let n = if bits.len().is_power_of_two() {
        bits.len()
    } else {
        bits.len().next_power_of_two() / 2
    };
    let magnitudes = real_half_spectrum(bits.iter().take(n), n);
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let expected_below = 0.95 * n as f64 / 2.0;
    let observed_below = magnitudes.iter().filter(|&&m| m < threshold).count() as f64;
    let d = (observed_below - expected_below) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    TestResult::new("spectral", erfc(d.abs() / std::f64::consts::SQRT_2))
}

/// Non-overlapping template matching test with the given aperiodic
/// template, over `n_blocks` blocks.
///
/// # Panics
/// Panics if the template is empty or longer than a block.
#[must_use]
pub fn non_overlapping_template(
    bits: &BitString,
    template: &[bool],
    n_blocks: usize,
) -> TestResult {
    let m = template.len();
    let block_len = bits.len() / n_blocks;
    assert!(m >= 1 && m <= block_len, "template must fit in a block");
    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let chi2: f64 = (0..n_blocks)
        .map(|b| {
            let start = b * block_len;
            let mut hits = 0usize;
            let mut i = 0usize;
            while i + m <= block_len {
                let matched = (0..m).all(|j| bits.get(start + i + j) == template[j]);
                if matched {
                    hits += 1;
                    i += m; // non-overlapping: jump past the match
                } else {
                    i += 1;
                }
            }
            (hits as f64 - mu).powi(2) / sigma2
        })
        .sum();
    TestResult::new(
        "non_overlapping_template",
        gamma_q(n_blocks as f64 / 2.0, chi2 / 2.0),
    )
}

/// The default 9-bit aperiodic template `000000001` (NIST's first).
#[must_use]
pub fn default_template() -> Vec<bool> {
    let mut t = vec![false; 9];
    t[8] = true;
    t
}

/// Runs every test applicable at the sequence length and returns all
/// results. Uses the NIST-recommended parameters for short sequences;
/// the spectral test joins at 128 bits and template matching at 2048.
///
/// # Panics
/// Panics if the sequence is shorter than 128 bits.
#[must_use]
pub fn battery(bits: &BitString) -> Vec<TestResult> {
    assert!(bits.len() >= 128, "battery needs at least 128 bits");
    let mut results = vec![
        monobit(bits),
        block_frequency(bits, 16),
        runs(bits),
        longest_run_of_ones(bits),
        serial(bits, 3),
        approximate_entropy(bits, 2),
        cumulative_sums(bits),
        spectral(bits),
    ];
    if bits.len() >= 2048 {
        results.push(non_overlapping_template(bits, &default_template(), 8));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random string (SplitMix-style) long enough
    /// for every test.
    fn random_bits(n: usize, seed: u64) -> BitString {
        let mut state = seed;
        BitString::from_fn(n, |_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) & 1 == 1
        })
    }

    #[test]
    fn nist_reference_monobit_example() {
        // SP 800-22 §2.1.8 example: n=100 digits of e; p = 0.109599.
        // We use the shorter worked example: 1011010101, p = 0.527089.
        let bits = BitString::from_bools(&[
            true, false, true, true, false, true, false, true, false, true,
        ]);
        let r = monobit(&bits);
        assert!((r.p_value - 0.527_089).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn nist_reference_runs_example() {
        // SP 800-22 §2.3.8 example: 1001101011, n=10, p = 0.147232.
        let bits = BitString::from_bools(&[
            true, false, false, true, true, false, true, false, true, true,
        ]);
        let r = runs(&bits);
        assert!((r.p_value - 0.147_232).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn nist_reference_block_frequency_example() {
        // SP 800-22 §2.2.8 example: 0110011010, M=3, p = 0.801252.
        let bits = BitString::from_bools(&[
            false, true, true, false, false, true, true, false, true, false,
        ]);
        let r = block_frequency(&bits, 3);
        assert!((r.p_value - 0.801_252).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn nist_reference_cusum_example() {
        // SP 800-22 §2.13.8 example: 1011010111, z=4, p = 0.4116588.
        let bits = BitString::from_bools(&[
            true, false, true, true, false, true, false, true, true, true,
        ]);
        let r = cumulative_sums(&bits);
        assert!((r.p_value - 0.411_658_8).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn random_data_passes_battery() {
        let bits = random_bits(4096, 0xfeed);
        for result in battery(&bits) {
            assert!(
                result.pass,
                "{} failed with p = {}",
                result.name, result.p_value
            );
        }
    }

    #[test]
    fn all_zeros_fails_almost_everything() {
        let bits = BitString::zeros(512);
        let failures = battery(&bits).iter().filter(|r| !r.pass).count();
        assert!(
            failures >= 5,
            "only {failures} failures on a constant string"
        );
    }

    #[test]
    fn alternating_pattern_fails_runs_and_serial() {
        let bits = BitString::from_fn(512, |i| i % 2 == 0);
        assert!(
            !runs(&bits).pass,
            "perfect alternation has far too many runs"
        );
        assert!(!serial(&bits, 3).pass);
        assert!(!approximate_entropy(&bits, 2).pass);
        // But its monobit balance is perfect.
        assert!(monobit(&bits).pass);
    }

    #[test]
    fn biased_source_fails_monobit() {
        // 62 % ones.
        let bits = BitString::from_fn(1024, |i| (i * 13) % 100 < 62);
        assert!(!monobit(&bits).pass);
    }

    #[test]
    fn p_values_are_probabilities() {
        let bits = random_bits(2048, 7);
        for r in battery(&bits) {
            assert!(
                (0.0..=1.0).contains(&r.p_value),
                "{}: {}",
                r.name,
                r.p_value
            );
        }
    }

    #[test]
    fn spectral_passes_random_and_fails_periodic() {
        assert!(spectral(&random_bits(2048, 3)).pass);
        // A strong period-8 tone concentrates spectral energy.
        let periodic = BitString::from_fn(2048, |i| i % 8 < 4);
        assert!(
            !spectral(&periodic).pass,
            "p = {}",
            spectral(&periodic).p_value
        );
    }

    #[test]
    fn template_test_passes_random_and_fails_stuffed_input() {
        let template = default_template();
        assert!(non_overlapping_template(&random_bits(4096, 5), &template, 8).pass);
        // Stuff the exact template everywhere: far too many hits.
        let stuffed = BitString::from_fn(4096, |i| i % 9 == 8);
        let r = non_overlapping_template(&stuffed, &template, 8);
        assert!(!r.pass, "p = {}", r.p_value);
    }

    #[test]
    fn battery_includes_template_only_for_long_sequences() {
        assert_eq!(battery(&random_bits(512, 9)).len(), 8);
        assert_eq!(battery(&random_bits(4096, 9)).len(), 9);
    }

    #[test]
    fn longest_run_detects_clustered_ones() {
        // Blocks of 8 ones followed by 8 zeros: every 8-bit window category
        // is extreme.
        let bits = BitString::from_fn(1024, |i| (i / 8) % 2 == 0);
        assert!(!longest_run_of_ones(&bits).pass);
    }
}
