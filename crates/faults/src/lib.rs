//! Deterministic fault injection for the ARO-PUF reproduction.
//!
//! The simulator's reliability numbers are only trustworthy if they survive
//! physics misbehaving: supply droops and temperature spikes during a
//! measurement, RTN trap ensembles briefly multiplying the noise floor,
//! rings dying or sticking in the field, counter flip-flops glitching, and
//! NVM bits of the stored helper data eroding. This crate models all six
//! classes behind two small types:
//!
//! * [`FaultPlan`] — pure data: per-class rates and magnitudes, with
//!   presets (`off`, `smoke`, `storm`), intensity scaling, and a parseable
//!   CLI spec (`storm@0.5`).
//! * [`FaultInjector`] — the deterministic event source: every query is a
//!   pure function of `(plan, master seed, coordinates)`, so fault
//!   schedules are byte-identical at any thread count and in any call
//!   order, and the injector's streams are derived from its own seed
//!   domain so installing it never perturbs fault-free results.
//!
//! The hooks it feeds live in the layers that own the physics:
//! [`aro_device::environment::Environment::perturbed`],
//! [`aro_circuit::ring::RoHealth`],
//! [`aro_circuit::readout::ReadoutConfig::with_noise_burst`],
//! [`aro_circuit::readout::Measurement::glitched`], and
//! `aro_ecc::fuzzy::HelperData::with_flipped_bits`. Every fault that fires
//! is tallied through `aro-obs` (`faults.*` counters).
//!
//! See `docs/ROBUSTNESS.md` for the taxonomy and the determinism contract.
//!
//! # Example
//!
//! ```
//! use aro_faults::{FaultInjector, FaultPlan};
//! use aro_device::environment::Environment;
//!
//! let plan = FaultPlan::parse("storm@0.5").unwrap();
//! let inj = FaultInjector::new(plan, 2014);
//! let nominal = Environment::new(25.0, 1.2);
//! // Chip 3's fourth measurement event sees a deterministic operating
//! // point — the same bytes on every run, at any thread count.
//! let seen = inj.measurement_env(3, 4, &nominal);
//! assert_eq!(seen, inj.measurement_env(3, 4, &nominal));
//! ```

pub mod inject;
pub mod plan;

pub use inject::FaultInjector;
pub use plan::{FaultPlan, ParsePlanError};
