//! The fault plan: which fault classes fire, how often, and how hard.
//!
//! A [`FaultPlan`] is pure data — rates and magnitudes, no randomness. The
//! same plan handed to two [`FaultInjector`](crate::inject::FaultInjector)s
//! with the same master seed produces byte-identical fault schedules, which
//! is what makes chaos runs replayable.

/// Per-class fault rates and magnitudes.
///
/// The eight classes mirror the upset mechanisms reported for fielded RO-PUF
/// arrays (see `docs/ROBUSTNESS.md` for the taxonomy and citations):
///
/// | class | rate field | magnitude field(s) |
/// |---|---|---|
/// | supply droop + temp spike | `env_excursion_prob` | `vdd_droop_v`, `temp_spike_c` |
/// | RTN burst | `noise_burst_prob` | `noise_burst_factor` |
/// | dead ring | `dead_ro_rate` | — |
/// | stuck ring | `stuck_ro_rate` | — |
/// | counter glitch | `glitch_prob` | — (one bit per event) |
/// | helper-data erasure | `helper_erasure_rate` | — |
/// | replica wipe | `replica_wipe_rate` | — (one stored replica per event) |
/// | whole-shard loss | `shard_loss_rate` | — (every record in the shard) |
///
/// Rates are probabilities per *opportunity* (per measurement event for the
/// transient classes, per ring for the hard classes, per response bit for
/// glitches, per helper bit for erasures). [`FaultPlan::scaled`] scales the
/// rates — not the magnitudes — so an intensity sweep varies how *often*
/// physics misbehaves, holding how *badly* fixed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability per measurement event of a transient environment
    /// excursion (droop and spike drawn jointly).
    pub env_excursion_prob: f64,
    /// Maximum supply droop in volts (applied as a negative excursion).
    pub vdd_droop_v: f64,
    /// Maximum die temperature spike in degrees Celsius.
    pub temp_spike_c: f64,
    /// Probability per measurement event of an RTN burst.
    pub noise_burst_prob: f64,
    /// Peak noise amplification of a burst (>= 1).
    pub noise_burst_factor: f64,
    /// Probability per ring of being fabricated/field-failed dead.
    pub dead_ro_rate: f64,
    /// Probability per ring of a stuck readout path.
    pub stuck_ro_rate: f64,
    /// Probability per response bit of a counter-glitch flip.
    pub glitch_prob: f64,
    /// Probability per stored helper-data bit of an NVM erasure/upset.
    pub helper_erasure_rate: f64,
    /// Probability per stored replica per maintenance window of the whole
    /// replica being wiped (a lost NVM page, a botched firmware update).
    pub replica_wipe_rate: f64,
    /// Probability per store shard per maintenance window of the entire
    /// shard being lost (a dead verifier node / storage volume).
    pub shard_loss_rate: f64,
}

/// A fault-plan spec that did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePlanError {
    spec: String,
    reason: &'static str,
}

impl std::fmt::Display for ParsePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault plan '{}': {}", self.spec, self.reason)
    }
}

impl std::error::Error for ParsePlanError {}

impl FaultPlan {
    /// The zero-intensity plan: every rate is zero, nothing ever fires.
    /// Running under this plan is byte-identical to not installing a fault
    /// layer at all (the determinism contract's anchor case).
    #[must_use]
    pub fn off() -> Self {
        Self {
            env_excursion_prob: 0.0,
            vdd_droop_v: 0.0,
            temp_spike_c: 0.0,
            noise_burst_prob: 0.0,
            noise_burst_factor: 1.0,
            dead_ro_rate: 0.0,
            stuck_ro_rate: 0.0,
            glitch_prob: 0.0,
            helper_erasure_rate: 0.0,
            replica_wipe_rate: 0.0,
            shard_loss_rate: 0.0,
        }
    }

    /// A light chaos plan for CI smoke runs: rare transients, a sprinkle
    /// of hard faults — enough to exercise every injection path without
    /// drowning the statistics.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            env_excursion_prob: 0.05,
            vdd_droop_v: 0.12,
            temp_spike_c: 30.0,
            noise_burst_prob: 0.05,
            noise_burst_factor: 4.0,
            dead_ro_rate: 0.01,
            stuck_ro_rate: 0.005,
            glitch_prob: 0.002,
            helper_erasure_rate: 0.001,
            replica_wipe_rate: 0.001,
            shard_loss_rate: 0.0002,
        }
    }

    /// A hostile plan: frequent deep droops and hot spikes, loud RTN,
    /// percent-level hard faults. Key recovery is *expected* to degrade
    /// under this plan — that degradation curve is exp15's subject.
    #[must_use]
    pub fn storm() -> Self {
        Self {
            env_excursion_prob: 0.35,
            vdd_droop_v: 0.30,
            temp_spike_c: 75.0,
            noise_burst_prob: 0.25,
            noise_burst_factor: 10.0,
            dead_ro_rate: 0.04,
            stuck_ro_rate: 0.02,
            glitch_prob: 0.01,
            helper_erasure_rate: 0.004,
            replica_wipe_rate: 0.02,
            shard_loss_rate: 0.004,
        }
    }

    /// Whether every rate is zero (no fault can ever fire).
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.env_excursion_prob == 0.0
            && self.noise_burst_prob == 0.0
            && self.dead_ro_rate == 0.0
            && self.stuck_ro_rate == 0.0
            && self.glitch_prob == 0.0
            && self.helper_erasure_rate == 0.0
            && self.replica_wipe_rate == 0.0
            && self.shard_loss_rate == 0.0
    }

    /// Returns this plan with every *rate* scaled by `intensity` (clamped
    /// to probability range); magnitudes are untouched. `scaled(0.0)` is
    /// [`FaultPlan::is_off`]; `scaled(1.0)` is the identity.
    ///
    /// # Panics
    /// Panics if `intensity` is negative or not finite.
    #[must_use]
    pub fn scaled(&self, intensity: f64) -> Self {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be finite and non-negative"
        );
        let scale = |rate: f64| (rate * intensity).clamp(0.0, 1.0);
        Self {
            env_excursion_prob: scale(self.env_excursion_prob),
            vdd_droop_v: self.vdd_droop_v,
            temp_spike_c: self.temp_spike_c,
            noise_burst_prob: scale(self.noise_burst_prob),
            noise_burst_factor: self.noise_burst_factor,
            dead_ro_rate: scale(self.dead_ro_rate),
            stuck_ro_rate: scale(self.stuck_ro_rate),
            glitch_prob: scale(self.glitch_prob),
            helper_erasure_rate: scale(self.helper_erasure_rate),
            replica_wipe_rate: scale(self.replica_wipe_rate),
            shard_loss_rate: scale(self.shard_loss_rate),
        }
    }

    /// Parses a plan spec: a preset name (`off`, `smoke`, `storm`), with
    /// an optional `@<intensity>` suffix scaling its rates — e.g.
    /// `storm@0.5` is half-rate storm, `smoke@0` is off.
    ///
    /// # Errors
    /// Returns [`ParsePlanError`] for an unknown preset or an unparsable /
    /// negative intensity.
    pub fn parse(spec: &str) -> Result<Self, ParsePlanError> {
        let err = |reason| ParsePlanError {
            spec: spec.to_string(),
            reason,
        };
        let (name, intensity) = match spec.split_once('@') {
            None => (spec, 1.0),
            Some((name, scale)) => {
                let intensity: f64 = scale
                    .parse()
                    .map_err(|_| err("intensity is not a number"))?;
                if !intensity.is_finite() || intensity < 0.0 {
                    return Err(err("intensity must be finite and non-negative"));
                }
                (name, intensity)
            }
        };
        let base = match name {
            "off" | "none" | "zero" => Self::off(),
            "smoke" => Self::smoke(),
            "storm" => Self::storm(),
            _ => return Err(err("unknown preset (expected off, smoke, or storm)")),
        };
        Ok(base.scaled(intensity))
    }

    /// A stable 64-bit digest of the plan's exact field values, for keying
    /// caches: two runs may share cached populations/timelines only when
    /// their fault fingerprints match.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let fields = [
            self.env_excursion_prob,
            self.vdd_droop_v,
            self.temp_spike_c,
            self.noise_burst_prob,
            self.noise_burst_factor,
            self.dead_ro_rate,
            self.stuck_ro_rate,
            self.glitch_prob,
            self.helper_erasure_rate,
            self.replica_wipe_rate,
            self.shard_loss_rate,
        ];
        let mut digest = 0xfa_17u64;
        for field in fields {
            digest = mix64(digest ^ field.to_bits());
        }
        digest
    }
}

/// SplitMix64 finalizer (same mixing family as `aro_device::rng`).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_off_and_presets_are_not() {
        assert!(FaultPlan::off().is_off());
        assert!(!FaultPlan::smoke().is_off());
        assert!(!FaultPlan::storm().is_off());
    }

    #[test]
    fn scaling_to_zero_turns_any_plan_off() {
        assert!(FaultPlan::storm().scaled(0.0).is_off());
        assert_eq!(FaultPlan::smoke().scaled(1.0), FaultPlan::smoke());
    }

    #[test]
    fn scaling_clamps_rates_to_probability_range() {
        let wild = FaultPlan::storm().scaled(100.0);
        assert_eq!(wild.env_excursion_prob, 1.0);
        assert_eq!(wild.glitch_prob, 1.0);
        // Magnitudes are untouched by intensity.
        assert_eq!(wild.temp_spike_c, FaultPlan::storm().temp_spike_c);
        assert_eq!(wild.noise_burst_factor, FaultPlan::storm().noise_burst_factor);
    }

    #[test]
    fn parse_accepts_presets_and_intensity_suffix() {
        assert_eq!(FaultPlan::parse("off").unwrap(), FaultPlan::off());
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::off());
        assert_eq!(FaultPlan::parse("smoke").unwrap(), FaultPlan::smoke());
        assert_eq!(
            FaultPlan::parse("storm@0.5").unwrap(),
            FaultPlan::storm().scaled(0.5)
        );
        assert!(FaultPlan::parse("smoke@0").unwrap().is_off());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["hurricane", "smoke@abc", "smoke@-1", "smoke@inf", ""] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains("invalid fault plan"), "{err}");
        }
    }

    #[test]
    fn erasure_only_plan_is_live_and_fingerprints_apart_from_off() {
        // Helper erasures alone are a real threat model (EXP-15's killer
        // fault) — a plan carrying nothing else must not collapse into
        // the fault-free path or alias its cache key.
        let erasure_only = FaultPlan {
            helper_erasure_rate: 0.002,
            ..FaultPlan::off()
        };
        assert!(!erasure_only.is_off());
        assert_ne!(erasure_only.fingerprint(), FaultPlan::off().fingerprint());
        // Different erasure rates are different schedules.
        let other = FaultPlan {
            helper_erasure_rate: 0.004,
            ..FaultPlan::off()
        };
        assert_ne!(erasure_only.fingerprint(), other.fingerprint());
    }

    #[test]
    fn storage_only_plans_are_live_and_fingerprint_apart() {
        // A plan carrying only storage-layer faults (replica wipes or
        // whole-shard losses) must not collapse into the fault-free path
        // or alias its cache key — these are the EXP-19 storm's subject.
        let wipe_only = FaultPlan {
            replica_wipe_rate: 0.01,
            ..FaultPlan::off()
        };
        let shard_only = FaultPlan {
            shard_loss_rate: 0.01,
            ..FaultPlan::off()
        };
        assert!(!wipe_only.is_off());
        assert!(!shard_only.is_off());
        assert_ne!(wipe_only.fingerprint(), FaultPlan::off().fingerprint());
        assert_ne!(shard_only.fingerprint(), FaultPlan::off().fingerprint());
        assert_ne!(wipe_only.fingerprint(), shard_only.fingerprint());
        // Intensity scaling covers the storage rates like every other rate.
        assert!(wipe_only.scaled(0.0).is_off());
        assert_eq!(FaultPlan::storm().scaled(0.5).replica_wipe_rate, 0.01);
    }

    #[test]
    fn fingerprint_separates_plans_and_is_stable() {
        let a = FaultPlan::smoke().fingerprint();
        assert_eq!(a, FaultPlan::smoke().fingerprint());
        assert_ne!(a, FaultPlan::storm().fingerprint());
        assert_ne!(a, FaultPlan::off().fingerprint());
        assert_ne!(
            FaultPlan::storm().scaled(0.5).fingerprint(),
            FaultPlan::storm().fingerprint()
        );
    }
}
