//! The fault injector: turns a [`FaultPlan`] plus a master seed into
//! concrete, replayable fault events.
//!
//! # Determinism contract
//!
//! Every query is a pure function of `(plan, master_seed, coordinates)`,
//! where the coordinates name the opportunity being asked about — a chip
//! id, a measurement event index, a ring slot. No call consumes state from
//! any other call, so:
//!
//! * asking in any order, from any thread, yields the same schedule;
//! * a parallel sweep partitioned across any `--threads N` is byte-
//!   identical to the serial run (the same guarantee `aro-par` gives the
//!   fault-free path);
//! * the injector derives its streams from its **own** seed domain
//!   (`child("faults")` of the master), so installing it never perturbs
//!   the existing mismatch/noise streams — seed stability holds, and the
//!   zero-intensity plan reproduces the fault-free bytes exactly.
//!
//! Every fault that actually fires is recorded through `aro-obs` counters
//! (`faults.*`) **and** emitted as a structured `fault` telemetry event
//! ([`aro_obs::fault_event`]) naming the chip, the kind, and the
//! magnitudes drawn — so chaos runs leave both an aggregate tally in the
//! metrics dump and an exact injection trail in the telemetry capture.
//! Zero-intensity plans take the early-return path before any fire site,
//! so they emit nothing (the golden-fixture guarantee).

use aro_circuit::ring::RoHealth;
use aro_device::environment::Environment;
use aro_device::rng::SeedDomain;
use rand::Rng;

use crate::plan::FaultPlan;

/// Deterministic fault-event source for one simulation run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    master_seed: u64,
    env: SeedDomain,
    noise: SeedDomain,
    hard: SeedDomain,
    glitch: SeedDomain,
    helper: SeedDomain,
    helper_window: SeedDomain,
    replica: SeedDomain,
    shard: SeedDomain,
}

/// Folds a two-coordinate opportunity into one stream index. The odd
/// multiplier spreads chip ids across the index space so `(chip, event)`
/// pairs cannot collide for any realistic event count.
fn slot(chip_id: u64, event: u64) -> u64 {
    chip_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ event
}

impl FaultInjector {
    /// Builds an injector for `plan`, deriving all randomness from the
    /// `"faults"` child domain of `master_seed`.
    #[must_use]
    pub fn new(plan: FaultPlan, master_seed: u64) -> Self {
        let root = SeedDomain::new(master_seed).child("faults");
        Self {
            plan,
            master_seed,
            env: root.child("env"),
            noise: root.child("noise"),
            hard: root.child("hard"),
            glitch: root.child("glitch"),
            helper: root.child("helper"),
            helper_window: root.child("helper-window"),
            replica: root.child("replica"),
            shard: root.child("shard"),
        }
    }

    /// The plan this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether this injector can never fire ([`FaultPlan::is_off`]).
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.plan.is_off()
    }

    /// A stable digest of `(plan, master_seed)`, for keying run-scoped
    /// caches: cached populations/timelines may only be shared between
    /// runs whose injectors fingerprint identically.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.plan.fingerprint() ^ self.master_seed.rotate_left(17)
    }

    /// The persistent hard faults of chip `chip_id`: `(ring index, fault)`
    /// assignments, in ascending ring order. Stuck rings latch a frequency
    /// in the 0.2–2 GHz band, the plausible range of a floating readout
    /// mux input.
    #[must_use]
    pub fn hard_faults(&self, chip_id: u64, n_ros: usize) -> Vec<(usize, RoHealth)> {
        let dead = self.plan.dead_ro_rate;
        let stuck = self.plan.stuck_ro_rate;
        if dead == 0.0 && stuck == 0.0 {
            return Vec::new();
        }
        let mut rng = self.hard.rng(chip_id);
        let mut faults = Vec::new();
        for index in 0..n_ros {
            let u: f64 = rng.gen_range(0.0..1.0);
            let freq_u: f64 = rng.gen_range(0.0..1.0);
            if u < dead {
                faults.push((index, RoHealth::Dead));
            } else if u < dead + stuck {
                faults.push((index, RoHealth::Stuck(0.2e9 + 1.8e9 * freq_u)));
            }
        }
        let n_dead = faults
            .iter()
            .filter(|(_, h)| matches!(h, RoHealth::Dead))
            .count() as u64;
        if n_dead > 0 {
            aro_obs::counter("faults.dead_ros", n_dead);
            aro_obs::sketch("faults.fire_size", n_dead as f64);
            aro_obs::fault_event("dead_ro", chip_id, n_dead, &[]);
        }
        let n_stuck = faults.len() as u64 - n_dead;
        if n_stuck > 0 {
            aro_obs::counter("faults.stuck_ros", n_stuck);
            aro_obs::sketch("faults.fire_size", n_stuck as f64);
            aro_obs::fault_event("stuck_ro", chip_id, n_stuck, &[]);
        }
        faults
    }

    /// The operating point measurement event `event` of chip `chip_id`
    /// actually sees: either `nominal` untouched, or `nominal` under a
    /// transient droop-and-spike excursion. Droop depth and spike height
    /// are each drawn uniformly up to the plan's magnitude.
    #[must_use]
    pub fn measurement_env(&self, chip_id: u64, event: u64, nominal: &Environment) -> Environment {
        if self.plan.env_excursion_prob == 0.0 {
            return *nominal;
        }
        let mut rng = self.env.rng(slot(chip_id, event));
        if rng.gen_range(0.0..1.0) >= self.plan.env_excursion_prob {
            return *nominal;
        }
        let d_temp = self.plan.temp_spike_c * rng.gen_range(0.0..1.0);
        let d_vdd = -self.plan.vdd_droop_v * rng.gen_range(0.0..1.0);
        aro_obs::counter("faults.env_excursions", 1);
        aro_obs::sketch("faults.fire_size", 1.0);
        aro_obs::fault_event(
            "env_excursion",
            chip_id,
            1,
            &[("d_temp_c", d_temp), ("d_vdd_v", d_vdd)],
        );
        nominal.perturbed(d_temp, d_vdd)
    }

    /// The RTN noise amplification measurement event `event` of chip
    /// `chip_id` suffers: `None` when no burst fires, otherwise a factor
    /// in `(1, noise_burst_factor]` to feed
    /// [`aro_circuit::readout::ReadoutConfig::with_noise_burst`].
    #[must_use]
    pub fn noise_burst(&self, chip_id: u64, event: u64) -> Option<f64> {
        if self.plan.noise_burst_prob == 0.0 {
            return None;
        }
        let mut rng = self.noise.rng(slot(chip_id, event));
        if rng.gen_range(0.0..1.0) >= self.plan.noise_burst_prob {
            return None;
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let factor = 1.0 + (self.plan.noise_burst_factor - 1.0) * u.max(f64::EPSILON);
        aro_obs::counter("faults.noise_bursts", 1);
        aro_obs::sketch("faults.fire_size", 1.0);
        aro_obs::fault_event("noise_burst", chip_id, 1, &[("factor", factor)]);
        Some(factor)
    }

    /// The response-bit positions corrupted by counter glitches during
    /// measurement event `event` of chip `chip_id`, in ascending order.
    /// Each of the `n_bits` pair comparisons flips independently with the
    /// plan's glitch probability.
    #[must_use]
    pub fn response_glitches(&self, chip_id: u64, event: u64, n_bits: usize) -> Vec<usize> {
        if self.plan.glitch_prob == 0.0 {
            return Vec::new();
        }
        let mut rng = self.glitch.rng(slot(chip_id, event));
        let flips: Vec<usize> = (0..n_bits)
            .filter(|_| rng.gen_range(0.0..1.0) < self.plan.glitch_prob)
            .collect();
        if !flips.is_empty() {
            aro_obs::counter("faults.response_glitches", flips.len() as u64);
            aro_obs::sketch("faults.fire_size", flips.len() as f64);
            aro_obs::fault_event("counter_glitch", chip_id, flips.len() as u64, &[]);
        }
        flips
    }

    /// The `(block, bit)` helper-data positions erased in chip `chip_id`'s
    /// stored helper data, given the per-block offset lengths. Each stored
    /// bit flips independently with the plan's erasure rate. Feed the
    /// result to `aro_ecc::fuzzy::HelperData::with_flipped_bits`.
    #[must_use]
    pub fn helper_erasures(&self, chip_id: u64, block_bits: &[usize]) -> Vec<(usize, usize)> {
        if self.plan.helper_erasure_rate == 0.0 {
            return Vec::new();
        }
        let mut rng = self.helper.rng(chip_id);
        let mut erased = Vec::new();
        for (block, &bits) in block_bits.iter().enumerate() {
            for bit in 0..bits {
                if rng.gen_range(0.0..1.0) < self.plan.helper_erasure_rate {
                    erased.push((block, bit));
                }
            }
        }
        if !erased.is_empty() {
            aro_obs::counter("faults.helper_erasures", erased.len() as u64);
            aro_obs::sketch("faults.fire_size", erased.len() as f64);
            aro_obs::fault_event("helper_erasure", chip_id, erased.len() as u64, &[]);
        }
        erased
    }

    /// Helper erasures accumulated during one maintenance *window* of a
    /// refreshed key lifecycle: window `window` of chip `chip_id`, spanning
    /// `fraction` of the plan's reference exposure (the ten-year mission
    /// the flat rate models). NVM erosion accrues with storage time, so a
    /// schedule that refreshes every `T/k` sees each window erode at
    /// `rate · 1/k` — scrubbing more often leaves less accumulated damage
    /// at every reconstruction. Windows draw from their own `(chip,
    /// window)` stream, so the schedule stays a pure function of
    /// coordinates (different intervals just ask about different windows).
    ///
    /// # Panics
    /// Panics if `fraction` is not in `[0, 1]` or not finite.
    #[must_use]
    pub fn helper_erasures_during(
        &self,
        chip_id: u64,
        window: u64,
        fraction: f64,
        block_bits: &[usize],
    ) -> Vec<(usize, usize)> {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "window fraction must be in [0, 1]"
        );
        let rate = (self.plan.helper_erasure_rate * fraction).clamp(0.0, 1.0);
        if rate == 0.0 {
            return Vec::new();
        }
        let mut rng = self.helper_window.rng(slot(chip_id, window));
        let mut erased = Vec::new();
        for (block, &bits) in block_bits.iter().enumerate() {
            for bit in 0..bits {
                if rng.gen_range(0.0..1.0) < rate {
                    erased.push((block, bit));
                }
            }
        }
        if !erased.is_empty() {
            aro_obs::counter("faults.helper_erasures", erased.len() as u64);
            aro_obs::sketch("faults.fire_size", erased.len() as f64);
            aro_obs::fault_event(
                "helper_erasure",
                chip_id,
                erased.len() as u64,
                &[("window", window as f64)],
            );
        }
        erased
    }

    /// The replica indices of device `device_id`'s stored enrollment group
    /// wiped during maintenance window `window`, in ascending order. Each
    /// of the `n_replicas` stored copies is lost independently with the
    /// plan's replica-wipe rate — a dead NVM page, a botched firmware
    /// update — leaving the other copies to serve the read.
    #[must_use]
    pub fn replica_wipes(&self, device_id: u64, window: u64, n_replicas: usize) -> Vec<usize> {
        if self.plan.replica_wipe_rate == 0.0 {
            return Vec::new();
        }
        let mut rng = self.replica.rng(slot(device_id, window));
        let wiped: Vec<usize> = (0..n_replicas)
            .filter(|_| rng.gen_range(0.0..1.0) < self.plan.replica_wipe_rate)
            .collect();
        if !wiped.is_empty() {
            aro_obs::counter("faults.replica_wipes", wiped.len() as u64);
            aro_obs::sketch("faults.fire_size", wiped.len() as f64);
            aro_obs::fault_event(
                "replica_wipe",
                device_id,
                wiped.len() as u64,
                &[("window", window as f64)],
            );
        }
        wiped
    }

    /// Whether store shard `shard` is lost wholesale during maintenance
    /// window `window` — a dead verifier node taking every replica it
    /// hosts with it. Replica placement rotates groups across shards, so a
    /// shard loss costs each affected device one replica, not its record.
    #[must_use]
    pub fn shard_loss(&self, shard: u64, window: u64) -> bool {
        if self.plan.shard_loss_rate == 0.0 {
            return false;
        }
        let mut rng = self.shard.rng(slot(shard, window));
        if rng.gen_range(0.0..1.0) >= self.plan.shard_loss_rate {
            return false;
        }
        aro_obs::counter("faults.shard_losses", 1);
        aro_obs::sketch("faults.fire_size", 1.0);
        aro_obs::fault_event("shard_loss", shard, 1, &[("window", window as f64)]);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aro_device::params::TechParams;

    fn storm() -> FaultInjector {
        FaultInjector::new(FaultPlan::storm(), 2014)
    }

    #[test]
    fn every_query_is_a_pure_function_of_its_coordinates() {
        let a = storm();
        let b = storm();
        let env = Environment::new(25.0, 1.2);
        // Ask b in a scrambled order relative to a: answers must not
        // depend on call history.
        let b_glitch = b.response_glitches(3, 7, 64);
        let b_hard = b.hard_faults(5, 256);
        let b_env = b.measurement_env(1, 2, &env);
        assert_eq!(a.measurement_env(1, 2, &env), b_env);
        assert_eq!(a.hard_faults(5, 256), b_hard);
        assert_eq!(a.response_glitches(3, 7, 64), b_glitch);
        assert_eq!(a.noise_burst(9, 0), b.noise_burst(9, 0));
        assert_eq!(
            a.helper_erasures(4, &[127, 127]),
            b.helper_erasures(4, &[127, 127])
        );
        let b_shard = b.shard_loss(2, 11);
        let b_wipes = b.replica_wipes(6, 3, 4);
        assert_eq!(a.replica_wipes(6, 3, 4), b_wipes);
        assert_eq!(a.shard_loss(2, 11), b_shard);
    }

    #[test]
    fn coordinates_separate_streams() {
        let inj = storm();
        let env = Environment::new(25.0, 1.2);
        // Across many events some excursions must differ chip-to-chip.
        let a: Vec<_> = (0..64).map(|e| inj.measurement_env(0, e, &env)).collect();
        let b: Vec<_> = (0..64).map(|e| inj.measurement_env(1, e, &env)).collect();
        assert_ne!(a, b);
        assert_ne!(inj.hard_faults(0, 256), inj.hard_faults(1, 256));
    }

    #[test]
    fn off_injector_never_fires_and_draws_nothing() {
        let inj = FaultInjector::new(FaultPlan::off(), 2014);
        let env = Environment::new(25.0, 1.2);
        assert!(inj.is_off());
        for event in 0..32 {
            assert_eq!(inj.measurement_env(0, event, &env), env);
            assert_eq!(inj.noise_burst(0, event), None);
            assert!(inj.response_glitches(0, event, 128).is_empty());
        }
        assert!(inj.hard_faults(0, 4096).is_empty());
        assert!(inj.helper_erasures(0, &[1024]).is_empty());
        assert!(inj.helper_erasures_during(0, 0, 1.0, &[1024]).is_empty());
        for window in 0..32 {
            assert!(inj.replica_wipes(0, window, 8).is_empty());
            assert!(!inj.shard_loss(0, window));
        }
    }

    #[test]
    fn replica_wipes_and_shard_losses_roughly_honour_their_rates() {
        let inj = storm();
        let plan = FaultPlan::storm();
        let n = 4000u64;
        let wiped: usize = (0..n).map(|w| inj.replica_wipes(7, w, 3).len()).sum();
        let wipe_rate = wiped as f64 / (3 * n) as f64;
        assert!(
            (wipe_rate - plan.replica_wipe_rate).abs() < 0.01,
            "wipe rate {wipe_rate} vs plan {}",
            plan.replica_wipe_rate
        );
        let lost = (0..n).filter(|&w| inj.shard_loss(1, w)).count() as f64 / n as f64;
        assert!(
            (lost - plan.shard_loss_rate).abs() < 0.01,
            "shard-loss rate {lost} vs plan {}",
            plan.shard_loss_rate
        );
        // Coordinates separate the streams: two devices / shards disagree
        // somewhere over enough windows.
        let a: Vec<_> = (0..512).map(|w| inj.replica_wipes(0, w, 3)).collect();
        let b: Vec<_> = (0..512).map(|w| inj.replica_wipes(1, w, 3)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn storm_rates_are_roughly_honoured() {
        let inj = storm();
        let plan = FaultPlan::storm();
        let env = Environment::new(25.0, 1.2);
        let n = 4000u64;
        let excursions = (0..n)
            .filter(|&e| inj.measurement_env(0, e, &env) != env)
            .count() as f64;
        let rate = excursions / n as f64;
        assert!(
            (rate - plan.env_excursion_prob).abs() < 0.05,
            "excursion rate {rate} vs plan {}",
            plan.env_excursion_prob
        );
        let hard = inj.hard_faults(0, 4096).len() as f64 / 4096.0;
        let expected = plan.dead_ro_rate + plan.stuck_ro_rate;
        assert!((hard - expected).abs() < 0.02, "hard rate {hard}");
    }

    #[test]
    fn excursions_droop_and_heat_within_plan_magnitudes() {
        let inj = storm();
        let plan = FaultPlan::storm();
        let tech = TechParams::default();
        let nominal = Environment::nominal(&tech);
        let mut seen = 0;
        for event in 0..256 {
            let e = inj.measurement_env(2, event, &nominal);
            if e == nominal {
                continue;
            }
            seen += 1;
            assert!(e.vdd() <= nominal.vdd() && e.vdd() >= nominal.vdd() - plan.vdd_droop_v);
            assert!(
                e.temp_celsius() >= nominal.temp_celsius()
                    && e.temp_celsius() <= nominal.temp_celsius() + plan.temp_spike_c
            );
        }
        assert!(seen > 10, "storm must actually fire ({seen})");
    }

    #[test]
    fn noise_bursts_amplify_within_bounds() {
        let inj = storm();
        let plan = FaultPlan::storm();
        let factors: Vec<f64> = (0..512).filter_map(|e| inj.noise_burst(0, e)).collect();
        assert!(!factors.is_empty());
        assert!(factors
            .iter()
            .all(|&f| f > 1.0 && f <= plan.noise_burst_factor));
    }

    #[test]
    fn stuck_frequencies_are_in_the_plausible_band() {
        let inj = storm();
        let stuck: Vec<f64> = (0..64)
            .flat_map(|chip| inj.hard_faults(chip, 256))
            .filter_map(|(_, h)| match h {
                RoHealth::Stuck(f) => Some(f),
                _ => None,
            })
            .collect();
        assert!(!stuck.is_empty());
        assert!(stuck.iter().all(|&f| (0.2e9..=2.0e9).contains(&f)));
    }

    #[test]
    fn helper_erasures_stay_in_range_and_scale_with_rate() {
        let inj = storm();
        let blocks = [127usize, 127, 63];
        let erased = inj.helper_erasures(1, &blocks);
        for &(block, bit) in &erased {
            assert!(block < blocks.len());
            assert!(bit < blocks[block]);
        }
        let total: usize = (0..128)
            .map(|chip| inj.helper_erasures(chip, &blocks).len())
            .sum();
        let expected = 128.0 * 317.0 * FaultPlan::storm().helper_erasure_rate;
        assert!(
            (total as f64) > 0.3 * expected && (total as f64) < 3.0 * expected,
            "erasures {total} vs expected {expected}"
        );
    }

    #[test]
    fn windowed_erasures_are_pure_in_their_coordinates() {
        let a = storm();
        let b = storm();
        let blocks = [127usize, 127];
        // Scrambled query order on b: pure functions don't care.
        let b_w3 = b.helper_erasures_during(4, 3, 0.25, &blocks);
        let b_w0 = b.helper_erasures_during(4, 0, 0.25, &blocks);
        assert_eq!(a.helper_erasures_during(4, 0, 0.25, &blocks), b_w0);
        assert_eq!(a.helper_erasures_during(4, 3, 0.25, &blocks), b_w3);
    }

    #[test]
    fn windowed_erasures_scale_with_the_window_fraction() {
        let inj = storm();
        let blocks = [255usize; 8];
        let full: usize = (0..256)
            .map(|chip| inj.helper_erasures_during(chip, 0, 1.0, &blocks).len())
            .sum();
        let quarter: usize = (0..256)
            .map(|chip| inj.helper_erasures_during(chip, 0, 0.25, &blocks).len())
            .sum();
        let zero: usize = (0..256)
            .map(|chip| inj.helper_erasures_during(chip, 0, 0.0, &blocks).len())
            .sum();
        assert_eq!(zero, 0, "zero exposure never erodes");
        assert!(full > 0, "full exposure must fire under storm");
        assert!(
            (quarter as f64) < 0.6 * full as f64,
            "quarter window {quarter} should erode well below full {full}"
        );
    }

    #[test]
    fn windowed_erasures_stay_in_range_and_match_the_flat_query_budget() {
        let inj = storm();
        let blocks = [127usize, 127, 63];
        for &(block, bit) in &inj.helper_erasures_during(1, 2, 1.0, &blocks) {
            assert!(block < blocks.len());
            assert!(bit < blocks[block]);
        }
        // A full-exposure window models the same erosion budget as the
        // flat ten-year query — same rate, different stream.
        let flat: usize = (0..512)
            .map(|chip| inj.helper_erasures(chip, &blocks).len())
            .sum();
        let windowed: usize = (0..512)
            .map(|chip| inj.helper_erasures_during(chip, 0, 1.0, &blocks).len())
            .sum();
        let ratio = windowed as f64 / flat.max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "windowed {windowed} vs flat {flat}"
        );
    }

    #[test]
    #[should_panic(expected = "window fraction")]
    fn windowed_erasures_reject_bad_fractions() {
        let _ = storm().helper_erasures_during(0, 0, 1.5, &[64]);
    }

    #[test]
    fn fire_sites_emit_fault_events_and_off_plans_stay_silent() {
        use aro_obs::json::{self, Value};
        // The sink is process-global and other tests in this binary also
        // drive injectors concurrently; sentinel chip ids keep the
        // assertions scoped to this test's own queries.
        const STORM_CHIP: u64 = 999_999;
        const OFF_CHIP: u64 = 888_888;
        let buf = aro_obs::sink::install_memory();
        aro_obs::set_enabled(true);
        let inj = storm();
        let env = Environment::new(25.0, 1.2);
        let _ = inj.hard_faults(STORM_CHIP, 1024);
        for event in 0..512 {
            let _ = inj.measurement_env(STORM_CHIP, event, &env);
            let _ = inj.noise_burst(STORM_CHIP, event);
            let _ = inj.response_glitches(STORM_CHIP, event, 64);
        }
        let _ = inj.helper_erasures(STORM_CHIP, &[127, 127, 127]);
        for window in 0..512 {
            let _ = inj.replica_wipes(STORM_CHIP, window, 4);
            let _ = inj.shard_loss(STORM_CHIP, window);
        }
        let off = FaultInjector::new(FaultPlan::off(), 2014);
        let _ = off.hard_faults(OFF_CHIP, 1024);
        for event in 0..512 {
            let _ = off.measurement_env(OFF_CHIP, event, &env);
            let _ = off.noise_burst(OFF_CHIP, event);
            let _ = off.response_glitches(OFF_CHIP, event, 64);
        }
        let _ = off.helper_erasures(OFF_CHIP, &[127, 127, 127]);
        for window in 0..512 {
            let _ = off.replica_wipes(OFF_CHIP, window, 4);
            let _ = off.shard_loss(OFF_CHIP, window);
        }
        aro_obs::set_enabled(false);
        aro_obs::sink::close();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let mine: Vec<Value> = text
            .lines()
            .filter_map(|line| json::parse(line).ok())
            .filter(|v| v.get("event").and_then(Value::as_str) == Some("fault"))
            .filter(|v| v.get("chip").and_then(Value::as_u64) == Some(STORM_CHIP))
            .collect();
        let kinds: std::collections::BTreeSet<&str> = mine
            .iter()
            .filter_map(|v| v.get("kind").and_then(Value::as_str))
            .collect();
        for kind in [
            "dead_ro",
            "stuck_ro",
            "env_excursion",
            "noise_burst",
            "counter_glitch",
            "helper_erasure",
            "replica_wipe",
            "shard_loss",
        ] {
            assert!(kinds.contains(kind), "missing fault kind {kind}: {kinds:?}");
        }
        // Excursion events carry the drawn magnitudes.
        assert!(mine.iter().any(|v| {
            v.get("kind").and_then(Value::as_str) == Some("env_excursion")
                && v.get("d_temp_c").and_then(Value::as_f64).is_some()
                && v.get("d_vdd_v").and_then(Value::as_f64).is_some()
        }));
        // The zero-intensity plan reached no fire site: not one event.
        assert!(
            !text.contains(&format!("\"chip\":{OFF_CHIP}")),
            "off plan emitted fault events"
        );
    }

    #[test]
    fn fingerprint_distinguishes_plan_and_seed() {
        let a = FaultInjector::new(FaultPlan::smoke(), 1).fingerprint();
        assert_eq!(a, FaultInjector::new(FaultPlan::smoke(), 1).fingerprint());
        assert_ne!(a, FaultInjector::new(FaultPlan::smoke(), 2).fingerprint());
        assert_ne!(a, FaultInjector::new(FaultPlan::storm(), 1).fingerprint());
    }
}
