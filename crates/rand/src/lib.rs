//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the narrow slice of the `rand 0.8` API it actually uses — the same move
//! the device layer already made for Gaussian sampling (Marsaglia polar
//! in-house instead of `rand_distr`). The generator behind
//! [`rngs::StdRng`] is xoshiro256** seeded through SplitMix64: not the
//! upstream ChaCha12 stream, but every consumer in this repository asserts
//! statistical ranges rather than exact draws, and xoshiro256** passes
//! BigCrush (and this repo's own NIST battery).
//!
//! Surface provided: [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`,
//! `gen_range`, `gen_bool`, `fill`), and [`rngs::StdRng`].

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed, expanding it through
    /// SplitMix64 — deterministic and well-dispersed for any input,
    /// including 0.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let out = splitmix_finalize(sm);
            for (b, byte) in chunk.iter_mut().zip(out.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 finalizer.
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a generator's raw output (the stand-in
/// for `rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: StandardSample, B: StandardSample> StandardSample for (A, B) {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (A::sample_standard(rng), B::sample_standard(rng))
    }
}

impl<A: StandardSample, B: StandardSample, C: StandardSample> StandardSample for (A, B, C) {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (
            A::sample_standard(rng),
            B::sample_standard(rng),
            C::sample_standard(rng),
        )
    }
}

/// Ranges samplable uniformly (the stand-in for `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                #[allow(clippy::cast_possible_truncation)]
                { self.start + (uniform_u64(rng, span) as $t) }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    #[allow(clippy::cast_possible_truncation)]
                    return rng.next_u64() as $t;
                }
                #[allow(clippy::cast_possible_truncation)]
                { start + (uniform_u64(rng, span + 1) as $t) }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                { self.start.wrapping_add(uniform_u64(rng, span) as $t) }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                    return rng.next_u64() as $t;
                }
                #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
                { start.wrapping_add(uniform_u64(rng, span + 1) as $t) }
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via Lemire's
/// multiply-with-rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection zone keeps the multiply-shift unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let raw = rng.next_u64();
        let (hi, lo) = {
            let wide = u128::from(raw) * u128::from(span);
            #[allow(clippy::cast_possible_truncation)]
            {
                ((wide >> 64) as u64, wide as u64)
            }
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a standard-samplable type (`rng.gen::<bool>()`,
    /// `rng.gen::<f64>()`, …).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a range (`rng.gen_range(0..n)`,
    /// `rng.gen_range(-1.0..1.0)`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix_finalize, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Small, fast, equidistributed in 64-bit words, and — unlike the
    /// upstream `StdRng` — fully defined in this repository, so seeded
    /// streams are stable across toolchains forever.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // The all-zero state is a fixed point; remix it away.
            if s == [0; 4] {
                s = [
                    splitmix_finalize(1),
                    splitmix_finalize(2),
                    splitmix_finalize(3),
                    splitmix_finalize(4),
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=3usize);
            assert!(y <= 3);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let ones = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
